"""Repository-level pytest configuration.

Ensures the ``src`` layout is importable even when the package has not been
installed (the execution environment is offline, and ``pip install -e .``
requires ``--no-build-isolation`` there; see README).  When ``repro`` is
already installed this file is a no-op.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"

try:  # pragma: no cover - trivial import guard
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(_SRC))
