#!/usr/bin/env python3
"""Lint: no silent ``except Exception`` in the service/campaign layers.

Walks ``src/repro/service/`` and ``src/repro/campaigns/`` and fails (exit 1)
on any ``except Exception``/``except BaseException``/bare ``except:`` handler
that swallows the error without leaving a trail.  A handler passes when it

* re-raises (any ``raise`` statement in its body), or
* emits a structured log event (``log_event(...)``), or
* bumps a metric (``.inc`` / ``.observe`` / ``.set_gauge`` on a registry), or
* carries an explicit waiver comment on its ``except`` line::

      except Exception:  # obs-exempt: <why the caller logs/counts instead>

Run from the repository root::

    python tools/check_exception_hygiene.py
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import List, Tuple

LINTED_DIRS = ("src/repro/service", "src/repro/campaigns")
WAIVER_MARKER = "obs-exempt"
#: Call names (plain or attribute) that count as leaving a trail.
EVIDENCE_CALLS = {"log_event", "inc", "observe", "set_gauge"}


def _is_broad_catch(handler: ast.ExceptHandler) -> bool:
    """True for ``except:``, ``except Exception`` and ``except BaseException``."""
    if handler.type is None:
        return True
    names = []
    if isinstance(handler.type, ast.Tuple):
        names = [n for n in handler.type.elts]
    else:
        names = [handler.type]
    for node in names:
        if isinstance(node, ast.Name) and node.id in ("Exception", "BaseException"):
            return True
        if isinstance(node, ast.Attribute) and node.attr in ("Exception", "BaseException"):
            return True
    return False


def _has_evidence(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in EVIDENCE_CALLS:
                return True
            if isinstance(func, ast.Attribute) and func.attr in EVIDENCE_CALLS:
                return True
    return False


def _is_waived(handler: ast.ExceptHandler, lines: List[str]) -> bool:
    line = lines[handler.lineno - 1] if handler.lineno - 1 < len(lines) else ""
    return WAIVER_MARKER in line


def check_file(path: Path) -> List[Tuple[int, str]]:
    """The (line, message) violations of one Python file."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    lines = source.splitlines()
    violations: List[Tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _is_broad_catch(node):
            continue
        if _is_waived(node, lines) or _has_evidence(node):
            continue
        violations.append(
            (
                node.lineno,
                "broad except swallows the error without raise/log_event/"
                f"metric counter (add one, or '# {WAIVER_MARKER}: <reason>')",
            )
        )
    return violations


def main(argv: List[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent
    failures = 0
    for directory in LINTED_DIRS:
        base = root / directory
        if not base.is_dir():
            print(f"error: missing lint target {base}", file=sys.stderr)
            return 2
        for path in sorted(base.rglob("*.py")):
            for lineno, message in check_file(path):
                print(f"{path.relative_to(root)}:{lineno}: {message}")
                failures += 1
    if failures:
        print(f"\n{failures} silent broad except handler(s) found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
