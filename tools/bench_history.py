#!/usr/bin/env python3
"""Fold per-run benchmark records into a cumulative perf history.

The benchmark smoke jobs each write a machine-readable JSON record:

* ``BENCH_sweep.json``    — E12, incremental MaxSAT sweep (``speedup_vs_cold``)
* ``BENCH_campaign.json`` — E13, campaign resume overhead (``resume_speedup``)
* ``BENCH_monitor.json``  — E14, live monitor updates (``speedup_vs_cold``)

This tool appends each record to ``BENCH_history.json`` (one entry list per
benchmark id, newest last) and **fails with exit 1** when a headline metric
regresses by more than ``--max-regression`` (default 30%) against the previous
entry, so CI catches a perf cliff before it merges.  First entries have no
baseline and always pass.

Run from the repository root::

    python tools/bench_history.py --history BENCH_history.json \
        BENCH_sweep.json BENCH_campaign.json BENCH_monitor.json

With no record paths given, the tool reads the ``BENCH_SWEEP_JSON`` /
``BENCH_CAMPAIGN_JSON`` / ``BENCH_MONITOR_JSON`` environment variables (the
same ones the benchmarks honour), skipping files that do not exist — so the
CI step works unchanged whichever subset of benchmarks a job ran.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

#: benchmark id -> the record key that serves as the headline (higher=better).
HEADLINE_METRICS = {
    "E12-incremental-maxsat-sweep": "speedup_vs_cold",
    "E13-campaign-resume-overhead": "resume_speedup",
    "E14-live-monitor-updates": "speedup_vs_cold",
    "E15-kernel-batch-bdd-eval": "numpy_speedup_vs_scalar",
    "E16-maxsat-rerank-batch": "batch_speedup_vs_chunk",
}

#: (env var, default filename) pairs probed when no record paths are given.
DEFAULT_RECORDS = (
    ("BENCH_SWEEP_JSON", "BENCH_sweep.json"),
    ("BENCH_CAMPAIGN_JSON", "BENCH_campaign.json"),
    ("BENCH_MONITOR_JSON", "BENCH_monitor.json"),
    ("BENCH_KERNELS_JSON", "BENCH_kernels.json"),
    ("BENCH_RERANK_JSON", "BENCH_rerank.json"),
)


def load_record(path: Path) -> Dict[str, Any]:
    record = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(record, dict) or "benchmark" not in record:
        raise ValueError(f"{path}: not a benchmark record (no 'benchmark' key)")
    return record


def load_history(path: Path) -> Dict[str, List[Dict[str, Any]]]:
    if not path.exists():
        return {}
    history = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(history, dict):
        raise ValueError(f"{path}: history must be a JSON object")
    return history


def headline_of(record: Dict[str, Any]) -> Optional[float]:
    key = HEADLINE_METRICS.get(record["benchmark"])
    if key is None or key not in record:
        return None
    return float(record[key])


def check_regression(
    previous: Optional[Dict[str, Any]],
    entry: Dict[str, Any],
    max_regression: float,
) -> Optional[str]:
    """A human-readable failure line, or ``None`` when the entry passes."""
    if previous is None:
        return None
    old = previous.get("headline")
    new = entry.get("headline")
    if old is None or new is None or old <= 0:
        return None
    if new < old * (1.0 - max_regression):
        drop = (1.0 - new / old) * 100.0
        return (
            f"{entry['record']['benchmark']}: headline fell {drop:.0f}% "
            f"({old:g} -> {new:g}), over the {max_regression * 100:.0f}% budget"
        )
    return None


def append_records(
    history: Dict[str, List[Dict[str, Any]]],
    records: List[Dict[str, Any]],
    *,
    label: str = "",
    max_regression: float = 0.30,
) -> Tuple[List[str], List[str]]:
    """Append each record to the history; returns (summary, regressions)."""
    summary: List[str] = []
    regressions: List[str] = []
    for record in records:
        benchmark = record["benchmark"]
        entries = history.setdefault(benchmark, [])
        entry = {
            "label": label,
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "headline": headline_of(record),
            "record": record,
        }
        failure = check_regression(
            entries[-1] if entries else None, entry, max_regression
        )
        entries.append(entry)
        baseline = entries[-2]["headline"] if len(entries) > 1 else None
        summary.append(
            f"{benchmark:34} headline={entry['headline']!s:>8} "
            f"baseline={baseline!s:>8} entries={len(entries)}"
        )
        if failure:
            regressions.append(failure)
    return summary, regressions


def _default_record_paths() -> List[Path]:
    paths = []
    for env_var, default in DEFAULT_RECORDS:
        path = Path(os.environ.get(env_var, default))
        if path.exists():
            paths.append(path)
    return paths


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "records",
        nargs="*",
        type=Path,
        help="benchmark record files (default: probe the BENCH_*_JSON env vars)",
    )
    parser.add_argument(
        "--history",
        type=Path,
        default=Path("BENCH_history.json"),
        help="cumulative history file to append to (default: %(default)s)",
    )
    parser.add_argument(
        "--label",
        default=os.environ.get("GITHUB_SHA", ""),
        help="tag for the new entries (default: $GITHUB_SHA when set)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="fail when a headline drops more than this fraction "
        "vs the previous entry (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    record_paths = args.records or _default_record_paths()
    if not record_paths:
        print("bench_history: no benchmark records found, nothing to do")
        return 0
    try:
        records = [load_record(path) for path in record_paths]
        history = load_history(args.history)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"bench_history: {error}", file=sys.stderr)
        return 1

    summary, regressions = append_records(
        history, records, label=args.label, max_regression=args.max_regression
    )
    args.history.write_text(
        json.dumps(history, indent=2) + "\n", encoding="utf-8"
    )
    for line in summary:
        print(line)
    print(f"history: {args.history} ({sum(len(v) for v in history.values())} entries)")
    if regressions:
        for line in regressions:
            print(f"REGRESSION: {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
