"""Kill a sweep campaign mid-flight, restart it, lose nothing.

The :mod:`repro.campaigns` layer gives every chunk of a multi-stage sweep a
content address and records completed chunks in a persistent ledger inside
the artifact store.  This demo proves the resulting crash-safety claim the
hard way:

1. declare a three-stage campaign (probability sweep -> mitigation frontier
   -> merged report) over the paper's Fig. 1 fire-protection tree;
2. run it in a **victim subprocess** that SIGKILLs itself after a handful of
   chunks — no cleanup handlers, no atexit, exactly like an OOM kill;
3. restart the campaign onto the same store: every chunk completed before
   the kill is served from the ledger (zero recomputation), only the
   remainder executes;
4. compare against an uninterrupted run in a pristine store: the merged
   sweep reports are **canonically byte-identical**;
5. resubmit the finished spec once more: the whole campaign is a ledger hit.

Run from the repository root:

.. code-block:: console

    $ PYTHONPATH=src python examples/campaign_resume.py
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import textwrap
from pathlib import Path

from repro.campaigns import CampaignRunner, CampaignSpec, run_campaign
from repro.campaigns.spec import frontier_stage, report_stage, sweep_stage
from repro.fta.serializers import to_json_document
from repro.workloads.library import fire_protection_system

SURVIVE = 4  # chunks allowed to finish before the SIGKILL lands

VICTIM = textwrap.dedent(
    """
    import json, os, signal, sys

    from repro.campaigns import CampaignRunner, CampaignSpec

    store, spec_path, survive = sys.argv[1], sys.argv[2], int(sys.argv[3])
    spec = CampaignSpec.from_dict(json.loads(open(spec_path).read()))
    completed = {"count": 0}

    def kill_after(stage, index, attempt):
        if completed["count"] >= survive:
            os.kill(os.getpid(), signal.SIGKILL)
        completed["count"] += 1

    CampaignRunner(store_path=store, before_chunk=kill_after).run(spec)
    """
)


def build_spec() -> CampaignSpec:
    """Sweep -> frontier -> report over the Fig. 1 fire-protection tree."""
    return CampaignSpec(
        name="fps-resume-demo",
        tree=to_json_document(fire_protection_system()),
        stages=(
            sweep_stage(
                "sweep",
                {"family": "probability_sweep", "event": "x1",
                 "start": 1e-4, "stop": 0.5, "steps": 12},
                chunk_size=2,
            ),
            frontier_stage(
                "frontier",
                [
                    {"event": "x1", "cost": 2.0, "factor": 0.1},
                    {"event": "x2", "cost": 2.0, "factor": 0.1},
                    {"event": "x4", "cost": 1.0, "factor": 0.5},
                    {"event": "x5", "cost": 1.0, "factor": 0.5},
                ],
            ),
            report_stage("final", depends_on=("sweep", "frontier")),
        ),
    )


def canonical_sweep(outcome) -> str:
    """The merged sweep report minus telemetry — the identity that must hold."""
    return json.dumps(
        outcome.stage_results["final"]["stages"]["sweep"]["canonical"],
        sort_keys=True,
    )


def main() -> None:
    spec = build_spec()
    with tempfile.TemporaryDirectory(prefix="repro-campaign-") as tmp:
        store = Path(tmp) / "store"
        spec_path = Path(tmp) / "spec.json"
        spec_path.write_text(json.dumps(spec.to_dict()), encoding="utf-8")
        print(f"campaign {spec.campaign_id()} ({spec.name})")

        # -- 2. the victim run: SIGKILL after SURVIVE chunks ------------------
        victim = subprocess.run(
            [sys.executable, "-c", VICTIM, str(store), str(spec_path), str(SURVIVE)],
            capture_output=True,
            text=True,
            timeout=300,
            env=dict(os.environ),
        )
        assert victim.returncode == -signal.SIGKILL, (
            f"victim should die by SIGKILL, got {victim.returncode}: {victim.stderr}"
        )
        print(f"victim process SIGKILLed after {SURVIVE} chunks "
              f"(returncode {victim.returncode})")

        status = CampaignRunner(store_path=str(store)).status(spec)
        done = sum(stage["chunks_done"] for stage in status["stages"])
        total = sum(stage["chunks_total"] for stage in status["stages"])
        print(f"ledger on disk : status={status['status']!r}, "
              f"{done}/{total} chunks completed")
        assert status["status"] == "running", status
        assert done == SURVIVE, status

        # -- 3. restart onto the same store -----------------------------------
        resumed = run_campaign(spec, store_path=str(store))
        assert resumed.status == "done", resumed.error
        print(f"resumed run    : {resumed.ledger_hits} chunks from the ledger, "
              f"{resumed.executed_chunks} executed")
        assert resumed.ledger_hits == SURVIVE
        assert resumed.executed_chunks == total - SURVIVE

        # -- 4. byte-identical to an uninterrupted run ------------------------
        pristine = run_campaign(spec, store_path=str(Path(tmp) / "fresh-store"))
        assert canonical_sweep(resumed) == canonical_sweep(pristine)
        print("merged sweep report canonically identical to an uninterrupted run")

        # -- 5. resubmitting the finished spec is a pure ledger replay --------
        replay = run_campaign(spec, store_path=str(store))
        assert replay.status == "done" and replay.executed_chunks == 0
        assert replay.ledger_hits == total
        print(f"replay         : {replay.ledger_hits}/{total} ledger hits, "
              "0 chunks executed")
        print("\ndone.")


if __name__ == "__main__":
    main()
