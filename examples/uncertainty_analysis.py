"""Epistemic uncertainty: how robust is the MPMCS to uncertain probabilities?

Basic-event probabilities in risk models are estimates with error bars.  This
example attaches lognormal uncertainty (the standard PRA parameterisation:
median + error factor) to the events of the emergency shutdown system from the
workload library, propagates it with Monte Carlo sampling, and reports

* the uncertainty band of the top-event probability,
* how often each minimal cut set is the MPMCS across samples (identity
  stability of the paper's optimum), and
* which event's uncertainty drives the output uncertainty.

Run with:  python examples/uncertainty_analysis.py
"""

from repro.uncertainty import (
    LognormalUncertainty,
    propagate_uncertainty,
    uncertainty_importance,
)
from repro.workloads.library import emergency_shutdown_system


def main() -> None:
    tree = emergency_shutdown_system()

    # Hardware failures: moderate error factor.  Human/common-cause numbers:
    # much wider uncertainty, as usual in PRA practice.
    spec = {}
    for name, probability in tree.probabilities().items():
        error_factor = 10.0 if name == "transmitters_miscalibrated" else 3.0
        spec[name] = LognormalUncertainty(median=probability, error_factor=error_factor)

    result = propagate_uncertainty(tree, spec, num_samples=5000, seed=2020)

    print(f"=== {tree.name}: Monte Carlo uncertainty propagation "
          f"({result.num_samples} samples) ===")
    top = result.top_event
    print(f"top-event probability: mean {top.mean:.3e}, std {top.std:.3e}")
    for percentile, value in sorted(top.percentiles.items()):
        print(f"  P{percentile:g} = {value:.3e}")

    print("\n=== MPMCS identity across samples ===")
    print(f"point-estimate MPMCS: {{{', '.join(result.point_estimate_mpmcs)}}}")
    for cut_set, frequency in result.mpmcs_frequencies[:5]:
        print(f"  {frequency:6.1%}  {{{', '.join(cut_set)}}}")
    print(f"identity stability: {result.mpmcs_identity_stability:.1%}")

    print("\n=== Uncertainty importance (Spearman rank correlation) ===")
    for measure in uncertainty_importance(result)[:8]:
        print(f"  {measure.event:<32s} {measure.spearman:+.3f}")


if __name__ == "__main__":
    main()
