#!/usr/bin/env python3
"""Maintenance policy sweeps and the mitigation frontier, end to end.

The paper's MPMCS names the weakest link; this walkthrough shows the two
decision-support layers built on top of it:

1. **maintenance-policy sweeps** — the Fig. 1 fire-protection sensors become
   repairable components and the automatic trigger a periodically tested one;
   sweeping the repair rate and the inspection interval through the
   incremental :class:`~repro.scenarios.SweepExecutor` shows exactly when a
   better maintenance policy dethrones the weakest link (every scenario is a
   pure probability re-ranking: watch the subtree cache counters);
2. **the Pareto frontier** — instead of planning at one budget point,
   :func:`~repro.scenarios.pareto_frontier` enumerates every Pareto-optimal
   ``(cost, residual risk)`` purchase via the exact MaxSAT feasibility probe;
3. **the same two workloads over HTTP** — a ``repair_rate_sweep`` family spec
   with a ``models`` section and a ``/frontier`` job, submitted to an
   in-process analysis service.

The script asserts its key results and exits non-zero on any failure, so it
doubles as the CI smoke test for the maintenance/frontier stack.

Run from the repository root::

    PYTHONPATH=src python examples/maintenance_frontier.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.reliability import (
    PeriodicallyTestedComponent,
    ReliabilityAssignment,
    RepairableComponent,
)
from repro.reporting import frontier_table, render_scenario_report
from repro.scenarios import (
    HardeningAction,
    SetRepairRate,
    SweepExecutor,
    exact_plan,
    model_to_dict,
    pareto_frontier,
    repair_rate_sweep,
    sweep_values,
    test_interval_sweep,
)
from repro.service import AnalysisService, ServiceClient, serve
from repro.workloads.library import fire_protection_system

MISSION_TIME = 1000.0  # hours


def build_assignment() -> ReliabilityAssignment:
    """Fig. 1 tree with maintenance-aware models on the actionable events."""
    tree = fire_protection_system()
    assignment = ReliabilityAssignment(tree)
    assignment.assign("x1", RepairableComponent(failure_rate=1e-3, repair_rate=0.01))
    assignment.assign("x2", RepairableComponent(failure_rate=5e-4, repair_rate=0.01))
    assignment.assign("x5", PeriodicallyTestedComponent(failure_rate=1e-4, test_interval=500.0))
    return assignment


def main() -> int:
    assignment = build_assignment()
    base = assignment.tree_at(MISSION_TIME)

    # ----------------------------------------- 1a. repair-rate sweep (x1)
    rates = sweep_values(1e-3, 1.0, 12)
    executor = SweepExecutor()
    sweep = executor.run(
        base, repair_rate_sweep(assignment, "x1", rates, mission_time=MISSION_TIME)
    )
    assert not sweep.failures
    reuse = sweep.subtree_reuse
    # Maintenance scenarios never change the structure function: one
    # enumeration per gate overall, every scenario a pure cache hit.
    assert reuse["misses"] == base.num_gates
    assert reuse["hits"] == base.num_gates * len(rates)
    tops = [outcome.top_event for outcome in sweep.outcomes]
    assert tops == sorted(tops, reverse=True), "faster repairs must lower P(top)"
    # Every scenario equals the direct materialisation of the perturbed model.
    for rate, outcome in zip(rates, sweep.outcomes):
        direct = SetRepairRate("x1", rate).apply_to_assignment(assignment)
        expected = direct.tree_at(MISSION_TIME).probabilities()
        patched = SetRepairRate("x1", rate).at(assignment, MISSION_TIME).apply(base)
        assert patched.probabilities() == expected
    print(f"repair-rate sweep over x1 ({len(rates)} policies, "
          f"subtree cache {reuse['hits']} hits / {reuse['misses']} misses):")
    print(render_scenario_report(sweep, "markdown", limit=4))

    # ----------------------------------------- 1b. inspection-interval sweep (x5)
    intervals = [100.0, 250.0, 500.0, 1000.0]
    inspection = executor.run(
        base,
        test_interval_sweep(assignment, "x5", intervals, mission_time=MISSION_TIME),
    )
    assert not inspection.failures
    print("\ninspection-policy sweep over x5:")
    print(render_scenario_report(inspection, "markdown"))

    # ----------------------------------------- 2. the Pareto frontier
    actions = [
        HardeningAction("x1", cost=2.0),
        HardeningAction("x2", cost=2.0),
        HardeningAction("x4", cost=1.0),
        HardeningAction("x5", cost=1.0),
    ]
    frontier = pareto_frontier(base, actions, method="exact")
    first, last = frontier.points[0], frontier.points[-1]
    assert first.cost == 0 and first.selected == ()
    assert first.mpmcs_probability == frontier.base_mpmcs_probability
    unconstrained = exact_plan(base, actions, budget=sum(a.cost for a in actions))
    assert abs(last.mpmcs_probability - unconstrained.new_mpmcs_probability) < 1e-12
    costs = [point.cost for point in frontier.points]
    risks = [point.mpmcs_probability for point in frontier.points]
    assert costs == sorted(costs) and risks == sorted(risks, reverse=True)
    print(f"\nPareto frontier ({frontier.method}, {len(frontier)} points):")
    print(frontier_table(frontier))

    # ----------------------------------------- 3. the same workloads over HTTP
    service = AnalysisService(workers=2)
    server = serve(service, host="127.0.0.1", port=0)
    try:
        client = ServiceClient(f"http://127.0.0.1:{server.server_port}", timeout=120.0)
        models = {
            name: model_to_dict(assignment.model_for(name))
            for name in ("x1", "x2", "x5")
        }
        job = client.submit_sweep(
            assignment.tree,
            {"family": "repair_rate_sweep", "event": "x1", "rates": rates},
            models=models,
            mission_time=MISSION_TIME,
        )
        done = client.wait(job["id"], timeout=120.0)
        assert done["status"] == "done"
        wire = done["result"]["report"]
        local = sweep.to_canonical_dict()
        remote = type(sweep).canonicalize(wire)
        assert remote == local, "service sweep must match the local run"
        print(f"\nservice repair-rate sweep: {done['result']['num_scenarios']} "
              "scenario(s), canonically identical to the local run")

        frontier_job = client.submit_frontier(
            base,
            [{"event": action.event, "cost": action.cost} for action in actions],
            method="exact",
        )
        frontier_done = client.wait(frontier_job["id"], timeout=120.0)
        assert frontier_done["status"] == "done"
        assert frontier_done["result"]["frontier"] == frontier.to_dict()
        print(f"service frontier job: {frontier_done['result']['num_points']} "
              "point(s), identical to the local frontier")
    finally:
        server.shutdown()
        server.server_close()
        service.stop()

    print("\nall maintenance-frontier checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
