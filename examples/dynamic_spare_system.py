"""Dynamic fault trees: spares, priority gates and functional dependencies.

Static fault trees cannot express "the spare pump only matters after the
primary has failed" or "losing the power supply takes both controllers down
with it".  This example models a redundant pumping station with those dynamic
constructs, then analyses it twice:

1. exactly, with Monte Carlo simulation of the order-dependent semantics;
2. conservatively, through the static approximation that the MPMCS MaxSAT
   pipeline (the paper's method) can consume directly.

Run with:  python examples/dynamic_spare_system.py
"""

from repro.bdd.probability import top_event_probability
from repro.core.pipeline import MPMCSSolver
from repro.core.topk import enumerate_mpmcs
from repro.fta.dynamic import DynamicFaultTree
from repro.fta.simulation import simulate_dft

MISSION_TIME = 5_000.0  # hours


def build_pumping_station() -> DynamicFaultTree:
    dft = DynamicFaultTree("pumping-station", top_event="station_fails")
    dft.add_event("pump_primary", 2e-4, description="Primary pump fails")
    dft.add_event("pump_spare", 2e-4, description="Cold-spare pump fails")
    dft.add_event("suction_valve", 5e-5, description="Suction valve fails")
    dft.add_event("discharge_valve", 8e-5, description="Discharge valve fails")
    dft.add_event("controller_a", 1e-4, description="Controller A fails")
    dft.add_event("controller_b", 1e-4, description="Controller B fails")
    dft.add_event("power_bus", 2e-5, description="Shared power bus fails")

    # The pumping function survives a primary failure thanks to a cold spare.
    dft.add_dynamic_gate("pumps_lost", "spare", ["pump_primary", "pump_spare"], dormancy=0.0)
    # Water hammer damage only occurs if the suction valve fails *before* the
    # discharge valve (order matters: the reverse order is harmless).
    dft.add_dynamic_gate("water_hammer", "pand", ["suction_valve", "discharge_valve"])
    # Losing the power bus immediately takes both controllers down.
    dft.add_dynamic_gate("bus_dependency", "fdep", ["power_bus", "controller_a", "controller_b"])
    dft.add_gate("control_lost", "and", ["controller_a", "controller_b"])
    dft.add_gate("station_fails", "or", ["pumps_lost", "water_hammer", "control_lost"])
    return dft


def main() -> None:
    dft = build_pumping_station()

    print(f"=== Monte Carlo simulation of the exact dynamic semantics "
          f"(mission {MISSION_TIME:g} h) ===")
    simulated = simulate_dft(dft, MISSION_TIME, num_samples=30_000, seed=7)
    low, high = simulated.confidence_interval
    print(f"unreliability = {simulated.unreliability:.4e}  (95% CI {low:.3e} .. {high:.3e})")

    print("\n=== Conservative static approximation ===")
    static = dft.to_static_tree(MISSION_TIME)
    bound = top_event_probability(static)
    print(f"static tree: {static.num_nodes} nodes, exact (BDD) probability = {bound:.4e}")
    print("the static value upper-bounds the simulation, because PAND/SPARE are "
          "replaced by plain AND gates")

    print("\n=== MPMCS of the static approximation (MaxSAT pipeline) ===")
    result = MPMCSSolver().solve(static)
    print(f"MPMCS = {{{', '.join(result.events)}}}  p = {result.probability:.4e} "
          f"(engine: {result.engine})")

    print("\n=== Top-5 cut sets of the static approximation ===")
    for entry in enumerate_mpmcs(static, 5):
        print(f"  #{entry.rank}: {{{', '.join(entry.events)}}}  p = {entry.probability:.4e}")


if __name__ == "__main__":
    main()
