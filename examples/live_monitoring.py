"""Live monitoring end to end: feeds, SSE streams, alerts, metrics.

The CI ``monitoring-smoke`` walkthrough.  Starts the analysis service on an
ephemeral port, then drives the whole live-monitoring loop over HTTP:

1. ``POST /monitor`` with the paper's Fig. 1 fire-protection tree, a
   100-update synthetic probability feed, and three alert rules — a P(top)
   threshold with hysteresis, the MPMCS-identity watchdog, and a relative
   P(top) jump detector;
2. read the delta stream off ``GET /monitor/stream`` with the real
   reconnecting SSE client while the monitor is still applying updates;
3. assert both headline alert kinds actually fired (the synthetic walk is
   deterministic, so they always do with this seed) and that the alert
   ledger survives on the /monitor/alerts endpoint;
4. scrape ``GET /metrics`` and check every live-monitoring metric family the
   dashboards key on, including the per-update latency histogram whose
   count must equal the number of updates applied.

Run from the repository root:

.. code-block:: console

    $ PYTHONPATH=src python examples/live_monitoring.py
"""

import tempfile
import time

from repro.service import AnalysisService, ServiceClient, serve
from repro.workloads.library import fire_protection_system

UPDATES = 120
SEED = 5


def wait_until_stopped(client: ServiceClient, timeout_s: float = 120.0) -> dict:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status = client.monitor()
        if not status["running"]:
            return status
        time.sleep(0.1)
    raise AssertionError("monitor did not drain its feed in time")


def main() -> None:
    tree = fire_protection_system()

    with tempfile.TemporaryDirectory(prefix="repro-monitor-") as store_path:
        service = AnalysisService(store_path=store_path, workers=1)
        server = serve(service, host="127.0.0.1", port=0)
        client = ServiceClient(f"http://127.0.0.1:{server.server_port}", timeout=120.0)
        print(f"service listening on http://127.0.0.1:{server.server_port}")

        try:
            # -- 1. start the monitor over HTTP -------------------------------
            status = client.start_monitor(
                tree,
                feed={
                    "type": "synthetic",
                    "updates": UPDATES,
                    "seed": SEED,
                    "events_per_update": 2,
                    "volatility": 1.2,
                },
                rules=[
                    {"rule": "ptop_threshold", "threshold": 0.2,
                     "hysteresis": 0.02},
                    {"rule": "mpmcs_changed"},
                    {"rule": "ptop_jump", "factor": 5.0},
                ],
            )
            print(f"monitor {status['name']} started "
                  f"(base P(top) = {status['ptop'] if status['ptop'] is not None else '?'})")

            # -- 2. stream deltas live with the reconnecting SSE client -------
            streamed = []
            for event in client.stream_monitor():
                streamed.append(event)
                if event.event == "delta" and len(streamed) % 40 == 0:
                    print(f"  ... {len(streamed)} events streamed, "
                          f"P(top) now {event.data['ptop']:.4g}")
            kinds = [event.event for event in streamed]
            assert kinds[0] == "base" and kinds[-1] == "end", kinds[:3] + kinds[-3:]
            assert kinds.count("delta") == UPDATES
            assert len(streamed) >= 10
            ids = [event.id for event in streamed]
            assert ids == sorted(ids) and len(set(ids)) == len(ids), "ids must be monotonic"
            print(f"streamed {len(streamed)} events ({kinds.count('delta')} deltas, "
                  f"{kinds.count('alert')} alerts) with strictly increasing ids")

            # -- 3. both headline alert kinds fired ---------------------------
            final = wait_until_stopped(client)
            alerts = client.monitor_alerts()
            by_kind: dict = {}
            for alert in alerts:
                by_kind[alert["kind"]] = by_kind.get(alert["kind"], 0) + 1
            print(f"alert ledger: {by_kind}")
            assert by_kind.get("ptop_threshold", 0) >= 1, "threshold alert must fire"
            assert by_kind.get("mpmcs_changed", 0) >= 1, "identity alert must fire"
            assert final["updates"] == UPDATES

            # -- 4. the metric families behind the dashboards -----------------
            text = client.metrics_text()
            for family in (
                "repro_monitor_updates_total",
                "repro_monitor_update_latency_seconds_bucket",
                "repro_monitor_update_latency_seconds_count",
                "repro_monitor_ptop",
                "repro_monitor_feed_age_seconds",
                "repro_monitor_alerts_total",
                "repro_queue_depth",
                "repro_jobs_by_state",
            ):
                assert family in text, f"missing metric family {family}"
            count_line = next(
                line for line in text.splitlines()
                if line.startswith("repro_monitor_update_latency_seconds_count")
            )
            assert count_line.endswith(f" {UPDATES}"), count_line
            print("metrics: latency histogram count == updates applied "
                  f"({UPDATES}); all monitor families exposed")
        finally:
            server.shutdown()
            server.server_close()
            service.stop()

    print("\ndone.")


if __name__ == "__main__":
    main()
