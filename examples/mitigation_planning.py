#!/usr/bin/env python3
"""Mitigation planning walkthrough: from MPMCS to an action plan.

The MPMCS of the Fig. 1 Fire Protection System is ``{x1, x2}`` — both fire
sensors failing.  This script shows how :mod:`repro.scenarios` turns that
diagnosis into decisions:

1. a tornado-style ranking of candidate hardening actions (one at a time);
2. a 200-scenario what-if sweep over the probability of sensor ``x1``,
   evaluated incrementally — the cut-set structure is enumerated once and
   reused by every scenario (watch the subtree cache counters);
3. structural what-ifs: a redundant sensor and a decommissioned attack
   vector, applied non-destructively;
4. budgeted mitigation planning — the greedy cost-effectiveness baseline
   against the exact MaxSAT planner, which re-encodes budgeted MPMCS
   minimisation over the library's solver portfolio.

Run it with::

    python examples/mitigation_planning.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import AnalysisSession, fire_protection_system
from repro.reporting import render_scenario_report
from repro.scenarios import (
    AddRedundancy,
    HardeningAction,
    RemoveEvent,
    Scenario,
    SweepExecutor,
    plan_mitigation,
    probability_sweep,
    rank_actions,
)


def main() -> int:
    tree = fire_protection_system()
    session = AnalysisSession()

    base = session.analyze(tree, ["mpmcs", "top_event"], backend="mocus")
    print("Base model:")
    print(f"  MPMCS  = {{{', '.join(base.mpmcs.events)}}}  p = {base.mpmcs.probability:.6g}")
    print(f"  P(top) = {base.top_event.best_estimate:.6e}")

    # ------------------------------------------------- 1. what helps the most?
    actions = [
        HardeningAction("x1", cost=2.0),   # better smoke sensor
        HardeningAction("x2", cost=2.0),   # better heat sensor
        HardeningAction("x4", cost=1.0),   # nozzle inspection schedule
        HardeningAction("x5", cost=1.0),   # automatic-trigger self test
        HardeningAction("x7", cost=3.0),   # DDoS protection for the channel
    ]
    print("\nTornado ranking (each action alone, 10x hardening):")
    for impact in rank_actions(tree, actions):
        print(
            f"  {impact.action.event}: P(top) {impact.top_event_before:.4e} -> "
            f"{impact.top_event_after:.4e}   (reduction/cost {impact.reduction_per_cost:.4e})"
        )

    # ------------------------------------ 2. a 200-point incremental sweep
    executor = SweepExecutor(session)
    sweep = executor.run(
        tree, probability_sweep("x1", start=1e-4, stop=0.5, steps=200)
    )
    reuse = sweep.subtree_reuse
    print(f"\n200-scenario sweep over p(x1) in {sweep.total_time_s:.3f}s "
          f"(subtree cache: {reuse['hits']} hits / {reuse['misses']} misses):")
    crossover = next(
        (outcome for outcome in sweep.outcomes if not outcome.mpmcs_changed), None
    )
    if crossover is not None:
        print(f"  the MPMCS stops being displaced at {crossover.name} — below that, "
              "hardening x1 has handed the weakest-link role to {x5, x6}")

    # --------------------------------------------- 3. structural what-ifs
    structural = executor.run(
        tree,
        [
            Scenario("redundant-sensor", [AddRedundancy("x1")]),
            Scenario("no-ddos-vector", [RemoveEvent("x7")]),
            Scenario("both", [AddRedundancy("x1"), RemoveEvent("x7")]),
        ],
    )
    print("\nStructural scenarios:")
    print(render_scenario_report(structural, "markdown"))

    # --------------------------------------------- 4. budgeted planning
    print("\nBudgeted mitigation planning (budget = 3.0):")
    for method in ("greedy", "exact"):
        plan = plan_mitigation(tree, actions, budget=3.0, method=method,
                               cache=session.artifacts)
        chosen = ", ".join(plan.events) or "(nothing)"
        print(f"  {method:<6}: harden {{{chosen}}}  cost {plan.total_cost:g}  "
              f"MPMCS {plan.base_mpmcs_probability:.4g} -> {plan.new_mpmcs_probability:.4g}  "
              f"P(top) {plan.base_top_event:.4e} -> {plan.new_top_event:.4e}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
