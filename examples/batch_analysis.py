#!/usr/bin/env python3
"""Batch analysis: sweep every canonical tree through the unified facade.

Demonstrates the throughput layer of :mod:`repro.api`:

* ``analyze_many(trees, workers=N)`` fans a composite request (MPMCS +
  top-event probability) out over a process pool;
* the sequential path shares one session — and hence one artifact cache —
  across all trees, so repeated structures are only analysed once;
* failures are captured per tree instead of aborting the sweep.

Run it with::

    python examples/batch_analysis.py
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import analyze_many
from repro.workloads.library import NAMED_TREES


def main() -> int:
    # One tree per canonical factory (the registry maps aliases to the same
    # factory; dict.fromkeys deduplicates while keeping a stable order).
    factories = list(dict.fromkeys(NAMED_TREES.values()))
    trees = [factory() for factory in factories]
    print(f"analysing {len(trees)} canonical trees (MPMCS + exact top-event)...\n")

    start = time.perf_counter()
    result = analyze_many(trees, analyses=["mpmcs", "top_event"], workers=4)
    elapsed = time.perf_counter() - start
    result.raise_on_failure()

    header = f"{'tree':<32s} {'MPMCS':<42s} {'p(MPMCS)':>10s} {'P(top)':>12s}"
    print(header)
    print("-" * len(header))
    for report in result.reports:
        members = "{" + ", ".join(report.mpmcs.events) + "}"
        print(
            f"{report.tree_name:<32s} {members:<42s} "
            f"{report.mpmcs.probability:>10.3e} {report.top_event.exact:>12.4e}"
        )

    print(f"\n{result.num_ok}/{len(result)} trees analysed in {elapsed:.2f}s "
          f"(process pool, 4 workers)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
