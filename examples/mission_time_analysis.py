"""Mission-time reliability analysis: how the MPMCS changes as components age.

The paper's Table I assigns fixed probabilities to the basic events.  In a
real fire-protection system those probabilities come from component models
evaluated at a mission time: sensors and communication channels degrade, the
water supply is a repairable utility, and the cyber-attack likelihood is a
demand probability that does not depend on time at all.

This example assigns such models to the Fig. 1 tree and then asks, with the
MaxSAT pipeline at every grid point, *which* minimal cut set dominates the
risk as the mission progresses — including the exact times at which the
identity of the MPMCS changes.

Run with:  python examples/mission_time_analysis.py
"""

from repro.reliability import (
    ExponentialFailure,
    FixedProbability,
    ReliabilityAssignment,
    RepairableComponent,
    birnbaum_importance_over_time,
    mpmcs_crossovers,
    mpmcs_over_time,
    time_grid,
    top_event_curve,
)
from repro.workloads.library import fire_protection_system


def main() -> None:
    tree = fire_protection_system()
    assignment = ReliabilityAssignment(tree)

    # Detection sensors wear out; the communication channel degrades faster.
    assignment.assign("x1", ExponentialFailure(2e-4))   # sensor 1
    assignment.assign("x2", ExponentialFailure(1e-4))   # sensor 2
    assignment.assign("x6", ExponentialFailure(5e-4))   # communication channel
    # The water supply is repairable; nozzle blockage stays a fixed demand
    # probability; the automatic trigger and the DDoS likelihood are demands.
    assignment.assign("x3", RepairableComponent(failure_rate=1e-5, repair_rate=1e-2))
    assignment.assign("x4", FixedProbability(0.002))
    assignment.assign("x5", FixedProbability(0.05))
    assignment.assign("x7", FixedProbability(0.05))

    times = time_grid(1.0, 20_000.0, 12, spacing="log")

    print("=== Top-event probability over mission time ===")
    curve = top_event_curve(assignment, times)
    for point in curve.points:
        print(f"  t = {point.time:10.1f} h   P(top) = {point.value:.5f}")

    print("\n=== MPMCS over mission time (MaxSAT pipeline at every grid point) ===")
    samples = mpmcs_over_time(assignment, times)
    for sample in samples:
        members = ", ".join(sample.events)
        print(f"  t = {sample.time:10.1f} h   MPMCS = {{{members}}}   p = {sample.probability:.5f}")

    crossovers = mpmcs_crossovers(samples)
    if crossovers:
        print("\n=== MPMCS identity crossovers ===")
        for before, after in crossovers:
            print(
                f"  between t = {before.time:.0f} h and t = {after.time:.0f} h: "
                f"{{{', '.join(before.events)}}} -> {{{', '.join(after.events)}}}"
            )
    else:
        print("\nNo crossover: a single cut set dominates over the whole mission.")

    print("\n=== Birnbaum importance of the aging components over time ===")
    curves = birnbaum_importance_over_time(assignment, (100.0, 5000.0, 20000.0),
                                           events=("x1", "x2", "x6"))
    for event, points in curves.items():
        values = "  ".join(f"t={point.time:>7.0f}h: {point.value:.4f}" for point in points)
        print(f"  {event}: {values}")


if __name__ == "__main__":
    main()
