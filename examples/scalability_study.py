#!/usr/bin/env python3
"""Scalability study: regenerate the paper's "thousands of nodes in seconds" claim.

The script sweeps random fault trees of increasing size through the MaxSAT
pipeline, comparing the individual MaxSAT engines, the parallel portfolio and
the classical baselines (MOCUS enumeration, BDD), and prints a compact
table — the same data the benchmark harness measures (experiments E4–E6), in
a form convenient for quick interactive exploration.

Run it with::

    python examples/scalability_study.py            # default sweep
    python examples/scalability_study.py 200 800    # custom sizes
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import MPMCSSolver, random_fault_tree
from repro.analysis.mocus import mocus_mpmcs
from repro.bdd.probability import bdd_mpmcs
from repro.exceptions import AnalysisError
from repro.maxsat import FuMalikEngine, LinearSearchEngine, RC2Engine

DEFAULT_SIZES = [100, 300, 1000, 2000]
MOCUS_BUDGET = 50_000
BDD_LIMIT = 600


def timed(function, *args, **kwargs):
    start = time.perf_counter()
    try:
        value = function(*args, **kwargs)
        return value, time.perf_counter() - start, "ok"
    except (AnalysisError, RecursionError, MemoryError) as exc:
        return None, time.perf_counter() - start, f"failed ({type(exc).__name__})"


def main(argv) -> int:
    sizes = [int(arg) for arg in argv[1:]] or DEFAULT_SIZES
    print(f"{'events':>7} {'nodes':>7} {'|MPMCS|':>8} {'P(MPMCS)':>11} "
          f"{'rc2':>8} {'portfolio':>10} {'fu-malik':>9} {'linear':>8} {'mocus':>10} {'bdd':>10}")

    for size in sizes:
        tree = random_fault_tree(num_basic_events=size, seed=42, event_reuse=0.05)

        rc2_result, rc2_time, _ = timed(MPMCSSolver(single_engine=RC2Engine()).solve, tree)
        portfolio_result, portfolio_time, _ = timed(MPMCSSolver().solve, tree)
        _, fumalik_time, fumalik_status = timed(
            MPMCSSolver(single_engine=FuMalikEngine()).solve, tree
        )
        _, linear_time, linear_status = timed(
            MPMCSSolver(single_engine=LinearSearchEngine()).solve, tree
        )
        _, mocus_time, mocus_status = timed(mocus_mpmcs, tree, max_candidates=MOCUS_BUDGET)
        if size <= BDD_LIMIT:
            _, bdd_time, bdd_status = timed(bdd_mpmcs, tree)
        else:
            bdd_time, bdd_status = 0.0, "skipped"

        def cell(elapsed, status="ok"):
            return f"{elapsed:7.2f}s" if status == "ok" else f"{status[:9]:>9}"

        assert rc2_result is not None and portfolio_result is not None
        print(
            f"{size:>7} {tree.num_nodes:>7} {rc2_result.size:>8} "
            f"{rc2_result.probability:>11.3e} "
            f"{cell(rc2_time):>8} {cell(portfolio_time):>10} "
            f"{cell(fumalik_time, fumalik_status):>9} {cell(linear_time, linear_status):>8} "
            f"{cell(mocus_time, mocus_status):>10} {cell(bdd_time, bdd_status):>10}"
        )

    print("\nReading the table: the MaxSAT pipeline (rc2 / portfolio) stays in the "
          "seconds range at thousands of nodes, while exhaustive enumeration (mocus) "
          "hits its candidate budget — the gap the paper's formulation closes.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
