"""Running mpmcs4fta as a service: submit, poll and fetch over HTTP.

This demo starts the analysis service in-process on an ephemeral port (the
same thing ``repro serve`` does in a terminal), then talks to it purely over
HTTP/JSON:

1. submit the paper's Fig. 1 fire-protection tree for a composite analysis
   and fetch the finished :class:`AnalysisReport` as JSON;
2. rebuild a live report object client-side with
   :meth:`AnalysisReport.from_dict` (the round-trip the service transport
   relies on);
3. submit a 50-scenario probability sweep as a single job, partitioned over
   worker processes with artifacts shared through the persistent disk store;
4. show the store surviving the "restart": a second, freshly started service
   over the same store directory answers with nonzero artifact hits.

Run from the repository root:

.. code-block:: console

    $ PYTHONPATH=src python examples/service_demo.py
"""

import tempfile

from repro.api import AnalysisReport
from repro.service import AnalysisService, ServiceClient, serve
from repro.workloads.library import fire_protection_system


def start(store_path: str) -> "tuple[AnalysisService, object, ServiceClient]":
    """One service + HTTP server on an ephemeral port, plus a client for it."""
    service = AnalysisService(store_path=store_path, workers=2)
    server = serve(service, host="127.0.0.1", port=0)
    client = ServiceClient(f"http://127.0.0.1:{server.server_port}", timeout=300.0)
    print(f"service listening on http://127.0.0.1:{server.server_port} "
          f"(store: {store_path})")
    return service, server, client


def main() -> None:
    tree = fire_protection_system()

    with tempfile.TemporaryDirectory(prefix="repro-store-") as store_path:
        service, server, client = start(store_path)

        # -- 1. single-tree analysis over HTTP --------------------------------
        job = client.submit_analyze(
            tree, analyses=["mpmcs", "ranking", "top_event", "importance"], top_k=3
        )
        print(f"\nsubmitted {job['id']} (analyze); polling ...")
        done = client.wait(job["id"])
        report_dict = done["result"]["report"]
        print(f"  MPMCS       : {set(report_dict['mpmcs']['events'])} "
              f"p={report_dict['mpmcs']['probability']:g}")
        print(f"  P(top) exact: {report_dict['top_event']['exact']:.9f}")

        # -- 2. client-side report reconstruction -----------------------------
        report = AnalysisReport.from_dict(report_dict, tree=tree)
        assert report.mpmcs.events == ("x1", "x2")          # the paper's answer
        assert report.to_dict() == report_dict              # lossless transport
        print("  reconstructed AnalysisReport matches the wire form")

        # -- 3. a 50-scenario sweep, fanned over worker processes -------------
        sweep_job = client.submit_sweep(
            tree,
            {"family": "probability_sweep", "event": "x1",
             "start": 1e-4, "stop": 0.5, "steps": 50},
            workers=4,
        )
        print(f"\nsubmitted {sweep_job['id']} (sweep, 50 scenarios, 4 workers); polling ...")
        sweep_done = client.wait(sweep_job["id"])
        sweep = sweep_done["result"]["report"]
        best = min(
            (s for s in sweep["scenarios"] if s.get("top_event") is not None),
            key=lambda s: s["top_event"],
        )
        print(f"  base P(top)   : {sweep['base']['top_event']:.6e}")
        print(f"  best scenario : {best['name']}  P(top)={best['top_event']:.6e}")
        print(f"  store hits    : {sweep['cache'].get('store_hits', 0)} "
              "(workers reusing each other's artifacts)")

        server.shutdown()
        server.server_close()
        service.stop()

        # -- 4. restart onto the same store: the artifacts survive ------------
        service, server, client = start(store_path)
        job = client.submit_analyze(tree, analyses=["mpmcs", "top_event"])
        client.wait(job["id"])
        store_stats = client.health()["store"]
        print(f"\nafter restart: {store_stats['entries']} persisted artifacts, "
              f"{store_stats['load_hits']} served to the fresh process")
        assert store_stats["load_hits"] > 0, "warm store must serve the restart"

        server.shutdown()
        server.server_close()
        service.stop()
        print("\ndone.")


if __name__ == "__main__":
    main()
