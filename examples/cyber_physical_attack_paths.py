#!/usr/bin/env python3
"""Cyber-physical attack/failure analysis of a water distribution SCADA system.

The paper (and the authors' companion work on security-critical components in
industrial control systems) stresses that fault trees can mix *physical*
failures with *cyber* events such as communication failures and DDoS attacks
— exactly like event x7 in the Fig. 1 example.  This example models a water
distribution network whose service can be disrupted either by physical
component failures or by attacks on its SCADA layer, then uses the library to
answer the questions a security analyst would ask:

1. What is the most probable combined cyber-physical failure scenario (MPMCS)?
2. How does it change if the attacker pressure increases (probability sweep on
   the cyber events)?
3. Which minimal cut sets are purely cyber, purely physical, or mixed?
4. How do the files exchanged with other tools look (Galileo and DOT exports)?

Run it with::

    python examples/cyber_physical_attack_paths.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import FaultTreeBuilder, MPMCSSolver, enumerate_mpmcs
from repro.fta.serializers import to_galileo
from repro.reporting.dot import to_dot

#: Basic events tagged as cyber (attack-related) rather than physical.
CYBER_EVENTS = {
    "scada_server_compromise",
    "plc_firmware_tampering",
    "ddos_on_telemetry",
    "gps_time_spoofing",
    "stolen_vpn_credentials",
}


def build_water_network_tree():
    builder = FaultTreeBuilder("water-distribution-disruption")

    # Physical failures -----------------------------------------------------------
    builder.basic_event("pump_station_failure", 3e-3, description="Main pump station trips")
    builder.basic_event("backup_pump_failure", 8e-3, description="Backup pump unavailable")
    builder.basic_event("pipeline_burst", 1e-3, description="Trunk pipeline burst")
    builder.basic_event("reservoir_low", 2e-3, description="Reservoir below service level")
    builder.basic_event("valve_actuator_stuck", 4e-3, description="Motorised valve stuck")
    builder.basic_event("pressure_sensor_drift", 6e-3, description="Pressure sensor drifts")

    # Cyber events ------------------------------------------------------------------
    builder.basic_event("scada_server_compromise", 2e-3, description="SCADA server compromised")
    builder.basic_event("plc_firmware_tampering", 5e-4, description="PLC firmware tampered")
    builder.basic_event("ddos_on_telemetry", 8e-3, description="DDoS on telemetry links")
    builder.basic_event("gps_time_spoofing", 1e-3, description="Time sync spoofed")
    builder.basic_event("stolen_vpn_credentials", 4e-3, description="VPN credentials stolen")

    # Water supply fails if pumping fails or the trunk line / reservoir fail.
    builder.and_gate("pumping_failure", ["pump_station_failure", "backup_pump_failure"])
    builder.or_gate("hydraulic_failure", ["pumping_failure", "pipeline_burst", "reservoir_low"])

    # Control fails if operators lose visibility AND actuation misbehaves.
    builder.or_gate(
        "telemetry_loss", ["ddos_on_telemetry", "gps_time_spoofing", "pressure_sensor_drift"]
    )
    builder.or_gate(
        "remote_control_hijack",
        ["scada_server_compromise", "stolen_vpn_credentials", "plc_firmware_tampering"],
    )
    builder.or_gate("actuation_failure", ["valve_actuator_stuck", "remote_control_hijack"])
    builder.and_gate("control_failure", ["telemetry_loss", "actuation_failure"])

    builder.or_gate("service_disruption", ["hydraulic_failure", "control_failure"])
    builder.top("service_disruption")
    return builder.build()


def classify(cut_set) -> str:
    members = set(cut_set)
    if members <= CYBER_EVENTS:
        return "cyber"
    if members & CYBER_EVENTS:
        return "mixed"
    return "physical"


def main() -> int:
    tree = build_water_network_tree()
    solver = MPMCSSolver()

    # 1. Baseline MPMCS ------------------------------------------------------------
    baseline = solver.solve(tree)
    print("Baseline most probable disruption scenario:")
    print(f"  {{{', '.join(baseline.events)}}}  p={baseline.probability:.3e} "
          f"[{classify(baseline.events)}]\n")

    # 2. Attack-pressure sweep: scale the cyber event probabilities ------------------
    print("Attack-pressure sweep (cyber probabilities scaled by a factor):")
    print(f"  {'factor':>6} | {'MPMCS':<60} | class")
    for factor in (1, 3, 10, 30):
        scenario = tree.copy(name=f"attack-x{factor}")
        for name in CYBER_EVENTS:
            scenario.set_probability(name, min(0.99, tree.probability(name) * factor))
        result = solver.solve(scenario)
        members = ", ".join(result.events)
        print(f"  {factor:>6} | {members:<60} | {classify(result.events)}"
              f"  (p={result.probability:.2e})")
    print()

    # 3. Classify the top minimal cut sets ------------------------------------------
    print("Top-8 minimal cut sets and their nature:")
    counts = {"cyber": 0, "physical": 0, "mixed": 0}
    for entry in enumerate_mpmcs(tree, 8):
        kind = classify(entry.events)
        counts[kind] += 1
        print(f"  #{entry.rank}: p={entry.probability:9.3e} [{kind:8s}] "
              f"{{{', '.join(entry.events)}}}")
    print(f"  summary: {counts}\n")

    # 4. Interoperability exports -----------------------------------------------------
    out_dir = Path(__file__).resolve().parent
    galileo_path = out_dir / "water_network.dft"
    dot_path = out_dir / "water_network.dot"
    galileo_path.write_text(to_galileo(tree), encoding="utf-8")
    dot_path.write_text(to_dot(tree, highlight=baseline.events), encoding="utf-8")
    print(f"Galileo model written to {galileo_path}")
    print(f"Graphviz rendering (MPMCS highlighted) written to {dot_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
