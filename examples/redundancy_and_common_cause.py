#!/usr/bin/env python3
"""Redundancy, common cause failures and result robustness.

Safety architectures rely on redundancy (parallel trains, 2-of-3 voting), but
redundancy is undermined by *common cause failures* (CCF) — shared root causes
that take out several redundant components at once.  This example shows how
the MPMCS shifts when CCF is modelled, and how robust the conclusions are to
probability uncertainty:

1. build an emergency core-cooling style system with two redundant trains and
   a 2-of-3 instrumentation voting gate;
2. compute the MPMCS and minimal path sets of the nominal model;
3. apply the beta-factor CCF model to the redundant groups and observe the
   MPMCS collapse onto the common-cause events;
4. quantify the robustness of that conclusion with the MPMCS stability
   analysis and a tornado sensitivity study;
5. cross-check the top-event probability with the exact BDD value and a Monte
   Carlo estimate.

Run it with::

    python examples/redundancy_and_common_cause.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import FaultTreeBuilder, MPMCSSolver
from repro.analysis.montecarlo import estimate_top_event_probability
from repro.analysis.pathsets import minimal_path_sets, most_probable_path_set
from repro.analysis.sensitivity import mpmcs_stability, tornado_analysis
from repro.bdd.probability import top_event_probability
from repro.fta.ccf import CCFGroup, apply_beta_factor_model


def build_cooling_system():
    """Loss of emergency cooling: two redundant trains + voted actuation."""
    builder = FaultTreeBuilder("loss-of-emergency-cooling")

    for train in ("a", "b"):
        builder.basic_event(f"pump_{train}", 5e-3, description=f"Train {train} pump fails")
        builder.basic_event(f"valve_{train}", 2e-3, description=f"Train {train} valve stuck")
        builder.basic_event(
            f"heat_exchanger_{train}", 1e-3, description=f"Train {train} heat exchanger fouled"
        )
        builder.or_gate(
            f"train_{train}_fails", [f"pump_{train}", f"valve_{train}", f"heat_exchanger_{train}"]
        )
    builder.and_gate("both_trains_fail", ["train_a_fails", "train_b_fails"])

    for index in (1, 2, 3):
        builder.basic_event(
            f"level_sensor_{index}", 8e-3, description=f"Level sensor {index} fails"
        )
    builder.voting_gate(
        "instrumentation_fails", 2, ["level_sensor_1", "level_sensor_2", "level_sensor_3"]
    )
    builder.basic_event("actuation_logic", 5e-4, description="Actuation logic fails")
    builder.or_gate("no_actuation", ["instrumentation_fails", "actuation_logic"])

    builder.or_gate("loss_of_cooling", ["both_trains_fail", "no_actuation"])
    builder.top("loss_of_cooling")
    return builder.build()


def main() -> int:
    tree = build_cooling_system()
    solver = MPMCSSolver()

    # 1. Nominal analysis -----------------------------------------------------------
    nominal = solver.solve(tree)
    print("Nominal model (no common cause failures):")
    print(f"  MPMCS            = {{{', '.join(nominal.events)}}}  p={nominal.probability:.3e}")
    print(f"  exact P(top)     = {top_event_probability(tree):.3e}")
    best_path, best_path_probability = most_probable_path_set(tree)
    print(f"  best path set    = {{{', '.join(best_path)}}} "
          f"(stays failure-free with p={best_path_probability:.4f})")
    print(f"  #minimal path sets = {len(minimal_path_sets(tree))}\n")

    # 2. Add common cause failure groups ----------------------------------------------
    groups = [
        CCFGroup("pumps", ["pump_a", "pump_b"], beta=0.08),
        CCFGroup("sensors", ["level_sensor_1", "level_sensor_2", "level_sensor_3"], beta=0.10),
    ]
    ccf_tree = apply_beta_factor_model(tree, groups)
    with_ccf = solver.solve(ccf_tree)
    print("With beta-factor common cause failures (beta: pumps 8%, sensors 10%):")
    print(f"  MPMCS            = {{{', '.join(with_ccf.events)}}}  p={with_ccf.probability:.3e}")
    print(f"  exact P(top)     = {top_event_probability(ccf_tree):.3e} "
          f"(was {top_event_probability(tree):.3e})\n")

    # 3. Robustness of the conclusion --------------------------------------------------
    stability = mpmcs_stability(ccf_tree, samples=30, error_factor=3.0, seed=7)
    print(f"MPMCS stability under a 3x probability uncertainty "
          f"({stability.samples} perturbed models):")
    for events, win_rate in stability.ranked()[:3]:
        print(f"  {win_rate:6.1%}  {{{', '.join(events)}}}")
    print()

    tornado = tornado_analysis(ccf_tree, factor=5.0)[:5]
    print("Tornado analysis (P(top) swing when one probability moves by 5x):")
    for entry in tornado:
        print(f"  {entry.event:28s} swing={entry.swing:.3e} "
              f"[{entry.low_top_probability:.3e} .. {entry.high_top_probability:.3e}]")
    print()

    # 4. Monte Carlo cross-check ---------------------------------------------------------
    estimate = estimate_top_event_probability(ccf_tree, samples=50_000, seed=11)
    exact = top_event_probability(ccf_tree)
    print(f"Monte Carlo cross-check: {estimate.probability:.3e} "
          f"[95% CI {estimate.confidence_low:.3e} .. {estimate.confidence_high:.3e}] "
          f"vs exact {exact:.3e}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
