#!/usr/bin/env python3
"""Quickstart: reproduce the paper's worked example through the unified API.

This script builds the cyber-physical Fire Protection System of Fig. 1,
prints the Table I probability/weight table, and runs one composite
:class:`repro.AnalysisSession` request — MPMCS, top-k ranking, top-event
probability and importance measures in a single call that computes shared
artifacts (CNF encoding, minimal cut sets, BDD) exactly once.  It then shows
the same MPMCS coming back from every registered backend (the paper's MaxSAT
pipeline and the classical MOCUS/BDD/brute-force baselines) and writes the
JSON report the MPMCS4FTA tool would produce (Fig. 2).

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import AnalysisSession, available_backends, fire_protection_system
from repro.reporting import render_report, write_report
from repro.reporting.tables import weights_table


def main() -> int:
    # ------------------------------------------------------------------ model
    tree = fire_protection_system()

    # ----------------------------------------------------- the unified facade
    session = AnalysisSession()
    report = session.analyze(
        tree,
        analyses=["mpmcs", "ranking", "top_event", "importance", "spof"],
        top_k=5,
    )

    print("Fault tree (paper Fig. 1), MPMCS highlighted:\n")
    print(render_report(report, "ascii"))

    # --------------------------------------------------- Step 3: -log weights
    print("\nProbabilities and -log weights (paper Table I):\n")
    print(weights_table(tree))

    # ------------------------------------------------------------ the answers
    summary = report.mpmcs
    print("\nMaximum Probability Minimal Cut Set (paper Section II):")
    print(f"  MPMCS       = {{{', '.join(summary.events)}}}")
    print(f"  probability = {summary.probability:.6g}   (paper: 0.02)")
    print(f"  -log cost   = {summary.cost:.5f}")
    print(f"  engine      = {summary.engine} ({summary.solve_time * 1000:.1f} ms)")

    print("\nAll minimal cut sets ranked by probability:")
    for entry in report.ranking:
        print(f"  #{entry.rank}: {{{', '.join(entry.events)}}}  p = {entry.probability:.6g}")

    print(f"\nExact top-event probability (BDD): {report.top_event.exact:.6e}")
    print("Importance (Fussell-Vesely):")
    for name, measure in sorted(
        report.importance.items(), key=lambda item: -item[1].fussell_vesely
    )[:3]:
        print(f"  {name:<4s} {measure.fussell_vesely:.4f}")

    # ------------------------------------- every backend, one facade, one answer
    print("\nCross-backend agreement (the registry):")
    for name in sorted(available_backends()):
        capabilities = available_backends()[name].capabilities()
        if "mpmcs" not in capabilities:
            continue
        check = AnalysisSession().analyze(tree, ["mpmcs"], backend=name)
        print(f"  {name:<12s} -> {{{', '.join(check.mpmcs.events)}}} "
              f"p = {check.mpmcs.probability:.6g}")

    # The session cached the expensive intermediates: composite requests
    # compute the CNF encoding / cut sets / BDD once.
    print(f"\nArtifact cache: {session.cache_info()}")

    # ------------------------------------------------- Fig. 2 style JSON output
    report_path = Path(__file__).resolve().parent / "fps_report.json"
    write_report(report, report_path)
    print(f"JSON report (Fig. 2 equivalent) written to {report_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
