#!/usr/bin/env python3
"""Quickstart: reproduce the paper's worked example end to end.

This script builds the cyber-physical Fire Protection System of Fig. 1,
prints the Table I probability/weight table, runs the six-step MaxSAT
pipeline, and shows the Maximum Probability Minimal Cut Set — {x1, x2} with a
joint probability of 0.02 — together with the runner-up cut sets and the JSON
report the MPMCS4FTA tool would write (Fig. 2).

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import MPMCSSolver, enumerate_mpmcs, fire_protection_system
from repro.reporting.ascii_art import render_tree
from repro.reporting.json_report import analysis_report
from repro.reporting.tables import weights_table


def main() -> int:
    # ------------------------------------------------------------------ model
    tree = fire_protection_system()
    print("Fault tree (paper Fig. 1):\n")
    print(render_tree(tree))

    # --------------------------------------------------- Step 3: -log weights
    print("\nProbabilities and -log weights (paper Table I):\n")
    print(weights_table(tree))

    # --------------------------------------------- Steps 1-6: MPMCS pipeline
    solver = MPMCSSolver()  # default: parallel portfolio of MaxSAT engines
    result = solver.solve(tree)

    print("\nMaximum Probability Minimal Cut Set (paper Section II):")
    print(f"  MPMCS       = {{{', '.join(result.events)}}}")
    print(f"  probability = {result.probability:.6g}   (paper: 0.02)")
    print(f"  -log cost   = {result.cost:.5f}")
    print(f"  engine      = {result.engine} ({result.solve_time * 1000:.1f} ms)")

    # ------------------------------------------------------- top-k extension
    print("\nAll minimal cut sets ranked by probability:")
    for entry in enumerate_mpmcs(tree, 5):
        print(f"  #{entry.rank}: {{{', '.join(entry.events)}}}  p = {entry.probability:.6g}")

    # ------------------------------------------------- Fig. 2 style JSON output
    report_path = Path(__file__).resolve().parent / "fps_report.json"
    report_path.write_text(json.dumps(analysis_report(tree, result), indent=2), encoding="utf-8")
    print(f"\nJSON report (Fig. 2 equivalent) written to {report_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
