#!/usr/bin/env python3
"""Industrial risk assessment: rank failure scenarios of a chemical plant unit.

The paper motivates MPMCS as a measure for "decision making, risk assessment
and fault prioritisation" in high-hazard industries.  This example plays that
scenario out on a richer model than the quickstart: a pressurised reactor
protected by layered safety systems (relief valves, an automated shutdown
system with 2-of-3 sensor voting, operator intervention, and a cyber-attack
surface on the control network).

The analysis combines several library features:

* the MPMCS and the top-10 most probable minimal cut sets (MaxSAT pipeline),
* the exact top-event probability from the BDD engine,
* classical importance measures to rank individual components,
* a what-if study: how the MPMCS shifts after hardening the dominant component.

Run it with::

    python examples/industrial_risk_assessment.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import FaultTreeBuilder, MPMCSSolver, enumerate_mpmcs
from repro.analysis.importance import importance_measures
from repro.analysis.mocus import mocus_minimal_cut_sets
from repro.analysis.spof import single_points_of_failure
from repro.bdd.probability import top_event_probability
from repro.reporting.tables import markdown_table


def build_reactor_tree():
    """A loss-of-containment fault tree for a pressurised reactor unit."""
    builder = FaultTreeBuilder("reactor-loss-of-containment")

    # Physical layer ------------------------------------------------------------
    builder.basic_event("vessel_rupture", 1e-9, description="Spontaneous vessel rupture")
    builder.basic_event("relief_valve_a", 5e-2, description="Relief valve A stuck closed")
    builder.basic_event("relief_valve_b", 5e-2, description="Relief valve B stuck closed")
    builder.basic_event("runaway_reaction", 1e-2, description="Exothermic runaway reaction")
    builder.basic_event("cooling_pump_failure", 5e-2, description="Cooling pump trips")
    builder.basic_event("cooling_line_blockage", 5e-3, description="Cooling line blocked")

    # Automated shutdown system (2-of-3 temperature sensors + logic solver) ------
    for index in (1, 2, 3):
        builder.basic_event(
            f"temp_sensor_{index}", 2e-2, description=f"Temperature sensor {index} fails"
        )
    builder.basic_event("logic_solver", 1e-3, description="Shutdown logic solver fails")
    builder.basic_event("shutdown_valve", 2e-2, description="Shutdown valve fails to close")

    # Human + cyber layer ---------------------------------------------------------
    builder.basic_event("operator_misdiagnosis", 0.1, description="Operator misreads alarm flood")
    builder.basic_event("alarm_system_failure", 2e-2, description="Alarm system fails")
    builder.basic_event("scada_compromise", 5e-3, description="SCADA network compromised")
    builder.basic_event("historian_spoofing", 2e-3, description="Process historian spoofed")

    # Gates -----------------------------------------------------------------------
    builder.or_gate("cooling_failure", ["cooling_pump_failure", "cooling_line_blockage"])
    builder.or_gate("overpressure_demand", ["runaway_reaction", "cooling_failure"])
    builder.and_gate("relief_system_failure", ["relief_valve_a", "relief_valve_b"])
    builder.voting_gate(
        "sensor_voting_failure", 2, ["temp_sensor_1", "temp_sensor_2", "temp_sensor_3"]
    )
    builder.or_gate(
        "automatic_shutdown_failure",
        ["sensor_voting_failure", "logic_solver", "shutdown_valve"],
    )
    builder.or_gate("operator_response_failure", ["operator_misdiagnosis", "alarm_system_failure"])
    builder.or_gate("cyber_induced_blindness", ["scada_compromise", "historian_spoofing"])
    builder.or_gate(
        "manual_shutdown_failure", ["operator_response_failure", "cyber_induced_blindness"]
    )
    builder.and_gate(
        "protection_layers_fail",
        ["relief_system_failure", "automatic_shutdown_failure", "manual_shutdown_failure"],
    )
    builder.and_gate("uncontrolled_overpressure", ["overpressure_demand", "protection_layers_fail"])
    builder.or_gate("loss_of_containment", ["vessel_rupture", "uncontrolled_overpressure"])
    builder.top("loss_of_containment")
    return builder.build()


def main() -> int:
    tree = build_reactor_tree()
    print(f"Model: {tree.name} — {tree.num_events} basic events, {tree.num_gates} gates\n")

    # 1. The headline number: the most probable way to lose containment.
    result = MPMCSSolver().solve(tree)
    print("Maximum Probability Minimal Cut Set (dominant accident scenario):")
    for name in result.events:
        event = tree.events[name]
        print(f"  - {name:24s} p={event.probability:<9g} {event.description or ''}")
    print(f"  joint probability = {result.probability:.3e}\n")

    # 2. Exact top-event probability (BDD) vs the dominant scenario.
    p_top = top_event_probability(tree)
    print(f"Exact P(loss of containment)      = {p_top:.3e}")
    print(f"Dominant scenario share of risk   = {result.probability / p_top:.1%}\n")

    # 3. Risk register: the ten most probable minimal cut sets.
    print("Top-10 most probable minimal cut sets (risk register):")
    for entry in enumerate_mpmcs(tree, 10):
        members = ", ".join(entry.events)
        print(f"  #{entry.rank:>2}: p={entry.probability:9.3e}  {{{members}}}")
    print()

    # 4. Single points of failure and component importance ranking.
    spofs = single_points_of_failure(tree)
    print(f"Single points of failure: {[name for name, _ in spofs] or 'none'}\n")

    cut_sets = mocus_minimal_cut_sets(tree)
    measures = importance_measures(tree, cut_sets)
    ranked = sorted(measures.values(), key=lambda m: m.fussell_vesely, reverse=True)[:6]
    print("Component importance (top 6 by Fussell-Vesely):")
    print(
        markdown_table(
            ["component", "p", "Birnbaum", "Fussell-Vesely", "RAW"],
            [
                [m.event, f"{m.probability:g}", f"{m.birnbaum:.3e}", f"{m.fussell_vesely:.3f}",
                 f"{m.risk_achievement_worth:.1f}"]
                for m in ranked
            ],
        )
    )
    print()

    # 5. What-if: harden the most critical component and re-run the analysis.
    dominant = ranked[0].event
    hardened = tree.copy(name="reactor-hardened")
    hardened.set_probability(dominant, tree.probability(dominant) / 10)
    hardened_result = MPMCSSolver().solve(hardened)
    print(f"What-if: reduce p({dominant}) by 10x")
    print(f"  new MPMCS       = {{{', '.join(hardened_result.events)}}}")
    print(f"  new probability = {hardened_result.probability:.3e} "
          f"(was {result.probability:.3e})")
    print(f"  new exact P(top) = {top_event_probability(hardened):.3e} (was {p_top:.3e})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
