#!/usr/bin/env python3
"""Observability walkthrough: traces, metrics, and the structured event log.

The library is silent by default — every instrument is a shared no-op until
something opts in.  This script opts in on all three axes:

1. installs a :class:`~repro.observability.trace.Tracer` and runs a traced
   scenario sweep, then prints the nested span tree (campaign -> stage ->
   chunk -> analyze -> backend -> maxsat.solve);
2. enables a process-wide :class:`~repro.observability.metrics.MetricsRegistry`
   and shows the Prometheus text a running service would serve at
   ``GET /metrics``;
3. routes structured JSON events to an in-memory sink and provokes one — a
   corrupt artifact-store entry, dropped with a logged-and-counted event
   instead of a silent ``except``.

Everything asserts its expectations and exits non-zero on failure, so CI can
run it as a smoke test.

Run it with::

    python examples/observability_demo.py
"""

from __future__ import annotations

import sys
from pathlib import Path
from tempfile import TemporaryDirectory

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api.report import AnalysisReport
from repro.api.session import AnalysisSession
from repro.observability import (
    MemoryLogger,
    MetricsRegistry,
    Tracer,
    format_span_tree,
    profile_view,
    set_logger,
    set_metrics,
    use_tracer,
)
from repro.scenarios import SweepExecutor, probability_sweep
from repro.service.store import DiskArtifactStore
from repro.workloads.library import fire_protection_system


def main() -> int:
    tree = fire_protection_system()
    registry = MetricsRegistry()
    set_metrics(registry)
    events = MemoryLogger()
    set_logger(events)

    # ------------------------------------------------------- 1. a traced sweep
    tracer = Tracer()
    with use_tracer(tracer), tracer.span("demo:sweep"):
        report = SweepExecutor().run(
            tree, probability_sweep("x1", [0.001, 0.01, 0.1])
        )
    assert len(report) == 3
    trace = tracer.to_dict()
    print("Span tree of the traced sweep:\n")
    print(format_span_tree(trace))

    # Single analyses attach their trace to the report itself, and the
    # profile is recoverable from the trace alone.
    single_tracer = Tracer()
    with use_tracer(single_tracer):
        single = AnalysisSession().analyze(tree, ["mpmcs", "top_event"])
    assert single.trace is not None and single.trace["name"] == "analyze"
    view = profile_view(single.trace)
    assert view and all(
        view[key] == value
        for key, value in single.profile.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    )
    print("\nprofile recovered from the trace:", {
        key: round(value, 6) for key, value in sorted(view.items())
    })

    # Telemetry never leaks into canonical results.
    canonical = single.to_canonical_dict()
    assert "trace" not in canonical and "profile" not in canonical
    assert AnalysisReport.from_dict(single.to_dict()).trace == single.trace

    # ------------------------------------------------ 2. the metrics registry
    print("\nPrometheus exposition (what GET /metrics serves):\n")
    text = registry.render_prometheus()
    print("\n".join(line for line in text.splitlines() if "repro_" in line) or text)
    assert registry.counter_value("repro_analyses_total") > 0
    assert registry.counter_value("repro_sat_conflicts_total") >= 0

    # -------------------------------------- 3. structured events, not silence
    with TemporaryDirectory() as tmp:
        store = DiskArtifactStore(tmp)
        key = "a" * 64
        store.store(key, "cut-sets", list(range(50)))
        path = store.path_for(key, "cut-sets")
        path.write_bytes(path.read_bytes()[:10])  # torn write
        found, _ = store.load(key, "cut-sets")
        assert not found
    (drop,) = events.matching("corrupt_entry_dropped")
    print("\nstructured drop event:", {
        k: drop[k] for k in ("module", "event", "kind") if k in drop
    })
    assert registry.counter_value(
        "repro_store_dropped_entries_total", reason="corrupt", kind="cut-sets"
    ) == 1

    set_logger(None)
    print("\nobservability demo: all assertions passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
