"""Cross-backend agreement and artifact-cache tests for `AnalysisSession`.

The agreement suite asserts that every registered backend returns the paper's
Fig. 1 answer — MPMCS ``("x1", "x2")`` with joint probability 0.02 — through
the same ``AnalysisSession.analyze`` front door, and the cache tests prove
that composite requests compute the CNF encoding and the minimal cut sets
once per session.
"""

import pytest

import repro.api.backends as backends_module
from repro.api import AnalysisSession, available_backends, backend_capabilities
from repro.api.cache import ARTIFACT_CUT_SETS, ARTIFACT_ENCODING
from repro.exceptions import AnalysisError
from repro.fta.builder import FaultTreeBuilder
from repro.workloads.library import fire_protection_system, redundant_power_supply

MPMCS_BACKENDS = sorted(
    name for name, caps in backend_capabilities().items() if "mpmcs" in caps
)


class TestCrossBackendAgreement:
    @pytest.mark.parametrize("backend", MPMCS_BACKENDS)
    def test_fig1_mpmcs_through_every_backend(self, backend):
        report = AnalysisSession().analyze(
            fire_protection_system(), ["mpmcs"], backend=backend
        )
        assert report.mpmcs.events == ("x1", "x2")
        assert report.mpmcs.probability == pytest.approx(0.02)
        assert report.backends["mpmcs"] == backend

    @pytest.mark.parametrize("backend", MPMCS_BACKENDS)
    def test_voting_gate_tree_agreement(self, backend):
        expected = AnalysisSession().analyze(
            redundant_power_supply(), ["mpmcs"], backend="brute-force"
        )
        report = AnalysisSession().analyze(
            redundant_power_supply(), ["mpmcs"], backend=backend
        )
        assert report.mpmcs.events == expected.mpmcs.events
        assert report.mpmcs.probability == pytest.approx(expected.mpmcs.probability)

    @pytest.mark.parametrize(
        "backend", sorted(n for n, c in backend_capabilities().items() if "mcs" in c)
    )
    def test_cut_set_backends_agree_on_collection(self, backend):
        report = AnalysisSession().analyze(
            fire_protection_system(), ["mcs"], backend=backend
        )
        assert report.cut_sets.to_sorted_tuples() == [
            ("x3",),
            ("x4",),
            ("x1", "x2"),
            ("x5", "x6"),
            ("x5", "x7"),
        ]

    def test_tied_optima_are_canonicalised_across_backends(self):
        # Two cut sets share the maximum probability (0.1 * 0.1 == 0.01); the
        # canonical tie-break (size, then lexicographic order) must make every
        # backend return the same one.
        tree = (
            FaultTreeBuilder("tied")
            .basic_event("a", 0.1)
            .basic_event("b", 0.1)
            .basic_event("c", 0.1)
            .basic_event("d", 0.1)
            .and_gate("left", ["a", "b"])
            .and_gate("right", ["c", "d"])
            .or_gate("top", ["left", "right"])
            .top("top")
            .build()
        )
        answers = {
            backend: AnalysisSession()
            .analyze(tree, ["mpmcs"], backend=backend)
            .mpmcs.events
            for backend in MPMCS_BACKENDS
        }
        assert set(answers.values()) == {("a", "b")}, answers


class TestCompositeRequests:
    def test_acceptance_composite_matches_fig1(self):
        """The ISSUE's acceptance request: one report, paper Fig. 1 values."""
        session = AnalysisSession()
        report = session.analyze(
            fire_protection_system(), analyses=["mpmcs", "top_event", "importance"]
        )
        assert report.mpmcs.events == ("x1", "x2")
        assert report.mpmcs.probability == pytest.approx(0.02)
        assert report.top_event.exact == pytest.approx(0.0300217392, abs=1e-9)
        assert set(report.importance) == {"x1", "x2", "x3", "x4", "x5", "x6", "x7"}
        assert report.importance["x3"].fussell_vesely == pytest.approx(
            0.001 / report.top_event.min_cut_upper_bound, rel=1e-6
        )
        assert set(report.backends) == {"mpmcs", "top_event", "importance"}
        assert len(available_backends()) >= 5

    def test_unknown_analysis_rejected(self):
        with pytest.raises(AnalysisError, match="unknown analysis"):
            AnalysisSession().analyze(fire_protection_system(), ["nonsense"])

    def test_explicit_backend_must_support_all_analyses(self):
        with pytest.raises(AnalysisError, match="does not support"):
            AnalysisSession().analyze(
                fire_protection_system(), ["mpmcs", "modules"], backend="maxsat"
            )

    def test_analysis_aliases_accepted(self):
        report = AnalysisSession().analyze(
            fire_protection_system(), ["topevent", "cut-sets", "truncate"]
        )
        assert report.top_event is not None
        assert report.cut_sets is not None
        assert report.truncation is not None

    def test_monte_carlo_joins_top_event_when_samples_requested(self):
        report = AnalysisSession().analyze(
            fire_protection_system(), ["top_event"], samples=4000, seed=3
        )
        assert report.top_event.monte_carlo is not None
        assert report.top_event.monte_carlo.within(report.top_event.exact)
        assert "monte-carlo" in report.backends["top_event"]

    def test_report_to_dict_is_json_serialisable(self):
        import json

        report = AnalysisSession().analyze(
            fire_protection_system(),
            ["mpmcs", "ranking", "mcs", "top_event", "importance", "spof", "modules"],
        )
        document = json.loads(json.dumps(report.to_dict()))
        assert document["mpmcs"]["events"] == ["x1", "x2"]
        assert document["cut_sets"][0]["events"] == ["x1", "x2"]


class TestDegradedProviders:
    def test_auxiliary_mocus_failure_degrades_instead_of_raising(self, monkeypatch):
        """Auto-routed top_event must survive a MOCUS blow-up when the BDD
        backend already produced the exact probability."""

        def exploding(tree, **kwargs):
            raise AnalysisError("MOCUS exceeded the candidate limit (simulated)")

        monkeypatch.setattr(backends_module, "mocus_minimal_cut_sets", exploding)
        report = AnalysisSession().analyze(fire_protection_system(), ["top_event"])
        assert report.top_event.exact == pytest.approx(0.0300217392, abs=1e-9)
        assert report.top_event.rare_event_bound is None  # the degraded part
        assert report.warnings and "mocus" in report.warnings[0]

    def test_sole_provider_failure_still_raises(self, monkeypatch):
        def exploding(tree, **kwargs):
            raise AnalysisError("MOCUS exceeded the candidate limit (simulated)")

        monkeypatch.setattr(backends_module, "mocus_minimal_cut_sets", exploding)
        with pytest.raises(AnalysisError, match="candidate limit"):
            # importance has no other auto provider than mocus here
            AnalysisSession().analyze(fire_protection_system(), ["top_event", "importance"])


class TestSolveBudget:
    def test_composite_mpmcs_and_ranking_share_one_enumeration(self, monkeypatch):
        from repro.core.pipeline import MPMCSSolver

        calls = []
        real = MPMCSSolver.solve_encoding

        def counting(self, tree, encoding):
            calls.append(1)
            return real(self, tree, encoding)

        monkeypatch.setattr(MPMCSSolver, "solve_encoding", counting)
        report = AnalysisSession().analyze(
            fire_protection_system(), ["mpmcs", "ranking"], top_k=3
        )
        # FPS has distinct probabilities: 3 ranked entries need exactly 3
        # solves; the MPMCS falls out of the same enumeration for free.
        assert len(calls) == 3
        assert report.mpmcs.events == report.ranking[0].events == ("x1", "x2")
        assert [entry.events for entry in report.ranking] == [
            ("x1", "x2"),
            ("x5", "x6"),
            ("x5", "x7"),
        ]


class TestArtifactReuse:
    def test_cnf_encoding_computed_once_per_session(self, monkeypatch):
        calls = []
        real = backends_module.encode_mpmcs

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(backends_module, "encode_mpmcs", counting)
        session = AnalysisSession()
        tree = fire_protection_system()
        # One composite request (mpmcs + top-k ranking) plus a repeat call:
        # the structure function is Tseitin-encoded exactly once.
        session.analyze(tree, ["mpmcs", "ranking"], top_k=3)
        session.analyze(tree, ["mpmcs"])
        assert len(calls) == 1
        assert session.artifacts.hits_for(ARTIFACT_ENCODING) >= 1
        assert session.artifacts.misses_for(ARTIFACT_ENCODING) == 1

    def test_minimal_cut_sets_computed_once_per_session(self, monkeypatch):
        calls = []
        real = backends_module.mocus_minimal_cut_sets

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(backends_module, "mocus_minimal_cut_sets", counting)
        session = AnalysisSession()
        tree = fire_protection_system()
        # importance, the probability bounds and the explicit mcs listing all
        # derive from the same cut-set collection.
        session.analyze(tree, ["mcs", "top_event", "importance"])
        session.analyze(tree, ["importance"])
        assert len(calls) == 1
        assert session.artifacts.hits_for(ARTIFACT_CUT_SETS) >= 1
        assert session.artifacts.misses_for(ARTIFACT_CUT_SETS) == 1

    def test_bdd_artifact_shared_between_analyses(self):
        session = AnalysisSession()
        tree = fire_protection_system()
        session.analyze(tree, ["mpmcs", "top_event"], backend="bdd")
        session.analyze(tree, ["top_event"], backend="bdd")
        stats = session.cache_info()["by_kind"]["bdd"]
        assert stats["misses"] == 1
        assert stats["hits"] >= 1

    def test_fresh_sessions_do_not_share_artifacts(self):
        tree = fire_protection_system()
        first = AnalysisSession()
        first.analyze(tree, ["mpmcs"])
        second = AnalysisSession()
        second.analyze(tree, ["mpmcs"])
        assert second.artifacts.hits_for(ARTIFACT_ENCODING) == 0

    def test_shared_cache_across_sessions_when_injected(self):
        tree = fire_protection_system()
        first = AnalysisSession()
        first.analyze(tree, ["mpmcs"])
        second = AnalysisSession(cache=first.artifacts)
        second.analyze(tree, ["mpmcs"])
        assert second.artifacts.hits_for(ARTIFACT_ENCODING) >= 1

    def test_report_carries_cache_stats(self):
        session = AnalysisSession()
        session.analyze(fire_protection_system(), ["mpmcs"])
        report = session.analyze(fire_protection_system(), ["mpmcs", "ranking"])
        assert report.cache_stats["misses"] >= 1
        assert report.cache_stats["hits"] >= 1


class TestSessionCacheControl:
    def test_invalidate_drops_tree_artifacts(self):
        session = AnalysisSession()
        tree = fire_protection_system()
        session.analyze(tree, ["mpmcs", "top_event"])
        assert len(session.artifacts) > 0
        removed = session.invalidate(tree)
        assert removed > 0
        # the next analysis recomputes instead of hitting stale entries
        misses_before = session.artifacts.misses
        session.analyze(tree, ["mpmcs"])
        assert session.artifacts.misses > misses_before

    def test_invalidate_unknown_tree_is_a_noop(self):
        session = AnalysisSession()
        session.analyze(fire_protection_system(), ["mpmcs"])
        from repro.workloads.library import pressure_tank

        assert session.invalidate(pressure_tank()) == 0
        assert len(session.artifacts) > 0

    def test_clear_cache_resets_everything(self):
        session = AnalysisSession()
        session.analyze(fire_protection_system(), ["mpmcs"])
        session.clear_cache()
        assert len(session.artifacts) == 0
        assert session.cache_info()["hits"] == 0

    def test_in_place_mutation_is_detected_not_served_stale(self):
        session = AnalysisSession()
        tree = fire_protection_system()
        before = session.analyze(tree, ["mpmcs"]).mpmcs.probability
        tree.set_probability("x1", 0.5)
        after = session.analyze(tree, ["mpmcs"]).mpmcs.probability
        assert before == pytest.approx(0.02)
        assert after == pytest.approx(0.05)
