"""Tests for the pluggable backend registry."""

import pytest

from repro.api import (
    AnalysisBackend,
    AnalysisReport,
    AnalysisSession,
    available_backends,
    backend_capabilities,
    backend_class,
    backends_supporting,
    canonical_backend_name,
    create_backend,
    register_backend,
)
from repro.api.registry import _ALIASES, _REGISTRY
from repro.exceptions import AnalysisError
from repro.workloads.library import fire_protection_system


class TestBuiltinRegistry:
    def test_at_least_five_backends_resolvable_by_name(self):
        names = set(available_backends())
        assert {"maxsat", "mocus", "bdd", "brute-force", "monte-carlo"} <= names
        for name in names:
            assert backend_class(name).name == name

    def test_aliases_resolve_to_canonical_names(self):
        assert canonical_backend_name("bruteforce") == "brute-force"
        assert canonical_backend_name("bf") == "brute-force"
        assert canonical_backend_name("montecarlo") == "monte-carlo"
        assert canonical_backend_name("MC") == "monte-carlo"
        assert canonical_backend_name("MaxSAT") == "maxsat"

    def test_unknown_backend_raises(self):
        with pytest.raises(AnalysisError, match="unknown backend"):
            canonical_backend_name("not-a-backend")
        with pytest.raises(AnalysisError, match="unknown backend"):
            AnalysisSession().analyze(fire_protection_system(), backend="not-a-backend")

    def test_capabilities_cover_every_analysis(self):
        capabilities = backend_capabilities()
        assert "mpmcs" in capabilities["maxsat"]
        assert "ranking" in capabilities["maxsat"]
        assert {"mcs", "importance", "modules", "truncation"} <= capabilities["mocus"]
        assert {"mpmcs", "mcs", "top_event"} <= capabilities["bdd"]
        assert capabilities["monte-carlo"] == frozenset({"top_event"})

    def test_backends_supporting(self):
        assert "maxsat" in backends_supporting("mpmcs")
        assert "monte-carlo" in backends_supporting("top_event")
        assert backends_supporting("modules") == ["mocus"]


class TestRegisterBackend:
    @pytest.fixture
    def clean_registry(self):
        """Snapshot the registry so the test's registrations do not leak."""
        saved_registry = dict(_REGISTRY)
        saved_aliases = dict(_ALIASES)
        yield
        _REGISTRY.clear()
        _REGISTRY.update(saved_registry)
        _ALIASES.clear()
        _ALIASES.update(saved_aliases)

    def test_custom_backend_pluggable_end_to_end(self, clean_registry):
        @register_backend(aliases=("fixed",))
        class FixedBackend(AnalysisBackend):
            name = "fixed-answer"
            CAPABILITIES = frozenset({"mpmcs"})

            def run(self, tree, request):
                from repro.api.report import MPMCSSummary

                report = AnalysisReport(tree=tree, request=request)
                report.mpmcs = MPMCSSummary(
                    events=("x1", "x2"), probability=0.02, cost=3.912, backend=self.name
                )
                return report

        assert "fixed-answer" in available_backends()
        report = AnalysisSession().analyze(
            fire_protection_system(), ["mpmcs"], backend="fixed"
        )
        assert report.mpmcs.events == ("x1", "x2")
        assert report.backends["mpmcs"] == "fixed-answer"

    def test_backend_without_name_is_rejected(self, clean_registry):
        with pytest.raises(AnalysisError, match="no registry name"):

            @register_backend
            class Nameless(AnalysisBackend):
                CAPABILITIES = frozenset({"mpmcs"})

                def run(self, tree, request):  # pragma: no cover - never runs
                    raise NotImplementedError

    def test_backend_without_capabilities_is_rejected(self, clean_registry):
        with pytest.raises(AnalysisError, match="no capabilities"):

            @register_backend
            class Empty(AnalysisBackend):
                name = "empty"

                def run(self, tree, request):  # pragma: no cover - never runs
                    raise NotImplementedError

    def test_create_backend_instantiates_with_context(self):
        backend = create_backend("mocus")
        assert backend.name == "mocus"
        assert backend.context.artifacts is not None
