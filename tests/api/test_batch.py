"""Tests for the batch execution layer."""

import pytest

from repro.api import AnalysisSession, analyze_many
from repro.api.cache import ARTIFACT_ENCODING
from repro.fta.tree import FaultTree
from repro.workloads.library import (
    fire_protection_system,
    pressure_tank,
    three_motor_system,
)

TREES = [fire_protection_system, pressure_tank, three_motor_system]


def _expected_events():
    return [
        AnalysisSession().analyze(factory(), ["mpmcs"]).mpmcs.events for factory in TREES
    ]


class TestSequentialBatch:
    def test_reports_in_input_order(self):
        result = analyze_many([factory() for factory in TREES], ["mpmcs"])
        assert len(result) == 3
        assert result.num_ok == 3
        assert [item.tree_name for item in result] == [
            "fire-protection-system",
            "pressure-tank",
            "three-motor-system",
        ]
        assert [report.mpmcs.events for report in result.reports] == _expected_events()

    def test_identical_trees_share_cached_artifacts(self):
        session = AnalysisSession()
        result = analyze_many(
            [fire_protection_system(), fire_protection_system(), fire_protection_system()],
            ["mpmcs"],
            session=session,
        )
        assert result.num_ok == 3
        assert session.artifacts.misses_for(ARTIFACT_ENCODING) == 1
        assert session.artifacts.hits_for(ARTIFACT_ENCODING) == 2

    def test_failures_are_captured_not_raised(self):
        broken = FaultTree("broken", top_event="missing")
        result = analyze_many([fire_protection_system(), broken], ["mpmcs"])
        assert result.num_ok == 1
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.index == 1
        assert failure.tree_name == "broken"
        assert failure.error
        with pytest.raises(RuntimeError, match="broken"):
            result.raise_on_failure()

    def test_raise_on_failure_passes_through_on_success(self):
        result = analyze_many([fire_protection_system()], ["mpmcs"])
        assert result.raise_on_failure() is result

    def test_composite_analyses_in_batch(self):
        result = analyze_many(
            [fire_protection_system()], ["mpmcs", "top_event", "importance"]
        )
        report = result.reports[0]
        assert report.mpmcs.events == ("x1", "x2")
        assert report.top_event.exact == pytest.approx(0.0300217392, abs=1e-9)
        assert report.importance


class TestParallelBatch:
    def test_process_pool_matches_sequential(self):
        trees = [factory() for factory in TREES]
        sequential = analyze_many([factory() for factory in TREES], ["mpmcs"])
        parallel = analyze_many(trees, ["mpmcs"], workers=2)
        assert parallel.num_ok == 3
        assert [item.index for item in parallel] == [0, 1, 2]
        assert [r.mpmcs.events for r in parallel.reports] == [
            r.mpmcs.events for r in sequential.reports
        ]
        assert [r.mpmcs.probability for r in parallel.reports] == pytest.approx(
            [r.mpmcs.probability for r in sequential.reports]
        )

    def test_parallel_failures_are_captured(self):
        broken = FaultTree("broken", top_event="missing")
        result = analyze_many([broken, fire_protection_system()], ["mpmcs"], workers=2)
        assert result.num_ok == 1
        assert result.failures[0].tree_name == "broken"
