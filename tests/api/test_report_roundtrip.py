"""JSON round-trip of AnalysisReport and its summary inverses.

The service transports reports as ``to_dict()`` JSON; these tests pin the
inverse: ``AnalysisReport.from_dict(r.to_dict(), tree=t).to_dict()`` is
byte-identical to ``r.to_dict()`` (via ``json.dumps(sort_keys=True)``), for
every analysis section and across randomly generated trees.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import AnalysisReport, AnalysisRequest, AnalysisSession, MPMCSSummary, TopEventSummary
from repro.workloads.generator import random_fault_tree
from repro.workloads.library import fire_protection_system

ALL_ANALYSES = ["mpmcs", "ranking", "mcs", "top_event", "importance", "spof", "modules", "truncation"]


def _dumps(document):
    return json.dumps(document, sort_keys=True)


def _roundtrip(report, tree):
    document = report.to_dict()
    rebuilt = AnalysisReport.from_dict(document, tree=tree)
    assert _dumps(rebuilt.to_dict()) == _dumps(document)
    return rebuilt


class TestFig1RoundTrip:
    def test_full_report_roundtrip(self):
        tree = fire_protection_system()
        report = AnalysisSession().analyze(tree, ALL_ANALYSES, samples=400, seed=7)
        rebuilt = _roundtrip(report, tree)
        assert rebuilt.mpmcs.events == ("x1", "x2")
        assert rebuilt.top_event.exact == report.top_event.exact
        assert rebuilt.request == report.request

    def test_roundtrip_without_tree_keeps_summaries(self):
        tree = fire_protection_system()
        report = AnalysisSession().analyze(tree, ["mpmcs", "top_event"])
        rebuilt = AnalysisReport.from_dict(report.to_dict())
        assert rebuilt.tree is None
        assert rebuilt.tree_name == tree.name
        assert rebuilt.mpmcs.events == ("x1", "x2")
        assert rebuilt.top_event.to_dict() == report.top_event.to_dict()
        # The legacy bridge needs probabilities, which only the tree has.
        assert rebuilt.mpmcs_result is None

    def test_single_backend_roundtrips(self):
        tree = fire_protection_system()
        for backend in ("maxsat", "mocus", "bdd", "brute-force"):
            report = AnalysisSession().analyze(tree, ["mpmcs"], backend=backend)
            _roundtrip(report, tree)


class TestSummaryInverses:
    def test_mpmcs_summary_inverse(self):
        summary = MPMCSSummary(
            events=("a", "b"), probability=0.02, cost=3.912, backend="maxsat",
            engine="rc2", solve_time=0.01, total_time=0.05,
        )
        rebuilt = MPMCSSummary.from_dict(summary.to_dict())
        assert rebuilt == summary

    def test_top_event_summary_inverse_without_monte_carlo(self):
        summary = TopEventSummary(
            exact=0.03, rare_event_bound=0.031, min_cut_upper_bound=0.0305, backend="bdd+mocus"
        )
        assert TopEventSummary.from_dict(summary.to_dict()) == summary

    def test_top_event_summary_inverse_with_monte_carlo(self):
        tree = fire_protection_system()
        report = AnalysisSession().analyze(tree, ["top_event"], samples=500, seed=3)
        rebuilt = TopEventSummary.from_dict(report.top_event.to_dict())
        assert rebuilt.to_dict() == report.top_event.to_dict()
        assert rebuilt.monte_carlo.samples == 500

    def test_request_inverse(self):
        request = AnalysisRequest.create(
            ["mpmcs", "ranking"], backend="maxsat", top_k=7, samples=100,
            seed=5, cutoff=1e-6, deterministic=False,
        )
        assert AnalysisRequest.from_dict(request.to_dict()) == request


class TestPropertyRoundTrip:
    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_events=st.integers(min_value=5, max_value=14),
        analyses=st.lists(
            st.sampled_from(["mpmcs", "ranking", "mcs", "top_event", "importance"]),
            min_size=1,
            max_size=5,
            unique=True,
        ),
    )
    def test_random_tree_reports_roundtrip(self, seed, num_events, analyses):
        tree = random_fault_tree(num_basic_events=num_events, seed=seed)
        session = AnalysisSession()
        report = session.analyze(tree, analyses, backend="mocus")
        _roundtrip(report, tree)

    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        probability=st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
        events=st.lists(
            st.text(alphabet="abcdefgh", min_size=1, max_size=4), min_size=1, max_size=4, unique=True
        ),
    )
    def test_mpmcs_summary_property(self, probability, events):
        summary = MPMCSSummary(
            events=tuple(sorted(events)),
            probability=probability,
            cost=-1.0,
            backend="test",
        )
        rebuilt = MPMCSSummary.from_dict(summary.to_dict())
        assert rebuilt == summary
        assert _dumps(rebuilt.to_dict()) == _dumps(summary.to_dict())
