"""Tests for the unified AnalysisReport rendering across every format."""

import json

import pytest

from repro.api import AnalysisSession
from repro.exceptions import ReproError
from repro.reporting import render_report, report_document, write_report
from repro.workloads.library import fire_protection_system


@pytest.fixture(scope="module")
def full_report():
    return AnalysisSession().analyze(
        fire_protection_system(),
        ["mpmcs", "ranking", "importance", "spof"],
        top_k=3,
    )


class TestRenderReport:
    def test_json_document(self, full_report):
        document = json.loads(render_report(full_report, "json"))
        assert document["report_version"] == "2.0"
        assert document["results"]["mpmcs"]["events"] == ["x1", "x2"]
        # legacy Fig. 2 sections embedded for existing consumers
        assert document["solution"]["mpmcs"] == ["x1", "x2"]
        assert document["statistics"]["num_basic_events"] == 7

    def test_markdown(self, full_report):
        text = render_report(full_report, "markdown")
        assert "# MPMCS analysis" in text
        assert "{x1, x2}" in text
        assert "## Most probable minimal cut sets" in text
        assert "## Importance measures" in text
        assert "## Single points of failure" in text

    def test_html(self, full_report):
        text = render_report(full_report, "html")
        assert text.startswith("<!DOCTYPE html>")
        assert "<svg" in text

    def test_dot(self, full_report):
        text = render_report(full_report, "dot")
        assert "digraph" in text
        assert "x1" in text

    def test_ascii(self, full_report):
        text = render_report(full_report, "ascii")
        assert "fps_failure" in text

    def test_unknown_format_rejected(self, full_report):
        with pytest.raises(ReproError, match="unknown report format"):
            render_report(full_report, "pdf")

    def test_markdown_requires_mpmcs(self):
        report = AnalysisSession().analyze(fire_protection_system(), ["mcs"])
        with pytest.raises(ReproError, match="needs the 'mpmcs' analysis"):
            render_report(report, "markdown")


class TestWriteReport:
    @pytest.mark.parametrize(
        "filename,needle",
        [
            ("r.json", '"report_version"'),
            ("r.md", "# MPMCS analysis"),
            ("r.html", "<!DOCTYPE html>"),
            ("r.dot", "digraph"),
            ("r.txt", "fps_failure"),
        ],
    )
    def test_format_inferred_from_suffix(self, tmp_path, full_report, filename, needle):
        path = write_report(full_report, tmp_path / filename)
        assert needle in path.read_text(encoding="utf-8")

    def test_explicit_format_overrides_suffix(self, tmp_path, full_report):
        path = write_report(full_report, tmp_path / "weird.out", fmt="markdown")
        assert "# MPMCS analysis" in path.read_text(encoding="utf-8")


class TestReportDocument:
    def test_document_without_mpmcs_has_no_legacy_solution(self):
        report = AnalysisSession().analyze(fire_protection_system(), ["modules"])
        document = report_document(report)
        assert "solution" not in document
        assert document["results"]["modules"]["num_modules"] == 5

    def test_mpmcs_result_bridge_for_classical_backends(self):
        report = AnalysisSession().analyze(
            fire_protection_system(), ["mpmcs"], backend="mocus"
        )
        result = report.mpmcs_result
        assert result.events == ("x1", "x2")
        assert result.engine == "mocus"
        assert result.weights["x1"] == pytest.approx(1.6094379124341003)
