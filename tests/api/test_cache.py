"""Tests for the structural hash and the artifact cache."""

from repro.api.cache import ArtifactCache, structural_hash
from repro.workloads.library import fire_protection_system, pressure_tank


class TestStructuralHash:
    def test_identical_structure_same_hash(self):
        assert structural_hash(fire_protection_system()) == structural_hash(
            fire_protection_system()
        )

    def test_name_does_not_affect_hash(self):
        renamed = fire_protection_system().copy(name="another-name")
        assert structural_hash(renamed) == structural_hash(fire_protection_system())

    def test_different_trees_different_hash(self):
        assert structural_hash(fire_protection_system()) != structural_hash(pressure_tank())

    def test_probability_change_changes_hash(self):
        tree = fire_protection_system()
        before = structural_hash(tree)
        tree.set_probability("x1", 0.123)
        assert structural_hash(tree) != before


class TestArtifactCache:
    def test_compute_once_then_hit(self):
        cache = ArtifactCache()
        tree = fire_protection_system()
        calls = []

        def build():
            calls.append(1)
            return "artifact"

        assert cache.get_or_compute(tree, "thing", build) == "artifact"
        assert cache.get_or_compute(tree, "thing", build) == "artifact"
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hits_for("thing") == 1 and cache.misses_for("thing") == 1

    def test_kinds_are_independent(self):
        cache = ArtifactCache()
        tree = fire_protection_system()
        cache.get_or_compute(tree, "a", lambda: 1)
        cache.get_or_compute(tree, "b", lambda: 2)
        assert len(cache) == 2
        assert cache.misses == 2 and cache.hits == 0

    def test_structurally_equal_trees_share_artifacts(self):
        cache = ArtifactCache()
        cache.get_or_compute(fire_protection_system(), "x", lambda: "v")
        # A different object with identical structure hits the same entry.
        assert cache.get_or_compute(fire_protection_system(), "x", lambda: "other") == "v"
        assert cache.hits == 1

    def test_mutation_invalidates_automatically(self):
        cache = ArtifactCache()
        tree = fire_protection_system()
        cache.get_or_compute(tree, "x", lambda: "old")
        tree.set_probability("x1", 0.5)
        assert cache.get_or_compute(tree, "x", lambda: "new") == "new"

    def test_invalidate_and_clear(self):
        cache = ArtifactCache()
        tree = fire_protection_system()
        cache.get_or_compute(tree, "a", lambda: 1)
        cache.get_or_compute(tree, "b", lambda: 2)
        assert cache.invalidate(tree) == 2
        assert len(cache) == 0
        cache.get_or_compute(tree, "a", lambda: 3)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_stats_shape(self):
        cache = ArtifactCache()
        tree = fire_protection_system()
        cache.get_or_compute(tree, "kind", lambda: None)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["evictions"] == 0
        assert stats["by_kind"]["kind"] == {"hits": 0, "misses": 1, "evictions": 0}


class _DictBackend:
    """In-memory ArtifactStoreBackend double with call recording."""

    def __init__(self):
        self.entries = {}
        self.loads = []
        self.stores = []

    def load(self, key_hash, kind):
        self.loads.append((key_hash, kind))
        key = (key_hash, kind)
        if key in self.entries:
            return True, self.entries[key]
        return False, None

    def store(self, key_hash, kind, value):
        self.stores.append((key_hash, kind))
        self.entries[(key_hash, kind)] = value


class TestBoundedCache:
    """The LRU entry cap — a long sweep must not grow the cache without limit."""

    def test_eviction_past_cap(self):
        cache = ArtifactCache(max_entries=2)
        tree = fire_protection_system()
        cache.get_or_compute(tree, "a", lambda: 1)
        cache.get_or_compute(tree, "b", lambda: 2)
        cache.get_or_compute(tree, "c", lambda: 3)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.stats()["by_kind"]["a"]["evictions"] == 1

    def test_lru_order_respects_recent_hits(self):
        cache = ArtifactCache(max_entries=2)
        tree = fire_protection_system()
        cache.get_or_compute(tree, "a", lambda: 1)
        cache.get_or_compute(tree, "b", lambda: 2)
        cache.get_or_compute(tree, "a", lambda: 0)  # refresh "a"
        cache.get_or_compute(tree, "c", lambda: 3)  # evicts "b", not "a"
        calls = []
        cache.get_or_compute(tree, "a", lambda: calls.append(1))
        assert not calls, '"a" must have survived as most recently used'

    def test_long_sweep_stays_under_cap(self):
        """Satellite acceptance: a long sweep's session cache respects the cap."""
        from repro.api.session import AnalysisSession
        from repro.scenarios import SweepExecutor, probability_sweep

        cap = 24
        cache = ArtifactCache(max_entries=cap)
        executor = SweepExecutor(AnalysisSession(cache=cache))
        tree = fire_protection_system()
        report = executor.run(
            tree, probability_sweep("x1", start=1e-4, stop=0.5, steps=120)
        )
        assert len(report) == 120
        assert len(cache) <= cap
        assert cache.stats()["entries"] <= cap
        # The sweep results are unaffected by the bound: spot-check monotone
        # top-event growth along the (increasing) probability sweep.
        tops = [outcome.top_event for outcome in report.ok_outcomes]
        assert all(a <= b + 1e-15 for a, b in zip(tops, tops[1:]))

    def test_unbounded_by_default(self):
        cache = ArtifactCache()
        tree = fire_protection_system()
        for index in range(50):
            cache.get_or_compute(tree, f"kind-{index}", lambda: index)
        assert len(cache) == 50 and cache.evictions == 0


class TestBackendTier:
    """The ArtifactStoreBackend hook: probe on miss, write through on compute."""

    def test_miss_probes_backend_and_writes_through(self):
        backend = _DictBackend()
        cache = ArtifactCache(backend=backend)
        tree = fire_protection_system()
        cache.get_or_compute(tree, "kind", lambda: "computed")
        assert backend.loads and backend.stores  # probed, then persisted
        assert cache.store_misses == 1 and cache.store_hits == 0

    def test_backend_hit_skips_compute(self):
        backend = _DictBackend()
        first = ArtifactCache(backend=backend)
        tree = fire_protection_system()
        first.get_or_compute(tree, "kind", lambda: "computed")

        second = ArtifactCache(backend=backend)  # fresh memory tier, same backend
        calls = []
        value = second.get_or_compute(tree, "kind", lambda: calls.append(1) or "recomputed")
        assert value == "computed" and not calls
        assert second.store_hits == 1
        stats = second.stats()
        assert stats["store_hits"] == 1 and stats["store_misses"] == 0

    def test_backend_hit_promotes_to_memory(self):
        backend = _DictBackend()
        cache = ArtifactCache(backend=backend)
        tree = fire_protection_system()
        backend.entries[(cache.key_for(tree), "kind")] = "persisted"
        cache.get_or_compute(tree, "kind", lambda: "recomputed")
        cache.get_or_compute(tree, "kind", lambda: "recomputed")
        assert cache.hits == 1  # second probe answered by memory, not backend
        assert len(backend.loads) == 1

    def test_put_does_not_write_through(self):
        backend = _DictBackend()
        cache = ArtifactCache(backend=backend)
        tree = fire_protection_system()
        cache.put(tree, "kind", "seeded")
        assert not backend.stores
        calls = []
        assert cache.get_or_compute(tree, "kind", lambda: calls.append(1)) == "seeded"
        assert not calls

    def test_stats_hide_store_counters_without_backend(self):
        cache = ArtifactCache()
        assert "store_hits" not in cache.stats()
        cache.get_or_compute(fire_protection_system(), "kind", lambda: 1)
        assert "store_hits" not in cache.stats()["by_kind"]["kind"]

    def test_per_kind_store_counters(self):
        """Satellite acceptance: store hits/misses are attributable per kind."""
        backend = _DictBackend()
        first = ArtifactCache(backend=backend)
        tree = fire_protection_system()
        first.get_or_compute(tree, "cut-sets", lambda: "a")
        first.get_or_compute(tree, "cnf", lambda: "b")

        second = ArtifactCache(backend=backend)
        second.get_or_compute(tree, "cut-sets", lambda: "a")  # store hit
        second.get_or_compute(tree, "fresh-kind", lambda: "c")  # store miss
        assert second.store_hits_for("cut-sets") == 1
        assert second.store_misses_for("cut-sets") == 0
        assert second.store_hits_for("fresh-kind") == 0
        assert second.store_misses_for("fresh-kind") == 1
        by_kind = second.stats()["by_kind"]
        assert by_kind["cut-sets"]["store_hits"] == 1
        assert by_kind["cut-sets"]["store_misses"] == 0
        assert by_kind["fresh-kind"]["store_hits"] == 0
        assert by_kind["fresh-kind"]["store_misses"] == 1
        # The aggregates stay consistent with the per-kind view.
        stats = second.stats()
        assert stats["store_hits"] == sum(
            counters.get("store_hits", 0) for counters in by_kind.values()
        )
        assert stats["store_misses"] == sum(
            counters.get("store_misses", 0) for counters in by_kind.values()
        )
