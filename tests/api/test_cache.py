"""Tests for the structural hash and the artifact cache."""

from repro.api.cache import ArtifactCache, structural_hash
from repro.workloads.library import fire_protection_system, pressure_tank


class TestStructuralHash:
    def test_identical_structure_same_hash(self):
        assert structural_hash(fire_protection_system()) == structural_hash(
            fire_protection_system()
        )

    def test_name_does_not_affect_hash(self):
        renamed = fire_protection_system().copy(name="another-name")
        assert structural_hash(renamed) == structural_hash(fire_protection_system())

    def test_different_trees_different_hash(self):
        assert structural_hash(fire_protection_system()) != structural_hash(pressure_tank())

    def test_probability_change_changes_hash(self):
        tree = fire_protection_system()
        before = structural_hash(tree)
        tree.set_probability("x1", 0.123)
        assert structural_hash(tree) != before


class TestArtifactCache:
    def test_compute_once_then_hit(self):
        cache = ArtifactCache()
        tree = fire_protection_system()
        calls = []

        def build():
            calls.append(1)
            return "artifact"

        assert cache.get_or_compute(tree, "thing", build) == "artifact"
        assert cache.get_or_compute(tree, "thing", build) == "artifact"
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hits_for("thing") == 1 and cache.misses_for("thing") == 1

    def test_kinds_are_independent(self):
        cache = ArtifactCache()
        tree = fire_protection_system()
        cache.get_or_compute(tree, "a", lambda: 1)
        cache.get_or_compute(tree, "b", lambda: 2)
        assert len(cache) == 2
        assert cache.misses == 2 and cache.hits == 0

    def test_structurally_equal_trees_share_artifacts(self):
        cache = ArtifactCache()
        cache.get_or_compute(fire_protection_system(), "x", lambda: "v")
        # A different object with identical structure hits the same entry.
        assert cache.get_or_compute(fire_protection_system(), "x", lambda: "other") == "v"
        assert cache.hits == 1

    def test_mutation_invalidates_automatically(self):
        cache = ArtifactCache()
        tree = fire_protection_system()
        cache.get_or_compute(tree, "x", lambda: "old")
        tree.set_probability("x1", 0.5)
        assert cache.get_or_compute(tree, "x", lambda: "new") == "new"

    def test_invalidate_and_clear(self):
        cache = ArtifactCache()
        tree = fire_protection_system()
        cache.get_or_compute(tree, "a", lambda: 1)
        cache.get_or_compute(tree, "b", lambda: 2)
        assert cache.invalidate(tree) == 2
        assert len(cache) == 0
        cache.get_or_compute(tree, "a", lambda: 3)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_stats_shape(self):
        cache = ArtifactCache()
        tree = fire_protection_system()
        cache.get_or_compute(tree, "kind", lambda: None)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["by_kind"]["kind"] == {"hits": 0, "misses": 1}
