"""Per-stage profiling of analysis runs (encode/solve seconds, cache hits)."""

import json

import pytest

from repro.api import AnalysisSession
from repro.api.report import AnalysisReport, AnalysisRequest
from repro.cli import main as cli_main
from repro.reporting import render_profile
from repro.reporting.json_report import report_document
from repro.workloads.library import fire_protection_system


class TestProfileCollection:
    def test_maxsat_run_records_encode_and_solve_stages(self):
        session = AnalysisSession()
        report = session.analyze(fire_protection_system(), ["mpmcs"], backend="maxsat")
        assert report.profile["encode_seconds"] >= 0.0
        assert report.profile["solve_seconds"] >= 0.0
        assert report.profile["cache_misses"] > 0

    def test_second_run_shows_cache_hits(self):
        session = AnalysisSession()
        tree = fire_protection_system()
        session.analyze(tree, ["mpmcs"], backend="maxsat")
        second = session.analyze(tree, ["mpmcs"], backend="maxsat")
        assert second.profile["cache_hits"] > 0
        # The cached encoding makes the encode stage (essentially) free.
        assert second.profile["encode_seconds"] <= second.timings["maxsat"]

    def test_composite_request_sums_backend_profiles(self):
        session = AnalysisSession()
        report = session.analyze(
            fire_protection_system(), ["mpmcs", "top_event", "importance"]
        )
        assert "solve_seconds" in report.profile
        assert report.profile["cache_hits"] + report.profile["cache_misses"] > 0

    def test_warm_path_reports_warm_solves(self):
        session = AnalysisSession()
        session.backend("maxsat").enable_warm_sessions()
        report = session.analyze(fire_protection_system(), ["mpmcs"], backend="maxsat")
        assert report.profile["warm_solves"] == 1


class TestProfileSerialization:
    def test_to_dict_includes_profile_and_round_trips(self):
        session = AnalysisSession()
        report = session.analyze(fire_protection_system(), ["mpmcs"], backend="maxsat")
        document = report.to_dict()
        assert document["profile"] == report.profile
        restored = AnalysisReport.from_dict(document, tree=report.tree)
        assert restored.to_dict() == document

    def test_canonical_dict_strips_profile_and_engine(self):
        session = AnalysisSession()
        report = session.analyze(fire_protection_system(), ["mpmcs"], backend="maxsat")
        canonical = report.to_canonical_dict()
        assert "profile" not in canonical
        assert "timings_s" not in canonical
        assert "cache" not in canonical
        assert "engine" not in canonical["mpmcs"]
        assert "solve_time_s" not in canonical["mpmcs"]
        # Canonical dicts are JSON-stable.
        json.dumps(canonical, sort_keys=True)

    def test_report_document_carries_profile(self):
        session = AnalysisSession()
        report = session.analyze(fire_protection_system(), ["mpmcs"], backend="maxsat")
        document = report_document(report)
        assert document["results"]["profile"] == report.profile


class TestProfileRendering:
    def test_render_profile_lists_stages_and_counters(self):
        session = AnalysisSession()
        report = session.analyze(fire_protection_system(), ["mpmcs"], backend="maxsat")
        text = render_profile(report)
        assert "encode" in text
        assert "solve" in text
        assert "cache_misses" in text
        assert "backend maxsat" in text

    def test_render_profile_without_data(self):
        report = AnalysisReport(tree=fire_protection_system(), request=AnalysisRequest())
        assert "no profiling data" in render_profile(report)

    def test_cli_profile_flag(self, capsys):
        exit_code = cli_main(["analyze", "--builtin", "fps", "--quiet", "--profile"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "performance profile:" in captured.out
        assert "encode" in captured.out
