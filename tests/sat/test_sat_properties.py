"""Property-based tests cross-checking the SAT solvers against ground truth."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.cdcl import CDCLSolver
from repro.sat.dpll import DPLLSolver
from repro.sat.types import SatStatus

from tests.conftest import brute_force_cnf_satisfiable, cnf_clause_lists


def _load(solver, clauses):
    for clause in clauses:
        solver.add_clause(clause)
    return solver


class TestAgainstBruteForce:
    @settings(max_examples=120, deadline=None)
    @given(cnf_clause_lists(max_vars=6, max_clauses=14))
    def test_cdcl_matches_brute_force(self, clauses):
        expected = brute_force_cnf_satisfiable(clauses)
        result = _load(CDCLSolver(), clauses).solve()
        assert (result.status is SatStatus.SAT) == expected
        if result.status is SatStatus.SAT:
            for clause in clauses:
                assert any(result.model[abs(lit)] == (lit > 0) for lit in clause)

    @settings(max_examples=80, deadline=None)
    @given(cnf_clause_lists(max_vars=5, max_clauses=10))
    def test_dpll_matches_brute_force(self, clauses):
        expected = brute_force_cnf_satisfiable(clauses)
        result = _load(DPLLSolver(), clauses).solve()
        assert (result.status is SatStatus.SAT) == expected
        if result.status is SatStatus.SAT:
            for clause in clauses:
                assert any(result.model.get(abs(lit), False) == (lit > 0) for lit in clause)

    @settings(max_examples=80, deadline=None)
    @given(cnf_clause_lists(max_vars=5, max_clauses=10))
    def test_cdcl_and_dpll_agree(self, clauses):
        cdcl = _load(CDCLSolver(), clauses).solve()
        dpll = _load(DPLLSolver(), clauses).solve()
        assert cdcl.status == dpll.status


class TestAssumptionProperties:
    @settings(max_examples=80, deadline=None)
    @given(
        cnf_clause_lists(max_vars=5, max_clauses=10),
        st.lists(
            st.integers(min_value=1, max_value=5).flatmap(
                lambda v: st.sampled_from([v, -v])
            ),
            min_size=1,
            max_size=4,
            unique=True,
        ),
    )
    def test_assumptions_equal_unit_clauses(self, clauses, assumptions):
        """Solving under assumptions must agree with adding them as unit clauses."""
        under_assumptions = _load(CDCLSolver(), clauses).solve(assumptions)
        with_units = _load(CDCLSolver(), clauses + [[lit] for lit in assumptions]).solve()
        assert under_assumptions.status == with_units.status

    @settings(max_examples=80, deadline=None)
    @given(
        cnf_clause_lists(max_vars=5, max_clauses=10),
        st.lists(
            st.integers(min_value=1, max_value=5).flatmap(
                lambda v: st.sampled_from([v, -v])
            ),
            min_size=1,
            max_size=4,
            unique=True,
        ),
    )
    def test_unsat_core_is_sound(self, clauses, assumptions):
        """The reported core, used as assumptions on its own, must still be UNSAT."""
        solver = _load(CDCLSolver(), clauses)
        result = solver.solve(assumptions)
        if result.status is SatStatus.UNSAT and result.core:
            assert set(result.core) <= set(assumptions)
            verification = _load(CDCLSolver(), clauses).solve(sorted(result.core))
            assert verification.status is SatStatus.UNSAT

    @settings(max_examples=60, deadline=None)
    @given(cnf_clause_lists(max_vars=5, max_clauses=10))
    def test_sat_models_respect_assumptions(self, clauses):
        solver = _load(CDCLSolver(), clauses)
        assumptions = [1, -2]
        result = solver.solve(assumptions)
        if result.status is SatStatus.SAT:
            assert result.model[1] is True
            assert result.model[2] is False


class TestIncrementalProperties:
    @settings(max_examples=60, deadline=None)
    @given(cnf_clause_lists(max_vars=5, max_clauses=8), cnf_clause_lists(max_vars=5, max_clauses=8))
    def test_incremental_equals_monolithic(self, first_batch, second_batch):
        """Adding clauses in two batches (with a solve in between) must give the
        same final answer as adding everything upfront."""
        incremental = _load(CDCLSolver(), first_batch)
        incremental.solve()
        for clause in second_batch:
            incremental.add_clause(clause)
        monolithic = _load(CDCLSolver(), first_batch + second_batch)
        assert incremental.solve().status == monolithic.solve().status
