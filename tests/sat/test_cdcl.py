"""Unit tests for the CDCL SAT solver."""

import pytest

from repro.exceptions import BudgetExceededError, SolverError, SolverInterrupted
from repro.sat.cdcl import CDCLSolver, _luby
from repro.sat.types import SatStatus


class TestBasicSolving:
    def test_empty_instance_is_sat(self):
        assert CDCLSolver().solve().status is SatStatus.SAT

    def test_unit_propagation_chain(self):
        solver = CDCLSolver()
        solver.add_clause([1])
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        result = solver.solve()
        assert result.status is SatStatus.SAT
        assert result.model[1] and result.model[2] and result.model[3]

    def test_contradiction_detected_at_level_zero(self):
        solver = CDCLSolver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve().status is SatStatus.UNSAT

    def test_tautological_clause_ignored(self):
        solver = CDCLSolver()
        solver.add_clause([1, -1])
        assert solver.solve().status is SatStatus.SAT

    def test_duplicate_literals_collapsed(self):
        solver = CDCLSolver()
        solver.add_clause([2, 2, 2])
        result = solver.solve()
        assert result.model[2] is True

    def test_model_satisfies_all_clauses(self):
        clauses = [[1, 2, 3], [-1, -2], [-2, -3], [-1, -3], [1, -2, 3]]
        solver = CDCLSolver()
        for clause in clauses:
            solver.add_clause(clause)
        result = solver.solve()
        assert result.status is SatStatus.SAT
        for clause in clauses:
            assert any(result.model[abs(lit)] == (lit > 0) for lit in clause)

    def test_unsat_pigeonhole_3_into_2(self):
        # Variables p_{i,j}: pigeon i in hole j -> var index 2*i + j + 1.
        def var(i, j):
            return 2 * i + j + 1

        solver = CDCLSolver()
        for i in range(3):
            solver.add_clause([var(i, 0), var(i, 1)])
        for j in range(2):
            for a in range(3):
                for b in range(a + 1, 3):
                    solver.add_clause([-var(a, j), -var(b, j)])
        result = solver.solve()
        assert result.status is SatStatus.UNSAT
        assert result.conflicts >= 1

    def test_invalid_literal_rejected(self):
        with pytest.raises(SolverError):
            CDCLSolver().add_clause([0])

    def test_invalid_configuration_rejected(self):
        with pytest.raises(SolverError):
            CDCLSolver(var_decay=0.0)
        with pytest.raises(SolverError):
            CDCLSolver(restart_base=0)

    def test_incremental_clause_addition(self):
        solver = CDCLSolver()
        solver.add_clause([1, 2])
        assert solver.solve().status is SatStatus.SAT
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert solver.solve().status is SatStatus.UNSAT


class TestAssumptions:
    def test_assumption_forces_polarity(self):
        solver = CDCLSolver()
        solver.add_clause([1, 2])
        result = solver.solve(assumptions=[-1])
        assert result.status is SatStatus.SAT
        assert result.model[1] is False
        assert result.model[2] is True

    def test_failed_assumptions_yield_core(self):
        solver = CDCLSolver()
        solver.add_clause([1, 2, 3])
        result = solver.solve(assumptions=[-1, -2, -3])
        assert result.status is SatStatus.UNSAT
        assert result.core
        assert result.core <= {-1, -2, -3}

    def test_core_is_actually_unsatisfiable(self):
        solver = CDCLSolver()
        solver.add_clause([1, 2])
        solver.add_clause([3, 4])
        result = solver.solve(assumptions=[-1, -2, -3])
        assert result.status is SatStatus.UNSAT
        # The core must contain the assumptions blocking clause (1, 2): -1 and -2.
        assert {-1, -2} <= set(result.core) or solver.solve(list(result.core)).is_unsat

    def test_solver_reusable_after_assumption_unsat(self):
        solver = CDCLSolver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1, -2]).status is SatStatus.UNSAT
        assert solver.solve().status is SatStatus.SAT
        assert solver.solve(assumptions=[-1]).status is SatStatus.SAT

    def test_assumptions_on_fresh_variables(self):
        solver = CDCLSolver()
        solver.add_clause([1])
        result = solver.solve(assumptions=[7])
        assert result.status is SatStatus.SAT
        assert result.model[7] is True

    def test_contradictory_assumptions(self):
        solver = CDCLSolver()
        solver.add_clause([1, 2])
        result = solver.solve(assumptions=[3, -3])
        assert result.status is SatStatus.UNSAT
        assert result.core <= {3, -3}

    def test_many_assumptions_all_satisfiable(self):
        solver = CDCLSolver()
        for i in range(1, 21):
            solver.add_clause([i, i + 100])
        assumptions = [-(i) for i in range(1, 21)]
        result = solver.solve(assumptions)
        assert result.status is SatStatus.SAT
        for i in range(1, 21):
            assert result.model[i + 100] is True


class TestBudgetsAndInterruption:
    def test_conflict_budget_raises(self):
        # A hard unsat pigeonhole instance with a tiny conflict budget.
        def var(i, j):
            return 4 * i + j + 1

        solver = CDCLSolver(max_conflicts=1, restart_base=1)
        for i in range(5):
            solver.add_clause([var(i, j) for j in range(4)])
        for j in range(4):
            for a in range(5):
                for b in range(a + 1, 5):
                    solver.add_clause([-var(a, j), -var(b, j)])
        with pytest.raises(BudgetExceededError):
            solver.solve()

    def test_stop_check_interrupts(self):
        def var(i, j):
            return 5 * i + j + 1

        solver = CDCLSolver(stop_check=lambda: True, restart_base=1)
        for i in range(6):
            solver.add_clause([var(i, j) for j in range(5)])
        for j in range(5):
            for a in range(6):
                for b in range(a + 1, 6):
                    solver.add_clause([-var(a, j), -var(b, j)])
        with pytest.raises(SolverInterrupted):
            solver.solve()


class TestLuby:
    def test_luby_prefix(self):
        expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
        assert [_luby(i) for i in range(len(expected))] == expected
