"""Unit tests for the reference DPLL solver."""

import pytest

from repro.exceptions import SolverError
from repro.sat.dpll import DPLLSolver
from repro.sat.types import SatStatus


class TestDPLLBasics:
    def test_empty_instance_is_sat(self):
        assert DPLLSolver().solve().status is SatStatus.SAT

    def test_single_unit_clause(self):
        solver = DPLLSolver()
        solver.add_clause([3])
        result = solver.solve()
        assert result.status is SatStatus.SAT
        assert result.model[3] is True

    def test_contradictory_units_unsat(self):
        solver = DPLLSolver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve().status is SatStatus.UNSAT

    def test_simple_satisfiable_instance(self):
        solver = DPLLSolver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 3])
        solver.add_clause([-2, -3])
        result = solver.solve()
        assert result.status is SatStatus.SAT
        model = result.model
        assert (model[1] or model[2]) and ((not model[1]) or model[3]) and (
            (not model[2]) or (not model[3])
        )

    def test_pigeonhole_2_into_1_unsat(self):
        # Two pigeons, one hole: p1 and p2 both in hole -> contradiction.
        solver = DPLLSolver()
        solver.add_clause([1])       # pigeon 1 in hole
        solver.add_clause([2])       # pigeon 2 in hole
        solver.add_clause([-1, -2])  # not both
        assert solver.solve().status is SatStatus.UNSAT

    def test_zero_literal_rejected(self):
        with pytest.raises(SolverError):
            DPLLSolver().add_clause([0])

    def test_statistics_are_reported(self):
        solver = DPLLSolver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        solver.add_clause([1, -2])
        result = solver.solve()
        assert result.status is SatStatus.SAT
        assert result.decisions >= 0
        assert result.propagations >= 0


class TestDPLLAssumptions:
    def test_assumptions_restrict_models(self):
        solver = DPLLSolver()
        solver.add_clause([1, 2])
        result = solver.solve(assumptions=[-1])
        assert result.status is SatStatus.SAT
        assert result.model[2] is True

    def test_conflicting_assumptions(self):
        solver = DPLLSolver()
        solver.add_clause([1, 2])
        result = solver.solve(assumptions=[1, -1])
        assert result.status is SatStatus.UNSAT

    def test_unsat_under_assumptions_reports_core(self):
        solver = DPLLSolver()
        solver.add_clause([1, 2])
        result = solver.solve(assumptions=[-1, -2])
        assert result.status is SatStatus.UNSAT
        assert result.core <= {-1, -2}
        assert result.core  # non-empty
