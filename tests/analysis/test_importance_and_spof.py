"""Unit tests for importance measures and single-point-of-failure detection."""

import pytest

from repro.analysis.bruteforce import brute_force_minimal_cut_sets
from repro.analysis.importance import importance_measures
from repro.analysis.spof import single_points_of_failure
from repro.exceptions import AnalysisError
from repro.fta.builder import FaultTreeBuilder


class TestSPOF:
    def test_fps_spofs_are_x3_and_x4(self, fps_tree):
        spofs = single_points_of_failure(fps_tree)
        assert [name for name, _ in spofs] == ["x4", "x3"]  # sorted by probability
        assert dict(spofs)["x3"] == 0.001

    def test_tree_without_spof(self):
        tree = (
            FaultTreeBuilder("and")
            .basic_event("a", 0.1)
            .basic_event("b", 0.1)
            .and_gate("top", ["a", "b"])
            .top("top")
            .build()
        )
        assert single_points_of_failure(tree) == []

    def test_shared_tree_spofs(self, shared_events_tree):
        spofs = dict(single_points_of_failure(shared_events_tree))
        assert set(spofs) == {"control_circuit", "power_supply"}


class TestImportance:
    def fps_measures(self, fps_tree):
        cut_sets = brute_force_minimal_cut_sets(fps_tree)
        return importance_measures(fps_tree, cut_sets)

    def test_every_event_reported(self, fps_tree):
        measures = self.fps_measures(fps_tree)
        assert set(measures) == {f"x{i}" for i in range(1, 8)}

    def test_spof_has_highest_birnbaum(self, fps_tree):
        measures = self.fps_measures(fps_tree)
        # The single points of failure (x3, x4) have Birnbaum importance close
        # to 1: the system state hinges directly on them.
        assert measures["x3"].birnbaum > measures["x1"].birnbaum
        assert measures["x4"].birnbaum > measures["x2"].birnbaum
        assert measures["x3"].birnbaum == pytest.approx(1.0, abs=0.05)

    def test_fussell_vesely_in_unit_interval(self, fps_tree):
        for measure in self.fps_measures(fps_tree).values():
            assert 0.0 <= measure.fussell_vesely <= 1.0

    def test_raw_at_least_one(self, fps_tree):
        for measure in self.fps_measures(fps_tree).values():
            assert measure.risk_achievement_worth >= 1.0 - 1e-12

    def test_rrw_at_least_one(self, fps_tree):
        for measure in self.fps_measures(fps_tree).values():
            assert measure.risk_reduction_worth >= 1.0 - 1e-12

    def test_subset_of_events(self, fps_tree):
        cut_sets = brute_force_minimal_cut_sets(fps_tree)
        measures = importance_measures(fps_tree, cut_sets, events=["x1", "x5"])
        assert set(measures) == {"x1", "x5"}

    def test_unknown_event_rejected(self, fps_tree):
        cut_sets = brute_force_minimal_cut_sets(fps_tree)
        with pytest.raises(AnalysisError):
            importance_measures(fps_tree, cut_sets, events=["ghost"])

    def test_event_absent_from_cut_sets_has_zero_fv(self):
        tree = (
            FaultTreeBuilder("mixed")
            .basic_event("a", 0.2)
            .basic_event("b", 0.1)
            .basic_event("c", 0.3)
            .and_gate("g", ["a", "b"])
            .or_gate("top", ["g", "c"])
            .top("top")
            .build()
        )
        cut_sets = brute_force_minimal_cut_sets(tree)
        measures = importance_measures(tree, cut_sets)
        # every event is in some cut set here; c (a SPOF) dominates
        assert measures["c"].fussell_vesely > measures["a"].fussell_vesely

    def test_criticality_scales_birnbaum_by_probability(self, fps_tree):
        measures = self.fps_measures(fps_tree)
        for measure in measures.values():
            assert measure.criticality <= measure.birnbaum / 1e-12 or measure.criticality >= 0.0
            assert measure.criticality >= 0.0
