"""Unit and property tests for minimal path sets and the most reliable path set."""

import itertools

import pytest
from hypothesis import given, settings

from repro.analysis.pathsets import dual_tree, minimal_path_sets, most_probable_path_set
from repro.fta.builder import FaultTreeBuilder
from repro.fta.gates import GateType

from tests.conftest import small_random_trees


def is_path_set(tree, events):
    """Reference check: with every event in ``events`` false, the top event can
    never occur, whatever the remaining events do."""
    others = [name for name in tree.events_reachable_from_top() if name not in set(events)]
    for bits in itertools.product([False, True], repeat=len(others)):
        assignment = dict(zip(others, bits))
        assignment.update({name: False for name in events})
        if tree.evaluate(assignment):
            return False
    return True


class TestDualTree:
    def test_gate_types_swapped(self, fps_tree):
        dual = dual_tree(fps_tree)
        assert dual.gates["detection_failure"].gate_type is GateType.OR
        assert dual.gates["fps_failure"].gate_type is GateType.AND
        assert dual.probabilities() == fps_tree.probabilities()

    def test_voting_gate_dualised(self, voting_tree):
        dual = dual_tree(voting_tree)
        gate = dual.gates["feeders_majority_lost"]
        assert gate.gate_type is GateType.VOTING
        assert gate.k == 2  # dual of 2-of-3 is (3-2+1) = 2-of-3

    def test_double_dual_is_identity(self, fps_tree):
        double = dual_tree(dual_tree(fps_tree))
        for name, gate in fps_tree.gates.items():
            assert double.gates[name].gate_type is gate.gate_type
            assert double.gates[name].k == gate.k


class TestMinimalPathSets:
    def test_fps_path_sets(self, fps_tree):
        collection = minimal_path_sets(fps_tree)
        for path_set in collection:
            assert is_path_set(fps_tree, path_set)
        # The FPS needs one working sensor AND water AND nozzles AND a trigger path.
        expected_members = {"x3", "x4"}
        for path_set in collection:
            assert expected_members <= set(path_set)

    def test_simple_series_system(self):
        # OR tree (series system): the only minimal path set is every component.
        tree = (
            FaultTreeBuilder("series")
            .basic_event("a", 0.1)
            .basic_event("b", 0.2)
            .or_gate("top", ["a", "b"])
            .top("top")
            .build()
        )
        collection = minimal_path_sets(tree)
        assert collection.to_sorted_tuples() == [("a", "b")]

    def test_simple_parallel_system(self):
        # AND tree (parallel system): each single component is a path set.
        tree = (
            FaultTreeBuilder("parallel")
            .basic_event("a", 0.1)
            .basic_event("b", 0.2)
            .and_gate("top", ["a", "b"])
            .top("top")
            .build()
        )
        collection = minimal_path_sets(tree)
        assert collection.to_sorted_tuples() == [("a",), ("b",)]

    @settings(max_examples=20, deadline=None)
    @given(small_random_trees(min_events=4, max_events=7))
    def test_every_enumerated_set_is_a_path_set(self, tree):
        for path_set in minimal_path_sets(tree):
            assert is_path_set(tree, path_set)


class TestMostProbablePathSet:
    def test_fps_best_path_set(self, fps_tree):
        events, probability = most_probable_path_set(fps_tree)
        assert is_path_set(fps_tree, events)
        expected = 1.0
        for name in events:
            expected *= 1.0 - fps_tree.probability(name)
        assert probability == pytest.approx(expected)

    def test_parallel_system_picks_most_reliable_component(self):
        tree = (
            FaultTreeBuilder("parallel")
            .basic_event("fragile", 0.4)
            .basic_event("solid", 0.01)
            .and_gate("top", ["fragile", "solid"])
            .top("top")
            .build()
        )
        events, probability = most_probable_path_set(tree)
        assert events == ("solid",)
        assert probability == pytest.approx(0.99)

    @settings(max_examples=20, deadline=None)
    @given(small_random_trees(min_events=4, max_events=7))
    def test_matches_exhaustive_ranking(self, tree):
        events, probability = most_probable_path_set(tree)
        assert is_path_set(tree, events)
        collection = minimal_path_sets(tree)
        best_set, best_probability = collection.most_probable()
        assert probability == pytest.approx(best_probability, rel=1e-9)

    def test_path_set_and_cut_set_probabilities_are_consistent(self, fps_tree):
        """Sanity relation: the best path set survival probability must be at
        least the probability that no failure occurs at all."""
        _, best_survival = most_probable_path_set(fps_tree)
        no_failure = 1.0
        for probability in fps_tree.probabilities().values():
            no_failure *= 1.0 - probability
        assert best_survival >= no_failure - 1e-12
