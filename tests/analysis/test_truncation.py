"""Unit tests for probability-truncated cut-set enumeration."""

import pytest

from repro.analysis.mocus import mocus_minimal_cut_sets
from repro.analysis.truncation import truncated_cut_sets, truncated_top_event_probability
from repro.exceptions import AnalysisError
from repro.fta.builder import FaultTreeBuilder
from repro.workloads.generator import GeneratorConfig, random_fault_tree
from repro.workloads.library import fire_protection_system


class TestTruncatedCutSets:
    def test_low_cutoff_returns_all_cut_sets(self):
        tree = fire_protection_system()
        full = mocus_minimal_cut_sets(tree)
        truncated = truncated_cut_sets(tree, 1e-12)
        assert set(truncated.collection) == set(full)
        assert truncated.num_retained == len(full)

    def test_cutoff_filters_low_probability_sets(self):
        tree = fire_protection_system()
        # Full ranking: {x1,x2}=0.02 > {x5,x6}=0.005 > {x5,x7}=0.0025 >
        # {x4}=0.002 > {x3}=0.001.
        result = truncated_cut_sets(tree, 0.0024)
        retained = {tuple(sorted(cs)) for cs in result.collection}
        assert retained == {("x1", "x2"), ("x5", "x6"), ("x5", "x7")}
        assert result.num_pruned > 0

    def test_mpmcs_survives_any_cutoff_below_its_probability(self):
        tree = fire_protection_system()
        result = truncated_cut_sets(tree, 0.02)
        events, probability = result.most_probable()
        assert events == ("x1", "x2")
        assert probability == pytest.approx(0.02)

    def test_cutoff_above_everything_returns_empty(self):
        tree = fire_protection_system()
        result = truncated_cut_sets(tree, 0.5)
        assert result.num_retained == 0

    def test_agrees_with_mocus_after_filtering(self):
        tree = random_fault_tree(GeneratorConfig(num_basic_events=30, seed=5))
        cutoff = 1e-4
        probabilities = tree.probabilities()
        full = mocus_minimal_cut_sets(tree)
        expected = {
            cs
            for cs in full
            if _product(cs, probabilities) >= cutoff
        }
        result = truncated_cut_sets(tree, cutoff)
        assert set(result.collection) == expected

    def test_validation(self):
        tree = fire_protection_system()
        with pytest.raises(AnalysisError):
            truncated_cut_sets(tree, 0.0)
        with pytest.raises(AnalysisError):
            truncated_cut_sets(tree, 1.5)

    def test_candidate_limit(self):
        tree = random_fault_tree(GeneratorConfig(num_basic_events=60, seed=3))
        with pytest.raises(AnalysisError):
            truncated_cut_sets(tree, 1e-30, max_candidates=5)


class TestTruncatedTopEvent:
    def test_lower_bound_property(self):
        tree = fire_protection_system()
        full = truncated_top_event_probability(tree, 1e-12)
        truncated = truncated_top_event_probability(tree, 0.0024)
        assert truncated["probability"] <= full["probability"]
        assert truncated["num_retained"] < full["num_retained"]

    def test_empty_retention_reports_zero(self):
        tree = fire_protection_system()
        report = truncated_top_event_probability(tree, 0.9)
        assert report["probability"] == 0.0
        assert report["num_retained"] == 0

    def test_report_fields(self):
        report = truncated_top_event_probability(fire_protection_system(), 1e-6)
        assert report["tree"] == "fire-protection-system"
        assert report["cutoff"] == 1e-6
        assert report["method"] == "min-cut-upper-bound"


def _product(cut_set, probabilities):
    product = 1.0
    for name in cut_set:
        product *= probabilities[name]
    return product
