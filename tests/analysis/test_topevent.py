"""Unit tests for top-event probability estimators."""

import pytest
from hypothesis import given, settings

from repro.analysis.bruteforce import brute_force_minimal_cut_sets
from repro.analysis.topevent import (
    birnbaum_bound,
    exact_top_event_probability,
    rare_event_approximation,
    top_event_probability_from_cut_sets,
)
from repro.bdd.probability import top_event_probability as bdd_probability
from repro.exceptions import AnalysisError

from tests.conftest import all_assignments, small_random_trees


def exhaustive_probability(tree):
    """Ground-truth P(top) by summing over all event-state combinations."""
    events = sorted(tree.events_reachable_from_top())
    probabilities = tree.probabilities()
    total = 0.0
    for assignment in all_assignments(events):
        if tree.evaluate(assignment):
            weight = 1.0
            for name in events:
                weight *= probabilities[name] if assignment[name] else 1.0 - probabilities[name]
            total += weight
    return total


class TestSingleCutSet:
    def test_exact_probability_of_one_cut_set(self):
        cut_sets = [{"a", "b"}]
        probabilities = {"a": 0.5, "b": 0.2}
        assert exact_top_event_probability(cut_sets, probabilities) == pytest.approx(0.1)
        assert rare_event_approximation(cut_sets, probabilities) == pytest.approx(0.1)
        assert birnbaum_bound(cut_sets, probabilities) == pytest.approx(0.1)


class TestTwoDisjointCutSets:
    CUT_SETS = [{"a"}, {"b"}]
    PROBS = {"a": 0.1, "b": 0.2}

    def test_exact_uses_inclusion_exclusion(self):
        expected = 0.1 + 0.2 - 0.1 * 0.2
        assert exact_top_event_probability(self.CUT_SETS, self.PROBS) == pytest.approx(expected)

    def test_rare_event_overestimates(self):
        assert rare_event_approximation(self.CUT_SETS, self.PROBS) == pytest.approx(0.3)

    def test_birnbaum_bound_exact_for_disjoint_sets(self):
        expected = 1 - (1 - 0.1) * (1 - 0.2)
        assert birnbaum_bound(self.CUT_SETS, self.PROBS) == pytest.approx(expected)


class TestFPSExample:
    def test_exact_matches_exhaustive_enumeration(self, fps_tree):
        cut_sets = list(brute_force_minimal_cut_sets(fps_tree))
        exact = exact_top_event_probability(cut_sets, fps_tree.probabilities())
        assert exact == pytest.approx(exhaustive_probability(fps_tree), rel=1e-9)

    def test_bdd_matches_exact(self, fps_tree):
        cut_sets = list(brute_force_minimal_cut_sets(fps_tree))
        exact = exact_top_event_probability(cut_sets, fps_tree.probabilities())
        assert bdd_probability(fps_tree) == pytest.approx(exact, rel=1e-9)

    def test_bounds_order(self, fps_tree):
        cut_sets = list(brute_force_minimal_cut_sets(fps_tree))
        probabilities = fps_tree.probabilities()
        exact = exact_top_event_probability(cut_sets, probabilities)
        upper = birnbaum_bound(cut_sets, probabilities)
        rare = rare_event_approximation(cut_sets, probabilities)
        assert exact <= upper + 1e-12
        assert upper <= rare + 1e-12


class TestMethodSelection:
    def test_auto_prefers_exact_when_small(self, fps_tree):
        cut_sets = list(brute_force_minimal_cut_sets(fps_tree))
        probabilities = fps_tree.probabilities()
        auto = top_event_probability_from_cut_sets(cut_sets, probabilities, method="auto")
        exact = exact_top_event_probability(cut_sets, probabilities)
        assert auto == pytest.approx(exact)

    def test_auto_falls_back_to_bound_when_large(self):
        cut_sets = [{f"e{i}"} for i in range(30)]
        probabilities = {f"e{i}": 0.01 for i in range(30)}
        value = top_event_probability_from_cut_sets(cut_sets, probabilities, method="auto")
        assert value == pytest.approx(birnbaum_bound(cut_sets, probabilities))

    def test_explicit_methods(self):
        cut_sets = [{"a"}, {"b"}]
        probabilities = {"a": 0.1, "b": 0.2}
        for method in ("exact", "rare-event", "min-cut-upper-bound"):
            value = top_event_probability_from_cut_sets(cut_sets, probabilities, method=method)
            assert 0.0 < value <= 0.3 + 1e-12

    def test_unknown_method_rejected(self):
        with pytest.raises(AnalysisError):
            top_event_probability_from_cut_sets([{"a"}], {"a": 0.1}, method="quantum")

    def test_exact_cut_set_limit(self):
        cut_sets = [{f"e{i}"} for i in range(25)]
        probabilities = {f"e{i}": 0.01 for i in range(25)}
        with pytest.raises(AnalysisError):
            exact_top_event_probability(cut_sets, probabilities, max_cut_sets=20)

    def test_empty_cut_sets_rejected(self):
        with pytest.raises(AnalysisError):
            rare_event_approximation([], {"a": 0.5})


class TestAgainstExhaustiveEnumeration:
    @settings(max_examples=20, deadline=None)
    @given(small_random_trees(min_events=4, max_events=7))
    def test_exact_and_bdd_match_ground_truth(self, tree):
        reference = exhaustive_probability(tree)
        assert bdd_probability(tree) == pytest.approx(reference, rel=1e-9, abs=1e-12)
        cut_sets = list(brute_force_minimal_cut_sets(tree))
        if len(cut_sets) <= 16:
            exact = exact_top_event_probability(cut_sets, tree.probabilities())
            assert exact == pytest.approx(reference, rel=1e-9, abs=1e-12)
