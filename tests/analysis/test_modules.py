"""Unit tests for independent-module detection."""

import pytest

from repro.analysis.modules import find_modules, modularisation_report
from repro.exceptions import FaultTreeError
from repro.fta.builder import FaultTreeBuilder
from repro.fta.tree import FaultTree
from repro.workloads.library import fire_protection_system, three_motor_system


class TestFindModules:
    def test_pure_tree_every_gate_is_a_module(self):
        # The FPS example is a strict tree (no shared nodes), so every gate
        # roots a module.
        tree = fire_protection_system()
        modules = find_modules(tree)
        assert {module.gate for module in modules} == set(tree.gate_names)

    def test_top_gate_is_always_a_module(self):
        tree = fire_protection_system()
        modules = find_modules(tree)
        assert modules[0].gate == tree.top_event
        assert modules[0].size == tree.num_nodes

    def test_include_top_false_drops_the_top_gate(self):
        tree = fire_protection_system()
        modules = find_modules(tree, include_top=False)
        assert tree.top_event not in {module.gate for module in modules}

    def test_shared_events_break_modularity(self):
        # In the three-motor system, control_circuit and power_supply feed all
        # three motor gates, so none of the motor gates is a module.
        tree = three_motor_system()
        modules = find_modules(tree)
        gates = {module.gate for module in modules}
        assert gates == {"all_motors_down"}

    def test_partial_sharing(self):
        tree = (
            FaultTreeBuilder("partial")
            .basic_event("a", 0.1)
            .basic_event("b", 0.1)
            .basic_event("c", 0.1)
            .basic_event("shared", 0.1)
            .and_gate("g1", ["a", "shared"])
            .and_gate("g2", ["b", "shared"])
            .or_gate("g3", ["c"])
            .or_gate("top", ["g1", "g2", "g3"])
            .top("top")
            .build()
        )
        modules = {module.gate for module in find_modules(tree)}
        # g1 and g2 share the event "shared", so neither is a module; g3 is.
        assert "g1" not in modules
        assert "g2" not in modules
        assert "g3" in modules
        assert "top" in modules

    def test_module_contents(self):
        tree = fire_protection_system()
        by_gate = {module.gate: module for module in find_modules(tree)}
        detection = by_gate["detection_failure"]
        assert detection.events == frozenset({"x1", "x2"})
        assert detection.gates == frozenset({"detection_failure"})
        assert detection.size == 3

    def test_invalid_tree_is_rejected(self):
        tree = FaultTree("broken")
        tree.add_basic_event("a", 0.1)
        with pytest.raises(FaultTreeError):
            find_modules(tree)


class TestModularisationReport:
    def test_report_fields(self):
        tree = fire_protection_system()
        report = modularisation_report(tree)
        assert report["tree"] == "fire-protection-system"
        assert report["num_gates"] == 5
        assert report["num_modules"] == 5
        assert report["num_proper_modules"] == 4
        assert 0.0 < report["module_fraction"] <= 1.0
        assert report["largest_proper_module"] == "suppression_failure"

    def test_report_on_dag_tree(self):
        report = modularisation_report(three_motor_system())
        assert report["num_proper_modules"] == 0
        assert report["largest_proper_module"] == ""
        assert report["largest_proper_module_size"] == 0
