"""Unit tests for cut-set contribution / MPMCS dominance analysis."""

import pytest

from repro.analysis.contributions import (
    cut_set_contributions,
    cut_sets_covering,
    mpmcs_dominance,
)
from repro.analysis.cutsets import CutSetCollection
from repro.analysis.mocus import mocus_minimal_cut_sets
from repro.exceptions import AnalysisError
from repro.workloads.library import fire_protection_system


def fps_collection():
    return mocus_minimal_cut_sets(fire_protection_system())


class TestContributions:
    def test_ranked_by_probability(self):
        contributions = cut_set_contributions(fps_collection())
        probabilities = [c.probability for c in contributions]
        assert probabilities == sorted(probabilities, reverse=True)
        assert contributions[0].events == ("x1", "x2")
        assert contributions[0].rank == 1

    def test_fractions_sum_to_one(self):
        contributions = cut_set_contributions(fps_collection())
        assert sum(c.fraction for c in contributions) == pytest.approx(1.0)
        assert contributions[-1].cumulative_fraction == pytest.approx(1.0)

    def test_cumulative_is_monotone(self):
        contributions = cut_set_contributions(fps_collection())
        cumulative = [c.cumulative_fraction for c in contributions]
        assert cumulative == sorted(cumulative)

    def test_fps_values(self):
        # Total rare-event probability: 0.02 + 0.005 + 0.0025 + 0.002 + 0.001.
        contributions = cut_set_contributions(fps_collection())
        total = 0.02 + 0.005 + 0.0025 + 0.002 + 0.001
        assert contributions[0].fraction == pytest.approx(0.02 / total)
        assert contributions[0].size == 2

    def test_empty_collection_raises(self):
        with pytest.raises(AnalysisError):
            cut_set_contributions(CutSetCollection(cut_sets=[], probabilities={}))


class TestCovering:
    def test_mpmcs_alone_covers_its_fraction(self):
        collection = fps_collection()
        dominance = mpmcs_dominance(collection)
        assert cut_sets_covering(collection, dominance) == 1

    def test_full_coverage_needs_all_cut_sets(self):
        collection = fps_collection()
        assert cut_sets_covering(collection, 1.0) == len(collection)

    def test_half_coverage(self):
        collection = fps_collection()
        # The MPMCS contributes ~65.6% of the total, so 50% needs only it.
        assert cut_sets_covering(collection, 0.5) == 1

    def test_validation(self):
        with pytest.raises(AnalysisError):
            cut_sets_covering(fps_collection(), 0.0)
        with pytest.raises(AnalysisError):
            cut_sets_covering(fps_collection(), 1.5)


class TestDominance:
    def test_fps_dominance(self):
        dominance = mpmcs_dominance(fps_collection())
        total = 0.02 + 0.005 + 0.0025 + 0.002 + 0.001
        assert dominance == pytest.approx(0.02 / total)

    def test_single_cut_set_dominance_is_one(self):
        collection = CutSetCollection(
            cut_sets=[frozenset({"a"})], probabilities={"a": 0.3}
        )
        assert mpmcs_dominance(collection) == pytest.approx(1.0)
