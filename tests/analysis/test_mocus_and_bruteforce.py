"""Unit and property tests for the MOCUS and brute-force MCS enumerators."""

import pytest
from hypothesis import given, settings

from repro.analysis.bruteforce import brute_force_minimal_cut_sets, brute_force_mpmcs
from repro.analysis.mocus import mocus_minimal_cut_sets, mocus_mpmcs
from repro.exceptions import AnalysisError
from repro.fta.builder import FaultTreeBuilder

from tests.conftest import small_random_trees


class TestFPSCutSets:
    """Ground truth for the paper's example tree: exactly five minimal cut sets."""

    EXPECTED = {("x3",), ("x4",), ("x1", "x2"), ("x5", "x6"), ("x5", "x7")}

    def test_brute_force(self, fps_tree):
        collection = brute_force_minimal_cut_sets(fps_tree)
        assert set(collection.to_sorted_tuples()) == self.EXPECTED

    def test_mocus(self, fps_tree):
        collection = mocus_minimal_cut_sets(fps_tree)
        assert set(collection.to_sorted_tuples()) == self.EXPECTED

    def test_mpmcs_from_both(self, fps_tree):
        assert brute_force_mpmcs(fps_tree) == (("x1", "x2"), pytest.approx(0.02))
        assert mocus_mpmcs(fps_tree) == (("x1", "x2"), pytest.approx(0.02))


class TestVotingGates:
    def test_mocus_expands_voting_gates(self, voting_tree):
        collection = mocus_minimal_cut_sets(voting_tree)
        reference = brute_force_minimal_cut_sets(voting_tree)
        assert collection.to_sorted_tuples() == reference.to_sorted_tuples()
        # 2-of-3 over OR-pairs: 3 feeder pairs x 2 components each = 12 pairs + busbar
        assert len(collection) == 13

    def test_explicit_voting_example(self):
        tree = (
            FaultTreeBuilder("vote")
            .basic_event("a", 0.1)
            .basic_event("b", 0.2)
            .basic_event("c", 0.3)
            .voting_gate("top", 2, ["a", "b", "c"])
            .top("top")
            .build()
        )
        collection = mocus_minimal_cut_sets(tree)
        assert set(collection.to_sorted_tuples()) == {("a", "b"), ("a", "c"), ("b", "c")}


class TestSharedEvents:
    def test_shared_event_cut_sets(self, shared_events_tree):
        collection = mocus_minimal_cut_sets(shared_events_tree)
        expected = {
            ("control_circuit",),
            ("power_supply",),
            ("motor_1", "motor_2", "motor_3"),
        }
        assert set(collection.to_sorted_tuples()) == expected


class TestLimitsAndErrors:
    def test_brute_force_event_limit(self):
        builder = FaultTreeBuilder("big")
        names = []
        for index in range(25):
            name = f"e{index}"
            builder.basic_event(name, 0.1)
            names.append(name)
        tree = builder.or_gate("top", names).top("top").build()
        with pytest.raises(AnalysisError, match="limit"):
            brute_force_minimal_cut_sets(tree, max_events=20)

    def test_mocus_candidate_limit(self, fps_tree):
        with pytest.raises(AnalysisError, match="candidate limit"):
            mocus_minimal_cut_sets(fps_tree, max_candidates=2)

    def test_mpmcs_of_tree_without_cut_sets_is_impossible(self):
        # Every coherent tree with >= 1 event has at least one cut set (all
        # events), so mocus_mpmcs always succeeds on valid trees.
        tree = (
            FaultTreeBuilder("t").basic_event("a", 0.5).or_gate("top", ["a"]).top("top").build()
        )
        assert mocus_mpmcs(tree)[0] == ("a",)


class TestAgreementProperty:
    @settings(max_examples=30, deadline=None)
    @given(small_random_trees(min_events=4, max_events=10))
    def test_mocus_equals_brute_force(self, tree):
        mocus = mocus_minimal_cut_sets(tree)
        brute = brute_force_minimal_cut_sets(tree)
        assert mocus.to_sorted_tuples() == brute.to_sorted_tuples()

    @settings(max_examples=25, deadline=None)
    @given(small_random_trees(min_events=4, max_events=9))
    def test_every_enumerated_set_is_minimal(self, tree):
        for cut_set in mocus_minimal_cut_sets(tree):
            assert tree.is_minimal_cut_set(cut_set)
