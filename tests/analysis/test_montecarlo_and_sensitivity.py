"""Unit tests for Monte Carlo estimation and sensitivity/uncertainty analysis."""

import pytest

from repro.analysis.montecarlo import estimate_top_event_probability
from repro.analysis.sensitivity import mpmcs_stability, tornado_analysis
from repro.bdd.probability import top_event_probability
from repro.core.pipeline import MPMCSSolver
from repro.exceptions import AnalysisError
from repro.fta.builder import FaultTreeBuilder
from repro.maxsat import RC2Engine
from repro.workloads.generator import random_fault_tree


class TestMonteCarlo:
    def test_estimate_close_to_exact_on_fps(self, fps_tree):
        estimate = estimate_top_event_probability(fps_tree, samples=20_000, seed=1)
        exact = top_event_probability(fps_tree)
        assert estimate.within(exact, sigmas=4.0)
        assert estimate.confidence_low <= estimate.probability <= estimate.confidence_high
        assert estimate.samples == 20_000

    def test_estimate_is_deterministic_for_fixed_seed(self, fps_tree):
        first = estimate_top_event_probability(fps_tree, samples=2_000, seed=42)
        second = estimate_top_event_probability(fps_tree, samples=2_000, seed=42)
        assert first.probability == second.probability

    def test_different_seeds_differ(self, fps_tree):
        first = estimate_top_event_probability(fps_tree, samples=2_000, seed=1)
        second = estimate_top_event_probability(fps_tree, samples=2_000, seed=2)
        assert first.probability != second.probability

    def test_importance_sampling_helps_rare_events(self):
        tree = (
            FaultTreeBuilder("rare")
            .basic_event("a", 1e-4)
            .basic_event("b", 2e-4)
            .and_gate("top", ["a", "b"])
            .top("top")
            .build()
        )
        exact = top_event_probability(tree)
        plain = estimate_top_event_probability(tree, samples=5_000, seed=3)
        boosted = estimate_top_event_probability(
            tree, samples=5_000, seed=3, importance_factor=1000.0
        )
        # Crude sampling almost surely sees zero hits at p=2e-8; importance
        # sampling must land within a few standard errors of the exact value.
        assert boosted.hits > 0
        assert boosted.within(exact, sigmas=5.0)
        assert plain.probability >= 0.0

    def test_certain_event(self):
        tree = (
            FaultTreeBuilder("sure").basic_event("a", 1.0).or_gate("top", ["a"]).top("top").build()
        )
        estimate = estimate_top_event_probability(tree, samples=500, seed=0)
        assert estimate.probability == pytest.approx(1.0)

    def test_invalid_parameters_rejected(self, fps_tree):
        with pytest.raises(AnalysisError):
            estimate_top_event_probability(fps_tree, samples=0)
        with pytest.raises(AnalysisError):
            estimate_top_event_probability(fps_tree, importance_factor=0.5)
        with pytest.raises(AnalysisError):
            estimate_top_event_probability(fps_tree, confidence=1.5)

    def test_medium_random_tree_matches_bdd(self):
        tree = random_fault_tree(num_basic_events=30, seed=5)
        exact = top_event_probability(tree)
        estimate = estimate_top_event_probability(tree, samples=30_000, seed=7)
        assert estimate.within(exact, sigmas=5.0)


class TestMPMCSStability:
    def test_stable_tree_keeps_its_mpmcs(self):
        # One cut set is orders of magnitude more likely: perturbations within
        # a factor of 2 can never overturn the ranking.
        tree = (
            FaultTreeBuilder("stable")
            .basic_event("likely", 0.5)
            .basic_event("rare_a", 1e-6)
            .basic_event("rare_b", 1e-6)
            .and_gate("rare_pair", ["rare_a", "rare_b"])
            .or_gate("top", ["likely", "rare_pair"])
            .top("top")
            .build()
        )
        report = mpmcs_stability(tree, samples=15, error_factor=2.0, seed=0)
        assert report.baseline == ("likely",)
        assert report.baseline_win_rate == 1.0
        assert report.ranked()[0][0] == ("likely",)

    def test_unstable_tree_reports_split(self):
        # Two nearly tied cut sets: large perturbations flip the winner.
        tree = (
            FaultTreeBuilder("tied")
            .basic_event("a", 0.100)
            .basic_event("b", 0.101)
            .or_gate("top", ["a", "b"])
            .top("top")
            .build()
        )
        report = mpmcs_stability(tree, samples=40, error_factor=3.0, seed=1)
        assert 0.0 < report.baseline_win_rate < 1.0
        assert set(report.win_counts) == {("a",), ("b",)}
        assert sum(report.win_counts.values()) == 40

    def test_probability_range_is_populated(self, fps_tree):
        report = mpmcs_stability(fps_tree, samples=10, error_factor=2.0, seed=2)
        low, high = report.probability_range
        assert 0.0 < low <= high <= 1.0

    def test_invalid_parameters_rejected(self, fps_tree):
        with pytest.raises(AnalysisError):
            mpmcs_stability(fps_tree, samples=0)
        with pytest.raises(AnalysisError):
            mpmcs_stability(fps_tree, error_factor=1.0)


class TestTornado:
    def test_entries_sorted_by_swing(self, fps_tree):
        entries = tornado_analysis(fps_tree, factor=5.0)
        swings = [entry.swing for entry in entries]
        assert swings == sorted(swings, reverse=True)
        assert {entry.event for entry in entries} == set(fps_tree.event_names)

    def test_most_sensitive_event_is_x2(self, fps_tree):
        # At factor 10, x2 can rise from 0.1 to 1.0, pushing the probability of
        # the dominant {x1, x2} cut set to 0.2 — a larger swing than the
        # low-probability single points of failure x3/x4 can produce.
        entries = tornado_analysis(fps_tree, factor=10.0)
        assert entries[0].event == "x2"
        by_event = {entry.event: entry for entry in entries}
        assert by_event["x2"].swing > by_event["x3"].swing

    def test_subset_of_events(self, fps_tree):
        entries = tornado_analysis(fps_tree, events=["x1", "x5"])
        assert {entry.event for entry in entries} == {"x1", "x5"}

    def test_swing_bounds_are_consistent(self, fps_tree):
        baseline = top_event_probability(fps_tree)
        for entry in tornado_analysis(fps_tree, factor=3.0):
            assert entry.low_top_probability <= baseline + 1e-12
            assert entry.high_top_probability >= baseline - 1e-12

    def test_invalid_parameters_rejected(self, fps_tree):
        with pytest.raises(AnalysisError):
            tornado_analysis(fps_tree, factor=1.0)
        with pytest.raises(AnalysisError):
            tornado_analysis(fps_tree, events=["ghost"])
