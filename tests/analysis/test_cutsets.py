"""Unit tests for cut-set algebra."""

import pytest

from repro.analysis.cutsets import CutSetCollection, is_subsumed, minimise_cut_sets
from repro.exceptions import AnalysisError


class TestMinimise:
    def test_supersets_removed(self):
        minimal = minimise_cut_sets([{"a"}, {"a", "b"}, {"b", "c"}])
        assert minimal == [frozenset({"a"}), frozenset({"b", "c"})]

    def test_duplicates_removed(self):
        minimal = minimise_cut_sets([{"a", "b"}, {"b", "a"}])
        assert minimal == [frozenset({"a", "b"})]

    def test_result_sorted_by_size_then_name(self):
        minimal = minimise_cut_sets([{"z"}, {"a"}, {"m", "n"}])
        assert minimal == [frozenset({"a"}), frozenset({"z"}), frozenset({"m", "n"})]

    def test_empty_input(self):
        assert minimise_cut_sets([]) == []

    def test_empty_set_subsumes_everything(self):
        assert minimise_cut_sets([set(), {"a"}, {"b", "c"}]) == [frozenset()]

    def test_is_subsumed(self):
        existing = [{"a"}, {"b", "c"}]
        assert is_subsumed({"a", "x"}, existing)
        assert is_subsumed({"b", "c"}, existing)
        assert not is_subsumed({"b"}, existing)


class TestCollection:
    def build(self):
        return CutSetCollection(
            cut_sets=[{"a", "b"}, {"c"}, {"a", "b", "c"}],
            probabilities={"a": 0.5, "b": 0.1, "c": 0.01},
        )

    def test_construction_minimises(self):
        collection = self.build()
        assert len(collection) == 2
        assert {"a", "b", "c"} not in collection

    def test_membership_and_iteration(self):
        collection = self.build()
        assert {"c"} in collection
        assert {"a"} not in collection
        assert sorted(len(cs) for cs in collection) == [1, 2]

    def test_order(self):
        assert self.build().order() == 1

    def test_of_order(self):
        assert self.build().of_order(2) == [frozenset({"a", "b"})]

    def test_events_union(self):
        assert self.build().events() == frozenset({"a", "b", "c"})

    def test_ranked_by_probability(self):
        ranked = self.build().ranked()
        assert ranked[0] == (frozenset({"a", "b"}), pytest.approx(0.05))
        assert ranked[1] == (frozenset({"c"}), pytest.approx(0.01))

    def test_most_probable_is_mpmcs(self):
        cut_set, probability = self.build().most_probable()
        assert cut_set == frozenset({"a", "b"})
        assert probability == pytest.approx(0.05)

    def test_probability_of_single_set(self):
        assert self.build().probability_of({"a", "b"}) == pytest.approx(0.05)

    def test_quantitative_queries_require_probabilities(self):
        collection = CutSetCollection(cut_sets=[{"a"}])
        with pytest.raises(AnalysisError):
            collection.ranked()
        with pytest.raises(AnalysisError):
            collection.most_probable()

    def test_empty_collection_errors(self):
        collection = CutSetCollection(cut_sets=[], probabilities={})
        with pytest.raises(AnalysisError):
            collection.order()
        with pytest.raises(AnalysisError):
            collection.most_probable()

    def test_to_sorted_tuples_deterministic(self):
        assert self.build().to_sorted_tuples() == [("c",), ("a", "b")]
