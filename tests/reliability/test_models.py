"""Unit tests for the component failure/repair models."""

import math

import pytest

from repro.exceptions import ProbabilityError
from repro.reliability.models import (
    ExponentialFailure,
    FailureModel,
    FixedProbability,
    PeriodicallyTestedComponent,
    RepairableComponent,
    WeibullFailure,
)


class TestFixedProbability:
    def test_is_constant_in_time(self):
        model = FixedProbability(0.2)
        assert model.probability_at(0.0) == 0.2
        assert model.probability_at(10.0) == 0.2
        assert model.probability_at(1e6) == 0.2

    def test_zero_and_one_are_accepted(self):
        assert FixedProbability(0.0).probability_at(5.0) == 0.0
        assert FixedProbability(1.0).probability_at(5.0) == 1.0

    @pytest.mark.parametrize("bad", [-0.1, 1.5, float("nan"), float("inf")])
    def test_rejects_out_of_range_probability(self, bad):
        with pytest.raises(ProbabilityError):
            FixedProbability(bad)

    def test_rejects_negative_time(self):
        with pytest.raises(ProbabilityError):
            FixedProbability(0.5).probability_at(-1.0)

    def test_describe_mentions_value(self):
        assert "0.25" in FixedProbability(0.25).describe()

    def test_mttf_is_undefined(self):
        assert FixedProbability(0.25).mean_time_to_failure() is None


class TestExponentialFailure:
    def test_zero_time_gives_zero_probability(self):
        assert ExponentialFailure(1e-3).probability_at(0.0) == 0.0

    def test_matches_analytic_formula(self):
        rate = 2e-4
        model = ExponentialFailure(rate)
        for t in (1.0, 100.0, 5000.0):
            assert model.probability_at(t) == pytest.approx(1.0 - math.exp(-rate * t))

    def test_monotone_in_time(self):
        model = ExponentialFailure(1e-3)
        times = [0.0, 1.0, 10.0, 100.0, 1000.0, 10000.0]
        values = [model.probability_at(t) for t in times]
        assert values == sorted(values)
        assert all(0.0 <= v < 1.0 for v in values)

    def test_mttf(self):
        assert ExponentialFailure(0.01).mean_time_to_failure() == pytest.approx(100.0)

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects_bad_rate(self, bad):
        with pytest.raises(ProbabilityError):
            ExponentialFailure(bad)


class TestWeibullFailure:
    def test_shape_one_reduces_to_exponential(self):
        scale = 500.0
        weibull = WeibullFailure(shape=1.0, scale=scale)
        exponential = ExponentialFailure(1.0 / scale)
        for t in (0.0, 10.0, 250.0, 2000.0):
            assert weibull.probability_at(t) == pytest.approx(exponential.probability_at(t))

    def test_wearout_shape_grows_faster_late(self):
        wearout = WeibullFailure(shape=3.0, scale=1000.0)
        assert wearout.probability_at(100.0) < ExponentialFailure(1e-3).probability_at(100.0)
        assert wearout.probability_at(3000.0) > 0.99

    def test_mttf_uses_gamma_function(self):
        model = WeibullFailure(shape=2.0, scale=100.0)
        assert model.mean_time_to_failure() == pytest.approx(100.0 * math.gamma(1.5))

    @pytest.mark.parametrize("shape,scale", [(0.0, 1.0), (1.0, 0.0), (-2.0, 10.0)])
    def test_rejects_bad_parameters(self, shape, scale):
        with pytest.raises(ProbabilityError):
            WeibullFailure(shape=shape, scale=scale)


class TestRepairableComponent:
    def test_converges_to_steady_state(self):
        model = RepairableComponent(failure_rate=1e-3, repair_rate=0.1)
        steady = model.steady_state_unavailability
        assert steady == pytest.approx(1e-3 / (1e-3 + 0.1))
        assert model.probability_at(1e6) == pytest.approx(steady, rel=1e-9)

    def test_transient_below_steady_state(self):
        model = RepairableComponent(failure_rate=1e-3, repair_rate=0.05)
        for t in (0.0, 1.0, 10.0, 100.0):
            assert model.probability_at(t) <= model.steady_state_unavailability + 1e-15

    def test_small_time_behaviour_is_lambda_t(self):
        model = RepairableComponent(failure_rate=1e-4, repair_rate=1e-2)
        t = 0.01
        assert model.probability_at(t) == pytest.approx(1e-4 * t, rel=1e-3)

    def test_mttf(self):
        assert RepairableComponent(2e-3, 0.1).mean_time_to_failure() == pytest.approx(500.0)

    def test_rejects_bad_rates(self):
        with pytest.raises(ProbabilityError):
            RepairableComponent(failure_rate=0.0, repair_rate=0.1)
        with pytest.raises(ProbabilityError):
            RepairableComponent(failure_rate=0.1, repair_rate=-1.0)


class TestPeriodicallyTestedComponent:
    def test_resets_after_each_test(self):
        model = PeriodicallyTestedComponent(failure_rate=1e-3, test_interval=100.0)
        just_before = model.probability_at(99.99)
        just_after = model.probability_at(100.01)
        assert just_after < just_before

    def test_within_first_interval_matches_exponential(self):
        model = PeriodicallyTestedComponent(failure_rate=1e-3, test_interval=1000.0)
        exponential = ExponentialFailure(1e-3)
        for t in (1.0, 100.0, 999.0):
            assert model.probability_at(t) == pytest.approx(exponential.probability_at(t))

    def test_average_unavailability_close_to_half_lambda_tau(self):
        model = PeriodicallyTestedComponent(failure_rate=1e-5, test_interval=100.0)
        approx = 1e-5 * 100.0 / 2.0
        assert model.average_unavailability() == pytest.approx(approx, rel=1e-3)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ProbabilityError):
            PeriodicallyTestedComponent(failure_rate=-1.0, test_interval=10.0)
        with pytest.raises(ProbabilityError):
            PeriodicallyTestedComponent(failure_rate=1e-3, test_interval=0.0)


class TestBaseClass:
    def test_probability_at_is_abstract(self):
        with pytest.raises(NotImplementedError):
            FailureModel().probability_at(1.0)

    def test_describe_is_abstract(self):
        with pytest.raises(NotImplementedError):
            FailureModel().describe()

    def test_default_mttf_is_none(self):
        assert FailureModel().mean_time_to_failure() is None

    def test_all_models_describe_themselves(self):
        models = [
            FixedProbability(0.1),
            ExponentialFailure(1e-3),
            WeibullFailure(shape=2.0, scale=100.0),
            RepairableComponent(1e-3, 0.1),
            PeriodicallyTestedComponent(1e-3, 100.0),
        ]
        for model in models:
            text = model.describe()
            assert isinstance(text, str) and text
