"""Unit tests for mission-time curves and the MPMCS-over-time analysis."""

import pytest

from repro.bdd.probability import top_event_probability
from repro.core.pipeline import MPMCSSolver
from repro.exceptions import AnalysisError
from repro.fta.builder import FaultTreeBuilder
from repro.maxsat.rc2 import RC2Engine
from repro.reliability.assignment import ReliabilityAssignment
from repro.reliability.curves import (
    birnbaum_importance_over_time,
    mpmcs_crossovers,
    mpmcs_over_time,
    time_grid,
    top_event_curve,
)
from repro.reliability.models import ExponentialFailure, FixedProbability
from repro.workloads.library import fire_protection_system


def crossover_tree():
    """OR(a, AND(b, c)): {a} dominates early, {b, c} dominates late."""
    return (
        FaultTreeBuilder("crossover")
        .basic_event("a", 0.001)
        .basic_event("b", 0.001)
        .basic_event("c", 0.001)
        .and_gate("bc", ["b", "c"])
        .or_gate("top", ["a", "bc"])
        .top("top")
        .build()
    )


def crossover_assignment():
    assignment = ReliabilityAssignment(crossover_tree())
    assignment.assign("a", FixedProbability(0.001))
    assignment.assign("b", ExponentialFailure(1e-3))
    assignment.assign("c", ExponentialFailure(1e-3))
    return assignment


class TestTimeGrid:
    def test_linear_grid_includes_endpoints(self):
        grid = time_grid(0.0, 100.0, 5)
        assert grid == (0.0, 25.0, 50.0, 75.0, 100.0)

    def test_log_grid_is_geometric(self):
        grid = time_grid(1.0, 1000.0, 4, spacing="log")
        assert grid[0] == pytest.approx(1.0)
        assert grid[-1] == pytest.approx(1000.0)
        ratios = [grid[i + 1] / grid[i] for i in range(3)]
        assert all(r == pytest.approx(ratios[0]) for r in ratios)

    def test_rejects_too_few_points(self):
        with pytest.raises(AnalysisError):
            time_grid(0.0, 10.0, 1)

    def test_rejects_bad_bounds(self):
        with pytest.raises(AnalysisError):
            time_grid(10.0, 10.0, 3)
        with pytest.raises(AnalysisError):
            time_grid(-1.0, 10.0, 3)

    def test_log_requires_positive_start(self):
        with pytest.raises(AnalysisError):
            time_grid(0.0, 10.0, 3, spacing="log")

    def test_unknown_spacing(self):
        with pytest.raises(AnalysisError):
            time_grid(0.0, 10.0, 3, spacing="cubic")


class TestTopEventCurve:
    def test_monotone_for_non_repairable_models(self):
        assignment = crossover_assignment()
        curve = top_event_curve(assignment, time_grid(0.0, 5000.0, 11))
        values = curve.probabilities()
        assert all(0.0 <= v <= 1.0 for v in values)
        assert list(values) == sorted(values)

    def test_matches_bdd_probability_at_each_point(self):
        assignment = crossover_assignment()
        times = (100.0, 1000.0, 3000.0)
        curve = top_event_curve(assignment, times, method="exact")
        for point in curve.points:
            frozen = assignment.tree_at(point.time)
            assert point.value == pytest.approx(top_event_probability(frozen), rel=1e-9)

    def test_static_assignment_gives_flat_curve(self):
        assignment = ReliabilityAssignment(fire_protection_system())
        curve = top_event_curve(assignment, (0.0, 10.0, 100.0))
        first = curve.points[0].value
        assert all(point.value == pytest.approx(first) for point in curve.points)

    def test_bdd_cut_set_algorithm_agrees_with_mocus(self):
        assignment = crossover_assignment()
        times = (10.0, 500.0)
        mocus_curve = top_event_curve(assignment, times, cut_set_algorithm="mocus")
        bdd_curve = top_event_curve(assignment, times, cut_set_algorithm="bdd")
        assert mocus_curve.probabilities() == pytest.approx(bdd_curve.probabilities())

    def test_rows_and_final_probability(self):
        assignment = crossover_assignment()
        curve = top_event_curve(assignment, (10.0, 100.0))
        rows = curve.to_rows()
        assert len(rows) == 2
        assert curve.final_probability() == rows[-1][1]
        assert curve.num_cut_sets == 2

    def test_requires_times(self):
        with pytest.raises(AnalysisError):
            top_event_curve(crossover_assignment(), ())

    def test_unknown_cut_set_algorithm(self):
        with pytest.raises(AnalysisError):
            top_event_curve(crossover_assignment(), (1.0,), cut_set_algorithm="magic")


class TestMPMCSOverTime:
    def test_crossover_is_detected(self):
        assignment = crossover_assignment()
        samples = mpmcs_over_time(
            assignment,
            time_grid(1.0, 5000.0, 8, spacing="log"),
            solver=MPMCSSolver(single_engine=RC2Engine()),
        )
        assert samples[0].events == ("a",)
        assert samples[-1].events == ("b", "c")
        crossovers = mpmcs_crossovers(samples)
        assert len(crossovers) == 1
        before, after = crossovers[0]
        assert before.events == ("a",)
        assert after.events == ("b", "c")

    def test_static_tree_has_no_crossover(self):
        assignment = ReliabilityAssignment(fire_protection_system())
        samples = mpmcs_over_time(
            assignment, (1.0, 10.0, 100.0), solver=MPMCSSolver(single_engine=RC2Engine())
        )
        assert all(sample.events == ("x1", "x2") for sample in samples)
        assert mpmcs_crossovers(samples) == []

    def test_probabilities_are_consistent_with_frozen_tree(self):
        assignment = crossover_assignment()
        samples = mpmcs_over_time(
            assignment, (2000.0,), solver=MPMCSSolver(single_engine=RC2Engine())
        )
        frozen = assignment.tree_at(2000.0)
        expected = 1.0
        for name in samples[0].events:
            expected *= frozen.probability(name)
        assert samples[0].probability == pytest.approx(expected)

    def test_requires_times(self):
        with pytest.raises(AnalysisError):
            mpmcs_over_time(crossover_assignment(), ())


class TestImportanceOverTime:
    def test_shapes_and_selection(self):
        assignment = crossover_assignment()
        curves = birnbaum_importance_over_time(
            assignment, (10.0, 1000.0, 4000.0), events=("a", "b")
        )
        assert set(curves) == {"a", "b"}
        assert all(len(points) == 3 for points in curves.values())

    def test_importance_of_aging_component_grows(self):
        assignment = crossover_assignment()
        curves = birnbaum_importance_over_time(assignment, (10.0, 4000.0))
        b_curve = curves["b"]
        assert b_curve[-1].value > b_curve[0].value

    def test_requires_times(self):
        with pytest.raises(AnalysisError):
            birnbaum_importance_over_time(crossover_assignment(), ())
