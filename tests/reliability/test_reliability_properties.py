"""Property-based tests for the reliability models and curves."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reliability.models import (
    ExponentialFailure,
    PeriodicallyTestedComponent,
    RepairableComponent,
    WeibullFailure,
)

rates = st.floats(min_value=1e-7, max_value=1.0, allow_nan=False, allow_infinity=False)
times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestExponentialProperties:
    @given(rate=rates, time=times)
    def test_probability_in_unit_interval(self, rate, time):
        # exp(-rate * time) underflows to 0 for huge exposures, so 1.0 is reachable.
        value = ExponentialFailure(rate).probability_at(time)
        assert 0.0 <= value <= 1.0

    @given(rate=rates, t1=times, t2=times)
    def test_monotone_in_time(self, rate, t1, t2):
        model = ExponentialFailure(rate)
        lo, hi = sorted((t1, t2))
        assert model.probability_at(lo) <= model.probability_at(hi) + 1e-15

    @given(rate=rates, time=times)
    def test_bounded_by_rate_times_time(self, rate, time):
        # 1 - exp(-x) <= x for all x >= 0.
        assert ExponentialFailure(rate).probability_at(time) <= rate * time + 1e-12


class TestWeibullProperties:
    @given(
        shape=st.floats(min_value=0.5, max_value=5.0),
        scale=st.floats(min_value=1.0, max_value=1e5),
        time=times,
    )
    def test_probability_in_unit_interval(self, shape, scale, time):
        value = WeibullFailure(shape=shape, scale=scale).probability_at(time)
        assert 0.0 <= value <= 1.0

    @given(scale=st.floats(min_value=1.0, max_value=1e5), time=times)
    def test_shape_one_equals_exponential(self, scale, time):
        weibull = WeibullFailure(shape=1.0, scale=scale).probability_at(time)
        exponential = ExponentialFailure(1.0 / scale).probability_at(time)
        assert weibull == pytest.approx(exponential, rel=1e-9, abs=1e-12)


class TestRepairableProperties:
    @given(failure_rate=rates, repair_rate=rates, time=times)
    def test_never_exceeds_steady_state(self, failure_rate, repair_rate, time):
        model = RepairableComponent(failure_rate, repair_rate)
        assert model.probability_at(time) <= model.steady_state_unavailability + 1e-15

    @given(failure_rate=rates, repair_rate=rates, t1=times, t2=times)
    def test_monotone_in_time(self, failure_rate, repair_rate, t1, t2):
        model = RepairableComponent(failure_rate, repair_rate)
        lo, hi = sorted((t1, t2))
        assert model.probability_at(lo) <= model.probability_at(hi) + 1e-15


class TestPeriodicallyTestedProperties:
    @given(
        rate=st.floats(min_value=1e-7, max_value=1e-2),
        interval=st.floats(min_value=1.0, max_value=1e4),
        time=times,
    )
    def test_bounded_by_one_interval_exposure(self, rate, interval, time):
        model = PeriodicallyTestedComponent(failure_rate=rate, test_interval=interval)
        bound = 1.0 - math.exp(-rate * interval)
        assert model.probability_at(time) <= bound + 1e-12

    @given(
        rate=st.floats(min_value=1e-7, max_value=1e-2),
        interval=st.floats(min_value=1.0, max_value=1e4),
    )
    @settings(max_examples=50)
    def test_average_unavailability_below_worst_case(self, rate, interval):
        model = PeriodicallyTestedComponent(failure_rate=rate, test_interval=interval)
        assert 0.0 <= model.average_unavailability() <= 1.0 - math.exp(-rate * interval)
