"""Unit tests for the failure-model assignment layer."""

import math

import pytest

from repro.exceptions import AnalysisError, FaultTreeError
from repro.fta.builder import FaultTreeBuilder
from repro.reliability.assignment import MIN_PROBABILITY, ReliabilityAssignment
from repro.reliability.models import ExponentialFailure, FixedProbability, RepairableComponent
from repro.workloads.library import fire_protection_system


def simple_tree():
    return (
        FaultTreeBuilder("simple")
        .basic_event("a", 0.01)
        .basic_event("b", 0.02)
        .basic_event("c", 0.03)
        .and_gate("bc", ["b", "c"])
        .or_gate("top", ["a", "bc"])
        .top("top")
        .build()
    )


class TestConstruction:
    def test_defaults_to_static_probabilities(self):
        tree = fire_protection_system()
        assignment = ReliabilityAssignment(tree)
        probabilities = assignment.probabilities_at(12345.0)
        assert probabilities == pytest.approx(tree.probabilities())

    def test_initial_mapping_is_applied(self):
        tree = simple_tree()
        assignment = ReliabilityAssignment(tree, {"a": ExponentialFailure(1e-3)})
        assert isinstance(assignment.model_for("a"), ExponentialFailure)
        assert isinstance(assignment.model_for("b"), FixedProbability)

    def test_invalid_tree_is_rejected(self):
        from repro.fta.tree import FaultTree

        tree = FaultTree("broken")
        tree.add_basic_event("a", 0.1)
        with pytest.raises(FaultTreeError):
            ReliabilityAssignment(tree)


class TestAssign:
    def test_assign_unknown_event_raises(self):
        assignment = ReliabilityAssignment(simple_tree())
        with pytest.raises(FaultTreeError):
            assignment.assign("nope", ExponentialFailure(1e-3))

    def test_assign_non_model_raises(self):
        assignment = ReliabilityAssignment(simple_tree())
        with pytest.raises(AnalysisError):
            assignment.assign("a", 0.5)  # type: ignore[arg-type]

    def test_assign_all(self):
        assignment = ReliabilityAssignment(simple_tree())
        assignment.assign_all(
            {"a": ExponentialFailure(1e-3), "b": RepairableComponent(1e-4, 0.1)}
        )
        assert assignment.time_dependent_events() == ("a", "b")

    def test_model_for_unknown_event_raises(self):
        assignment = ReliabilityAssignment(simple_tree())
        with pytest.raises(FaultTreeError):
            assignment.model_for("zzz")

    def test_items_and_event_names(self):
        assignment = ReliabilityAssignment(simple_tree())
        names = assignment.event_names
        assert set(names) == {"a", "b", "c"}
        assert {name for name, _ in assignment.items()} == {"a", "b", "c"}


class TestMaterialisation:
    def test_probabilities_clamped_to_floor(self):
        assignment = ReliabilityAssignment(simple_tree(), {"a": ExponentialFailure(1e-3)})
        probabilities = assignment.probabilities_at(0.0)
        assert probabilities["a"] == MIN_PROBABILITY

    def test_tree_at_produces_valid_tree(self):
        assignment = ReliabilityAssignment(simple_tree(), {"a": ExponentialFailure(1e-3)})
        frozen = assignment.tree_at(1000.0)
        frozen.validate()
        assert frozen.probability("a") == pytest.approx(1.0 - math.exp(-1.0))
        assert frozen.probability("b") == 0.02
        assert frozen.gate_names == simple_tree().gate_names

    def test_tree_at_does_not_mutate_original(self):
        tree = simple_tree()
        assignment = ReliabilityAssignment(tree, {"a": ExponentialFailure(1e-2)})
        assignment.tree_at(500.0)
        assert tree.probability("a") == 0.01

    def test_tree_at_name_mentions_time(self):
        assignment = ReliabilityAssignment(simple_tree())
        assert "t=250" in assignment.tree_at(250.0).name

    def test_probability_capped_at_one(self):
        assignment = ReliabilityAssignment(
            simple_tree(), {"a": FixedProbability(1.0)}
        )
        assert assignment.probabilities_at(10.0)["a"] == 1.0
