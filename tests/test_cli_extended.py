"""Unit tests for the extended CLI subcommands (mcs, importance, topevent, Open-PSA I/O)."""

import json

import pytest

from repro.cli import main
from repro.fta.parsers.openpsa import to_openpsa
from repro.workloads.library import fire_protection_system


class TestMcsCommand:
    def test_maxsat_enumeration(self, capsys):
        assert main(["mcs", "--builtin", "fps", "--limit", "5"]) == 0
        output = capsys.readouterr().out
        assert "{x1, x2}" in output
        assert "single points of failure: x4, x3" in output

    def test_mocus_enumeration(self, capsys):
        assert main(["mcs", "--builtin", "fps", "--method", "mocus"]) == 0
        output = capsys.readouterr().out
        assert "5 minimal cut sets total" in output
        assert "{x1, x2}" in output

    def test_limit_is_respected(self, capsys):
        assert main(["mcs", "--builtin", "fps", "--limit", "2"]) == 0
        output = capsys.readouterr().out
        assert "#  1" in output and "#  2" in output and "#  3" not in output


class TestImportanceCommand:
    def test_table_printed(self, capsys):
        assert main(["importance", "--builtin", "fps", "--top", "3"]) == 0
        output = capsys.readouterr().out
        assert "Fussell-Vesely" in output
        # three data rows below the two header lines
        assert len([line for line in output.splitlines() if line.startswith("| x")]) == 3


class TestTopEventCommand:
    def test_estimates_agree(self, capsys):
        assert main(["topevent", "--builtin", "fps", "--samples", "5000"]) == 0
        output = capsys.readouterr().out
        assert "exact (BDD)" in output
        assert "3.002174e-02" in output
        assert "Monte Carlo" in output
        assert "minimal cut sets         : 5" in output


class TestOpenPsaIO:
    def test_analyze_openpsa_file(self, tmp_path, capsys):
        model = tmp_path / "fps.xml"
        model.write_text(to_openpsa(fire_protection_system()), encoding="utf-8")
        assert main(["analyze", str(model), "--quiet"]) == 0
        assert "x1, x2" in capsys.readouterr().out

    def test_explicit_openpsa_format_flag(self, tmp_path, capsys):
        model = tmp_path / "fps.model"
        model.write_text(to_openpsa(fire_protection_system()), encoding="utf-8")
        assert main(["analyze", str(model), "--quiet", "--format", "openpsa"]) == 0
        assert "0.02" in capsys.readouterr().out

    def test_generate_openpsa(self, tmp_path, capsys):
        out = tmp_path / "random.xml"
        assert main(
            ["generate", "--events", "12", "--seed", "6", "--out-format", "openpsa", "-o", str(out)]
        ) == 0
        text = out.read_text(encoding="utf-8")
        assert "<opsa-mef>" in text
        assert main(["analyze", str(out), "--quiet"]) == 0
