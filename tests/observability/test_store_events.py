"""Regression: the store's swallowed exceptions now leave a metrics/log trail."""

import pytest

from repro.observability.log import MemoryLogger, set_logger
from repro.observability.metrics import MetricsRegistry, NullMetricsRegistry, set_metrics
from repro.service.store import DiskArtifactStore

KEY = "a" * 64


@pytest.fixture()
def telemetry():
    """A fresh registry + memory logger installed for one test."""
    registry = MetricsRegistry()
    memory = MemoryLogger()
    previous_registry = set_metrics(registry)
    previous_logger = set_logger(memory)
    yield registry, memory
    set_metrics(previous_registry)
    set_logger(previous_logger)


class TestCorruptEntry:
    def test_corrupt_entry_increments_counter_and_emits_one_event(self, tmp_path, telemetry):
        registry, memory = telemetry
        store = DiskArtifactStore(tmp_path)
        store.store(KEY, "cut-sets", list(range(50)))
        path = store.path_for(KEY, "cut-sets")
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])  # torn write

        found, _ = store.load(KEY, "cut-sets")
        assert not found
        # behaviour unchanged: dropped and reads as a miss ...
        assert not path.exists()
        assert store.stats()["corrupt_dropped"] == 1
        # ... and now observable:
        assert registry.counter_value(
            "repro_store_dropped_entries_total", reason="corrupt", kind="cut-sets"
        ) == 1
        events = memory.matching("corrupt_entry_dropped")
        assert len(events) == 1
        assert events[0]["module"] == "service.store"
        assert events[0]["kind"] == "cut-sets"

    def test_clean_load_emits_no_drop_event(self, tmp_path, telemetry):
        registry, memory = telemetry
        store = DiskArtifactStore(tmp_path)
        store.store(KEY, "cut-sets", {"v": 1})
        assert store.load(KEY, "cut-sets") == (True, {"v": 1})
        assert memory.matching("corrupt_entry_dropped") == []
        assert registry.counter_value("repro_store_dropped_entries_total") == 0


class TestUnpicklableEntry:
    def test_unpicklable_value_counted_and_logged(self, tmp_path, telemetry):
        registry, memory = telemetry
        store = DiskArtifactStore(tmp_path)
        store.store(KEY, "kind", lambda: None)  # lambdas don't pickle
        assert store.stats()["skipped_unpicklable"] == 1
        assert registry.counter_value(
            "repro_store_dropped_entries_total", reason="unpicklable", kind="kind"
        ) == 1
        (event,) = memory.matching("unpicklable_entry_skipped")
        assert event["kind"] == "kind"
        assert event["error"]


class TestReadWriteCounters:
    def test_reads_and_writes_are_counted_per_kind(self, tmp_path, telemetry):
        registry, _ = telemetry
        store = DiskArtifactStore(tmp_path)
        store.store(KEY, "cut-sets", 1)
        store.load(KEY, "cut-sets")
        store.load("b" * 64, "cut-sets")  # miss still counts as a read
        assert registry.counter_value("repro_store_writes_total", kind="cut-sets") == 1
        assert registry.counter_value("repro_store_reads_total", kind="cut-sets") == 2

    def test_null_registry_keeps_store_behaviour_identical(self, tmp_path):
        previous = set_metrics(NullMetricsRegistry())
        try:
            store = DiskArtifactStore(tmp_path)
            store.store(KEY, "cut-sets", {"v": 2})
            assert store.load(KEY, "cut-sets") == (True, {"v": 2})
        finally:
            set_metrics(previous)
