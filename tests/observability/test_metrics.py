"""Metrics registry: instruments, Prometheus rendering, snapshot merging."""

import pickle
import threading

import pytest

from repro.observability.log import MemoryLogger, set_logger
from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NullMetricsRegistry,
    enable_metrics,
    get_metrics,
    scoped_metrics,
    set_metrics,
)


@pytest.fixture(autouse=True)
def _isolate_global_registry():
    """Tests here must not leak a registry into (or inherit one from) others."""
    previous = set_metrics(NullMetricsRegistry())
    yield
    set_metrics(previous)


class TestInstruments:
    def test_counters_with_labels(self):
        registry = MetricsRegistry()
        registry.inc("hits_total", kind="cnf")
        registry.inc("hits_total", 2, kind="cnf")
        registry.inc("hits_total", kind="bdd")
        assert registry.counter_value("hits_total", kind="cnf") == 3
        assert registry.counter_value("hits_total", kind="bdd") == 1
        assert registry.counter_value("hits_total") == 4  # sum over series
        assert registry.counter_value("absent_total") == 0

    def test_gauges(self):
        registry = MetricsRegistry()
        registry.set_gauge("depth", 7)
        registry.set_gauge("depth", 3)
        assert registry.gauge_value("depth") == 3
        assert registry.gauge_value("absent") is None

    def test_histograms(self):
        registry = MetricsRegistry()
        registry.observe("latency_seconds", 0.003, kind="analyze")
        registry.observe("latency_seconds", 90.0, kind="analyze")
        assert registry.histogram_count("latency_seconds", kind="analyze") == 2
        assert registry.histogram_count("latency_seconds") == 2

    def test_thread_safety_of_counters(self):
        registry = MetricsRegistry()

        def hammer():
            for _ in range(1000):
                registry.inc("races_total")

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter_value("races_total") == 8000


class TestPrometheusRendering:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.inc("repro_cache_hits_total", 5, kind="cut-sets")
        registry.set_gauge("repro_queue_depth", 2)
        text = registry.render_prometheus()
        assert "# TYPE repro_cache_hits_total counter" in text
        assert 'repro_cache_hits_total{kind="cut-sets"} 5' in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 2" in text

    def test_histogram_exposition_is_cumulative(self):
        registry = MetricsRegistry()
        registry.observe("lat", 0.0004)  # below every bound
        registry.observe("lat", 0.02)
        registry.observe("lat", 1e9)  # beyond the last bound
        text = registry.render_prometheus()
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="0.0005"} 1' in text
        assert 'lat_bucket{le="60"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text
        assert "lat_sum" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.inc("odd_total", kind='we"ird\nname')
        text = registry.render_prometheus()
        assert 'kind="we\\"ird\\nname"' in text

    def test_empty_registry_renders_empty_document(self):
        assert MetricsRegistry().render_prometheus() == "\n"


class TestSnapshotMerge:
    def test_merge_sums_counters_and_histograms_keeps_parent_gauges(self):
        parent = MetricsRegistry()
        parent.inc("c_total", 1, kind="x")
        parent.set_gauge("depth", 5)
        parent.observe("lat", 0.01)

        child = MetricsRegistry()
        child.inc("c_total", 2, kind="x")
        child.inc("c_total", 4, kind="y")
        child.set_gauge("depth", 99)
        child.observe("lat", 0.02)

        parent.merge_snapshot(child.snapshot())
        assert parent.counter_value("c_total", kind="x") == 3
        assert parent.counter_value("c_total", kind="y") == 4
        assert parent.gauge_value("depth") == 5
        assert parent.histogram_count("lat") == 2

    def test_snapshot_survives_pickling(self):
        """Snapshots cross the spawn process boundary with chunk results."""
        child = MetricsRegistry()
        child.inc("c_total", 2, kind="x")
        child.observe("lat", 0.25, kind="x")
        snapshot = pickle.loads(pickle.dumps(child.snapshot()))
        parent = MetricsRegistry()
        parent.merge_snapshot(snapshot)
        assert parent.counter_value("c_total", kind="x") == 2
        assert parent.histogram_count("lat", kind="x") == 1

    def test_merge_of_empty_snapshot_is_a_noop(self):
        parent = MetricsRegistry()
        parent.merge_snapshot(None)
        parent.merge_snapshot({})
        assert parent.render_prometheus() == "\n"

    def test_merge_drops_histogram_series_with_mismatched_buckets(self):
        parent = MetricsRegistry()
        parent.observe("lat", 0.01, buckets=(0.1, 1.0), kind="x")

        mismatched = MetricsRegistry()
        mismatched.observe("lat", 0.02, buckets=(0.5, 5.0), kind="x")
        mismatched.observe("other", 0.04, buckets=(9.0,), kind="y")
        compatible = MetricsRegistry()
        compatible.observe("lat", 0.03, buckets=(0.1, 1.0), kind="x")

        parent.merge_snapshot(mismatched.snapshot())
        parent.merge_snapshot(compatible.snapshot())
        # The mismatched series did not pollute the parent's counts: only the
        # parent's own observation plus the compatible child one remain.
        assert parent.histogram_count("lat", kind="x") == 2
        # A series the parent never saw merges fine, whatever its bounds.
        assert parent.histogram_count("other", kind="y") == 1
        assert parent.counter_value("metrics_merge_dropped_total", metric="lat") == 1
        assert parent.counter_value("metrics_merge_dropped_total") == 1

    def test_mismatched_merge_drop_is_logged(self):
        memory = MemoryLogger()
        previous = set_logger(memory)
        try:
            parent = MetricsRegistry()
            parent.observe("lat", 0.01, buckets=(0.1, 1.0))
            child = MetricsRegistry()
            child.observe("lat", 0.02, buckets=(0.5,))
            parent.merge_snapshot(child.snapshot())
        finally:
            set_logger(previous)
        dropped = memory.matching("histogram_series_dropped")
        assert len(dropped) == 1
        assert dropped[0]["name"] == "lat"
        assert dropped[0]["reason"] == "bucket bounds mismatch"


class TestGlobalRegistry:
    def test_default_is_null_and_free_of_side_effects(self):
        registry = get_metrics()
        assert not registry.is_recording
        registry.inc("ignored_total")
        registry.observe("ignored", 1.0)
        registry.set_gauge("ignored", 1.0)
        assert registry.counter_value("ignored_total") == 0
        assert registry.render_prometheus() == ""
        assert registry.snapshot() == {}

    def test_enable_metrics_is_idempotent(self):
        first = enable_metrics()
        first.inc("keep_total")
        second = enable_metrics()
        assert second is first
        assert second.counter_value("keep_total") == 1

    def test_scoped_metrics_isolates_and_restores(self):
        outer = enable_metrics()
        outer.inc("outer_total")
        with scoped_metrics() as inner:
            assert get_metrics() is inner
            get_metrics().inc("inner_total")
        assert get_metrics() is outer
        assert outer.counter_value("inner_total") == 0
        assert inner.counter_value("inner_total") == 1
        assert inner.counter_value("outer_total") == 0

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
