"""Cross-process metrics merging and campaign/sweep trace integration."""

import pytest

from repro.campaigns import CampaignRunner, CampaignSpec, sweep_stage
from repro.fta.serializers import to_json_document
from repro.observability.metrics import MetricsRegistry, set_metrics
from repro.observability.trace import Tracer, use_tracer
from repro.scenarios import SweepExecutor, probability_sweep
from repro.scenarios.serialization import scenario_to_dict
from repro.service.store import DiskArtifactStore
from repro.service.workers import run_parallel_sweep
from repro.workloads.library import fire_protection_system


@pytest.fixture()
def registry():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


def _scenarios(values=(0.001, 0.01, 0.05, 0.1)):
    return probability_sweep("x1", list(values))


class TestParallelSweepMerging:
    def test_child_process_metrics_merge_into_the_parent(self, tmp_path, registry):
        report = run_parallel_sweep(
            fire_protection_system(),
            _scenarios(),
            workers=2,
            store_path=str(tmp_path),
        )
        assert len(report) == 4
        # The analyses ran in spawn children; their counters must have been
        # shipped back as snapshots and folded into this process's registry.
        assert registry.counter_value("repro_analyses_total") > 0
        assert registry.counter_value(
            "repro_campaign_chunks_total", result="executed"
        ) > 0

    def test_profiles_merge_across_workers(self, tmp_path, registry):
        parallel = run_parallel_sweep(
            fire_protection_system(), _scenarios(), workers=2, store_path=str(tmp_path)
        )
        sequential = SweepExecutor().run(fire_protection_system(), _scenarios())
        # Telemetry must not perturb results: canonical dicts stay identical.
        assert parallel.to_canonical_dict() == sequential.to_canonical_dict()

    def test_in_process_sweep_counts_directly(self, registry):
        SweepExecutor().run(fire_protection_system(), _scenarios((0.01, 0.1)))
        assert registry.counter_value("repro_analyses_total") > 0


class TestCampaignMetricsAndTrace:
    def _spec(self, chunk_size=2):
        scenarios = [scenario_to_dict(s) for s in _scenarios()]
        return CampaignSpec(
            name="obs-campaign",
            tree=to_json_document(fire_protection_system()),
            stages=(sweep_stage("sweep", scenarios, chunk_size=chunk_size),),
        )

    def test_resume_serves_ledger_hits_and_counts_them(self, tmp_path, registry):
        store = DiskArtifactStore(tmp_path)
        spec = self._spec()
        first = CampaignRunner(store=store).run(spec)
        assert first.status == "done"
        executed = registry.counter_value(
            "repro_campaign_chunks_total", result="executed"
        )
        assert executed == 2  # 4 scenarios / chunk_size 2

        second = CampaignRunner(store=store).run(spec)
        assert second.status == "done"
        assert registry.counter_value(
            "repro_campaign_chunks_total", result="ledger_hit"
        ) == 2
        # nothing re-executed on resume
        assert registry.counter_value(
            "repro_campaign_chunks_total", result="executed"
        ) == executed
        # the resumed result equals the original
        assert second.result_document() == first.result_document()

    def test_campaign_records_a_nested_span_tree(self, tmp_path, registry):
        tracer = Tracer()
        with use_tracer(tracer):
            outcome = CampaignRunner(store=DiskArtifactStore(tmp_path)).run(self._spec())
        assert outcome.status == "done"
        trace = tracer.to_dict()
        assert trace["name"] == "campaign"
        assert trace["attrs"]["spec"] == "obs-campaign"
        stage = trace["children"][0]
        assert stage["name"] == "stage:sweep"
        chunk_names = [child["name"] for child in stage.get("children", [])]
        assert chunk_names.count("chunk") == 2
