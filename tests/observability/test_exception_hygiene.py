"""The exception-hygiene lint: repo stays clean, detector logic is sound."""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
TOOL = REPO_ROOT / "tools" / "check_exception_hygiene.py"

spec = importlib.util.spec_from_file_location("check_exception_hygiene", TOOL)
lint = importlib.util.module_from_spec(spec)
spec.loader.exec_module(lint)


def _violations(tmp_path, source):
    path = tmp_path / "sample.py"
    path.write_text(source, encoding="utf-8")
    return lint.check_file(path)


class TestRepositoryIsClean:
    def test_service_and_campaign_layers_pass(self, capsys):
        assert lint.main(["check", str(REPO_ROOT)]) == 0
        assert capsys.readouterr().out == ""


class TestDetector:
    def test_silent_broad_except_is_flagged(self, tmp_path):
        source = (
            "try:\n"
            "    work()\n"
            "except Exception:\n"
            "    pass\n"
        )
        violations = _violations(tmp_path, source)
        assert len(violations) == 1
        assert violations[0][0] == 3

    def test_bare_except_is_flagged(self, tmp_path):
        source = "try:\n    work()\nexcept:\n    result = None\n"
        assert len(_violations(tmp_path, source)) == 1

    def test_narrow_except_is_fine(self, tmp_path):
        source = "try:\n    work()\nexcept OSError:\n    pass\n"
        assert _violations(tmp_path, source) == []

    def test_reraise_is_fine(self, tmp_path):
        source = (
            "try:\n"
            "    work()\n"
            "except Exception as exc:\n"
            "    raise RuntimeError('wrapped') from exc\n"
        )
        assert _violations(tmp_path, source) == []

    def test_log_event_is_fine(self, tmp_path):
        source = (
            "try:\n"
            "    work()\n"
            "except Exception as exc:\n"
            "    log_event('m', 'failed', error=str(exc))\n"
            "    result = None\n"
        )
        assert _violations(tmp_path, source) == []

    def test_metric_counter_is_fine(self, tmp_path):
        source = (
            "try:\n"
            "    work()\n"
            "except Exception:\n"
            "    get_metrics().inc('drops_total', reason='broken')\n"
        )
        assert _violations(tmp_path, source) == []

    def test_waiver_comment_is_fine(self, tmp_path):
        source = (
            "try:\n"
            "    work()\n"
            "except Exception:  # obs-exempt: caller logs and counts this\n"
            "    pass\n"
        )
        assert _violations(tmp_path, source) == []

    def test_tuple_catch_including_exception_is_flagged(self, tmp_path):
        source = (
            "try:\n"
            "    work()\n"
            "except (ValueError, Exception):\n"
            "    pass\n"
        )
        assert len(_violations(tmp_path, source)) == 1

    def test_missing_target_directory_errors(self, tmp_path, capsys):
        assert lint.main(["check", str(tmp_path)]) == 2
        assert "missing lint target" in capsys.readouterr().err
