"""Structured JSON-lines event log: sinks, ambient span ids, null default."""

import io
import json

import pytest

from repro.observability.log import (
    JsonLinesLogger,
    MemoryLogger,
    NullLogger,
    get_logger,
    log_event,
    set_logger,
)
from repro.observability.trace import Tracer, use_tracer


@pytest.fixture(autouse=True)
def _isolate_global_logger():
    previous = set_logger(None)
    yield
    set_logger(previous)


class TestJsonLinesLogger:
    def test_events_to_file_are_parseable_json_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        logger = JsonLinesLogger(path)
        logger.log("service.store", "corrupt_entry_dropped", kind="cut-sets", key="abc")
        logger.log("service.workers", "job_failed", job="job-000001")
        logger.close()
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["module"] == "service.store"
        assert first["event"] == "corrupt_entry_dropped"
        assert first["kind"] == "cut-sets"
        assert "ts" in first

    def test_appending_across_logger_instances(self, tmp_path):
        path = tmp_path / "events.jsonl"
        for index in range(2):
            logger = JsonLinesLogger(path)
            logger.log("m", "e", index=index)
            logger.close()
        assert len(path.read_text(encoding="utf-8").splitlines()) == 2

    def test_stream_target_is_not_closed(self):
        stream = io.StringIO()
        logger = JsonLinesLogger(stream)
        logger.log("m", "e")
        logger.close()
        assert not stream.closed
        assert json.loads(stream.getvalue())["event"] == "e"

    def test_unserializable_attrs_degrade_to_str(self, tmp_path):
        path = tmp_path / "events.jsonl"
        logger = JsonLinesLogger(path)
        logger.log("m", "e", value={1, 2})  # sets are not JSON
        logger.close()
        assert json.loads(path.read_text(encoding="utf-8"))["event"] == "e"


class TestAmbientSpanCorrelation:
    def test_event_carries_the_open_span_id(self):
        memory = MemoryLogger()
        set_logger(memory)
        tracer = Tracer()
        with use_tracer(tracer):
            with tracer.span("job"):
                with tracer.span("store.load"):
                    log_event("service.store", "corrupt_entry_dropped", kind="k")
        (event,) = memory.matching("corrupt_entry_dropped")
        assert event["span"] == "s2"

    def test_no_span_field_outside_a_trace(self):
        memory = MemoryLogger()
        set_logger(memory)
        log_event("m", "e")
        assert "span" not in memory.events[0]


class TestGlobalLogger:
    def test_default_logger_is_null(self):
        assert isinstance(get_logger(), NullLogger)
        assert not get_logger().is_recording
        log_event("m", "e")  # must be a silent no-op

    def test_set_logger_none_restores_null(self):
        memory = MemoryLogger()
        set_logger(memory)
        assert get_logger() is memory
        set_logger(None)
        assert isinstance(get_logger(), NullLogger)

    def test_memory_logger_matching(self):
        memory = MemoryLogger()
        set_logger(memory)
        log_event("m", "a", n=1)
        log_event("m", "b")
        log_event("m", "a", n=2)
        assert [event["n"] for event in memory.matching("a")] == [1, 2]
