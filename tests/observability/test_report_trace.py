"""AnalysisReport.trace: wire format, canonical stripping, profile projection."""

import json

import pytest

from repro.api.report import AnalysisReport
from repro.api.session import AnalysisSession
from repro.observability.trace import Tracer, profile_view, use_tracer
from repro.workloads.library import fire_protection_system


def _traced_report(analyses=("mpmcs", "top_event"), **kwargs):
    tracer = Tracer()
    with use_tracer(tracer):
        report = AnalysisSession().analyze(
            fire_protection_system(), list(analyses), **kwargs
        )
    return report, tracer


class TestReportTrace:
    def test_untraced_run_has_no_trace_and_no_trace_key(self):
        report = AnalysisSession().analyze(fire_protection_system(), ["mpmcs"])
        assert report.trace is None
        assert "trace" not in report.to_dict()

    def test_traced_run_attaches_the_analyze_span_tree(self):
        report, _ = _traced_report()
        trace = report.trace
        assert trace is not None
        assert trace["name"] == "analyze"
        assert trace["attrs"]["tree"] == "fire-protection-system"
        child_names = {child["name"] for child in trace.get("children", [])}
        assert any(name.startswith("backend:") for name in child_names)

    def test_trace_round_trips_through_the_wire_format(self):
        report, _ = _traced_report()
        document = report.to_dict()
        assert document["trace"] == report.trace
        restored = AnalysisReport.from_dict(document)
        assert restored.trace == report.trace

    def test_results_identical_with_and_without_tracing(self):
        baseline = AnalysisSession().analyze(
            fire_protection_system(), ["mpmcs", "top_event"]
        )
        traced, _ = _traced_report()
        assert traced.mpmcs.events == baseline.mpmcs.events
        assert traced.top_event.exact == baseline.top_event.exact


class TestCanonicalStripping:
    def test_canonical_dict_strips_all_telemetry(self):
        report, _ = _traced_report()
        canonical = report.to_canonical_dict()
        for volatile in ("trace", "profile", "timings_s", "cache"):
            assert volatile not in canonical
        assert "s1" not in json.dumps(canonical), "no span ids may leak"

    def test_canonical_dicts_byte_identical_traced_vs_untraced(self):
        untraced = AnalysisSession().analyze(
            fire_protection_system(), ["mpmcs", "top_event"]
        )
        traced, _ = _traced_report()
        assert json.dumps(traced.to_canonical_dict(), sort_keys=True) == json.dumps(
            untraced.to_canonical_dict(), sort_keys=True
        )


class TestProfileProjection:
    def test_profile_view_recovers_the_report_profile(self):
        report, _ = _traced_report()
        view = profile_view(report.trace)
        numeric_profile = {
            key: value
            for key, value in report.profile.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
        for key, value in numeric_profile.items():
            assert view.get(key) == pytest.approx(value)

    def test_profile_itself_is_unchanged_by_tracing(self):
        baseline = AnalysisSession().analyze(fire_protection_system(), ["mpmcs"])
        traced, _ = _traced_report(analyses=("mpmcs",))
        assert set(baseline.profile) == set(traced.profile)
