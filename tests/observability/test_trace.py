"""Tracer/span semantics: nesting, round-trip, null behaviour, projections."""

import pytest

from repro.observability.trace import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    Tracer,
    add_counter,
    current_tracer,
    format_span_tree,
    profile_view,
    span,
    use_tracer,
)


class TestNesting:
    def test_spans_nest_under_the_open_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner-a"):
                pass
            with tracer.span("inner-b"):
                with tracer.span("leaf"):
                    pass
        assert len(tracer.roots) == 1
        outer = tracer.roots[0]
        assert [child.name for child in outer.children] == ["inner-a", "inner-b"]
        assert outer.children[1].children[0].name == "leaf"

    def test_span_ids_are_deterministic(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        document = tracer.to_dict()
        assert document["span_id"] == "s1"
        assert document["children"][0]["span_id"] == "s2"

    def test_durations_are_recorded(self):
        tracer = Tracer()
        with tracer.span("timed"):
            pass
        assert tracer.roots[0].duration_s >= 0.0

    def test_exception_marks_error_status_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        root = tracer.roots[0]
        assert root.status == "error"
        assert root.error_type == "ValueError"

    def test_counters_and_attrs(self):
        tracer = Tracer()
        with tracer.span("work", kind="demo") as s:
            s.add("items", 3)
            s.add("items", 2)
            s.merge_counters({"solve_seconds": 0.5, "backend": "maxsat", "ok": True})
            s.set_attr("extra", "x")
        root = tracer.roots[0]
        assert root.counters["items"] == 5
        assert root.counters["solve_seconds"] == 0.5
        # non-numeric and bool values are not counters
        assert "backend" not in root.counters and "ok" not in root.counters
        assert root.attrs == {"kind": "demo", "extra": "x"}

    def test_tracer_add_hits_the_current_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.add("hits")
        assert tracer.roots[0].children[0].counters == {"hits": 1}
        tracer.add("ignored")  # no open span: silently dropped


class TestSerialization:
    def _sample(self):
        tracer = Tracer()
        with tracer.span("job", job_id="j1") as s:
            s.add("n", 2)
            with tracer.span("child"):
                pass
        with pytest.raises(RuntimeError):
            with tracer.span("fails"):
                raise RuntimeError("x")
        return tracer.to_dict()

    def test_round_trip(self):
        document = self._sample()
        assert Span.from_dict(document).to_dict() == document

    def test_multiple_roots_get_a_synthetic_root(self):
        document = self._sample()
        assert document["name"] == "trace"
        assert document["span_id"] == "s0"
        assert [c["name"] for c in document["children"]] == ["job", "fails"]

    def test_empty_sections_are_omitted(self):
        tracer = Tracer()
        with tracer.span("bare"):
            pass
        document = tracer.to_dict()
        assert "attrs" not in document
        assert "counters" not in document
        assert "children" not in document
        assert "error_type" not in document

    def test_empty_tracer_serializes_to_none(self):
        assert Tracer().to_dict() is None


class TestSpanCap:
    def test_spans_beyond_the_cap_are_dropped_and_counted(self):
        tracer = Tracer(max_spans=2)
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d") as dropped:
                assert not dropped.is_recording
        assert tracer.dropped_spans == 2
        assert len(tracer.roots) == 1


class TestAmbientTracer:
    def test_default_is_the_null_tracer(self):
        assert current_tracer() is NULL_TRACER
        with span("anywhere") as s:
            assert s is NULL_SPAN
            assert not s.is_recording
            assert s.to_dict() is None
        add_counter("nothing")  # must not raise

    def test_use_tracer_installs_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
            with span("ambient", via="module") as s:
                assert s.is_recording
                add_counter("ticks", 2)
        assert current_tracer() is NULL_TRACER
        root = tracer.roots[0]
        assert root.name == "ambient"
        assert root.attrs == {"via": "module"}
        assert root.counters == {"ticks": 2}

    def test_new_threads_default_to_the_null_tracer(self):
        import threading

        seen = []
        tracer = Tracer()
        with use_tracer(tracer):
            thread = threading.Thread(target=lambda: seen.append(current_tracer()))
            thread.start()
            thread.join()
        assert seen == [NULL_TRACER]


class TestProjections:
    def test_profile_view_sums_outermost_analyze_spans(self):
        tracer = Tracer()
        with tracer.span("job"):
            for _ in range(2):
                with tracer.span("analyze") as s:
                    s.add("solve_seconds", 0.25)
                    # a nested analyze must not double count
                    with tracer.span("analyze") as inner:
                        inner.add("solve_seconds", 99.0)
        view = profile_view(tracer.to_dict())
        assert view == {"solve_seconds": 0.5}
        assert profile_view(None) == {}

    def test_format_span_tree_outline(self):
        tracer = Tracer()
        with tracer.span("job"):
            with tracer.span("analyze") as s:
                s.add("sat_calls", 4)
        text = format_span_tree(tracer.to_dict())
        lines = text.splitlines()
        assert lines[0].startswith("job")
        assert lines[1].startswith("  analyze")
        assert "sat_calls=4" in lines[1]
        assert "ms" in lines[0]
        assert format_span_tree(None) == "(no trace recorded)"
