"""The bench-history tool: cumulative perf trajectory + regression gate."""

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
TOOL = REPO_ROOT / "tools" / "bench_history.py"

spec = importlib.util.spec_from_file_location("bench_history", TOOL)
bench_history = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_history)


def _record(path, benchmark, **fields):
    document = {"benchmark": benchmark}
    document.update(fields)
    path.write_text(json.dumps(document), encoding="utf-8")
    return path


class TestAppend:
    def test_first_entry_always_passes_and_creates_history(self, tmp_path):
        record = _record(
            tmp_path / "sweep.json",
            "E12-incremental-maxsat-sweep",
            speedup_vs_cold=12.0,
        )
        history = tmp_path / "history.json"
        code = bench_history.main([str(record), "--history", str(history)])
        assert code == 0
        entries = json.loads(history.read_text())["E12-incremental-maxsat-sweep"]
        assert len(entries) == 1
        assert entries[0]["headline"] == 12.0
        assert entries[0]["record"]["speedup_vs_cold"] == 12.0

    def test_all_benchmark_families_are_tracked(self, tmp_path):
        history = tmp_path / "history.json"
        records = [
            _record(tmp_path / "sweep.json",
                    "E12-incremental-maxsat-sweep", speedup_vs_cold=10.0),
            _record(tmp_path / "campaign.json",
                    "E13-campaign-resume-overhead", resume_speedup=40.0),
            _record(tmp_path / "monitor.json",
                    "E14-live-monitor-updates", speedup_vs_cold=14.0),
            _record(tmp_path / "kernels.json",
                    "E15-kernel-batch-bdd-eval", numpy_speedup_vs_scalar=15.0),
            _record(tmp_path / "rerank.json",
                    "E16-maxsat-rerank-batch", batch_speedup_vs_chunk=6.0),
        ]
        code = bench_history.main(
            [str(path) for path in records] + ["--history", str(history)]
        )
        assert code == 0
        document = json.loads(history.read_text())
        assert set(document) == set(bench_history.HEADLINE_METRICS)
        assert [entries[-1]["headline"] for entries in document.values()] == [
            10.0, 40.0, 14.0, 15.0, 6.0
        ]

    def test_entries_accumulate_newest_last(self, tmp_path):
        history = tmp_path / "history.json"
        for speedup in (10.0, 11.0, 9.0):
            record = _record(
                tmp_path / "sweep.json",
                "E12-incremental-maxsat-sweep",
                speedup_vs_cold=speedup,
            )
            assert bench_history.main(
                [str(record), "--history", str(history), "--label", f"run-{speedup}"]
            ) == 0
        entries = json.loads(history.read_text())["E12-incremental-maxsat-sweep"]
        assert [entry["headline"] for entry in entries] == [10.0, 11.0, 9.0]
        assert entries[-1]["label"] == "run-9.0"

    def test_missing_records_are_a_noop(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert bench_history.main(["--history", str(tmp_path / "h.json")]) == 0
        assert "nothing to do" in capsys.readouterr().out
        assert not (tmp_path / "h.json").exists()

    def test_env_var_records_are_probed_when_no_paths_given(
        self, tmp_path, monkeypatch
    ):
        record = _record(
            tmp_path / "monitor.json",
            "E14-live-monitor-updates",
            speedup_vs_cold=14.0,
        )
        monkeypatch.setenv("BENCH_MONITOR_JSON", str(record))
        monkeypatch.delenv("BENCH_SWEEP_JSON", raising=False)
        monkeypatch.delenv("BENCH_CAMPAIGN_JSON", raising=False)
        monkeypatch.chdir(tmp_path)
        history = tmp_path / "history.json"
        assert bench_history.main(["--history", str(history)]) == 0
        assert "E14-live-monitor-updates" in json.loads(history.read_text())


class TestRegressionGate:
    def _run(self, tmp_path, speedup, history):
        record = _record(
            tmp_path / "monitor.json",
            "E14-live-monitor-updates",
            speedup_vs_cold=speedup,
        )
        return bench_history.main([str(record), "--history", str(history)])

    def test_drop_over_the_budget_fails(self, tmp_path, capsys):
        history = tmp_path / "history.json"
        assert self._run(tmp_path, 10.0, history) == 0
        assert self._run(tmp_path, 6.0, history) == 1  # -40% > 30% budget
        assert "REGRESSION" in capsys.readouterr().err

    def test_drop_within_the_budget_passes(self, tmp_path):
        history = tmp_path / "history.json"
        assert self._run(tmp_path, 10.0, history) == 0
        assert self._run(tmp_path, 7.5, history) == 0  # -25% < 30% budget

    def test_failing_entry_is_still_recorded(self, tmp_path):
        """The trajectory keeps the bad data point; only the exit code fails."""
        history = tmp_path / "history.json"
        assert self._run(tmp_path, 10.0, history) == 0
        assert self._run(tmp_path, 1.0, history) == 1
        entries = json.loads(history.read_text())["E14-live-monitor-updates"]
        assert [entry["headline"] for entry in entries] == [10.0, 1.0]

    def test_comparison_is_against_the_previous_entry_not_the_best(
        self, tmp_path
    ):
        history = tmp_path / "history.json"
        assert self._run(tmp_path, 20.0, history) == 0
        assert self._run(tmp_path, 15.0, history) == 0  # -25%, passes
        # -26% vs previous (15.0) passes even though it is -45% vs the best.
        assert self._run(tmp_path, 11.0, history) == 0

    def test_custom_budget_is_honoured(self, tmp_path):
        history = tmp_path / "history.json"
        record = _record(
            tmp_path / "monitor.json",
            "E14-live-monitor-updates",
            speedup_vs_cold=10.0,
        )
        assert bench_history.main([str(record), "--history", str(history)]) == 0
        record = _record(
            tmp_path / "monitor.json",
            "E14-live-monitor-updates",
            speedup_vs_cold=9.0,
        )
        assert bench_history.main(
            [str(record), "--history", str(history), "--max-regression", "0.05"]
        ) == 1

    def test_unknown_benchmark_has_no_headline_and_never_fails(self, tmp_path):
        history = tmp_path / "history.json"
        for _ in range(2):
            record = _record(
                tmp_path / "novel.json", "E99-novel", wall_clock_s=1.0
            )
            assert bench_history.main(
                [str(record), "--history", str(history)]
            ) == 0
        entries = json.loads(history.read_text())["E99-novel"]
        assert [entry["headline"] for entry in entries] == [None, None]


class TestBadInput:
    def test_non_record_json_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([1, 2, 3]), encoding="utf-8")
        code = bench_history.main(
            [str(path), "--history", str(tmp_path / "h.json")]
        )
        assert code == 1
        assert "benchmark" in capsys.readouterr().err

    def test_corrupt_history_fails_cleanly(self, tmp_path, capsys):
        record = _record(
            tmp_path / "monitor.json",
            "E14-live-monitor-updates",
            speedup_vs_cold=10.0,
        )
        history = tmp_path / "history.json"
        history.write_text("{not json", encoding="utf-8")
        assert bench_history.main(
            [str(record), "--history", str(history)]
        ) == 1
        assert "bench_history:" in capsys.readouterr().err
