"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import itertools
from typing import Dict, List, Tuple

import pytest
from hypothesis import strategies as st

from repro.fta.tree import FaultTree
from repro.logic.formula import And, AtLeast, Formula, Not, Or, Var
from repro.workloads.generator import random_fault_tree
from repro.workloads.library import (
    fire_protection_system,
    pressure_tank,
    redundant_power_supply,
    three_motor_system,
)


# --------------------------------------------------------------------------- fixtures


@pytest.fixture
def fps_tree() -> FaultTree:
    """The paper's Fig. 1 fire-protection-system example."""
    return fire_protection_system()


@pytest.fixture
def pressure_tank_tree() -> FaultTree:
    return pressure_tank()


@pytest.fixture
def voting_tree() -> FaultTree:
    """A tree containing a 2-of-3 voting gate."""
    return redundant_power_supply()


@pytest.fixture
def shared_events_tree() -> FaultTree:
    """A DAG-shaped tree with events shared between gates."""
    return three_motor_system()


@pytest.fixture(params=["fps", "pressure-tank", "voting", "shared"])
def any_library_tree(request) -> FaultTree:
    """Parametrised fixture cycling through every canonical tree."""
    return {
        "fps": fire_protection_system,
        "pressure-tank": pressure_tank,
        "voting": redundant_power_supply,
        "shared": three_motor_system,
    }[request.param]()


# ------------------------------------------------------------------ hypothesis strategies


def small_random_trees(
    min_events: int = 4, max_events: int = 10, voting_ratio: float = 0.2
) -> st.SearchStrategy[FaultTree]:
    """Strategy producing small random fault trees (safe for brute force)."""
    return st.builds(
        lambda n, seed: random_fault_tree(
            num_basic_events=n, seed=seed, voting_ratio=voting_ratio
        ),
        st.integers(min_value=min_events, max_value=max_events),
        st.integers(min_value=0, max_value=10_000),
    )


def variable_names(max_vars: int = 5) -> st.SearchStrategy[str]:
    return st.sampled_from([f"v{i}" for i in range(1, max_vars + 1)])


def formulas(max_depth: int = 4, max_vars: int = 5) -> st.SearchStrategy[Formula]:
    """Strategy producing random Boolean formulas over a small variable pool."""
    leaves = st.builds(Var, variable_names(max_vars))

    def extend(children: st.SearchStrategy[Formula]) -> st.SearchStrategy[Formula]:
        operand_lists = st.lists(children, min_size=1, max_size=3)
        return st.one_of(
            st.builds(Not, children),
            st.builds(lambda ops: And(tuple(ops)), operand_lists),
            st.builds(lambda ops: Or(tuple(ops)), operand_lists),
            st.builds(
                lambda ops, k: AtLeast(min(k, len(ops)), tuple(ops)),
                st.lists(children, min_size=1, max_size=3),
                st.integers(min_value=1, max_value=3),
            ),
        )

    return st.recursive(leaves, extend, max_leaves=2**max_depth)


def cnf_clause_lists(
    max_vars: int = 6, max_clauses: int = 12
) -> st.SearchStrategy[List[List[int]]]:
    """Strategy producing random CNF instances as lists of literal lists."""
    literal = st.integers(min_value=1, max_value=max_vars).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    clause = st.lists(literal, min_size=1, max_size=4)
    return st.lists(clause, min_size=1, max_size=max_clauses)


# ----------------------------------------------------------------------------- helpers


def all_assignments(names: List[str]) -> List[Dict[str, bool]]:
    """Every total truth assignment over ``names`` (use only for small sets)."""
    result = []
    for bits in itertools.product([False, True], repeat=len(names)):
        result.append(dict(zip(names, bits)))
    return result


def brute_force_cnf_satisfiable(clauses: List[List[int]]) -> bool:
    """Tiny reference SAT check by exhaustive enumeration."""
    variables = sorted({abs(lit) for clause in clauses for lit in clause})
    for bits in itertools.product([False, True], repeat=len(variables)):
        assignment = dict(zip(variables, bits))
        if all(
            any(assignment[abs(lit)] == (lit > 0) for lit in clause) for clause in clauses
        ):
            return True
    return False
