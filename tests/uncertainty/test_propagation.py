"""Unit tests for Monte Carlo uncertainty propagation and uncertainty importance."""

import pytest

from repro.numerics import HAVE_NUMPY

np = pytest.importorskip("numpy")
pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="requires numpy (absent or disabled via REPRO_NO_NUMPY=1)"
)

from repro.exceptions import AnalysisError
from repro.fta.builder import FaultTreeBuilder
from repro.uncertainty.distributions import (
    LognormalUncertainty,
    PointEstimate,
    UniformUncertainty,
)
from repro.uncertainty.importance import (
    spearman_correlation,
    uncertainty_importance,
)
from repro.uncertainty.propagation import SampleSummary, propagate_uncertainty
from repro.workloads.library import fire_protection_system


def small_tree():
    return (
        FaultTreeBuilder("small")
        .basic_event("a", 0.01)
        .basic_event("b", 0.02)
        .basic_event("c", 0.05)
        .and_gate("ab", ["a", "b"])
        .or_gate("top", ["ab", "c"])
        .top("top")
        .build()
    )


class TestSampleSummary:
    def test_from_samples(self):
        summary = SampleSummary.from_samples(np.array([1.0, 2.0, 3.0, 4.0]), (50.0,))
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.percentiles[50.0] == pytest.approx(2.5)

    def test_single_sample_has_zero_std(self):
        summary = SampleSummary.from_samples(np.array([2.0]), (50.0,))
        assert summary.std == 0.0

    def test_rejects_empty(self):
        with pytest.raises(AnalysisError):
            SampleSummary.from_samples(np.array([]), (50.0,))


class TestPropagation:
    def test_point_estimates_give_degenerate_output(self):
        tree = fire_protection_system()
        result = propagate_uncertainty(tree, {}, num_samples=200, seed=1)
        # With no uncertainty every sample is identical.
        assert result.top_event.std == pytest.approx(0.0, abs=1e-15)
        assert result.mpmcs_identity_stability == 1.0
        assert result.mpmcs_frequencies[0][0] == ("x1", "x2")
        assert result.point_estimate_mpmcs == ("x1", "x2")

    def test_mpmcs_probability_mean_close_to_point_estimate(self):
        tree = fire_protection_system()
        result = propagate_uncertainty(tree, {}, num_samples=100, seed=3)
        assert result.mpmcs_probability.mean == pytest.approx(0.02, rel=1e-9)

    def test_uncertain_inputs_produce_spread(self):
        tree = fire_protection_system()
        spec = {"x1": LognormalUncertainty(median=0.2, error_factor=3.0)}
        result = propagate_uncertainty(tree, spec, num_samples=500, seed=5)
        assert result.top_event.std > 0.0
        assert result.top_event.percentiles[5.0] < result.top_event.percentiles[95.0]

    def test_identity_instability_is_detected(self):
        # Two competing single-event cut sets with overlapping uncertainty:
        # OR(a, b) where a and b have wide, overlapping distributions.
        tree = (
            FaultTreeBuilder("competition")
            .basic_event("a", 0.01)
            .basic_event("b", 0.01)
            .or_gate("top", ["a", "b"])
            .top("top")
            .build()
        )
        spec = {
            "a": UniformUncertainty(low=0.001, high=0.02),
            "b": UniformUncertainty(low=0.001, high=0.02),
        }
        result = propagate_uncertainty(tree, spec, num_samples=1000, seed=11)
        frequencies = dict(result.mpmcs_frequencies)
        assert frequencies[("a",)] == pytest.approx(0.5, abs=0.1)
        assert frequencies[("b",)] == pytest.approx(0.5, abs=0.1)
        assert result.mpmcs_identity_stability < 0.9

    def test_methods_are_ordered(self):
        tree = small_tree()
        spec = {"c": UniformUncertainty(low=0.01, high=0.1)}
        rare = propagate_uncertainty(tree, spec, num_samples=300, seed=7, method="rare-event")
        bound = propagate_uncertainty(
            tree, spec, num_samples=300, seed=7, method="min-cut-upper-bound"
        )
        exact = propagate_uncertainty(tree, spec, num_samples=300, seed=7, method="exact")
        # Rare-event >= min-cut upper bound >= exact, for identical samples.
        assert rare.top_event.mean >= bound.top_event.mean - 1e-12
        assert bound.top_event.mean >= exact.top_event.mean - 1e-12
        assert exact.top_event.mean == pytest.approx(bound.top_event.mean, rel=0.05)

    def test_bdd_cut_set_algorithm_agrees(self):
        tree = small_tree()
        spec = {"c": UniformUncertainty(low=0.01, high=0.1)}
        mocus = propagate_uncertainty(tree, spec, num_samples=200, seed=9)
        bdd = propagate_uncertainty(tree, spec, num_samples=200, seed=9, cut_set_algorithm="bdd")
        assert mocus.top_event.mean == pytest.approx(bdd.top_event.mean)

    def test_to_dict_round_trip(self):
        result = propagate_uncertainty(fire_protection_system(), {}, num_samples=50, seed=2)
        payload = result.to_dict()
        assert payload["tree"] == "fire-protection-system"
        assert payload["samples"] == 50
        assert payload["point_estimate_mpmcs"] == ["x1", "x2"]
        assert payload["mpmcs_frequencies"][0]["frequency"] == 1.0

    def test_validation_errors(self):
        tree = small_tree()
        with pytest.raises(AnalysisError):
            propagate_uncertainty(tree, {"zzz": PointEstimate(0.1)}, num_samples=10)
        with pytest.raises(AnalysisError):
            propagate_uncertainty(tree, {"a": 0.5}, num_samples=10)  # type: ignore[dict-item]
        with pytest.raises(AnalysisError):
            propagate_uncertainty(tree, {}, num_samples=1)
        with pytest.raises(AnalysisError):
            propagate_uncertainty(tree, {}, num_samples=10, method="magic")
        with pytest.raises(AnalysisError):
            propagate_uncertainty(tree, {}, num_samples=10, cut_set_algorithm="magic")


class TestSpearman:
    def test_perfect_monotone_relationship(self):
        x = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        assert spearman_correlation(x, x**3) == pytest.approx(1.0)
        assert spearman_correlation(x, -x) == pytest.approx(-1.0)

    def test_constant_input_gives_zero(self):
        x = np.full(10, 0.5)
        y = np.arange(10, dtype=float)
        assert spearman_correlation(x, y) == 0.0

    def test_ties_are_handled(self):
        x = np.array([1.0, 1.0, 2.0, 2.0, 3.0])
        y = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        value = spearman_correlation(x, y)
        assert 0.8 < value <= 1.0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            spearman_correlation(np.array([1.0]), np.array([1.0]))
        with pytest.raises(AnalysisError):
            spearman_correlation(np.array([1.0, 2.0]), np.array([1.0, 2.0, 3.0]))


class TestUncertaintyImportance:
    def test_uncertain_event_dominates_ranking(self):
        tree = fire_protection_system()
        spec = {"x3": LognormalUncertainty(median=0.001, error_factor=10.0)}
        result = propagate_uncertainty(tree, spec, num_samples=800, seed=13)
        ranking = uncertainty_importance(result)
        assert ranking[0].event == "x3"
        assert ranking[0].magnitude > 0.9
        # Point-estimate events contribute no uncertainty.
        others = {measure.event: measure for measure in ranking[1:]}
        assert all(measure.spearman == 0.0 for measure in others.values())

    def test_mpmcs_target(self):
        tree = fire_protection_system()
        spec = {"x1": LognormalUncertainty(median=0.2, error_factor=2.0)}
        result = propagate_uncertainty(tree, spec, num_samples=500, seed=17)
        ranking = uncertainty_importance(result, target="mpmcs")
        assert ranking[0].event == "x1"

    def test_event_selection_and_errors(self):
        tree = fire_protection_system()
        result = propagate_uncertainty(tree, {}, num_samples=50, seed=19)
        subset = uncertainty_importance(result, events=("x1", "x2"))
        assert {measure.event for measure in subset} == {"x1", "x2"}
        with pytest.raises(AnalysisError):
            uncertainty_importance(result, events=("nope",))
        with pytest.raises(AnalysisError):
            uncertainty_importance(result, target="magic")
