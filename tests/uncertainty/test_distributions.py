"""Unit tests for the epistemic-uncertainty distributions."""

import math

import pytest

from repro.numerics import HAVE_NUMPY

np = pytest.importorskip("numpy")
pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="requires numpy (absent or disabled via REPRO_NO_NUMPY=1)"
)

from repro.exceptions import ProbabilityError
from repro.uncertainty.distributions import (
    BetaUncertainty,
    LognormalUncertainty,
    PointEstimate,
    TriangularUncertainty,
    UncertainProbability,
    UniformUncertainty,
)


def rng():
    return np.random.default_rng(42)


ALL_DISTRIBUTIONS = [
    PointEstimate(0.01),
    LognormalUncertainty(median=0.001, error_factor=3.0),
    BetaUncertainty(alpha=2.0, beta=50.0),
    UniformUncertainty(low=0.001, high=0.01),
    TriangularUncertainty(low=0.001, mode=0.005, high=0.02),
]


class TestCommonBehaviour:
    @pytest.mark.parametrize("distribution", ALL_DISTRIBUTIONS, ids=lambda d: type(d).__name__)
    def test_samples_are_valid_probabilities(self, distribution):
        samples = distribution.sample(rng(), 500)
        assert samples.shape == (500,)
        assert np.all(samples > 0.0)
        assert np.all(samples <= 1.0)

    @pytest.mark.parametrize("distribution", ALL_DISTRIBUTIONS, ids=lambda d: type(d).__name__)
    def test_describe_is_non_empty(self, distribution):
        assert distribution.describe()

    @pytest.mark.parametrize("distribution", ALL_DISTRIBUTIONS, ids=lambda d: type(d).__name__)
    def test_sampling_is_reproducible_from_seed(self, distribution):
        first = distribution.sample(np.random.default_rng(7), 100)
        second = distribution.sample(np.random.default_rng(7), 100)
        assert np.array_equal(first, second)

    def test_base_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            UncertainProbability().sample(rng(), 1)
        with pytest.raises(NotImplementedError):
            UncertainProbability().mean()
        with pytest.raises(NotImplementedError):
            UncertainProbability().describe()


class TestPointEstimate:
    def test_all_samples_equal_value(self):
        samples = PointEstimate(0.05).sample(rng(), 50)
        assert np.all(samples == 0.05)

    def test_mean(self):
        assert PointEstimate(0.05).mean() == 0.05

    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.5, float("nan")])
    def test_rejects_invalid(self, bad):
        with pytest.raises(ProbabilityError):
            PointEstimate(bad)


class TestLognormal:
    def test_sigma_from_error_factor(self):
        distribution = LognormalUncertainty(median=0.001, error_factor=3.0)
        assert distribution.sigma == pytest.approx(math.log(3.0) / 1.645, rel=1e-3)

    def test_sample_median_close_to_parameter(self):
        distribution = LognormalUncertainty(median=0.001, error_factor=3.0)
        samples = distribution.sample(np.random.default_rng(0), 20000)
        assert np.median(samples) == pytest.approx(0.001, rel=0.05)

    def test_mean_is_above_median(self):
        distribution = LognormalUncertainty(median=0.001, error_factor=10.0)
        assert distribution.mean() > 0.001

    def test_percentiles_bracket_median(self):
        distribution = LognormalUncertainty(median=0.001, error_factor=3.0)
        assert distribution.percentile(5.0) < 0.001 < distribution.percentile(95.0)
        assert distribution.percentile(95.0) == pytest.approx(0.003, rel=1e-2)

    def test_percentile_validation(self):
        with pytest.raises(ProbabilityError):
            LognormalUncertainty(median=0.001, error_factor=3.0).percentile(0.0)

    @pytest.mark.parametrize("median,ef", [(0.0, 3.0), (1.5, 3.0), (0.1, 0.5)])
    def test_rejects_invalid(self, median, ef):
        with pytest.raises(ProbabilityError):
            LognormalUncertainty(median=median, error_factor=ef)


class TestBeta:
    def test_mean(self):
        assert BetaUncertainty(alpha=2.0, beta=8.0).mean() == pytest.approx(0.2)

    def test_sample_mean_close_to_analytic(self):
        distribution = BetaUncertainty(alpha=2.0, beta=8.0)
        samples = distribution.sample(np.random.default_rng(1), 20000)
        assert np.mean(samples) == pytest.approx(0.2, rel=0.05)

    @pytest.mark.parametrize("alpha,beta", [(0.0, 1.0), (1.0, -2.0)])
    def test_rejects_invalid(self, alpha, beta):
        with pytest.raises(ProbabilityError):
            BetaUncertainty(alpha=alpha, beta=beta)


class TestUniformAndTriangular:
    def test_uniform_mean_and_bounds(self):
        distribution = UniformUncertainty(low=0.2, high=0.4)
        assert distribution.mean() == pytest.approx(0.3)
        samples = distribution.sample(rng(), 1000)
        assert np.all((samples >= 0.2) & (samples <= 0.4))

    def test_uniform_rejects_inverted_bounds(self):
        with pytest.raises(ProbabilityError):
            UniformUncertainty(low=0.4, high=0.2)

    def test_triangular_mean_and_bounds(self):
        distribution = TriangularUncertainty(low=0.1, mode=0.2, high=0.4)
        assert distribution.mean() == pytest.approx((0.1 + 0.2 + 0.4) / 3.0)
        samples = distribution.sample(rng(), 1000)
        assert np.all((samples >= 0.1) & (samples <= 0.4))

    def test_triangular_rejects_mode_outside_bounds(self):
        with pytest.raises(ProbabilityError):
            TriangularUncertainty(low=0.1, mode=0.5, high=0.4)
