"""Unit tests for the totalizer cardinality encoding."""

import itertools

import pytest

from repro.exceptions import SolverError
from repro.maxsat.cardinality import Totalizer, encode_at_least_k, encode_at_most_k
from repro.sat.cdcl import CDCLSolver
from repro.sat.types import SatStatus


def build_totalizer(n):
    solver = CDCLSolver()
    inputs = [solver.new_var() for _ in range(n)]
    totalizer = Totalizer(inputs, solver.new_var, solver.add_clause)
    return solver, inputs, totalizer


class TestTotalizerSemantics:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_outputs_count_true_inputs(self, n):
        solver, inputs, totalizer = build_totalizer(n)
        assert len(totalizer.outputs) == n
        for bits in itertools.product([False, True], repeat=n):
            assumptions = [v if b else -v for v, b in zip(inputs, bits)]
            result = solver.solve(assumptions)
            assert result.status is SatStatus.SAT
            count = sum(bits)
            for j, output in enumerate(totalizer.outputs, start=1):
                value = result.model[abs(output)] if output > 0 else not result.model[abs(output)]
                assert value == (count >= j)

    def test_empty_inputs_rejected(self):
        solver = CDCLSolver()
        with pytest.raises(SolverError):
            Totalizer([], solver.new_var, solver.add_clause)

    def test_at_least_bound_validation(self):
        _, _, totalizer = build_totalizer(3)
        with pytest.raises(SolverError):
            totalizer.at_least(0)
        with pytest.raises(SolverError):
            totalizer.at_least(4)

    def test_at_most_returns_negated_outputs(self):
        _, _, totalizer = build_totalizer(3)
        units = totalizer.at_most(1)
        assert units == [-totalizer.outputs[1], -totalizer.outputs[2]]


class TestAtMostK:
    @pytest.mark.parametrize("n,k", [(3, 0), (3, 1), (4, 2), (5, 3)])
    def test_constraint_enforced(self, n, k):
        solver = CDCLSolver()
        inputs = [solver.new_var() for _ in range(n)]
        encode_at_most_k(inputs, k, solver.new_var, solver.add_clause)
        for bits in itertools.product([False, True], repeat=n):
            assumptions = [v if b else -v for v, b in zip(inputs, bits)]
            result = solver.solve(assumptions)
            expected = sum(bits) <= k
            assert (result.status is SatStatus.SAT) == expected

    def test_trivial_bound_returns_none(self):
        solver = CDCLSolver()
        inputs = [solver.new_var() for _ in range(3)]
        assert encode_at_most_k(inputs, 3, solver.new_var, solver.add_clause) is None

    def test_negative_bound_rejected(self):
        solver = CDCLSolver()
        inputs = [solver.new_var()]
        with pytest.raises(SolverError):
            encode_at_most_k(inputs, -1, solver.new_var, solver.add_clause)


class TestAtLeastK:
    @pytest.mark.parametrize("n,k", [(3, 1), (4, 2), (5, 4), (4, 4)])
    def test_constraint_enforced(self, n, k):
        solver = CDCLSolver()
        inputs = [solver.new_var() for _ in range(n)]
        encode_at_least_k(inputs, k, solver.new_var, solver.add_clause)
        for bits in itertools.product([False, True], repeat=n):
            assumptions = [v if b else -v for v, b in zip(inputs, bits)]
            result = solver.solve(assumptions)
            expected = sum(bits) >= k
            assert (result.status is SatStatus.SAT) == expected

    def test_zero_bound_is_trivial(self):
        solver = CDCLSolver()
        inputs = [solver.new_var() for _ in range(2)]
        assert encode_at_least_k(inputs, 0, solver.new_var, solver.add_clause) is None

    def test_bound_above_size_rejected(self):
        solver = CDCLSolver()
        inputs = [solver.new_var() for _ in range(2)]
        with pytest.raises(SolverError):
            encode_at_least_k(inputs, 3, solver.new_var, solver.add_clause)
