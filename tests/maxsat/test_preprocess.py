"""Unit tests for WCNF preprocessing and the preprocessing engine wrapper."""

import pytest

from repro.core.encoder import encode_mpmcs
from repro.maxsat import (
    BruteForceEngine,
    MaxSATStatus,
    PreprocessingEngine,
    RC2Engine,
    WPMaxSATInstance,
    preprocess_instance,
)
from repro.workloads.library import fire_protection_system, pressure_tank


class TestUnitPropagation:
    def test_forced_literals_are_detected(self):
        instance = WPMaxSATInstance(precision=1)
        instance.add_hard([1])
        instance.add_hard([-1, 2])
        instance.add_hard([-2, 3, 4])
        result = preprocess_instance(instance)
        assert not result.proven_unsat
        assert set(result.forced) == {1, 2}
        assert result.stats.forced_literals == 2

    def test_conflict_is_detected(self):
        instance = WPMaxSATInstance(precision=1)
        instance.add_hard([1])
        instance.add_hard([-1])
        result = preprocess_instance(instance)
        assert result.proven_unsat

    def test_cascading_conflict(self):
        instance = WPMaxSATInstance(precision=1)
        instance.add_hard([1])
        instance.add_hard([-1, 2])
        instance.add_hard([-2])
        result = preprocess_instance(instance)
        assert result.proven_unsat

    def test_forced_literals_are_kept_as_units(self):
        instance = WPMaxSATInstance(precision=1)
        instance.add_hard([3])
        instance.add_hard([1, 2])
        result = preprocess_instance(instance)
        assert (3,) in result.instance.hard


class TestSoftSimplification:
    def test_satisfied_soft_clauses_are_dropped(self):
        instance = WPMaxSATInstance(precision=1)
        instance.add_hard([1])
        instance.add_soft([1, 2], 5)
        instance.add_soft([-2], 3)
        result = preprocess_instance(instance)
        assert result.stats.soft_dropped_satisfied == 1
        assert result.instance.num_soft == 1
        assert result.mandatory_cost == 0

    def test_falsified_soft_clause_becomes_mandatory_cost(self):
        instance = WPMaxSATInstance(precision=1)
        instance.add_hard([1])
        instance.add_soft([-1], 7)
        instance.add_soft([-2], 3)
        result = preprocess_instance(instance)
        assert result.stats.soft_dropped_falsified == 1
        assert result.mandatory_cost == 7
        assert result.instance.num_soft == 1

    def test_duplicate_soft_clauses_are_merged(self):
        instance = WPMaxSATInstance(precision=1)
        instance.add_hard([1, 2])
        instance.add_soft([-1], 2)
        instance.add_soft([-1], 3)
        result = preprocess_instance(instance)
        assert result.stats.soft_merged == 1
        assert result.instance.num_soft == 1
        assert result.instance.soft[0].scaled_weight == 5


class TestHardSimplification:
    def test_tautologies_and_duplicates_removed(self):
        instance = WPMaxSATInstance(precision=1)
        instance.add_hard([1, -1, 2])
        instance.add_hard([2, 3])
        instance.add_hard([3, 2])
        instance.add_soft([-2], 1)
        result = preprocess_instance(instance)
        assert result.instance.num_hard == 1

    def test_subsumed_clauses_removed(self):
        instance = WPMaxSATInstance(precision=1)
        instance.add_hard([1, 2])
        instance.add_hard([1, 2, 3])
        instance.add_soft([-1], 1)
        result = preprocess_instance(instance)
        assert result.instance.num_hard == 1
        assert result.stats.subsumed == 1

    def test_subsumption_can_be_disabled(self):
        instance = WPMaxSATInstance(precision=1)
        instance.add_hard([1, 2])
        instance.add_hard([1, 2, 3])
        instance.add_soft([-1], 1)
        result = preprocess_instance(instance, subsumption=False)
        assert result.instance.num_hard == 2

    def test_original_instance_is_untouched(self):
        instance = WPMaxSATInstance(precision=1)
        instance.add_hard([1])
        instance.add_hard([-1, 2])
        instance.add_soft([-2], 3)
        before = (instance.num_hard, instance.num_soft)
        preprocess_instance(instance)
        assert (instance.num_hard, instance.num_soft) == before


class TestPreprocessingEngine:
    def test_matches_plain_engine_on_crafted_instance(self):
        instance = WPMaxSATInstance(precision=1)
        instance.add_hard([1])
        instance.add_hard([-1, 2, 3])
        instance.add_soft([-1], 4)
        instance.add_soft([-2], 2)
        instance.add_soft([-3], 3)
        plain = BruteForceEngine().solve(instance.copy())
        wrapped = PreprocessingEngine(BruteForceEngine()).solve(instance)
        assert wrapped.status is MaxSATStatus.OPTIMUM
        assert wrapped.cost == plain.cost
        assert instance.hard_satisfied_by(wrapped.model)

    def test_unsat_is_reported(self):
        instance = WPMaxSATInstance(precision=1)
        instance.add_hard([1])
        instance.add_hard([-1])
        result = PreprocessingEngine(RC2Engine()).solve(instance)
        assert result.status is MaxSATStatus.UNSATISFIABLE

    @pytest.mark.parametrize("tree_factory", [fire_protection_system, pressure_tank])
    def test_mpmcs_instances_solve_identically(self, tree_factory):
        tree = tree_factory()
        encoding_plain = encode_mpmcs(tree)
        encoding_wrapped = encode_mpmcs(tree)
        plain = RC2Engine().solve(encoding_plain.instance)
        wrapped = PreprocessingEngine(RC2Engine()).solve(encoding_wrapped.instance)
        assert wrapped.status is MaxSATStatus.OPTIMUM
        assert wrapped.cost == plain.cost
        assert (
            encoding_wrapped.cut_set_from_model(wrapped.model)
            == encoding_plain.cut_set_from_model(plain.model)
        )

    def test_engine_name_mentions_inner(self):
        assert PreprocessingEngine(RC2Engine()).name == "preprocess+rc2"
