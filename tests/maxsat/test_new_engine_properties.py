"""Property-based tests: the new engines must agree with brute force."""

from typing import List, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maxsat import (
    BinarySearchEngine,
    BruteForceEngine,
    HittingSetEngine,
    MaxSATStatus,
    PreprocessingEngine,
    RC2Engine,
    WPMaxSATInstance,
    stochastic_upper_bound,
)

from tests.conftest import cnf_clause_lists


def weighted_soft_units(max_vars: int = 5):
    return st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=20),
            st.integers(min_value=1, max_value=max_vars),
        ),
        min_size=1,
        max_size=6,
    )


def build_instance(hard: List[List[int]], soft: List[Tuple[int, int]]) -> WPMaxSATInstance:
    instance = WPMaxSATInstance(precision=1)
    for clause in hard:
        instance.add_hard(clause)
    for weight, var in soft:
        instance.add_soft([-var], weight)
    return instance


NEW_ENGINES = [
    ("hitting-set", HittingSetEngine),
    ("binary-search", BinarySearchEngine),
    ("preprocess+rc2", lambda: PreprocessingEngine(RC2Engine())),
]


class TestNewEnginesMatchBruteForce:
    @settings(max_examples=50, deadline=None)
    @given(cnf_clause_lists(max_vars=5, max_clauses=8), weighted_soft_units())
    def test_optimum_cost_matches(self, hard, soft):
        reference = BruteForceEngine().solve(build_instance(hard, soft))
        for name, factory in NEW_ENGINES:
            result = factory().solve(build_instance(hard, soft))
            assert result.status == reference.status, name
            if reference.status is MaxSATStatus.OPTIMUM:
                assert result.cost == reference.cost, (name, hard, soft)

    @settings(max_examples=40, deadline=None)
    @given(cnf_clause_lists(max_vars=5, max_clauses=8), weighted_soft_units())
    def test_returned_model_is_consistent(self, hard, soft):
        for name, factory in NEW_ENGINES:
            check = build_instance(hard, soft)
            result = factory().solve(check)
            if result.status is MaxSATStatus.OPTIMUM:
                assert check.hard_satisfied_by(result.model), name
                assert check.cost_of_model(result.model) == result.cost, name


class TestLocalSearchIsAnUpperBound:
    @settings(max_examples=30, deadline=None)
    @given(cnf_clause_lists(max_vars=5, max_clauses=8), weighted_soft_units())
    def test_never_below_the_optimum(self, hard, soft):
        instance = build_instance(hard, soft)
        reference = BruteForceEngine().solve(build_instance(hard, soft))
        bound = stochastic_upper_bound(instance, seed=1, max_flips=300, restarts=1)
        if reference.status is MaxSATStatus.UNSATISFIABLE:
            assert bound is None
        else:
            assert bound is not None
            assert bound.cost >= reference.cost
            assert instance.hard_satisfied_by(bound.model)
