"""The batched weight-only re-rank: solve_batch ≡ the per-scenario solve loop.

The contract under test is the tentpole guarantee: for any scenario batch,
``solve_batch(weights_seq, blocked)`` returns exactly what calling
``solve(weights, blocked)`` once per scenario would — same events, same
scaled cost, same float cost — while the pooled / certified / B&B ladder
keeps SAT work near zero.  ``sat_calls``/``solve_time``/``rerank`` are
telemetry and deliberately excluded from equality.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.exceptions import BudgetExceededError
from repro.maxsat.incremental import IncrementalMaxSATSession
from repro.workloads.generator import random_fault_tree
from repro.workloads.library import fire_protection_system

TIERS = kernels.available_tiers()


def _weight_grid(session, seed, count, jumpy=False):
    """Random strictly-positive weight rows over the session's events."""
    rng = random.Random(seed)
    names = sorted(session.event_vars)
    rows = []
    for _ in range(count):
        if jumpy:
            rows.append({name: rng.uniform(0.01, 40.0) for name in names})
        else:
            rows.append({name: rng.uniform(0.5, 9.0) for name in names})
    return rows


def _blocked_sets(session, seed, count):
    rng = random.Random(seed)
    names = sorted(session.event_vars)
    blocked = []
    for _ in range(count):
        size = rng.randint(1, max(1, len(names) // 3))
        blocked.append(tuple(sorted(rng.sample(names, size))))
    return blocked


def _essence(result):
    """The comparable part of a solve result (telemetry stripped)."""
    if result is None:
        return None
    return (
        result.events,
        result.scaled_cost,
        result.cost,
        result.probability_weights,
    )


def _assert_batch_matches_sequential(tree, weights_seq, blocked=(), tier=None):
    suite = kernels.select(tier)
    batch_session = IncrementalMaxSATSession(tree, kernels=suite)
    loop_session = IncrementalMaxSATSession(tree, kernels=suite)
    batched = batch_session.solve_batch(weights_seq, blocked)
    sequential = [loop_session.solve(weights, blocked) for weights in weights_seq]
    assert [_essence(r) for r in batched] == [_essence(r) for r in sequential]
    return batch_session


class TestBatchEqualsSequential:
    @pytest.mark.parametrize("tier", TIERS)
    def test_fps_drift_grid(self, tier):
        tree = fire_protection_system()
        session = IncrementalMaxSATSession(tree)
        weights_seq = _weight_grid(session, seed=1, count=12)
        _assert_batch_matches_sequential(tree, weights_seq, tier=tier)

    @pytest.mark.parametrize("tier", TIERS)
    @pytest.mark.parametrize("seed", range(4))
    def test_random_trees_jumpy_grid(self, tier, seed):
        tree = random_fault_tree(num_basic_events=14, seed=seed, voting_ratio=0.2)
        session = IncrementalMaxSATSession(tree)
        weights_seq = _weight_grid(session, seed=seed + 100, count=8, jumpy=True)
        _assert_batch_matches_sequential(tree, weights_seq, tier=tier)

    @pytest.mark.parametrize("tier", TIERS)
    def test_with_blocked_sets(self, tier):
        tree = fire_protection_system()
        probe = IncrementalMaxSATSession(tree)
        first = probe.solve_tree(tree)
        weights_seq = _weight_grid(probe, seed=3, count=10)
        # Block the unweighted optimum plus an arbitrary pair: forces the
        # batch through the blocked-enumeration machinery.
        blocked = [first.events] + _blocked_sets(probe, seed=4, count=2)
        _assert_batch_matches_sequential(tree, weights_seq, blocked, tier=tier)

    def test_empty_batch(self):
        tree = fire_protection_system()
        session = IncrementalMaxSATSession(tree)
        assert session.solve_batch([]) == []

    def test_exhausted_enumeration_yields_nones(self):
        tree = fire_protection_system()
        probe = IncrementalMaxSATSession(tree)
        blocked = []
        while True:
            outcome = probe.solve_tree(tree, blocked)
            if outcome is None:
                break
            blocked.append(outcome.events)
        session = IncrementalMaxSATSession(tree)
        weights_seq = _weight_grid(session, seed=5, count=4)
        assert session.solve_batch(weights_seq, blocked) == [None] * 4
        # Proving exhaustion on a cold session needs one SAT-backed fallback;
        # every scenario after that is answered SAT-free from the cores.
        assert session.rerank_stats["fallback"] == 1
        assert session.rerank_stats["pooled"] == 3


class TestRerankLadder:
    def test_warm_batch_is_mostly_sat_free(self):
        tree = fire_protection_system()
        session = IncrementalMaxSATSession(tree)
        session.solve_tree(tree)  # warm the core collection
        calls_before = session.sat_calls
        weights_seq = _weight_grid(session, seed=7, count=50)
        results = session.solve_batch(weights_seq)
        assert all(result is not None for result in results)
        stats = session.rerank_stats
        assert sum(stats.values()) >= 50
        # The pooled tier must carry the batch: SAT work stays far below the
        # ≥ 1 call per scenario the sequential loop pays.  (The steady-state
        # < 0.1 criterion is asserted on E16's drift-shaped sweep; this grid
        # is fully random, so a few core discoveries are legitimate.)
        assert (session.sat_calls - calls_before) / 50 < 0.25
        assert stats["pooled"] > 0

    def test_pool_grows_from_solves(self):
        tree = fire_protection_system()
        session = IncrementalMaxSATSession(tree)
        assert session.pool_size == 0
        session.solve_tree(tree)
        assert session.pool_size >= 1

    def test_batch_results_tag_their_tier(self):
        tree = fire_protection_system()
        session = IncrementalMaxSATSession(tree)
        session.solve_tree(tree)
        weights_seq = _weight_grid(session, seed=11, count=6)
        results = session.solve_batch(weights_seq)
        for result in results:
            assert result.rerank in {"pooled", "certified", "fallback", "cold"}

    def test_plain_solve_is_untagged(self):
        tree = fire_protection_system()
        session = IncrementalMaxSATSession(tree)
        assert session.solve_tree(tree).rerank == ""

    def test_stats_expose_the_ladder(self):
        tree = fire_protection_system()
        session = IncrementalMaxSATSession(tree)
        session.solve_batch(_weight_grid(session, seed=13, count=3))
        stats = session.stats()
        for key in (
            "kernel",
            "pool_candidates",
            "chunk_fallbacks",
            "rerank_pooled",
            "rerank_certified",
            "rerank_bnb",
            "rerank_fallback",
        ):
            assert key in stats
        assert stats["kernel"] in TIERS


class TestChunkBudgetContainment:
    """S1 regression: a mid-chunk budget blowout must not abort the chunk."""

    def test_budget_error_falls_back_cold_and_continues(self, monkeypatch):
        tree = fire_protection_system()
        session = IncrementalMaxSATSession(tree)
        reference = IncrementalMaxSATSession(tree)
        weights_seq = _weight_grid(session, seed=17, count=5)
        expected = [reference.solve(weights) for weights in weights_seq]

        real_impl = IncrementalMaxSATSession._solve_impl
        state = {"calls": 0}

        def flaky_impl(self, weights, blocked):
            state["calls"] += 1
            if state["calls"] == 3:  # blow the budget mid-chunk only
                raise BudgetExceededError("injected: hitting-set budget exhausted")
            return real_impl(self, weights, blocked)

        monkeypatch.setattr(IncrementalMaxSATSession, "_solve_impl", flaky_impl)
        results = session.solve_chunk(weights_seq)

        assert session.chunk_fallbacks == 1
        assert len(results) == 5
        assert results[2].rerank == "cold"
        # The cold rescue returns the scenario's true optimum, and the
        # scenarios after the blowout are unaffected.
        assert [_essence(r) for r in results] == [_essence(r) for r in expected]

    def test_fallback_count_survives_in_stats(self, monkeypatch):
        tree = fire_protection_system()
        session = IncrementalMaxSATSession(tree)
        weights_seq = _weight_grid(session, seed=19, count=2)

        def always_broke(self, weights, blocked):
            raise BudgetExceededError("injected")

        monkeypatch.setattr(IncrementalMaxSATSession, "_solve_impl", always_broke)
        session.solve_chunk(weights_seq)
        assert session.stats()["chunk_fallbacks"] == 2


class TestBatchProperty:
    """S3: randomized equivalence across trees, grids, blocks and tiers."""

    @settings(max_examples=30, deadline=None)
    @given(
        tree_seed=st.integers(min_value=0, max_value=25),
        grid_seed=st.integers(min_value=0, max_value=1000),
        scenarios=st.integers(min_value=1, max_value=6),
        blocks=st.integers(min_value=0, max_value=2),
        tier=st.sampled_from(TIERS),
    )
    def test_solve_batch_equals_solve_loop(
        self, tree_seed, grid_seed, scenarios, blocks, tier
    ):
        tree = random_fault_tree(
            num_basic_events=10, seed=tree_seed, voting_ratio=0.15
        )
        probe = IncrementalMaxSATSession(tree)
        weights_seq = _weight_grid(
            probe, seed=grid_seed, count=scenarios, jumpy=grid_seed % 2 == 0
        )
        blocked = _blocked_sets(probe, seed=grid_seed + 1, count=blocks)
        _assert_batch_matches_sequential(tree, weights_seq, blocked, tier=tier)
