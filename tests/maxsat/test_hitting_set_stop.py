"""Cooperative cancellation inside the hitting-set branch-and-bound.

A portfolio loser must cancel promptly even while deep inside the B&B
recursion — not only at its next SAT call.  The search polls ``stop_check``
every few hundred nodes and unwinds with :class:`SolverInterrupted`; the
engine maps that to an UNKNOWN result.
"""

from itertools import combinations

import pytest

from repro.exceptions import SolverInterrupted
from repro.maxsat.engine import MaxSATStatus
from repro.maxsat.hitting_set import HittingSetEngine, minimum_cost_hitting_set
from repro.maxsat.instance import WPMaxSATInstance


def _pairwise_instance():
    """All 2-element cores over 12 elements: a deep B&B (optimum = 11)."""
    cores = [frozenset(pair) for pair in combinations(range(1, 13), 2)]
    weights = {element: 1 for element in range(1, 13)}
    return cores, weights


class TestStopCheckInsideTheSearch:
    def test_search_polls_stop_check_mid_recursion(self):
        cores, weights = _pairwise_instance()
        polls = []
        chosen, cost = minimum_cost_hitting_set(
            cores, weights, stop_check=lambda: polls.append(1) is not None and False
        )
        # The search is deep enough to cross the polling interval repeatedly.
        assert len(polls) > 1
        assert cost == 11
        assert all(chosen & core for core in cores)

    def test_tripped_stop_check_raises_solver_interrupted(self):
        cores, weights = _pairwise_instance()
        with pytest.raises(SolverInterrupted, match="cooperative cancellation"):
            minimum_cost_hitting_set(cores, weights, stop_check=lambda: True)

    def test_tripped_stop_check_unwinds_promptly(self):
        cores, weights = _pairwise_instance()
        polls = []

        def tripping():
            polls.append(1)
            return True

        with pytest.raises(SolverInterrupted):
            minimum_cost_hitting_set(cores, weights, stop_check=tripping)
        # The very first poll trips, so the search must not keep branching.
        assert len(polls) == 1

    def test_no_stop_check_still_solves(self):
        cores, weights = _pairwise_instance()
        chosen, cost = minimum_cost_hitting_set(cores, weights)
        assert cost == 11
        assert all(chosen & core for core in cores)


class TestEngineMapsInterruptionToUnknown:
    def test_stopped_engine_returns_unknown(self):
        instance = WPMaxSATInstance(precision=1)
        instance.add_hard([1, 2])
        instance.add_soft([-1], 2)
        instance.add_soft([-2], 5)
        engine = HittingSetEngine()
        engine.stop_check = lambda: True
        result = engine.solve(instance)
        assert result.status is MaxSATStatus.UNKNOWN

    def test_unstopped_engine_still_finds_the_optimum(self):
        instance = WPMaxSATInstance(precision=1)
        instance.add_hard([1, 2])
        instance.add_soft([-1], 2)
        instance.add_soft([-2], 5)
        engine = HittingSetEngine()
        engine.stop_check = lambda: False
        result = engine.solve(instance)
        assert result.status is MaxSATStatus.OPTIMUM
        assert result.cost == 2
