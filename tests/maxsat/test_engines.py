"""Unit tests exercising every MaxSAT engine on hand-crafted instances."""

import pytest

from repro.exceptions import SolverError
from repro.maxsat import (
    BruteForceEngine,
    FuMalikEngine,
    LinearSearchEngine,
    MaxSATResult,
    MaxSATStatus,
    RC2Engine,
    WPMaxSATInstance,
)

ALL_ENGINES = [
    RC2Engine,
    lambda: RC2Engine(stratified=True),
    FuMalikEngine,
    LinearSearchEngine,
    BruteForceEngine,
]

ENGINE_IDS = ["rc2", "rc2-stratified", "fu-malik", "linear", "brute-force"]


def make_engine(factory):
    return factory()


@pytest.fixture(params=ALL_ENGINES, ids=ENGINE_IDS)
def engine(request):
    return make_engine(request.param)


def simple_instance():
    """Hard: (x1 | x2); soft: prefer both false, x1 cheaper to violate."""
    instance = WPMaxSATInstance(precision=1)
    instance.add_hard([1, 2])
    instance.add_soft([-1], 2, label="not-x1")
    instance.add_soft([-2], 5, label="not-x2")
    return instance


class TestAllEnginesAgree:
    def test_simple_instance_optimum(self, engine):
        result = engine.solve(simple_instance())
        assert result.status is MaxSATStatus.OPTIMUM
        assert result.cost == 2
        assert result.model[1] is True
        assert result.model[2] is False

    def test_all_soft_satisfiable_cost_zero(self, engine):
        instance = WPMaxSATInstance(precision=1)
        instance.add_hard([1, 2])
        instance.add_soft([1], 3)
        instance.add_soft([2, 3], 4)
        result = engine.solve(instance)
        assert result.status is MaxSATStatus.OPTIMUM
        assert result.cost == 0

    def test_unsatisfiable_hard_clauses(self, engine):
        instance = WPMaxSATInstance(precision=1)
        instance.add_hard([1])
        instance.add_hard([-1])
        instance.add_soft([2], 1)
        result = engine.solve(instance)
        assert result.status is MaxSATStatus.UNSATISFIABLE

    def test_no_soft_clauses(self, engine):
        instance = WPMaxSATInstance(precision=1)
        instance.add_hard([1, 2])
        result = engine.solve(instance)
        assert result.status is MaxSATStatus.OPTIMUM
        assert result.cost == 0
        assert instance.hard_satisfied_by(result.model)

    def test_forced_violation_of_expensive_soft(self, engine):
        # Hard clauses force x1 true; the soft clause (-x1) must be violated.
        instance = WPMaxSATInstance(precision=1)
        instance.add_hard([1])
        instance.add_soft([-1], 10)
        instance.add_soft([-2], 1)
        result = engine.solve(instance)
        assert result.cost == 10
        assert result.model[2] is False

    def test_weighted_choice_between_cores(self, engine):
        # Two independent "at least one of the pair is true" constraints.
        instance = WPMaxSATInstance(precision=1)
        instance.add_hard([1, 2])
        instance.add_hard([3, 4])
        for var, weight in ((1, 9), (2, 3), (3, 4), (4, 6)):
            instance.add_soft([-var], weight)
        result = engine.solve(instance)
        assert result.status is MaxSATStatus.OPTIMUM
        assert result.cost == 3 + 4

    def test_non_unit_soft_clauses(self, engine):
        instance = WPMaxSATInstance(precision=1)
        instance.add_hard([-1, -2])
        instance.add_soft([1, 3], 4)
        instance.add_soft([2, -3], 5)
        result = engine.solve(instance)
        assert result.status is MaxSATStatus.OPTIMUM
        assert result.cost == 0

    def test_conflicting_unit_softs(self, engine):
        # Softs (x1) and (-x1): exactly one must be violated; violate the cheaper
        # one (weight 3), i.e. keep x1 false so the weight-7 clause is satisfied.
        instance = WPMaxSATInstance(precision=1)
        instance.add_hard([2])  # irrelevant hard clause
        instance.add_soft([1], 3)
        instance.add_soft([-1], 7)
        result = engine.solve(instance)
        assert result.cost == 3
        assert result.model[1] is False

    def test_float_weights_reported_on_original_scale(self, engine):
        instance = WPMaxSATInstance(precision=10**6)
        instance.add_hard([1])
        instance.add_soft([-1], 1.609438)
        result = engine.solve(instance)
        assert result.float_cost == pytest.approx(1.609438, rel=1e-6)

    def test_duplicate_soft_clauses_accumulate(self, engine):
        instance = WPMaxSATInstance(precision=1)
        instance.add_hard([1])
        instance.add_soft([-1], 2)
        instance.add_soft([-1], 3)
        result = engine.solve(instance)
        assert result.cost == 5

    def test_result_statistics_populated(self, engine):
        result = engine.solve(simple_instance())
        assert result.engine
        assert result.sat_calls >= 1
        assert result.solve_time >= 0.0


class TestEngineSpecificBehaviour:
    def test_brute_force_refuses_large_instances(self):
        instance = WPMaxSATInstance(precision=1)
        instance.add_hard([1])
        for var in range(2, 30):
            instance.add_soft([var], 1)
        with pytest.raises(SolverError):
            BruteForceEngine(max_soft=10).solve(instance)

    def test_linear_search_gives_up_gracefully_on_huge_encodings(self):
        # Exponentially-spread weights with a tiny node-size limit -> UNKNOWN.
        instance = WPMaxSATInstance(precision=1)
        instance.add_hard([1, 2, 3, 4, 5, 6, 7, 8])
        for var in range(1, 9):
            instance.add_soft([-var], 3**var)
        engine = LinearSearchEngine(max_encoding_node_size=3)
        result = engine.solve(instance)
        assert result.status in (MaxSATStatus.OPTIMUM, MaxSATStatus.UNKNOWN)

    def test_rc2_handles_repeated_cores_with_residual_weights(self):
        # Chain of overlapping constraints forcing several rounds of core
        # relaxation with distinct weights.
        instance = WPMaxSATInstance(precision=1)
        instance.add_hard([1, 2])
        instance.add_hard([2, 3])
        instance.add_hard([1, 3])
        instance.add_soft([-1], 5)
        instance.add_soft([-2], 8)
        instance.add_soft([-3], 3)
        for engine in (RC2Engine(), BruteForceEngine()):
            result = engine.solve(instance)
            assert result.cost == 8  # violate -3 and -1 (3 + 5) or -2 alone (8)

    def test_stratified_rc2_matches_plain_rc2(self):
        instance = WPMaxSATInstance(precision=1)
        instance.add_hard([1, 2, 3])
        instance.add_hard([-1, -2])
        instance.add_soft([-1], 1)
        instance.add_soft([-2], 1000)
        instance.add_soft([-3], 10)
        plain = RC2Engine().solve(instance)
        stratified = RC2Engine(stratified=True).solve(instance)
        assert plain.cost == stratified.cost == 1
