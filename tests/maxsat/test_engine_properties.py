"""Property-based tests: every MaxSAT engine must agree with brute force."""

from typing import List, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maxsat import (
    BruteForceEngine,
    FuMalikEngine,
    LinearSearchEngine,
    MaxSATStatus,
    RC2Engine,
    WPMaxSATInstance,
)

from tests.conftest import cnf_clause_lists


def weighted_soft_units(max_vars: int = 5):
    """Strategy producing (weight, variable) pairs for unit soft clauses."""
    return st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=20),
            st.integers(min_value=1, max_value=max_vars),
        ),
        min_size=1,
        max_size=6,
    )


def build_instance(hard: List[List[int]], soft: List[Tuple[int, int]]) -> WPMaxSATInstance:
    instance = WPMaxSATInstance(precision=1)
    for clause in hard:
        instance.add_hard(clause)
    for weight, var in soft:
        instance.add_soft([-var], weight)
    return instance


PRODUCTION_ENGINES = [
    ("rc2", RC2Engine),
    ("rc2-stratified", lambda: RC2Engine(stratified=True)),
    ("fu-malik", FuMalikEngine),
    ("linear", LinearSearchEngine),
]


class TestEnginesMatchBruteForce:
    @settings(max_examples=50, deadline=None)
    @given(cnf_clause_lists(max_vars=5, max_clauses=8), weighted_soft_units())
    def test_optimum_cost_matches(self, hard, soft):
        reference = BruteForceEngine().solve(build_instance(hard, soft))
        for name, factory in PRODUCTION_ENGINES:
            result = factory().solve(build_instance(hard, soft))
            assert result.status == reference.status, name
            if reference.status is MaxSATStatus.OPTIMUM:
                assert result.cost == reference.cost, (name, hard, soft)

    @settings(max_examples=40, deadline=None)
    @given(cnf_clause_lists(max_vars=5, max_clauses=8), weighted_soft_units())
    def test_returned_model_is_consistent(self, hard, soft):
        instance = build_instance(hard, soft)
        for name, factory in PRODUCTION_ENGINES:
            check = build_instance(hard, soft)
            result = factory().solve(check)
            if result.status is MaxSATStatus.OPTIMUM:
                assert check.hard_satisfied_by(result.model), name
                assert check.cost_of_model(result.model) == result.cost, name

    @settings(max_examples=30, deadline=None)
    @given(
        cnf_clause_lists(max_vars=5, max_clauses=6),
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=9),
                st.lists(
                    st.integers(min_value=1, max_value=5).flatmap(
                        lambda v: st.sampled_from([v, -v])
                    ),
                    min_size=1,
                    max_size=3,
                    unique=True,
                ),
            ),
            min_size=1,
            max_size=4,
        ),
    )
    def test_non_unit_soft_clauses_match(self, hard, weighted_clauses):
        """Engines must also agree when soft clauses have several literals."""

        def build() -> WPMaxSATInstance:
            instance = WPMaxSATInstance(precision=1)
            for clause in hard:
                instance.add_hard(clause)
            for weight, clause in weighted_clauses:
                instance.add_soft(clause, weight)
            return instance

        reference = BruteForceEngine().solve(build())
        for name, factory in PRODUCTION_ENGINES:
            result = factory().solve(build())
            assert result.status == reference.status, name
            if reference.status is MaxSATStatus.OPTIMUM:
                assert result.cost == reference.cost, (name, hard, weighted_clauses)
