"""Unit tests for the generalized totalizer pseudo-Boolean encoding."""

import itertools

import pytest

from repro.exceptions import SolverError
from repro.maxsat.pb import GeneralizedTotalizer, encode_weighted_at_most
from repro.sat.cdcl import CDCLSolver
from repro.sat.types import SatStatus


def check_at_most(terms, bound):
    """Exhaustively verify that the encoding accepts exactly the assignments with
    weighted sum <= bound."""
    solver = CDCLSolver()
    variables = []
    weighted_terms = []
    for weight in terms:
        var = solver.new_var()
        variables.append((weight, var))
        weighted_terms.append((weight, var))
    encode_weighted_at_most(weighted_terms, bound, solver.new_var, solver.add_clause)
    for bits in itertools.product([False, True], repeat=len(terms)):
        assumptions = [v if b else -v for (_, v), b in zip(variables, bits)]
        total = sum(w for (w, _), b in zip(variables, bits) if b)
        result = solver.solve(assumptions)
        assert (result.status is SatStatus.SAT) == (total <= bound), (terms, bound, bits)


class TestEncodeWeightedAtMost:
    @pytest.mark.parametrize(
        "terms,bound",
        [
            ([1, 1, 1], 2),
            ([2, 3, 4], 5),
            ([5, 5, 5], 10),
            ([1, 2, 4, 8], 7),
            ([3, 7], 2),
            ([10, 1, 1], 11),
        ],
    )
    def test_exhaustive_small_instances(self, terms, bound):
        check_at_most(terms, bound)

    def test_trivially_satisfied_constraint_adds_nothing(self):
        solver = CDCLSolver()
        terms = [(1, solver.new_var()), (2, solver.new_var())]
        before = solver.num_vars
        encode_weighted_at_most(terms, 10, solver.new_var, solver.add_clause)
        assert solver.num_vars == before

    def test_zero_bound_forces_all_false(self):
        solver = CDCLSolver()
        a, b = solver.new_var(), solver.new_var()
        encode_weighted_at_most([(3, a), (4, b)], 0, solver.new_var, solver.add_clause)
        result = solver.solve()
        assert result.status is SatStatus.SAT
        assert result.model[a] is False and result.model[b] is False

    def test_negative_bound_rejected(self):
        solver = CDCLSolver()
        with pytest.raises(SolverError):
            encode_weighted_at_most([(1, solver.new_var())], -1, solver.new_var, solver.add_clause)


class TestGeneralizedTotalizer:
    def test_invalid_weights_rejected(self):
        solver = CDCLSolver()
        with pytest.raises(SolverError):
            GeneralizedTotalizer([(0, solver.new_var())], 3, solver.new_var, solver.add_clause)
        with pytest.raises(SolverError):
            GeneralizedTotalizer([], 3, solver.new_var, solver.add_clause)

    def test_assert_above_build_bound_rejected(self):
        solver = CDCLSolver()
        terms = [(2, solver.new_var()), (3, solver.new_var())]
        gte = GeneralizedTotalizer(terms, 4, solver.new_var, solver.add_clause)
        with pytest.raises(SolverError):
            gte.assert_at_most(5)

    def test_node_size_limit_enforced(self):
        solver = CDCLSolver()
        terms = [(2**i, solver.new_var()) for i in range(8)]
        with pytest.raises(SolverError):
            GeneralizedTotalizer(
                terms, 10**6, solver.new_var, solver.add_clause, max_node_size=4
            )

    def test_distinct_sums_collapse_above_bound(self):
        solver = CDCLSolver()
        terms = [(10, solver.new_var()), (20, solver.new_var()), (30, solver.new_var())]
        gte = GeneralizedTotalizer(terms, 25, solver.new_var, solver.add_clause)
        # every representable sum key must be <= bound + 1
        assert all(value <= 26 for value in gte.sums)
