"""Unit tests for the parallel MaxSAT portfolio (paper Step 5)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.maxsat import (
    BruteForceEngine,
    FuMalikEngine,
    LinearSearchEngine,
    MaxSATStatus,
    PortfolioSolver,
    RC2Engine,
    WPMaxSATInstance,
)
from repro.maxsat.portfolio import default_engines


def sample_instance():
    instance = WPMaxSATInstance(precision=1)
    instance.add_hard([1, 2])
    instance.add_hard([2, 3])
    instance.add_soft([-1], 4)
    instance.add_soft([-2], 9)
    instance.add_soft([-3], 2)
    return instance


class TestConfiguration:
    def test_default_engines_are_heterogeneous(self):
        engines = default_engines()
        assert len(engines) >= 3
        assert len({engine.name for engine in engines}) == len(engines)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            PortfolioSolver(mode="gpu")

    def test_empty_engine_list_rejected(self):
        with pytest.raises(ConfigurationError):
            PortfolioSolver(engines=[])

    def test_duplicate_engine_names_rejected(self):
        with pytest.raises(ConfigurationError):
            PortfolioSolver(engines=[RC2Engine(), RC2Engine()])


@pytest.mark.parametrize("mode", ["sequential", "thread"])
class TestSolving:
    def test_portfolio_returns_optimum(self, mode):
        portfolio = PortfolioSolver(mode=mode)
        result = portfolio.solve(sample_instance())
        assert result.status is MaxSATStatus.OPTIMUM
        # Optimal cover of clauses (1|2) and (2|3): set x1 and x3 true (4 + 2 = 6),
        # cheaper than x2 alone (9).
        assert result.cost == 6

    def test_report_contains_every_engine(self, mode):
        portfolio = PortfolioSolver(
            engines=[RC2Engine(), FuMalikEngine(), LinearSearchEngine()], mode=mode
        )
        report = portfolio.solve_with_report(sample_instance())
        assert report.winner in {"rc2", "fu-malik", "linear-sat-unsat"}
        assert report.result.status is MaxSATStatus.OPTIMUM
        assert set(report.engine_statuses) <= {"rc2", "fu-malik", "linear-sat-unsat"}
        assert report.total_time >= 0.0

    def test_single_engine_portfolio(self, mode):
        portfolio = PortfolioSolver(engines=[RC2Engine()], mode=mode)
        result = portfolio.solve(sample_instance())
        assert result.engine == "rc2"
        assert result.status is MaxSATStatus.OPTIMUM

    def test_unsatisfiable_instance(self, mode):
        instance = WPMaxSATInstance(precision=1)
        instance.add_hard([1])
        instance.add_hard([-1])
        instance.add_soft([2], 1)
        result = PortfolioSolver(mode=mode).solve(instance)
        assert result.status is MaxSATStatus.UNSATISFIABLE

    def test_winner_result_matches_brute_force(self, mode):
        reference = BruteForceEngine().solve(sample_instance())
        result = PortfolioSolver(mode=mode).solve(sample_instance())
        assert result.cost == reference.cost


class TestCostOfSampleInstance:
    def test_reference_cost(self):
        """Pin down the sample instance's optimum so the parametrised tests above
        assert a meaningful value: covering clauses (1|2) and (2|3) costs
        min(weight(x2)=9, weight(x1)+weight(x3)=4+2) = 6."""
        result = BruteForceEngine().solve(sample_instance())
        assert result.cost == 6


class TestThreadCancellation:
    def test_losing_engines_are_cancelled_or_finish(self):
        portfolio = PortfolioSolver(
            engines=[RC2Engine(), RC2Engine(stratified=True), FuMalikEngine()], mode="thread"
        )
        report = portfolio.solve_with_report(sample_instance())
        # every engine either produced a result or was cancelled -> has a status
        assert len(report.engine_statuses) == 3
        for status in report.engine_statuses.values():
            assert status in {"optimum", "unknown", "unsatisfiable"} or status.startswith("error")

    @pytest.mark.parametrize(
        "engine_factory",
        [
            RC2Engine,
            lambda: RC2Engine(stratified=True),
            FuMalikEngine,
            LinearSearchEngine,
        ],
        ids=["rc2", "rc2-stratified", "fu-malik", "linear"],
    )
    def test_cancellation_observed_between_engine_iterations(self, engine_factory):
        """A pre-fired stop check halts the engine before its first oracle call.

        The CDCL solver polls the stop check at restart boundaries; the
        engines must *also* poll it between their own iterations (oracle
        rebuilds, core relaxations) so that a lost race stops promptly even
        when each individual SAT call is short.
        """
        engine = engine_factory()
        calls = {"n": 0}

        def stop_immediately():
            calls["n"] += 1
            return True

        engine.stop_check = stop_immediately
        result = engine.solve(sample_instance())
        assert result.status is MaxSATStatus.UNKNOWN
        assert result.sat_calls == 0
        assert calls["n"] >= 1
