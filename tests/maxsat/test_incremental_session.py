"""Tests for the warm-started incremental MaxSAT session.

The session must return exactly the cold pipeline's optima (and blocked
enumeration) while actually being incremental: weight-only re-solves reuse
cached cores (typically a single SAT call), learned clauses persist in the
underlying CDCL solver, and blocking clauses persist via activation literals.
"""

import pytest

from repro.api.cache import ArtifactCache
from repro.core.pipeline import MPMCSSolver
from repro.exceptions import SolverError
from repro.maxsat.incremental import IncrementalMaxSATSession
from repro.sat.cdcl import CDCLSolver
from repro.sat.types import SatStatus
from repro.workloads.generator import random_fault_tree
from repro.workloads.library import fire_protection_system


class TestCDCLIncrementalInterface:
    def test_add_clauses_between_solves_keeps_learnt_state(self):
        solver = CDCLSolver()
        # Pigeonhole-ish contradiction discovered under assumptions: learning
        # happens, and the learned clauses must survive into the next solve.
        for _ in range(6):
            solver.new_var()
        solver.add_clauses([[1, 2], [-1, 3], [-2, 3], [-3, 4], [-3, 5], [-4, -5, 6]])
        first = solver.solve([-6])
        assert first.status is SatStatus.UNSAT or first.status is SatStatus.SAT
        learnts_after_first = solver.num_learnts
        solver.add_clauses([[6, -1]])
        second = solver.solve()
        assert second.status is SatStatus.SAT
        assert solver.num_learnts >= learnts_after_first

    def test_add_clauses_can_flip_satisfiability(self):
        solver = CDCLSolver()
        solver.add_clauses([[1, 2]])
        assert solver.solve().status is SatStatus.SAT
        solver.add_clauses([[-1], [-2]])
        assert solver.solve().status is SatStatus.UNSAT


class TestSessionAgainstColdPipeline:
    def test_fps_optimum_matches_cold(self):
        tree = fire_protection_system()
        session = IncrementalMaxSATSession(tree)
        outcome = session.solve_tree(tree)
        cold = MPMCSSolver(mode="sequential").solve(tree)
        assert outcome.events == cold.events
        assert outcome.cost == pytest.approx(cold.cost, rel=1e-12)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_tree_optima_match_cold(self, seed):
        tree = random_fault_tree(num_basic_events=18, seed=seed, voting_ratio=0.25)
        session = IncrementalMaxSATSession(tree)
        outcome = session.solve_tree(tree)
        cold = MPMCSSolver(mode="sequential").solve(tree)
        assert outcome.events == cold.events

    def test_blocked_enumeration_matches_cold_ranking(self):
        tree = fire_protection_system()
        session = IncrementalMaxSATSession(tree)
        blocked = []
        warm_costs = []
        for _ in range(4):
            outcome = session.solve_tree(tree, blocked)
            assert outcome is not None
            warm_costs.append((outcome.scaled_cost, outcome.events))
            blocked.append(outcome.events)
        # Costs rise monotonically and every set is a minimal cut set.
        assert warm_costs == sorted(warm_costs, key=lambda item: item[0])
        for _, events in warm_costs:
            assert tree.is_minimal_cut_set(events)

    def test_exhausted_enumeration_returns_none(self):
        tree = fire_protection_system()
        session = IncrementalMaxSATSession(tree)
        blocked = []
        while True:
            outcome = session.solve_tree(tree, blocked)
            if outcome is None:
                break
            blocked.append(outcome.events)
            assert len(blocked) < 50  # FPS has a handful of cut sets
        # Re-solving with no blocks still works after exhaustion.
        assert session.solve_tree(tree) is not None


class TestWeightOnlyResolve:
    def test_weight_changes_reuse_cores(self):
        tree = random_fault_tree(num_basic_events=25, seed=7)
        session = IncrementalMaxSATSession(tree)
        first = session.solve_tree(tree)
        assert first is not None
        cores_after_first = session.num_cores
        calls_after_first = session.sat_calls

        event = first.events[0]
        for index, probability in enumerate((0.002, 0.04, 0.3)):
            scenario = tree.copy(name=f"scenario-{index}")
            scenario.set_probability(event, probability)
            outcome = session.solve_tree(scenario)
            assert outcome is not None
            cold = MPMCSSolver(mode="sequential").solve(scenario)
            assert outcome.events == cold.events
        # Weight-only re-solves: every round is one SAT call, and a round
        # only repeats when it discovered a new core — so the scenarios cost
        # exactly one call each plus one per newly certified core.  On a warm
        # session that stays within a handful of calls for any weights.
        new_cores = session.num_cores - cores_after_first
        assert session.sat_calls - calls_after_first == 3 + new_cores
        assert new_cores <= 3

    def test_blocking_clauses_are_reused_across_solves(self):
        tree = fire_protection_system()
        session = IncrementalMaxSATSession(tree)
        first = session.solve_tree(tree)
        session.solve_tree(tree, [first.events])
        blocks_after = session.num_block_clauses
        # Blocking the same cut set again must not add a second clause.
        session.solve_tree(tree, [first.events])
        assert session.num_block_clauses == blocks_after

    def test_fragment_cache_feeds_the_session(self):
        tree = fire_protection_system()
        cache = ArtifactCache()
        IncrementalMaxSATSession(tree, cache)
        misses = cache.misses_for("subtree-cnf")
        assert misses == len(tree.gates)
        # A second session over the same structure hits every fragment.
        IncrementalMaxSATSession(tree, cache)
        assert cache.misses_for("subtree-cnf") == misses
        assert cache.hits_for("subtree-cnf") == misses

    def test_invalid_weight_rejected(self):
        tree = fire_protection_system()
        session = IncrementalMaxSATSession(tree)
        weights = {name: 1.0 for name in session.event_vars}
        weights[next(iter(weights))] = 0.0
        with pytest.raises(SolverError):
            session.solve(weights)
