"""Unit tests for the implicit hitting set and binary search MaxSAT engines."""

import pytest

from repro.exceptions import BudgetExceededError
from repro.maxsat import (
    BinarySearchEngine,
    BruteForceEngine,
    HittingSetEngine,
    MaxSATStatus,
    WPMaxSATInstance,
)
from repro.maxsat.hitting_set import minimum_cost_hitting_set

NEW_ENGINES = [HittingSetEngine, BinarySearchEngine]
ENGINE_IDS = ["hitting-set", "binary-search"]


@pytest.fixture(params=NEW_ENGINES, ids=ENGINE_IDS)
def engine(request):
    return request.param()


def simple_instance():
    """Hard: (x1 | x2); soft: prefer both false, x1 cheaper to violate."""
    instance = WPMaxSATInstance(precision=1)
    instance.add_hard([1, 2])
    instance.add_soft([-1], 2, label="not-x1")
    instance.add_soft([-2], 5, label="not-x2")
    return instance


def chain_instance():
    """x1 -> x2 -> x3 with the cheapest chain break at x1."""
    instance = WPMaxSATInstance(precision=1)
    instance.add_hard([1])
    instance.add_hard([-1, 2])
    instance.add_hard([-2, 3])
    instance.add_soft([-1], 7)
    instance.add_soft([-2], 3)
    instance.add_soft([-3], 4)
    return instance


class TestNewEnginesOnCraftedInstances:
    def test_simple_instance(self, engine):
        result = engine.solve(simple_instance())
        assert result.status is MaxSATStatus.OPTIMUM
        assert result.cost == 2
        assert result.model[1] is True
        assert result.model[2] is False

    def test_chain_instance_pays_every_forced_literal(self, engine):
        result = engine.solve(chain_instance())
        assert result.status is MaxSATStatus.OPTIMUM
        assert result.cost == 7 + 3 + 4

    def test_zero_cost_when_all_soft_satisfiable(self, engine):
        instance = WPMaxSATInstance(precision=1)
        instance.add_hard([1, 2])
        instance.add_soft([1], 3)
        instance.add_soft([2, 3], 4)
        result = engine.solve(instance)
        assert result.status is MaxSATStatus.OPTIMUM
        assert result.cost == 0

    def test_unsatisfiable_hard_clauses(self, engine):
        instance = WPMaxSATInstance(precision=1)
        instance.add_hard([1])
        instance.add_hard([-1])
        instance.add_soft([2], 1)
        result = engine.solve(instance)
        assert result.status is MaxSATStatus.UNSATISFIABLE

    def test_non_unit_soft_clauses(self, engine):
        instance = WPMaxSATInstance(precision=1)
        instance.add_hard([-1, -2])
        instance.add_soft([1, 3], 2)
        instance.add_soft([2, -3], 3)
        reference = BruteForceEngine().solve(instance.copy())
        result = engine.solve(instance)
        assert result.status is MaxSATStatus.OPTIMUM
        assert result.cost == reference.cost

    def test_float_weights(self, engine):
        instance = WPMaxSATInstance()
        instance.add_hard([1, 2])
        instance.add_soft([-1], 1.60944)
        instance.add_soft([-2], 2.30259)
        result = engine.solve(instance)
        assert result.status is MaxSATStatus.OPTIMUM
        assert result.float_cost == pytest.approx(1.60944, rel=1e-6)

    def test_model_satisfies_hard_and_matches_cost(self, engine):
        instance = chain_instance()
        result = engine.solve(instance)
        assert instance.hard_satisfied_by(result.model)
        assert instance.cost_of_model(result.model) == result.cost


class TestMinimumCostHittingSet:
    def test_empty_cores(self):
        chosen, cost = minimum_cost_hitting_set([], {})
        assert chosen == set()
        assert cost == 0

    def test_single_core_picks_cheapest_element(self):
        cores = [frozenset({1, 2, 3})]
        weights = {1: 5, 2: 2, 3: 9}
        chosen, cost = minimum_cost_hitting_set(cores, weights)
        assert chosen == {2}
        assert cost == 2

    def test_disjoint_cores_sum_costs(self):
        cores = [frozenset({1, 2}), frozenset({3, 4})]
        weights = {1: 1, 2: 5, 3: 7, 4: 2}
        chosen, cost = minimum_cost_hitting_set(cores, weights)
        assert chosen == {1, 4}
        assert cost == 3

    def test_shared_element_is_preferred_when_cheaper(self):
        cores = [frozenset({1, 2}), frozenset({1, 3})]
        weights = {1: 4, 2: 3, 3: 3}
        chosen, cost = minimum_cost_hitting_set(cores, weights)
        assert chosen == {1}
        assert cost == 4

    def test_shared_element_is_avoided_when_expensive(self):
        cores = [frozenset({1, 2}), frozenset({1, 3})]
        weights = {1: 10, 2: 3, 3: 3}
        chosen, cost = minimum_cost_hitting_set(cores, weights)
        assert chosen == {2, 3}
        assert cost == 6

    def test_node_budget(self):
        cores = [frozenset({i, i + 1, i + 2}) for i in range(1, 40, 3)]
        weights = {i: 1 for i in range(1, 50)}
        with pytest.raises(BudgetExceededError):
            minimum_cost_hitting_set(cores, weights, max_nodes=3)


class TestIterationCap:
    def test_hitting_set_iteration_cap_returns_unknown(self):
        engine = HittingSetEngine(max_iterations=1)
        result = engine.solve(chain_instance())
        assert result.status is MaxSATStatus.UNKNOWN
