"""Unit tests for the stochastic local search upper-bound utility."""

import pytest

from repro.core.encoder import encode_mpmcs
from repro.exceptions import SolverError
from repro.maxsat import RC2Engine, WPMaxSATInstance, stochastic_upper_bound
from repro.workloads.library import fire_protection_system


def simple_instance():
    instance = WPMaxSATInstance(precision=1)
    instance.add_hard([1, 2])
    instance.add_soft([-1], 2)
    instance.add_soft([-2], 5)
    return instance


class TestStochasticUpperBound:
    def test_returns_feasible_model(self):
        instance = simple_instance()
        result = stochastic_upper_bound(instance, seed=3)
        assert result is not None
        assert instance.hard_satisfied_by(result.model)
        assert instance.cost_of_model(result.model) == result.cost

    def test_cost_is_an_upper_bound_on_the_optimum(self):
        instance = simple_instance()
        optimum = RC2Engine().solve(instance.copy()).cost
        result = stochastic_upper_bound(instance, seed=3)
        assert result.cost >= optimum

    def test_finds_zero_cost_solution_when_one_exists(self):
        instance = WPMaxSATInstance(precision=1)
        instance.add_hard([1, 2])
        instance.add_soft([1], 3)
        instance.add_soft([2, 3], 4)
        result = stochastic_upper_bound(instance, seed=5, max_flips=500)
        assert result.cost == 0
        assert result.float_cost == 0.0

    def test_unsatisfiable_hard_clauses_return_none(self):
        instance = WPMaxSATInstance(precision=1)
        instance.add_hard([1])
        instance.add_hard([-1])
        assert stochastic_upper_bound(instance) is None

    def test_mpmcs_instance_upper_bound_is_a_real_cut_set(self):
        encoding = encode_mpmcs(fire_protection_system())
        optimum = RC2Engine().solve(encoding.instance.copy())
        result = stochastic_upper_bound(encoding.instance, seed=11, max_flips=5000)
        assert result is not None
        # Never better than the proven optimum, never as bad as violating
        # every soft clause (i.e. the model selects a genuine cut set).
        assert optimum.cost <= result.cost < encoding.instance.total_soft_weight()
        cut_set = encoding.cut_set_from_model(result.model)
        assert fire_protection_system().is_cut_set(cut_set)

    def test_noise_validation(self):
        with pytest.raises(SolverError):
            stochastic_upper_bound(simple_instance(), noise=1.5)

    def test_reproducible_from_seed(self):
        first = stochastic_upper_bound(simple_instance(), seed=9)
        second = stochastic_upper_bound(simple_instance(), seed=9)
        assert first.cost == second.cost
        assert first.model == second.model
