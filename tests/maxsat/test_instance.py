"""Unit tests for the Weighted Partial MaxSAT instance model."""

import pytest

from repro.exceptions import SolverError
from repro.logic.cnf import CNF
from repro.maxsat.instance import WPMaxSATInstance


class TestConstruction:
    def test_add_hard_tracks_variables(self):
        instance = WPMaxSATInstance()
        instance.add_hard([1, -3])
        assert instance.num_vars == 3
        assert instance.num_hard == 1

    def test_empty_hard_clause_rejected(self):
        with pytest.raises(SolverError):
            WPMaxSATInstance().add_hard([])

    def test_zero_literal_rejected(self):
        with pytest.raises(SolverError):
            WPMaxSATInstance().add_hard([0])
        with pytest.raises(SolverError):
            WPMaxSATInstance().add_soft([0], 1.0)

    def test_add_soft_scales_weight(self):
        instance = WPMaxSATInstance(precision=1000)
        soft = instance.add_soft([-1], 2.5, label="x1")
        assert soft.scaled_weight == 2500
        assert soft.weight == 2.5
        assert soft.label == "x1"

    def test_tiny_weight_clamped_to_one(self):
        instance = WPMaxSATInstance(precision=10)
        soft = instance.add_soft([1], 1e-9)
        assert soft.scaled_weight == 1

    def test_nonpositive_weight_rejected(self):
        instance = WPMaxSATInstance()
        with pytest.raises(SolverError):
            instance.add_soft([1], 0.0)
        with pytest.raises(SolverError):
            instance.add_soft([1], -1.0)
        with pytest.raises(SolverError):
            instance.add_soft([1], float("inf"))

    def test_invalid_precision_rejected(self):
        with pytest.raises(SolverError):
            WPMaxSATInstance(precision=0)

    def test_add_hard_cnf_imports_names(self):
        cnf = CNF()
        var = cnf.var_for("x1")
        cnf.add_clause([var])
        instance = WPMaxSATInstance()
        instance.add_hard_cnf(cnf)
        assert instance.var_names[var] == "x1"
        assert instance.num_hard == 1

    def test_new_var_extends_count(self):
        instance = WPMaxSATInstance()
        instance.add_hard([2])
        assert instance.new_var() == 3


class TestCostEvaluation:
    def test_cost_of_model_counts_falsified_softs(self):
        instance = WPMaxSATInstance(precision=1)
        instance.add_soft([1], 5)
        instance.add_soft([2], 7)
        assert instance.cost_of_model({1: False, 2: True}) == 5
        assert instance.cost_of_model({1: False, 2: False}) == 12
        assert instance.cost_of_model({1: True, 2: True}) == 0

    def test_hard_satisfied_by(self):
        instance = WPMaxSATInstance()
        instance.add_hard([1, 2])
        assert instance.hard_satisfied_by({1: True, 2: False})
        assert not instance.hard_satisfied_by({1: False, 2: False})

    def test_total_soft_weight(self):
        instance = WPMaxSATInstance(precision=1)
        instance.add_soft([1], 5)
        instance.add_soft([2], 7)
        assert instance.total_soft_weight() == 12

    def test_unscale_cost_inverts_scaling(self):
        instance = WPMaxSATInstance(precision=1000)
        assert instance.unscale_cost(instance.scale_weight(3.25)) == pytest.approx(3.25)

    def test_copy_is_independent(self):
        instance = WPMaxSATInstance()
        instance.add_hard([1])
        clone = instance.copy()
        clone.add_hard([2])
        assert instance.num_hard == 1
        assert clone.num_hard == 2
