"""Unit tests for the clause/CNF model."""

import pytest

from repro.exceptions import CNFError
from repro.logic.cnf import CNF, Clause


class TestClause:
    def test_duplicates_removed_preserving_order(self):
        clause = Clause([1, -2, 1, 3, -2])
        assert clause.literals == (1, -2, 3)

    def test_zero_literal_rejected(self):
        with pytest.raises(CNFError):
            Clause([1, 0])

    def test_bool_literal_rejected(self):
        with pytest.raises(CNFError):
            Clause([True])  # type: ignore[list-item]

    def test_empty_clause_properties(self):
        clause = Clause([])
        assert clause.is_empty
        assert not clause.is_unit

    def test_unit_detection(self):
        assert Clause([5]).is_unit

    def test_tautology_detection(self):
        assert Clause([1, -1]).is_tautology()
        assert not Clause([1, 2]).is_tautology()

    def test_variables(self):
        assert Clause([1, -3, 2]).variables() == {1, 2, 3}

    def test_satisfaction_with_partial_assignment(self):
        clause = Clause([1, -2])
        assert clause.is_satisfied_by({1: True})
        assert clause.is_satisfied_by({2: False})
        assert not clause.is_satisfied_by({1: False})
        assert not clause.is_satisfied_by({})

    def test_membership_and_len(self):
        clause = Clause([1, -2])
        assert 1 in clause and -2 in clause and 2 not in clause
        assert len(clause) == 2


class TestCNF:
    def test_add_clause_tracks_num_vars(self):
        cnf = CNF()
        cnf.add_clause([1, -4])
        assert cnf.num_vars == 4
        assert cnf.num_clauses == 1

    def test_new_var_allocates_sequentially(self):
        cnf = CNF()
        assert cnf.new_var() == 1
        assert cnf.new_var() == 2

    def test_named_variables_round_trip(self):
        cnf = CNF()
        var = cnf.var_for("x1")
        assert cnf.var_for("x1") == var
        assert cnf.var_to_name[var] == "x1"

    def test_conflicting_name_binding_rejected(self):
        cnf = CNF()
        cnf.register_name("x1", 1)
        with pytest.raises(CNFError):
            cnf.register_name("x1", 2)
        with pytest.raises(CNFError):
            cnf.register_name("x2", 1)

    def test_invalid_name_or_var_rejected(self):
        cnf = CNF()
        with pytest.raises(CNFError):
            cnf.register_name("", 1)
        with pytest.raises(CNFError):
            cnf.register_name("x", 0)

    def test_is_satisfied_by(self):
        cnf = CNF([[1, 2], [-1, 3]])
        assert cnf.is_satisfied_by({1: True, 3: True})
        assert not cnf.is_satisfied_by({1: True, 3: False})

    def test_named_assignment_projection(self):
        cnf = CNF()
        a = cnf.var_for("a")
        cnf.var_for("b")
        cnf.add_clause([a])
        projected = cnf.named_assignment({a: True})
        assert projected == {"a": True, "b": False}

    def test_copy_is_independent(self):
        cnf = CNF([[1, 2]])
        clone = cnf.copy()
        clone.add_clause([3])
        assert cnf.num_clauses == 1
        assert clone.num_clauses == 2

    def test_iteration_and_variables(self):
        cnf = CNF([[1, -2], [2, 3]])
        assert len(list(cnf)) == 2
        assert cnf.variables() == {1, 2, 3}

    def test_constructor_with_names(self):
        cnf = CNF(name_to_var={"x": 2})
        assert cnf.num_vars == 2
        assert cnf.name_to_var["x"] == 2
