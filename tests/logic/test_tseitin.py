"""Unit and property tests for the Tseitin transformation (paper Step 2)."""

import itertools

import pytest
from hypothesis import given, settings

from repro.logic.formula import And, AtLeast, FALSE, Implies, Not, Or, TRUE, Var, Xor
from repro.logic.tseitin import TseitinEncoder, tseitin_encode
from repro.sat.cdcl import CDCLSolver
from repro.sat.types import SatStatus

from tests.conftest import all_assignments, formulas


def models_of_formula(formula):
    """All satisfying assignments of a formula (exhaustive)."""
    names = sorted(formula.variables())
    return [a for a in all_assignments(names) if formula.evaluate(a)]


def cnf_satisfiable_with(cnf, named_assignment):
    """Check with the CDCL solver that the CNF is satisfiable when the named
    problem variables are fixed to ``named_assignment``."""
    solver = CDCLSolver()
    solver.add_cnf(cnf)
    assumptions = []
    for name, value in named_assignment.items():
        var = cnf.name_to_var[name]
        assumptions.append(var if value else -var)
    return solver.solve(assumptions).status is SatStatus.SAT


class TestBasicEncodings:
    def test_single_variable(self):
        result = tseitin_encode(Var("a"))
        assert result.root_literal == result.var_map["a"]
        assert result.num_aux_vars == 0

    def test_and_gate_equisatisfiability(self):
        formula = And((Var("a"), Var("b")))
        result = tseitin_encode(formula)
        assert cnf_satisfiable_with(result.cnf, {"a": True, "b": True})
        assert not cnf_satisfiable_with(result.cnf, {"a": True, "b": False})

    def test_or_gate_equisatisfiability(self):
        formula = Or((Var("a"), Var("b")))
        result = tseitin_encode(formula)
        assert cnf_satisfiable_with(result.cnf, {"a": False, "b": True})
        assert not cnf_satisfiable_with(result.cnf, {"a": False, "b": False})

    def test_true_constant(self):
        result = tseitin_encode(TRUE)
        solver = CDCLSolver()
        solver.add_cnf(result.cnf)
        assert solver.solve().status is SatStatus.SAT

    def test_false_constant_unsat(self):
        result = tseitin_encode(FALSE)
        solver = CDCLSolver()
        solver.add_cnf(result.cnf)
        assert solver.solve().status is SatStatus.UNSAT

    def test_without_root_assertion_cnf_stays_satisfiable(self):
        result = tseitin_encode(FALSE, assert_root=False)
        solver = CDCLSolver()
        solver.add_cnf(result.cnf)
        assert solver.solve().status is SatStatus.SAT

    def test_shared_subformulas_encoded_once(self):
        shared = And((Var("a"), Var("b")))
        formula = Or((shared, And((shared, Var("c")))))
        encoder = TseitinEncoder()
        result = encoder.encode(formula)
        # shared AND gate, outer AND gate, outer OR gate -> exactly 3 aux vars
        assert result.num_aux_vars == 3

    def test_polynomial_size(self):
        # A balanced n-ary formula must produce O(n) clauses, not exponential.
        variables = [Var(f"v{i}") for i in range(40)]
        formula = Or(tuple(And((variables[i], variables[i + 1])) for i in range(0, 40, 2)))
        result = tseitin_encode(formula)
        assert result.cnf.num_clauses < 200


class TestThresholdEncoding:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_atleast_k_of_four(self, k):
        operands = tuple(Var(f"v{i}") for i in range(4))
        formula = AtLeast(k, operands)
        result = tseitin_encode(formula)
        for assignment in all_assignments([f"v{i}" for i in range(4)]):
            expected = formula.evaluate(assignment)
            assert cnf_satisfiable_with(result.cnf, assignment) == expected

    def test_negated_threshold(self):
        formula = Not(AtLeast(2, (Var("a"), Var("b"), Var("c"))))
        result = tseitin_encode(formula)
        for assignment in all_assignments(["a", "b", "c"]):
            expected = formula.evaluate(assignment)
            assert cnf_satisfiable_with(result.cnf, assignment) == expected


class TestEncoderReuse:
    def test_same_encoder_shares_variable_numbering(self):
        encoder = TseitinEncoder()
        first = encoder.encode(Var("a") | Var("b"))
        second = encoder.encode(Var("a") & Var("c"))
        assert first.var_map["a"] == second.var_map["a"]
        assert first.cnf is second.cnf

    def test_literal_for_allocates_missing_names(self):
        encoder = TseitinEncoder()
        lit = encoder.literal_for("fresh")
        assert lit == encoder.cnf.name_to_var["fresh"]


class TestEquisatisfiabilityProperty:
    @settings(max_examples=60, deadline=None)
    @given(formulas(max_depth=3, max_vars=4))
    def test_projection_preserves_models(self, formula):
        """For every total assignment of the original variables, the Tseitin CNF is
        satisfiable under that assignment iff the formula evaluates to true."""
        result = tseitin_encode(formula)
        names = sorted(formula.variables())
        for assignment in all_assignments(names):
            expected = formula.evaluate(assignment)
            assert cnf_satisfiable_with(result.cnf, assignment) == expected

    @settings(max_examples=40, deadline=None)
    @given(formulas(max_depth=3, max_vars=4))
    def test_xor_and_implies_also_supported(self, formula):
        wrapped = Xor((formula, Implies(Var("v1"), formula)))
        result = tseitin_encode(wrapped)
        names = sorted(wrapped.variables())
        for assignment in all_assignments(names):
            expected = wrapped.evaluate(assignment)
            assert cnf_satisfiable_with(result.cnf, assignment) == expected
