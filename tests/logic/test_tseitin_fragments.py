"""Fragment semantics of the Tseitin encoder.

A :class:`CNFFragment` re-assembled after offset remapping must be
*equisatisfiable* with the monolithic encoding for every assignment of its
interface inputs — this is the invariant the incremental sweep engine's
fragment cache rests on.  The property tests drive XOR, at-least-k and
voting-gate fragments through random formulas and random fault trees.
"""

import itertools

import pytest
from hypothesis import given, settings

from repro.core.encoder import assemble_structure_cnf, gate_fragment
from repro.exceptions import FormulaError
from repro.fta.gates import Gate, GateType
from repro.logic.cnf import CNF
from repro.logic.formula import And, AtLeast, Not, Or, Var, Xor
from repro.logic.tseitin import CNFFragment, encode_fragment, tseitin_encode
from repro.sat.cdcl import CDCLSolver
from repro.sat.types import SatStatus
from repro.workloads.generator import random_fault_tree

from tests.conftest import all_assignments, formulas, small_random_trees


def _satisfiable(clauses, assumptions):
    solver = CDCLSolver()
    for clause in clauses:
        solver.add_clause(list(clause))
    return solver.solve(assumptions).status is SatStatus.SAT


def _fragment_agrees_with_monolith(formula, inputs, *, offset=0):
    """Check input-wise equisatisfiability of fragment vs monolithic encoding.

    For every assignment of the declared inputs, the fragment instantiated at
    ``offset`` (with its output asserted) and the monolithic encoding (root
    asserted) must agree on satisfiability.
    """
    monolith = tseitin_encode(formula, assert_root=True)
    fragment = encode_fragment(formula, inputs)

    host = CNF()
    input_literals = {name: host.var_for(name) for name in inputs}
    for _ in range(offset):
        host.new_var()  # shift the internal variables to a non-trivial offset
    output = fragment.instantiate(
        input_literals, new_var=host.new_var, add_clause=host.add_clause
    )
    host.add_clause([output])

    for assignment in all_assignments(list(inputs)):
        mono_assumptions = [
            monolith.cnf.name_to_var[name] if value else -monolith.cnf.name_to_var[name]
            for name, value in assignment.items()
            if name in monolith.cnf.name_to_var
        ]
        frag_assumptions = [
            input_literals[name] if value else -input_literals[name]
            for name, value in assignment.items()
        ]
        assert _satisfiable(
            [c.literals for c in monolith.cnf], mono_assumptions
        ) == _satisfiable([c.literals for c in host], frag_assumptions), assignment


class TestFragmentBasics:
    def test_single_variable_fragment(self):
        fragment = encode_fragment(Var("a"), ["a"])
        assert fragment.inputs == ("a",)
        assert fragment.num_vars == 1
        assert fragment.output == 1
        assert fragment.clauses == ()

    def test_instantiate_maps_negated_input_literals(self):
        fragment = encode_fragment(Not(Var("a")), ["a"])
        host = CNF()
        a = host.var_for("a")
        output = fragment.instantiate({"a": a}, new_var=host.new_var, add_clause=host.add_clause)
        assert output == -a

    def test_undeclared_variable_rejected(self):
        with pytest.raises(FormulaError):
            encode_fragment(And((Var("a"), Var("b"))), ["a"])

    def test_missing_instantiation_literal_rejected(self):
        fragment = encode_fragment(And((Var("a"), Var("b"))), ["a", "b"])
        host = CNF()
        with pytest.raises(FormulaError):
            fragment.instantiate({"a": 1}, new_var=host.new_var, add_clause=host.add_clause)

    def test_wire_round_trip(self):
        fragment = encode_fragment(Xor((Var("a"), Var("b"), Var("c"))), ["a", "b", "c"])
        restored = CNFFragment.from_dict(fragment.to_dict())
        assert restored == fragment

    def test_unused_declared_input_allowed(self):
        fragment = encode_fragment(Var("a"), ["a", "b"])
        assert fragment.inputs == ("a", "b")
        _fragment_agrees_with_monolith(Var("a"), ("a", "b"))


class TestFragmentEquisatisfiability:
    def test_xor_fragment(self):
        _fragment_agrees_with_monolith(
            Xor((Var("a"), Var("b"), Var("c"))), ("a", "b", "c"), offset=3
        )

    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_at_least_k_fragment(self, k):
        operands = tuple(Var(n) for n in ("a", "b", "c", "d"))
        _fragment_agrees_with_monolith(
            AtLeast(k, operands), ("a", "b", "c", "d"), offset=k
        )

    def test_voting_gate_fragment(self):
        gate = Gate(name="g", gate_type=GateType.VOTING, children=("a", "b", "c"), k=2)
        fragment = gate_fragment(gate)
        assert fragment.inputs == ("@0", "@1", "@2")
        host = CNF()
        literals = {f"@{i}": host.var_for(name) for i, name in enumerate("abc")}
        output = fragment.instantiate(
            literals, new_var=host.new_var, add_clause=host.add_clause
        )
        host.add_clause([output])
        for bits in itertools.product([False, True], repeat=3):
            assumptions = [
                var if value else -var
                for var, value in zip([1, 2, 3], bits)
            ]
            expected = sum(bits) >= 2
            assert _satisfiable([c.literals for c in host], assumptions) is expected

    @settings(max_examples=60, deadline=None)
    @given(formulas(max_depth=3, max_vars=4))
    def test_random_formula_fragments(self, formula):
        inputs = tuple(sorted(formula.variables())) or ("v1",)
        _fragment_agrees_with_monolith(formula, inputs, offset=2)


class TestAssembledTreeEncoding:
    @settings(max_examples=25, deadline=None)
    @given(small_random_trees(min_events=4, max_events=8, voting_ratio=0.35))
    def test_assembled_cnf_matches_tree_semantics(self, tree):
        """The fragment-assembled CNF is the structure function of the tree."""
        assembled = assemble_structure_cnf(tree)
        events = list(tree.events_reachable_from_top())
        clauses = [c.literals for c in assembled.cnf]
        for assignment in all_assignments(events):
            assumptions = [
                assembled.var_map[name] if value else -assembled.var_map[name]
                for name, value in assignment.items()
            ]
            assert _satisfiable(clauses, assumptions) is tree.evaluate(assignment)

    def test_fragments_relocate_across_trees(self):
        """One cached fragment instantiates correctly at different offsets."""
        tree = random_fault_tree(num_basic_events=12, seed=3, voting_ratio=0.3)

        class CountingCache:
            def __init__(self):
                self.fragments = {}
                self.misses = 0

            def get_or_compute_subtree(self, tree, node, kind, compute):
                from repro.api.cache import subtree_structure_hashes

                key = (subtree_structure_hashes(tree)[node], kind)
                if key not in self.fragments:
                    self.fragments[key] = compute()
                    self.misses += 1
                return self.fragments[key]

        cache = CountingCache()
        first = assemble_structure_cnf(tree, cache)
        misses_after_first = cache.misses
        second = assemble_structure_cnf(tree, cache)
        assert cache.misses == misses_after_first  # fully served from cache
        assert [c.literals for c in first.cnf] == [c.literals for c in second.cnf]
