"""Unit and property tests for formula simplification and NNF conversion."""

import pytest
from hypothesis import given, settings

from repro.logic.formula import (
    And,
    AtLeast,
    FALSE,
    Implies,
    Not,
    Or,
    TRUE,
    Var,
)
from repro.logic.simplify import complement, flatten, simplify, to_nnf

from tests.conftest import all_assignments, formulas


def assert_equivalent(left, right):
    """Check logical equivalence by exhaustive evaluation over shared variables."""
    names = sorted(left.variables() | right.variables())
    for assignment in all_assignments(names):
        assert left.evaluate(assignment) == right.evaluate(assignment), assignment


class TestSimplify:
    def test_constant_folding_and(self):
        assert simplify(And((Var("a"), FALSE))) == FALSE
        assert simplify(And((Var("a"), TRUE))) == Var("a")

    def test_constant_folding_or(self):
        assert simplify(Or((Var("a"), TRUE))) == TRUE
        assert simplify(Or((Var("a"), FALSE))) == Var("a")

    def test_double_negation(self):
        assert simplify(Not(Not(Var("a")))) == Var("a")

    def test_duplicate_removal(self):
        simplified = simplify(And((Var("a"), Var("a"), Var("b"))))
        assert simplified == And((Var("a"), Var("b")))

    def test_nested_flattening(self):
        nested = And((Var("a"), And((Var("b"), And((Var("c"),))))))
        assert simplify(nested) == And((Var("a"), Var("b"), Var("c")))

    def test_complementary_literals_and(self):
        assert simplify(And((Var("a"), Not(Var("a"))))) == FALSE

    def test_complementary_literals_or(self):
        assert simplify(Or((Var("a"), Not(Var("a"))))) == TRUE

    def test_xor_constant_elimination(self):
        simplified = simplify(Var("a") ^ TRUE)
        assert_equivalent(simplified, Not(Var("a")))

    def test_implies_rewritten(self):
        simplified = simplify(Implies(Var("a"), Var("b")))
        assert_equivalent(simplified, Or((Not(Var("a")), Var("b"))))

    def test_atleast_trivial_thresholds(self):
        ops = (Var("a"), Var("b"), Var("c"))
        assert simplify(AtLeast(1, ops)) == Or(ops)
        assert simplify(AtLeast(3, ops)) == And(ops)

    def test_atleast_with_constant_children(self):
        simplified = simplify(AtLeast(2, (Var("a"), TRUE, Var("b"))))
        assert_equivalent(simplified, Or((Var("a"), Var("b"))))

    @settings(max_examples=60, deadline=None)
    @given(formulas(max_depth=3, max_vars=4))
    def test_simplify_preserves_semantics(self, formula):
        assert_equivalent(formula, simplify(formula))


class TestFlatten:
    def test_flatten_nested_same_type(self):
        nested = Or((Var("a"), Or((Var("b"), Var("c")))))
        assert flatten(nested) == Or((Var("a"), Var("b"), Var("c")))

    def test_flatten_preserves_mixed_structure(self):
        mixed = And((Var("a"), Or((Var("b"), Var("c")))))
        assert flatten(mixed) == mixed

    @settings(max_examples=40, deadline=None)
    @given(formulas(max_depth=3, max_vars=4))
    def test_flatten_preserves_semantics(self, formula):
        assert_equivalent(formula, flatten(formula))


class TestNNF:
    def test_negation_pushed_to_leaves(self):
        formula = Not(And((Var("a"), Or((Var("b"), Var("c"))))))
        nnf = to_nnf(formula)
        for node in nnf.iter_nodes():
            if isinstance(node, Not):
                assert isinstance(node.operand, Var)

    def test_de_morgan_and(self):
        nnf = to_nnf(Not(And((Var("a"), Var("b")))))
        assert_equivalent(nnf, Or((Not(Var("a")), Not(Var("b")))))

    def test_de_morgan_or(self):
        nnf = to_nnf(Not(Or((Var("a"), Var("b")))))
        assert_equivalent(nnf, And((Not(Var("a")), Not(Var("b")))))

    def test_negated_threshold_identity(self):
        formula = Not(AtLeast(2, (Var("a"), Var("b"), Var("c"))))
        assert_equivalent(formula, to_nnf(formula))

    def test_expand_thresholds_removes_atleast_nodes(self):
        formula = AtLeast(2, (Var("a"), Var("b"), Var("c")))
        expanded = to_nnf(formula, expand_thresholds=True)
        assert not any(isinstance(node, AtLeast) for node in expanded.iter_nodes())
        assert_equivalent(formula, expanded)

    @settings(max_examples=60, deadline=None)
    @given(formulas(max_depth=3, max_vars=4))
    def test_nnf_preserves_semantics(self, formula):
        assert_equivalent(formula, to_nnf(formula))

    @settings(max_examples=60, deadline=None)
    @given(formulas(max_depth=3, max_vars=4))
    def test_complement_negates(self, formula):
        complemented = complement(formula)
        names = sorted(formula.variables() | complemented.variables())
        for assignment in all_assignments(names):
            assert complemented.evaluate(assignment) == (not formula.evaluate(assignment))


class TestSuccessTreeExample:
    """The worked example of paper Step 1 on the FPS structure function."""

    def test_fps_success_tree(self):
        x = {i: Var(f"x{i}") for i in range(1, 8)}
        f_t = Or((And((x[1], x[2])), Or((x[3], x[4], And((x[5], Or((x[6], x[7]))))))))
        success = complement(f_t)
        # X(t) = (~x1 | ~x2) & (~x3 & ~x4 & (~x5 | (~x6 & ~x7)))
        expected = And(
            (
                Or((Not(x[1]), Not(x[2]))),
                And((Not(x[3]), Not(x[4]), Or((Not(x[5]), And((Not(x[6]), Not(x[7]))))))),
            )
        )
        assert_equivalent(success, expected)
