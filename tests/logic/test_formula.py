"""Unit tests for the Boolean formula AST."""

import pytest

from repro.exceptions import FormulaError
from repro.logic.formula import (
    And,
    AtLeast,
    Const,
    FALSE,
    Implies,
    Not,
    Or,
    TRUE,
    Var,
    Xor,
    conjoin,
    disjoin,
    variables_in_order,
)


class TestVar:
    def test_evaluate_true(self):
        assert Var("a").evaluate({"a": True}) is True

    def test_evaluate_false(self):
        assert Var("a").evaluate({"a": False}) is False

    def test_missing_assignment_raises(self):
        with pytest.raises(FormulaError):
            Var("a").evaluate({"b": True})

    def test_empty_name_rejected(self):
        with pytest.raises(FormulaError):
            Var("")

    def test_non_string_name_rejected(self):
        with pytest.raises(FormulaError):
            Var(3)  # type: ignore[arg-type]

    def test_equality_and_hash(self):
        assert Var("a") == Var("a")
        assert Var("a") != Var("b")
        assert hash(Var("a")) == hash(Var("a"))

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Var("a").name = "b"  # type: ignore[misc]


class TestConst:
    def test_true_false_evaluate(self):
        assert TRUE.evaluate({}) is True
        assert FALSE.evaluate({}) is False

    def test_substitute_is_identity(self):
        assert TRUE.substitute({"a": FALSE}) is TRUE

    def test_equality(self):
        assert Const(True) == TRUE
        assert Const(False) == FALSE
        assert Const(True) != Const(False)


class TestConnectives:
    def test_and_evaluation(self):
        formula = And((Var("a"), Var("b")))
        assert formula.evaluate({"a": True, "b": True}) is True
        assert formula.evaluate({"a": True, "b": False}) is False

    def test_or_evaluation(self):
        formula = Or((Var("a"), Var("b")))
        assert formula.evaluate({"a": False, "b": False}) is False
        assert formula.evaluate({"a": False, "b": True}) is True

    def test_not_evaluation(self):
        assert Not(Var("a")).evaluate({"a": False}) is True

    def test_xor_evaluation_odd_count(self):
        formula = Xor((Var("a"), Var("b"), Var("c")))
        assert formula.evaluate({"a": True, "b": True, "c": True}) is True
        assert formula.evaluate({"a": True, "b": True, "c": False}) is False

    def test_implies_evaluation(self):
        formula = Implies(Var("a"), Var("b"))
        assert formula.evaluate({"a": True, "b": False}) is False
        assert formula.evaluate({"a": False, "b": False}) is True

    def test_operator_sugar_builds_nodes(self):
        a, b = Var("a"), Var("b")
        assert isinstance(a & b, And)
        assert isinstance(a | b, Or)
        assert isinstance(a ^ b, Xor)
        assert isinstance(~a, Not)
        assert isinstance(a >> b, Implies)

    def test_empty_and_rejected(self):
        with pytest.raises(FormulaError):
            And(())

    def test_xor_requires_two_operands(self):
        with pytest.raises(FormulaError):
            Xor((Var("a"),))

    def test_non_formula_operand_rejected(self):
        with pytest.raises(FormulaError):
            And((Var("a"), "b"))  # type: ignore[arg-type]


class TestAtLeast:
    def test_threshold_semantics(self):
        formula = AtLeast(2, (Var("a"), Var("b"), Var("c")))
        assert formula.evaluate({"a": True, "b": True, "c": False}) is True
        assert formula.evaluate({"a": True, "b": False, "c": False}) is False

    def test_k_zero_is_always_true(self):
        assert AtLeast(0, (Var("a"),)).evaluate({"a": False}) is True

    def test_invalid_k_rejected(self):
        with pytest.raises(FormulaError):
            AtLeast(4, (Var("a"), Var("b")))
        with pytest.raises(FormulaError):
            AtLeast(-1, (Var("a"),))

    def test_expand_matches_semantics(self):
        operands = (Var("a"), Var("b"), Var("c"))
        formula = AtLeast(2, operands)
        expanded = formula.expand()
        for a in (False, True):
            for b in (False, True):
                for c in (False, True):
                    env = {"a": a, "b": b, "c": c}
                    assert formula.evaluate(env) == expanded.evaluate(env)

    def test_expand_edge_thresholds(self):
        ops = (Var("a"), Var("b"))
        assert AtLeast(0, ops).expand() == TRUE
        assert AtLeast(1, ops).expand() == Or(ops)
        assert AtLeast(2, ops).expand() == And(ops)


class TestStructure:
    def test_variables_collects_names(self):
        formula = And((Var("a"), Or((Var("b"), Not(Var("c"))))))
        assert formula.variables() == frozenset({"a", "b", "c"})

    def test_variables_in_order_is_first_occurrence(self):
        formula = Or((Var("b"), And((Var("a"), Var("b")))))
        assert variables_in_order(formula) == ("b", "a")

    def test_size_and_depth(self):
        formula = And((Var("a"), Or((Var("b"), Var("c")))))
        assert formula.size() == 5
        assert formula.depth() == 3

    def test_substitute_replaces_variables(self):
        formula = And((Var("a"), Var("b")))
        replaced = formula.substitute({"a": TRUE})
        assert replaced.evaluate({"b": True}) is True
        assert replaced.evaluate({"b": False}) is False

    def test_conjoin_disjoin_trivial_cases(self):
        assert conjoin([]) == TRUE
        assert disjoin([]) == FALSE
        assert conjoin([Var("a")]) == Var("a")
        assert disjoin([Var("a")]) == Var("a")

    def test_to_infix_round_trip_readable(self):
        formula = And((Var("x1"), Or((Var("x2"), Not(Var("x3"))))))
        text = formula.to_infix()
        assert "x1" in text and "x2" in text and "x3" in text
        assert "&" in text and "|" in text
