"""Property-based tests: the MaxSAT pipeline must agree with exhaustive search."""

import pytest
from hypothesis import given, settings

from repro.analysis.bruteforce import brute_force_minimal_cut_sets, brute_force_mpmcs
from repro.core.pipeline import MPMCSSolver
from repro.core.topk import enumerate_mpmcs
from repro.core.weights import probability_from_cost
from repro.maxsat import RC2Engine

from tests.conftest import small_random_trees


def pipeline():
    """A deterministic single-engine pipeline (no threads) for property tests."""
    return MPMCSSolver(single_engine=RC2Engine())


class TestAgainstBruteForce:
    @settings(max_examples=40, deadline=None)
    @given(small_random_trees(min_events=4, max_events=10))
    def test_probability_matches_brute_force(self, tree):
        expected_events, expected_probability = brute_force_mpmcs(tree)
        result = pipeline().solve(tree)
        assert result.probability == pytest.approx(expected_probability, rel=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(small_random_trees(min_events=4, max_events=10))
    def test_returned_set_is_minimal_cut_set(self, tree):
        result = pipeline().solve(tree)
        assert tree.is_minimal_cut_set(result.events)

    @settings(max_examples=30, deadline=None)
    @given(small_random_trees(min_events=4, max_events=9))
    def test_cost_and_probability_are_consistent(self, tree):
        result = pipeline().solve(tree)
        assert probability_from_cost(result.cost) == pytest.approx(
            result.probability, rel=1e-6
        )

    @settings(max_examples=20, deadline=None)
    @given(small_random_trees(min_events=4, max_events=8))
    def test_topk_matches_brute_force_ranking(self, tree):
        reference = brute_force_minimal_cut_sets(tree).ranked()
        k = min(3, len(reference))
        ranked = enumerate_mpmcs(tree, k, solver=pipeline())
        assert len(ranked) == k
        for entry, (_, probability) in zip(ranked, reference[:k]):
            # Ties may be broken differently; compare probabilities, not sets.
            assert entry.probability == pytest.approx(probability, rel=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(small_random_trees(min_events=4, max_events=8, voting_ratio=0.4))
    def test_voting_heavy_trees_match_brute_force(self, tree):
        expected_events, expected_probability = brute_force_mpmcs(tree)
        result = pipeline().solve(tree)
        assert result.probability == pytest.approx(expected_probability, rel=1e-9)
