"""Unit tests for the six-step MPMCS pipeline (paper Section III)."""

import pytest

from repro.core.pipeline import MPMCSSolver, find_mpmcs
from repro.exceptions import AnalysisError
from repro.fta.builder import FaultTreeBuilder
from repro.maxsat import FuMalikEngine, LinearSearchEngine, RC2Engine
from repro.workloads.library import (
    fire_protection_system,
    pressure_tank,
    redundant_power_supply,
    three_motor_system,
)


class TestPaperExample:
    """End-to-end reproduction of the paper's worked example (Fig. 1 / Fig. 2)."""

    def test_fps_mpmcs_is_x1_x2(self, fps_tree):
        result = MPMCSSolver().solve(fps_tree)
        assert result.events == ("x1", "x2")

    def test_fps_probability_is_0_02(self, fps_tree):
        result = MPMCSSolver().solve(fps_tree)
        assert result.probability == pytest.approx(0.02)

    def test_fps_cost_is_sum_of_table_weights(self, fps_tree):
        result = MPMCSSolver().solve(fps_tree)
        assert result.cost == pytest.approx(1.60944 + 2.30259, abs=1e-4)
        assert result.weights["x1"] == pytest.approx(1.60944, abs=1e-4)
        assert result.weights["x2"] == pytest.approx(2.30259, abs=1e-4)

    def test_result_metadata(self, fps_tree):
        result = MPMCSSolver().solve(fps_tree)
        assert result.tree_name == "fire-protection-system"
        assert result.size == 2
        assert result.num_soft == 7
        assert result.num_vars > 7
        assert result.engine
        assert result.total_time >= result.solve_time >= 0.0
        assert result.portfolio is not None

    def test_to_dict_round_trips_key_fields(self, fps_tree):
        result = MPMCSSolver().solve(fps_tree)
        data = result.to_dict()
        assert data["mpmcs"] == ["x1", "x2"]
        assert data["probability"] == pytest.approx(0.02)
        assert data["instance"]["soft_clauses"] == 7


class TestSingleEngineConfigurations:
    @pytest.mark.parametrize(
        "engine_factory",
        [RC2Engine, lambda: RC2Engine(stratified=True), FuMalikEngine, LinearSearchEngine],
        ids=["rc2", "rc2-stratified", "fu-malik", "linear"],
    )
    def test_every_engine_reproduces_the_example(self, fps_tree, engine_factory):
        result = MPMCSSolver(single_engine=engine_factory()).solve(fps_tree)
        assert result.events == ("x1", "x2")
        assert result.probability == pytest.approx(0.02)

    def test_single_engine_bypasses_portfolio(self, fps_tree):
        result = MPMCSSolver(single_engine=RC2Engine()).solve(fps_tree)
        assert result.portfolio is None
        assert result.engine == "rc2"


class TestOtherLibraryTrees:
    def test_pressure_tank_mpmcs(self):
        result = MPMCSSolver().solve(pressure_tank())
        # Dominant scenario: relief valve fails together with the pressure
        # switch sticking (1e-3 * 5e-3), beating the welded-contact variant and
        # the operator-error path.
        assert result.events == ("pressure_switch_stuck", "relief_valve_fails")
        assert result.probability == pytest.approx(5e-6)

    def test_voting_tree_mpmcs(self):
        result = MPMCSSolver().solve(redundant_power_supply())
        # Cheapest pair of feeders failing through their breakers (0.004^2),
        # which beats the bus bar SPOF (1e-5).
        assert result.probability == pytest.approx(0.004 * 0.004)
        assert len(result.events) == 2

    def test_shared_events_tree_mpmcs(self):
        result = MPMCSSolver().solve(three_motor_system())
        # The shared control circuit failure (0.01) dominates motor triples
        # (0.02^3) and the power supply (0.005)... the power supply is actually
        # rarer, so control_circuit wins.
        assert result.events == ("control_circuit",)
        assert result.probability == pytest.approx(0.01)


class TestEdgeCases:
    def test_single_event_tree(self):
        tree = FaultTreeBuilder("single").basic_event("only", 0.3).top("only").build()
        result = find_mpmcs(tree)
        assert result.events == ("only",)
        assert result.probability == pytest.approx(0.3)

    def test_pure_and_tree_requires_all_events(self):
        tree = (
            FaultTreeBuilder("and-only")
            .basic_event("a", 0.5)
            .basic_event("b", 0.4)
            .basic_event("c", 0.3)
            .and_gate("top", ["a", "b", "c"])
            .top("top")
            .build()
        )
        result = find_mpmcs(tree)
        assert result.events == ("a", "b", "c")
        assert result.probability == pytest.approx(0.5 * 0.4 * 0.3)

    def test_pure_or_tree_picks_most_probable_event(self):
        tree = (
            FaultTreeBuilder("or-only")
            .basic_event("a", 0.01)
            .basic_event("b", 0.2)
            .basic_event("c", 0.05)
            .or_gate("top", ["a", "b", "c"])
            .top("top")
            .build()
        )
        result = find_mpmcs(tree)
        assert result.events == ("b",)
        assert result.probability == pytest.approx(0.2)

    def test_probability_one_event_dominates(self):
        tree = (
            FaultTreeBuilder("certain")
            .basic_event("certain", 1.0)
            .basic_event("rare", 0.001)
            .or_gate("top", ["certain", "rare"])
            .top("top")
            .build()
        )
        result = find_mpmcs(tree)
        assert result.events == ("certain",)
        assert result.probability == pytest.approx(1.0)

    def test_voting_gate_direct(self):
        tree = (
            FaultTreeBuilder("vote")
            .basic_event("a", 0.1)
            .basic_event("b", 0.2)
            .basic_event("c", 0.3)
            .basic_event("d", 0.4)
            .voting_gate("top", 3, ["a", "b", "c", "d"])
            .top("top")
            .build()
        )
        result = find_mpmcs(tree)
        assert result.events == ("b", "c", "d")
        assert result.probability == pytest.approx(0.2 * 0.3 * 0.4)

    def test_find_mpmcs_kwargs_passthrough(self, fps_tree):
        result = find_mpmcs(fps_tree, single_engine=RC2Engine(), verify=False)
        assert result.events == ("x1", "x2")


class TestVerification:
    def test_verification_can_be_disabled(self, fps_tree):
        result = MPMCSSolver(verify=False).solve(fps_tree)
        assert result.events == ("x1", "x2")

    def test_verification_rejects_wrong_models(self, fps_tree, monkeypatch):
        """Corrupting the MaxSAT answer must trip the minimal-cut-set check."""
        from repro.maxsat.result import MaxSATResult, MaxSATStatus

        solver = MPMCSSolver(single_engine=RC2Engine())
        original = RC2Engine.solve

        def corrupted(self, instance):
            result = original(self, instance)
            # Flip every event variable to true: a (non-minimal) super-cut-set.
            model = dict(result.model)
            for var in range(1, instance.num_vars + 1):
                model[var] = True
            return MaxSATResult(
                status=MaxSATStatus.OPTIMUM,
                model=model,
                cost=result.cost,
                float_cost=result.float_cost,
                engine=result.engine,
            )

        monkeypatch.setattr(RC2Engine, "solve", corrupted)
        with pytest.raises(AnalysisError, match="not a minimal cut set"):
            solver.solve(fps_tree)
