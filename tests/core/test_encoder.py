"""Unit tests for the MPMCS -> Weighted Partial MaxSAT encoding (Steps 1-4)."""

import pytest

from repro.core.encoder import encode_mpmcs
from repro.exceptions import FaultTreeError
from repro.fta.builder import FaultTreeBuilder
from repro.maxsat import BruteForceEngine
from repro.sat.cdcl import CDCLSolver
from repro.sat.types import SatStatus


class TestEncoding:
    def test_soft_clause_per_event(self, fps_tree):
        encoding = encode_mpmcs(fps_tree)
        assert encoding.instance.num_soft == 7
        assert set(encoding.event_vars) == {f"x{i}" for i in range(1, 8)}
        labels = {soft.label for soft in encoding.instance.soft}
        assert labels == set(encoding.event_vars)

    def test_soft_clauses_are_negative_unit_clauses(self, fps_tree):
        encoding = encode_mpmcs(fps_tree)
        for soft in encoding.instance.soft:
            assert len(soft.literals) == 1
            assert soft.literals[0] < 0  # (¬x_i)

    def test_weights_match_table_one(self, fps_tree):
        encoding = encode_mpmcs(fps_tree)
        assert encoding.weights["x1"] == pytest.approx(1.60944, abs=5e-6)
        assert encoding.weights["x4"] == pytest.approx(6.21461, abs=5e-6)

    def test_hard_clauses_assert_top_event(self, fps_tree):
        """A model of the hard clauses with no event true must not exist."""
        encoding = encode_mpmcs(fps_tree)
        solver = CDCLSolver()
        for clause in encoding.instance.hard:
            solver.add_clause(list(clause))
        all_events_false = [-var for var in encoding.event_vars.values()]
        assert solver.solve(all_events_false).status is SatStatus.UNSAT
        # ...but setting x3 alone (a single point of failure) must be allowed.
        x3 = encoding.event_vars["x3"]
        others_false = [x3] + [-var for name, var in encoding.event_vars.items() if name != "x3"]
        assert solver.solve(others_false).status is SatStatus.SAT

    def test_cut_set_extraction_from_model(self, fps_tree):
        encoding = encode_mpmcs(fps_tree)
        model = {var: False for var in encoding.event_vars.values()}
        model[encoding.event_vars["x1"]] = True
        model[encoding.event_vars["x2"]] = True
        assert encoding.cut_set_from_model(model) == ("x1", "x2")

    def test_aux_vars_counted(self, fps_tree):
        encoding = encode_mpmcs(fps_tree)
        assert encoding.num_aux_vars > 0
        assert encoding.instance.num_vars >= 7 + encoding.num_aux_vars

    def test_single_event_tree(self):
        tree = FaultTreeBuilder("single").basic_event("only", 0.4).top("only").build()
        encoding = encode_mpmcs(tree)
        result = BruteForceEngine().solve(encoding.instance)
        assert encoding.cut_set_from_model(result.model) == ("only",)

    def test_invalid_tree_rejected(self):
        tree = FaultTreeBuilder("broken").basic_event("a", 0.1).or_gate(
            "top", ["a", "ghost"]
        ).top("top").build(validate=False)
        with pytest.raises(FaultTreeError):
            encode_mpmcs(tree)

    def test_optimum_of_encoding_is_paper_solution(self, fps_tree):
        encoding = encode_mpmcs(fps_tree)
        result = BruteForceEngine().solve(encoding.instance)
        assert encoding.cut_set_from_model(result.model) == ("x1", "x2")
        assert result.float_cost == pytest.approx(3.91202, abs=1e-4)

    def test_precision_controls_scaling(self, fps_tree):
        coarse = encode_mpmcs(fps_tree, precision=100)
        fine = encode_mpmcs(fps_tree, precision=10**9)
        coarse_w = [s.scaled_weight for s in coarse.instance.soft]
        fine_w = [s.scaled_weight for s in fine.instance.soft]
        assert max(coarse_w) < max(fine_w)

    def test_var_events_is_inverse_mapping(self, fps_tree):
        encoding = encode_mpmcs(fps_tree)
        for name, var in encoding.event_vars.items():
            assert encoding.var_events[var] == name
