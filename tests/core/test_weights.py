"""Unit tests for the log-space weight transformation (paper Steps 3 and 6)."""

import math

import pytest

from repro.core.weights import (
    MIN_WEIGHT,
    log_weight,
    log_weights,
    probability_from_cost,
    probability_of_cut_set,
    weight_of_cut_set,
)
from repro.exceptions import ProbabilityError

#: The exact probabilities and -log weights of Table I in the paper.
TABLE_I = {
    "x1": (0.2, 1.60944),
    "x2": (0.1, 2.30259),
    "x3": (0.001, 6.90776),
    "x4": (0.002, 6.21461),
    "x5": (0.05, 2.99573),
    "x6": (0.1, 2.30259),
    "x7": (0.05, 2.99573),
}


class TestLogWeight:
    @pytest.mark.parametrize("event,entry", sorted(TABLE_I.items()))
    def test_table_one_values(self, event, entry):
        probability, expected_weight = entry
        assert log_weight(probability) == pytest.approx(expected_weight, abs=5e-6)

    def test_lower_probability_means_higher_weight(self):
        assert log_weight(0.001) > log_weight(0.01) > log_weight(0.1)

    def test_probability_one_clamped_to_min_weight(self):
        assert log_weight(1.0) == MIN_WEIGHT

    @pytest.mark.parametrize("probability", [0.0, -0.5, 1.0001, float("nan")])
    def test_invalid_probabilities_rejected(self, probability):
        with pytest.raises(ProbabilityError):
            log_weight(probability)

    def test_non_numeric_rejected(self):
        with pytest.raises(ProbabilityError):
            log_weight("0.5")  # type: ignore[arg-type]

    def test_log_weights_mapping(self):
        weights = log_weights({name: p for name, (p, _) in TABLE_I.items()})
        assert set(weights) == set(TABLE_I)
        assert weights["x3"] == pytest.approx(6.90776, abs=5e-6)


class TestReverseTransformation:
    def test_probability_from_cost_inverts_log(self):
        assert probability_from_cost(log_weight(0.25)) == pytest.approx(0.25)

    def test_fps_mpmcs_cost_round_trip(self):
        """Step 6 on the paper's solution: exp(-(w1 + w2)) = 0.2 * 0.1 = 0.02."""
        cost = log_weight(0.2) + log_weight(0.1)
        assert probability_from_cost(cost) == pytest.approx(0.02)

    def test_negative_cost_rejected(self):
        with pytest.raises(ProbabilityError):
            probability_from_cost(-1.0)

    def test_zero_cost_is_certainty(self):
        assert probability_from_cost(0.0) == 1.0


class TestCutSetHelpers:
    def test_probability_of_cut_set(self):
        probabilities = {"a": 0.5, "b": 0.1}
        assert probability_of_cut_set(["a", "b"], probabilities) == pytest.approx(0.05)
        assert probability_of_cut_set([], probabilities) == 1.0

    def test_probability_of_cut_set_unknown_event(self):
        with pytest.raises(ProbabilityError):
            probability_of_cut_set(["ghost"], {"a": 0.5})

    def test_weight_of_cut_set_matches_sum_of_logs(self):
        probabilities = {"a": 0.5, "b": 0.1}
        expected = -math.log(0.5) - math.log(0.1)
        assert weight_of_cut_set(["a", "b"], probabilities) == pytest.approx(expected)

    def test_weight_and_probability_are_consistent(self):
        probabilities = {"a": 0.3, "b": 0.07, "c": 0.9}
        cut_set = ["a", "c"]
        weight = weight_of_cut_set(cut_set, probabilities)
        assert probability_from_cost(weight) == pytest.approx(
            probability_of_cut_set(cut_set, probabilities)
        )
