"""Unit tests for top-k MPMCS enumeration."""

import pytest

from repro.analysis.bruteforce import brute_force_minimal_cut_sets
from repro.core.pipeline import MPMCSSolver
from repro.core.topk import enumerate_mpmcs
from repro.exceptions import AnalysisError
from repro.fta.builder import FaultTreeBuilder
from repro.maxsat import RC2Engine


class TestFPSRanking:
    def test_top_three_cut_sets(self, fps_tree):
        ranked = enumerate_mpmcs(fps_tree, 3)
        assert [entry.events for entry in ranked] == [
            ("x1", "x2"),
            ("x5", "x6"),
            ("x5", "x7"),
        ]
        assert ranked[0].probability == pytest.approx(0.02)
        assert ranked[1].probability == pytest.approx(0.005)
        assert ranked[2].probability == pytest.approx(0.0025)

    def test_ranks_are_sequential(self, fps_tree):
        ranked = enumerate_mpmcs(fps_tree, 4)
        assert [entry.rank for entry in ranked] == [1, 2, 3, 4]

    def test_probabilities_are_non_increasing(self, fps_tree):
        ranked = enumerate_mpmcs(fps_tree, 5)
        probabilities = [entry.probability for entry in ranked]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_enumeration_matches_brute_force_ranking(self, fps_tree):
        ranked = enumerate_mpmcs(fps_tree, 5)
        reference = brute_force_minimal_cut_sets(fps_tree).ranked()
        assert len(ranked) == 5
        for entry, (cut_set, probability) in zip(ranked, reference):
            assert set(entry.events) == set(cut_set)
            assert entry.probability == pytest.approx(probability)

    def test_exhausts_all_cut_sets(self, fps_tree):
        # The FPS tree has exactly 5 minimal cut sets; asking for 10 returns 5.
        ranked = enumerate_mpmcs(fps_tree, 10)
        assert len(ranked) == 5
        assert {entry.events for entry in ranked} == {
            ("x1", "x2"),
            ("x3",),
            ("x4",),
            ("x5", "x6"),
            ("x5", "x7"),
        }


class TestConfiguration:
    def test_k_must_be_positive(self, fps_tree):
        with pytest.raises(AnalysisError):
            enumerate_mpmcs(fps_tree, 0)

    def test_custom_solver_is_used(self, fps_tree):
        solver = MPMCSSolver(single_engine=RC2Engine())
        ranked = enumerate_mpmcs(fps_tree, 2, solver=solver)
        assert len(ranked) == 2

    def test_single_cut_set_tree(self):
        tree = (
            FaultTreeBuilder("tiny")
            .basic_event("a", 0.5)
            .basic_event("b", 0.5)
            .and_gate("top", ["a", "b"])
            .top("top")
            .build()
        )
        ranked = enumerate_mpmcs(tree, 3)
        assert len(ranked) == 1
        assert ranked[0].events == ("a", "b")
        assert ranked[0].size == 2

    def test_duplicate_cut_sets_never_returned(self, voting_tree):
        ranked = enumerate_mpmcs(voting_tree, 8)
        seen = [entry.events for entry in ranked]
        assert len(seen) == len(set(seen))
