"""End-to-end CLI tests for the whatif / sweep / plan subcommands."""

import json

from repro.cli import main


class TestWhatifCommand:
    def test_harden_single_event(self, capsys):
        assert main(["whatif", "--builtin", "fps", "--harden", "x1"]) == 0
        output = capsys.readouterr().out
        assert "base MPMCS  : {x1, x2}" in output
        assert "what-if" in output
        assert "ΔP(top)" in output

    def test_structural_patches_and_json_output(self, tmp_path, capsys):
        out = tmp_path / "whatif.json"
        code = main(
            [
                "whatif", "--builtin", "fps",
                "--remove", "x7",
                "--redundancy", "x1",
                "--set", "x3=0.0005",
                "-o", str(out),
            ]
        )
        assert code == 0
        document = json.loads(out.read_text(encoding="utf-8"))
        assert document["scenarios"][0]["mpmcs_changed"] is True
        assert document["base"]["mpmcs"] == ["x1", "x2"]

    def test_spare_and_threshold_patches(self, capsys):
        assert main(
            ["whatif", "--builtin", "redundant-power-supply",
             "--set-k", "feeders_majority_lost=3",
             "--spare", "feeders_majority_lost=0.01"]
        ) == 0
        assert "ΔP(top)" in capsys.readouterr().out

    def test_no_patches_is_an_error(self, capsys):
        assert main(["whatif", "--builtin", "fps"]) == 1
        assert "at least one patch" in capsys.readouterr().err

    def test_impossible_scenario_fails_cleanly(self, capsys):
        assert main(["whatif", "--builtin", "fps", "--remove", "x3", "--remove", "x4",
                     "--remove", "x5", "--remove", "x1"]) == 1
        assert "error" in capsys.readouterr().err


class TestSweepCommand:
    def test_value_list_sweep(self, capsys):
        assert main(
            ["sweep", "--builtin", "fps", "--event", "x1", "--values", "0.01,0.1,0.4"]
        ) == 0
        output = capsys.readouterr().out
        assert "x1=0.01" in output and "x1=0.4" in output
        assert "subtree cache:" in output

    def test_range_sweep_with_json_report(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        code = main(
            ["sweep", "--builtin", "fps", "--event", "x1",
             "--start", "0.001", "--stop", "0.5", "--steps", "5", "-o", str(out)]
        )
        assert code == 0
        document = json.loads(out.read_text(encoding="utf-8"))
        assert len(document["scenarios"]) == 5
        assert document["subtree_reuse"]["hits"] > 0

    def test_mission_factor_sweep_naive_mode(self, capsys):
        assert main(
            ["sweep", "--builtin", "fps", "--mission-factors", "0.5,1,2",
             "--no-incremental"]
        ) == 0
        output = capsys.readouterr().out
        assert "naive sweep" in output
        assert "mission-time*2" in output

    def test_scale_factor_sweep(self, capsys):
        assert main(
            ["sweep", "--builtin", "fps", "--event", "x2", "--scale-factors", "0.1,10"]
        ) == 0
        assert "x2*0.1" in capsys.readouterr().out

    def test_missing_axis_is_an_error(self, capsys):
        assert main(["sweep", "--builtin", "fps"]) == 1
        assert "sweep needs" in capsys.readouterr().err


class TestPlanCommand:
    def test_greedy_plan(self, capsys):
        code = main(
            ["plan", "--builtin", "fps", "--action", "x1=2", "--action", "x5=1",
             "--budget", "3"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "method      : greedy" in output
        assert "tornado ranking" in output

    def test_exact_plan_backend(self, capsys):
        code = main(
            ["plan", "--builtin", "fps", "--action", "x1=2", "--action", "x2=2",
             "--action", "x5=1", "--budget", "3", "--method", "exact"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "method      : maxsat" in output
        assert "harden(x5*0.1)" in output

    def test_malformed_action_is_an_error(self, capsys):
        assert main(["plan", "--builtin", "fps", "--action", "x1", "--budget", "1"]) == 1
        assert "NAME=VALUE" in capsys.readouterr().err
