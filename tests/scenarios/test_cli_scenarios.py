"""End-to-end CLI tests for the whatif / sweep / plan subcommands."""

import json

from repro.cli import main


class TestWhatifCommand:
    def test_harden_single_event(self, capsys):
        assert main(["whatif", "--builtin", "fps", "--harden", "x1"]) == 0
        output = capsys.readouterr().out
        assert "base MPMCS  : {x1, x2}" in output
        assert "what-if" in output
        assert "ΔP(top)" in output

    def test_structural_patches_and_json_output(self, tmp_path, capsys):
        out = tmp_path / "whatif.json"
        code = main(
            [
                "whatif", "--builtin", "fps",
                "--remove", "x7",
                "--redundancy", "x1",
                "--set", "x3=0.0005",
                "-o", str(out),
            ]
        )
        assert code == 0
        document = json.loads(out.read_text(encoding="utf-8"))
        assert document["scenarios"][0]["mpmcs_changed"] is True
        assert document["base"]["mpmcs"] == ["x1", "x2"]

    def test_spare_and_threshold_patches(self, capsys):
        assert main(
            ["whatif", "--builtin", "redundant-power-supply",
             "--set-k", "feeders_majority_lost=3",
             "--spare", "feeders_majority_lost=0.01"]
        ) == 0
        assert "ΔP(top)" in capsys.readouterr().out

    def test_no_patches_is_an_error(self, capsys):
        assert main(["whatif", "--builtin", "fps"]) == 1
        assert "at least one patch" in capsys.readouterr().err

    def test_impossible_scenario_fails_cleanly(self, capsys):
        assert main(["whatif", "--builtin", "fps", "--remove", "x3", "--remove", "x4",
                     "--remove", "x5", "--remove", "x1"]) == 1
        assert "error" in capsys.readouterr().err


class TestSweepCommand:
    def test_value_list_sweep(self, capsys):
        assert main(
            ["sweep", "--builtin", "fps", "--event", "x1", "--values", "0.01,0.1,0.4"]
        ) == 0
        output = capsys.readouterr().out
        assert "x1=0.01" in output and "x1=0.4" in output
        assert "subtree cache:" in output

    def test_range_sweep_with_json_report(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        code = main(
            ["sweep", "--builtin", "fps", "--event", "x1",
             "--start", "0.001", "--stop", "0.5", "--steps", "5", "-o", str(out)]
        )
        assert code == 0
        document = json.loads(out.read_text(encoding="utf-8"))
        assert len(document["scenarios"]) == 5
        assert document["subtree_reuse"]["hits"] > 0

    def test_mission_factor_sweep_naive_mode(self, capsys):
        assert main(
            ["sweep", "--builtin", "fps", "--mission-factors", "0.5,1,2",
             "--no-incremental"]
        ) == 0
        output = capsys.readouterr().out
        assert "naive sweep" in output
        assert "mission-time*2" in output

    def test_scale_factor_sweep(self, capsys):
        assert main(
            ["sweep", "--builtin", "fps", "--event", "x2", "--scale-factors", "0.1,10"]
        ) == 0
        assert "x2*0.1" in capsys.readouterr().out

    def test_missing_axis_is_an_error(self, capsys):
        assert main(["sweep", "--builtin", "fps"]) == 1
        assert "sweep needs" in capsys.readouterr().err


class TestPlanCommand:
    def test_greedy_plan(self, capsys):
        code = main(
            ["plan", "--builtin", "fps", "--action", "x1=2", "--action", "x5=1",
             "--budget", "3"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "method      : greedy" in output
        assert "tornado ranking" in output

    def test_exact_plan_backend(self, capsys):
        code = main(
            ["plan", "--builtin", "fps", "--action", "x1=2", "--action", "x2=2",
             "--action", "x5=1", "--budget", "3", "--method", "exact"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "method      : maxsat" in output
        assert "harden(x5*0.1)" in output

    def test_malformed_action_is_an_error(self, capsys):
        assert main(["plan", "--builtin", "fps", "--action", "x1", "--budget", "1"]) == 1
        assert "NAME=VALUE" in capsys.readouterr().err


class TestMaintenanceSweepFlags:
    def test_repair_rate_sweep(self, capsys):
        code = main(
            ["sweep", "--builtin", "fps", "--event", "x1",
             "--repair-rate", "0.01,0.1,1", "--failure-rate", "0.001",
             "--mission-time", "1000"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "mu(x1)=0.01@t=1000" in output and "mu(x1)=1@t=1000" in output
        assert "subtree cache:" in output

    def test_test_interval_sweep(self, capsys):
        code = main(
            ["sweep", "--builtin", "fps", "--event", "x5",
             "--test-interval", "100,500,1000", "--failure-rate", "0.0001",
             "--mission-time", "1000"]
        )
        assert code == 0
        assert "tau(x5)=100@t=1000" in capsys.readouterr().out

    def test_maintenance_flags_need_failure_rate(self, capsys):
        assert main(
            ["sweep", "--builtin", "fps", "--event", "x1", "--repair-rate", "0.1"]
        ) == 1
        assert "--failure-rate" in capsys.readouterr().err

    def test_maintenance_flags_are_mutually_exclusive(self, capsys):
        assert main(
            ["sweep", "--builtin", "fps", "--event", "x1", "--repair-rate", "0.1",
             "--test-interval", "100", "--failure-rate", "0.001"]
        ) == 1
        assert "not both" in capsys.readouterr().err


class TestParetoFlag:
    def test_pareto_frontier_table(self, capsys):
        code = main(
            ["plan", "--builtin", "fps", "--action", "x1=2", "--action", "x2=2",
             "--action", "x4=1", "--action", "x5=1", "--pareto"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "method      : exact" in output
        assert "(base)" in output                  # the cost-0 endpoint
        assert "ΔP(MPMCS)" in output

    def test_pareto_with_budget_names_the_affordable_point(self, capsys):
        code = main(
            ["plan", "--builtin", "fps", "--action", "x1=2", "--action", "x5=1",
             "--budget", "3", "--pareto"]
        )
        assert code == 0
        assert "budget 3 buys:" in capsys.readouterr().out

    def test_pareto_json_output(self, tmp_path, capsys):
        out = tmp_path / "frontier.json"
        code = main(
            ["plan", "--builtin", "fps", "--action", "x1=2", "--action", "x5=1",
             "--pareto", "--method", "greedy", "-o", str(out)]
        )
        assert code == 0
        document = json.loads(out.read_text(encoding="utf-8"))
        assert document["method"] == "greedy"
        assert document["points"][0]["cost"] == 0

    def test_plan_without_budget_is_an_error(self, capsys):
        assert main(["plan", "--builtin", "fps", "--action", "x1=2"]) == 1
        assert "--budget" in capsys.readouterr().err

    def test_plan_json_output(self, tmp_path, capsys):
        out = tmp_path / "plan.json"
        code = main(
            ["plan", "--builtin", "fps", "--action", "x1=2", "--budget", "2",
             "--method", "exact", "-o", str(out)]
        )
        assert code == 0
        assert json.loads(out.read_text(encoding="utf-8"))["method"] == "maxsat"

    def test_maintenance_flags_need_mission_time(self, capsys):
        assert main(
            ["sweep", "--builtin", "fps", "--event", "x1",
             "--repair-rate", "0.1", "--failure-rate", "0.001"]
        ) == 1
        assert "--mission-time" in capsys.readouterr().err

    def test_pareto_rejects_non_mpmcs_objective(self, capsys):
        assert main(
            ["plan", "--builtin", "fps", "--action", "x1=2", "--pareto",
             "--objective", "top-event"]
        ) == 1
        assert "mpmcs" in capsys.readouterr().err

    def test_empty_rate_list_is_a_clean_error(self, capsys):
        assert main(
            ["sweep", "--builtin", "fps", "--event", "x1", "--repair-rate", ",",
             "--failure-rate", "0.001", "--mission-time", "1000"]
        ) == 1
        assert "at least one repair rate" in capsys.readouterr().err
