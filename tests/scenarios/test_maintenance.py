"""Maintenance patches: model perturbation, binding, and end-to-end sweeps."""

import pytest

from repro.exceptions import FaultTreeError
from repro.reliability import (
    ExponentialFailure,
    FixedProbability,
    PeriodicallyTestedComponent,
    ReliabilityAssignment,
    RepairableComponent,
    WeibullFailure,
)
from repro.scenarios import (
    ScaleFailureRate,
    ScaleRepairRate,
    ScaleTestInterval,
    Scenario,
    SetFailureRate,
    SetMTTR,
    SetRepairRate,
    SetTestInterval,
    SweepExecutor,
    maintenance_sweep,
    repair_rate_sweep,
)
from repro.scenarios import test_interval_sweep as interval_sweep  # noqa: F401 - aliased so pytest does not collect it
from repro.workloads.library import fire_protection_system

MISSION_TIME = 1000.0


@pytest.fixture()
def assignment():
    bound = ReliabilityAssignment(fire_protection_system())
    bound.assign("x1", RepairableComponent(failure_rate=1e-3, repair_rate=0.01))
    bound.assign("x2", RepairableComponent(failure_rate=5e-4, repair_rate=0.02))
    bound.assign("x5", PeriodicallyTestedComponent(failure_rate=1e-4, test_interval=500.0))
    bound.assign("x6", ExponentialFailure(failure_rate=2e-5))
    return bound


class TestPerturbSemantics:
    def test_set_repair_rate(self, assignment):
        model = SetRepairRate("x1", 0.5).perturb(assignment.model_for("x1"))
        assert model == RepairableComponent(failure_rate=1e-3, repair_rate=0.5)

    def test_scale_repair_rate(self, assignment):
        model = ScaleRepairRate("x1", 10.0).perturb(assignment.model_for("x1"))
        assert model.repair_rate == pytest.approx(0.1)
        assert model.failure_rate == 1e-3  # untouched

    def test_set_mttr_is_inverse_repair_rate(self, assignment):
        model = SetMTTR("x1", 4.0).perturb(assignment.model_for("x1"))
        assert model.repair_rate == pytest.approx(0.25)

    def test_set_and_scale_test_interval(self, assignment):
        base = assignment.model_for("x5")
        assert SetTestInterval("x5", 100.0).perturb(base).test_interval == 100.0
        assert ScaleTestInterval("x5", 0.5).perturb(base).test_interval == 250.0

    def test_failure_rate_patches_cover_every_rated_model(self, assignment):
        for event in ("x1", "x5", "x6"):
            model = SetFailureRate(event, 7e-3).perturb(assignment.model_for(event))
            assert model.failure_rate == 7e-3
            scaled = ScaleFailureRate(event, 2.0).perturb(assignment.model_for(event))
            assert scaled.failure_rate == pytest.approx(
                2.0 * assignment.model_for(event).failure_rate
            )

    def test_wrong_model_kind_rejected(self, assignment):
        with pytest.raises(FaultTreeError, match="repairable-component"):
            SetRepairRate("x5", 0.1).perturb(assignment.model_for("x5"))
        with pytest.raises(FaultTreeError, match="periodically-tested"):
            SetTestInterval("x1", 100.0).perturb(assignment.model_for("x1"))
        with pytest.raises(FaultTreeError, match="constant-failure-rate"):
            SetFailureRate("x3", 1e-3).perturb(FixedProbability(0.1))
        with pytest.raises(FaultTreeError, match="constant-failure-rate"):
            ScaleFailureRate("w", 2.0).perturb(WeibullFailure(shape=2.0, scale=100.0))

    def test_parameters_validated_at_construction(self):
        with pytest.raises(FaultTreeError):
            SetRepairRate("x1", 0.0)
        with pytest.raises(FaultTreeError):
            ScaleRepairRate("x1", -1.0)
        with pytest.raises(FaultTreeError):
            SetMTTR("x1", 0.0)
        with pytest.raises(FaultTreeError):
            SetTestInterval("x5", float("inf"))
        with pytest.raises(FaultTreeError):
            SetFailureRate("", 1e-3)


class TestBinding:
    def test_unbound_apply_is_a_clear_error(self, assignment):
        with pytest.raises(FaultTreeError, match="bind it with .at"):
            SetRepairRate("x1", 0.1).apply(fire_protection_system())

    def test_apply_to_assignment_is_non_destructive(self, assignment):
        perturbed = SetRepairRate("x1", 0.5).apply_to_assignment(assignment)
        assert perturbed.model_for("x1").repair_rate == 0.5
        assert assignment.model_for("x1").repair_rate == 0.01
        assert perturbed.model_for("x2") == assignment.model_for("x2")

    def test_bound_apply_matches_direct_materialisation(self, assignment):
        base = assignment.tree_at(MISSION_TIME)
        patch = SetRepairRate("x1", 0.5)
        patched = patch.at(assignment, MISSION_TIME).apply(base)
        direct = patch.apply_to_assignment(assignment).tree_at(MISSION_TIME)
        assert patched.probabilities() == direct.probabilities()

    def test_bound_apply_keeps_structure_and_base(self, assignment):
        base = assignment.tree_at(MISSION_TIME)
        version = base.version
        patched = SetMTTR("x1", 10.0).at(assignment, MISSION_TIME).apply(base)
        assert base.version == version  # non-destructive
        assert patched.gates.keys() == base.gates.keys()

    def test_bound_label_names_the_mission_time(self, assignment):
        bound = SetRepairRate("x1", 0.5).at(assignment, MISSION_TIME)
        assert bound.label == "mu(x1)=0.5@t=1000"

    def test_unknown_event_rejected_at_bind(self, assignment):
        with pytest.raises(FaultTreeError):
            SetRepairRate("nope", 0.5).at(assignment, MISSION_TIME)

    def test_incompatible_model_rejected_at_bind(self, assignment):
        # x5 is periodically tested; a repair-rate patch must fail when bound,
        # not once per scenario in the middle of a sweep
        with pytest.raises(FaultTreeError, match="repairable-component"):
            SetRepairRate("x5", 0.5).at(assignment, MISSION_TIME)

    def test_invalid_mission_time_rejected(self, assignment):
        with pytest.raises(FaultTreeError):
            SetRepairRate("x1", 0.5).at(assignment, -1.0)


class TestMaintenanceSweeps:
    def test_repair_rate_sweep_matches_direct_tree_at(self, assignment):
        base = assignment.tree_at(MISSION_TIME)
        rates = [0.001, 0.01, 0.1, 1.0]
        report = SweepExecutor().run(
            base, repair_rate_sweep(assignment, "x1", rates, mission_time=MISSION_TIME)
        )
        assert not report.failures
        for rate, outcome in zip(rates, report.outcomes):
            direct_tree = (
                SetRepairRate("x1", rate)
                .apply_to_assignment(assignment)
                .tree_at(MISSION_TIME)
            )
            direct = SweepExecutor().run(direct_tree, [])
            assert outcome.top_event == pytest.approx(direct.base_top_event, rel=1e-12)
            assert outcome.mpmcs_probability == pytest.approx(
                direct.base_mpmcs_probability, rel=1e-12
            )

    def test_sweep_is_pure_probability_rerank(self, assignment):
        base = assignment.tree_at(MISSION_TIME)
        rates = [0.001, 0.01, 0.1, 1.0]
        report = SweepExecutor().run(
            base, repair_rate_sweep(assignment, "x1", rates, mission_time=MISSION_TIME)
        )
        reuse = report.subtree_reuse
        assert reuse["misses"] == base.num_gates
        assert reuse["hits"] == base.num_gates * len(rates)

    def test_incremental_and_naive_paths_agree(self, assignment):
        base = assignment.tree_at(MISSION_TIME)
        scenarios = repair_rate_sweep(
            assignment, "x1", [0.005, 0.05, 0.5], mission_time=MISSION_TIME
        )
        incremental = SweepExecutor().run(base, scenarios).to_canonical_dict()
        naive = SweepExecutor(incremental=False).run(base, scenarios).to_canonical_dict()
        # The reports differ only in the configuration flag naming the path.
        incremental.pop("incremental")
        naive.pop("incremental")
        assert incremental == naive

    def test_faster_repair_lowers_risk_monotonically(self, assignment):
        base = assignment.tree_at(MISSION_TIME)
        report = SweepExecutor().run(
            base,
            repair_rate_sweep(
                assignment, "x1", [0.001, 0.01, 0.1, 1.0], mission_time=MISSION_TIME
            ),
        )
        tops = [outcome.top_event for outcome in report.outcomes]
        assert tops == sorted(tops, reverse=True)

    def test_test_interval_sweep(self, assignment):
        base = assignment.tree_at(MISSION_TIME)
        report = SweepExecutor().run(
            base,
            interval_sweep(
                assignment, "x5", [100.0, 500.0, 1000.0], mission_time=MISSION_TIME
            ),
        )
        assert not report.failures
        assert [outcome.name for outcome in report.outcomes] == [
            "tau(x5)=100@t=1000",
            "tau(x5)=500@t=1000",
            "tau(x5)=1000@t=1000",
        ]

    def test_maintenance_sweep_composes_mixed_patches(self, assignment):
        base = assignment.tree_at(MISSION_TIME)
        report = SweepExecutor().run(
            base,
            maintenance_sweep(
                assignment,
                [SetRepairRate("x1", 0.1), SetTestInterval("x5", 100.0)],
                mission_time=MISSION_TIME,
            ),
        )
        assert not report.failures
        assert all(outcome.top_event <= report.base_top_event for outcome in report.outcomes)

    def test_mixed_scenario_composes_with_static_patches(self, assignment):
        from repro.scenarios import SetProbability

        base = assignment.tree_at(MISSION_TIME)
        scenario = Scenario(
            "combo",
            [
                SetRepairRate("x1", 0.5).at(assignment, MISSION_TIME),
                SetProbability("x3", 0.0001),
            ],
        )
        report = SweepExecutor().run(base, [scenario])
        outcome = report.outcomes[0]
        assert outcome.ok
        patched = scenario.apply(base)
        assert patched.probability("x3") == 0.0001
