"""Sweeps through the kernel dispatch seam: batched exact top-events must be
indistinguishable — scenario for scenario, byte for byte — from the scalar
path, whichever kernel tier runs them."""

import json

import pytest

from repro import kernels
from repro.api import AnalysisSession
from repro.bdd import BDDManager, variable_order
from repro.bdd.probability import probability_of_bdd
from repro.scenarios import SweepExecutor, probability_sweep, run_sweep
from repro.workloads.library import fire_protection_system
from repro.workloads.generator import random_fault_tree


def _sweep_scenarios(steps=39):
    return probability_sweep("x1", [0.001 + 0.9 * i / steps / 2 for i in range(steps)])


def _outcome_documents(report):
    return [
        json.dumps(
            {
                "name": outcome.name,
                "top_event": outcome.top_event,
                "mpmcs": outcome.mpmcs_events,
                "mpmcs_probability": outcome.mpmcs_probability,
                "error": outcome.error,
            },
            sort_keys=True,
        )
        for outcome in report.outcomes
    ]


class TestTierIdenticalSweeps:
    def test_all_tiers_produce_byte_identical_outcomes(self):
        documents = {}
        for tier in kernels.available_tiers():
            session = AnalysisSession(kernel_tier=tier)
            report = run_sweep(
                fire_protection_system(),
                _sweep_scenarios(),
                backend="maxsat",
                session=session,
            )
            assert not report.failures
            documents[tier] = _outcome_documents(report)
        reference = documents["python"]
        for tier, docs in documents.items():
            assert docs == reference, f"tier {tier!r} produced different outcomes"

    def test_batched_top_events_match_scalar_bdd_walk(self):
        tree = fire_protection_system()
        scenarios = list(_sweep_scenarios())
        report = run_sweep(tree, scenarios, backend="maxsat")
        manager = BDDManager(variable_order(tree, heuristic="dfs"))
        function = manager.from_fault_tree(tree)
        for scenario, outcome in zip(scenarios, report.outcomes):
            patched = scenario.apply(tree)
            assert outcome.top_event == probability_of_bdd(
                function, patched.probabilities()
            )

    def test_probability_only_sweep_uses_the_bdd_fast_path(self):
        session = AnalysisSession()
        executor = SweepExecutor(session, backend="maxsat")
        report = executor.run(
            fire_protection_system(),
            _sweep_scenarios(12),
            analyses=("top_event",),
        )
        assert not report.failures
        assert all(outcome.top_event is not None for outcome in report.outcomes)

    def test_random_tree_sweep_tier_identity(self):
        tree = random_fault_tree(num_basic_events=24, seed=9, voting_ratio=0.2)
        event = sorted(tree.events_reachable_from_top())[0]
        scenarios = probability_sweep(event, [0.01, 0.2, 0.45, 0.8])
        documents = {}
        for tier in kernels.available_tiers():
            report = run_sweep(
                tree,
                scenarios,
                backend="maxsat",
                session=AnalysisSession(kernel_tier=tier),
            )
            documents[tier] = _outcome_documents(report)
        reference = next(iter(documents.values()))
        assert all(docs == reference for docs in documents.values())
