"""Semantics of the declarative perturbation model (repro.scenarios.patches)."""

import pytest

from repro.api.cache import ArtifactCache
from repro.exceptions import FaultTreeError
from repro.fta.gates import GateType
from repro.scenarios import (
    AddRedundancy,
    AddSpareChild,
    ApplyCCF,
    Harden,
    RemoveEvent,
    ScaleMissionTime,
    ScaleProbability,
    Scenario,
    SetProbability,
    SetVotingThreshold,
    incremental_cut_sets,
    probability_sweep,
    scale_sweep,
    scenario_grid,
)
from repro.workloads.library import fire_protection_system, redundant_power_supply


def cut_sets(tree):
    return incremental_cut_sets(tree, ArtifactCache()).to_sorted_tuples()


class TestProbabilityPatches:
    def test_set_probability(self):
        tree = fire_protection_system()
        patched = SetProbability("x1", 0.5).apply(tree)
        assert patched.probability("x1") == 0.5
        assert tree.probability("x1") == 0.2  # base tree untouched

    def test_scale_probability(self):
        patched = ScaleProbability("x2", 0.5).apply(fire_protection_system())
        assert patched.probability("x2") == pytest.approx(0.05)

    def test_scale_clamps_to_one(self):
        patched = ScaleProbability("x1", 100.0).apply(fire_protection_system())
        assert patched.probability("x1") == 1.0

    def test_scale_rejects_nonpositive_factor(self):
        with pytest.raises(FaultTreeError):
            ScaleProbability("x1", 0.0).apply(fire_protection_system())

    def test_harden_default_factor(self):
        patched = Harden("x1").apply(fire_protection_system())
        assert patched.probability("x1") == pytest.approx(0.02)

    def test_harden_explicit_probability(self):
        patched = Harden("x1", probability=0.001).apply(fire_protection_system())
        assert patched.probability("x1") == pytest.approx(0.001)

    def test_harden_rejects_raising_probability(self):
        with pytest.raises(FaultTreeError):
            Harden("x3", probability=0.9).apply(fire_protection_system())

    def test_mission_time_transformation(self):
        tree = fire_protection_system()
        patched = ScaleMissionTime(2.0).apply(tree)
        for name, probability in tree.probabilities().items():
            assert patched.probability(name) == pytest.approx(
                1.0 - (1.0 - probability) ** 2.0
            )

    def test_unknown_event_rejected(self):
        with pytest.raises(FaultTreeError):
            SetProbability("nope", 0.5).apply(fire_protection_system())


class TestStructuralPatches:
    def test_remove_event_drops_singleton_cut_set(self):
        patched = RemoveEvent("x3").apply(fire_protection_system())
        assert ("x3",) not in cut_sets(patched)
        assert ("x4",) in cut_sets(patched)

    def test_remove_event_kills_and_gate(self):
        # x1 is under the AND detection gate: removing it removes {x1, x2}.
        patched = RemoveEvent("x1").apply(fire_protection_system())
        assert ("x1", "x2") not in cut_sets(patched)
        assert not patched.is_event("x1")
        assert not patched.is_gate("detection_failure")
        # the orphaned sibling x2 is pruned with its gate
        assert not patched.is_event("x2")

    def test_remove_event_or_gate_keeps_siblings(self):
        patched = RemoveEvent("x7").apply(fire_protection_system())
        assert ("x5", "x6") in cut_sets(patched)
        assert ("x5", "x7") not in cut_sets(patched)

    def test_remove_impossible_top_rejected(self):
        tree = fire_protection_system()
        # After removing every suppression path, only {x1, x2} remains; the
        # tree cannot survive losing x1 as well.
        for event in ("x3", "x4", "x5"):
            tree = RemoveEvent(event).apply(tree)
        assert cut_sets(tree) == [("x1", "x2")]
        with pytest.raises(FaultTreeError):
            RemoveEvent("x1").apply(tree)

    def test_remove_event_from_voting_gate_keeps_threshold(self):
        tree = redundant_power_supply()
        before = cut_sets(tree)
        # transformer_1 sits under feeder 1, an input of the 2-of-3 gate.
        patched = RemoveEvent("transformer_1").apply(tree)
        after = cut_sets(patched)
        assert any("transformer_1" in cs for cs in before)
        assert all("transformer_1" not in cs for cs in after)
        patched.validate()

    def test_add_redundancy_requires_all_units_to_fail(self):
        patched = AddRedundancy("x1").apply(fire_protection_system())
        sets = cut_sets(patched)
        assert ("x1", "x1__r1", "x2") in sets
        assert ("x1", "x2") not in sets
        assert patched.probability("x1__r1") == patched.probability("x1")

    def test_add_redundancy_custom_probability_and_copies(self):
        patched = AddRedundancy("x3", copies=2, probability=0.5).apply(
            fire_protection_system()
        )
        assert ("x3", "x3__r1", "x3__r2") in cut_sets(patched)
        assert patched.probability("x3__r1") == 0.5

    def test_add_spare_child_to_and_gate(self):
        patched = AddSpareChild("detection_failure", 0.01).apply(fire_protection_system())
        assert ("detection_failure__spare", "x1", "x2") in cut_sets(patched)

    def test_add_spare_child_to_voting_gate_raises_threshold(self):
        from repro.analysis.topevent import top_event_probability_from_cut_sets
        from repro.scenarios import incremental_cut_sets as inc

        tree = redundant_power_supply()
        patched = AddSpareChild("feeders_majority_lost", 0.01).apply(tree)
        gate = patched.gates["feeders_majority_lost"]
        # 2-of-3 becomes 3-of-4: one more tolerated unit failure
        assert gate.k == 3 and gate.arity == 4
        before = inc(tree, ArtifactCache())
        after = inc(patched, ArtifactCache())
        assert top_event_probability_from_cut_sets(
            list(after), patched.probabilities()
        ) < top_event_probability_from_cut_sets(list(before), tree.probabilities())

    def test_add_spare_child_rejects_or_gate(self):
        with pytest.raises(FaultTreeError):
            AddSpareChild("suppression_failure", 0.01).apply(fire_protection_system())

    def test_set_voting_threshold(self):
        tree = redundant_power_supply()
        patched = SetVotingThreshold("feeders_majority_lost", 3).apply(tree)
        assert patched.gates["feeders_majority_lost"].k == 3
        # 3-of-3 demands strictly larger cut sets than 2-of-3
        assert min(len(cs) for cs in cut_sets(patched)) >= min(
            len(cs) for cs in cut_sets(tree)
        )

    def test_set_voting_threshold_rejects_non_voting_gate(self):
        with pytest.raises(FaultTreeError):
            SetVotingThreshold("detection_failure", 2).apply(fire_protection_system())

    def test_apply_ccf_shifts_mpmcs_to_common_cause(self):
        tree = fire_protection_system()
        patched = ApplyCCF("sensors", ("x1", "x2"), beta=0.2).apply(tree)
        assert patched.is_event("ccf__sensors")
        assert ("ccf__sensors",) in cut_sets(patched)


class TestScenarios:
    def test_patches_compose_in_order(self):
        scenario = Scenario(
            "combo", [AddRedundancy("x1"), SetProbability("x1__r1", 0.9)]
        )
        patched = scenario.apply(fire_protection_system())
        assert patched.probability("x1__r1") == 0.9

    def test_base_tree_never_mutated(self):
        tree = fire_protection_system()
        version = tree.version
        Scenario("s", [Harden("x1"), RemoveEvent("x3"), AddRedundancy("x5")]).apply(tree)
        assert tree.version == version
        assert tree.probability("x1") == 0.2

    def test_empty_scenario_rejected(self):
        with pytest.raises(FaultTreeError):
            Scenario("empty", [])

    def test_probability_sweep_names_and_values(self):
        scenarios = probability_sweep("x1", [0.1, 0.2])
        assert [s.name for s in scenarios] == ["x1=0.1", "x1=0.2"]
        assert scenarios[0].apply(fire_protection_system()).probability("x1") == 0.1

    def test_probability_sweep_range_is_log_spaced(self):
        scenarios = probability_sweep("x1", start=1e-4, stop=1e-2, steps=3)
        values = [s.apply(fire_protection_system()).probability("x1") for s in scenarios]
        assert values == pytest.approx([1e-4, 1e-3, 1e-2])

    def test_scenario_grid_cartesian_product(self):
        grid = scenario_grid(
            [
                [SetProbability("x1", 0.1), SetProbability("x1", 0.2)],
                [ScaleMissionTime(0.5), ScaleMissionTime(2.0)],
            ]
        )
        assert len(grid) == 4
        assert len({s.name for s in grid}) == 4

    def test_scale_sweep_labels(self):
        assert [s.name for s in scale_sweep("x2", [0.5, 2.0])] == ["x2*0.5", "x2*2"]
