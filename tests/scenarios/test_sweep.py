"""Sweep executor: incremental-vs-fresh agreement and the acceptance sweep."""

import pytest

from repro.api import AnalysisSession
from repro.scenarios import (
    RemoveEvent,
    Scenario,
    SetProbability,
    SweepExecutor,
    mission_time_sweep,
    probability_sweep,
    run_sweep,
    scenario_grid,
)
from repro.workloads.library import fire_protection_system, pressure_tank


class TestSweepBasics:
    def test_outcomes_carry_deltas(self):
        report = SweepExecutor().run(
            fire_protection_system(), probability_sweep("x1", [0.4])
        )
        outcome = report.outcomes[0]
        assert outcome.ok
        assert outcome.top_event == pytest.approx(report.base_top_event + outcome.top_event_delta)
        assert outcome.mpmcs_probability == pytest.approx(0.04)
        assert outcome.mpmcs_delta == pytest.approx(0.02)
        assert not outcome.mpmcs_changed

    def test_mpmcs_change_detection(self):
        report = SweepExecutor().run(
            fire_protection_system(), probability_sweep("x1", [0.001])
        )
        outcome = report.outcomes[0]
        assert outcome.mpmcs_changed
        assert outcome.mpmcs_events == ("x5", "x6")

    def test_failed_scenario_is_captured_not_raised(self):
        scenarios = [
            Scenario("impossible", [RemoveEvent("tank_failure"), RemoveEvent("relief_valve_fails")]),
            Scenario("fine", [SetProbability("tank_failure", 0.5)]),
        ]
        report = SweepExecutor().run(pressure_tank(), scenarios)
        assert len(report.failures) == 1
        assert "impossible" == report.failures[0].name
        assert report.outcomes[1].ok

    def test_ranked_and_best(self):
        report = SweepExecutor().run(
            fire_protection_system(), probability_sweep("x1", [0.4, 0.01, 0.1])
        )
        ranked = report.ranked_by_top_event()
        assert [o.name for o in ranked] == ["x1=0.01", "x1=0.1", "x1=0.4"]
        assert report.best().name == "x1=0.01"

    def test_mission_time_and_grid_sweeps_run(self):
        report = run_sweep(
            fire_protection_system(),
            mission_time_sweep([0.5, 1.0, 2.0])
            + scenario_grid([[SetProbability("x1", 0.1), SetProbability("x1", 0.3)]]),
        )
        assert len(report) == 5 and not report.failures
        # mission time 1.0 is the identity: zero delta
        identity = next(o for o in report.outcomes if o.name == "mission-time*1")
        assert identity.top_event_delta == pytest.approx(0.0, abs=1e-15)

    def test_report_document_shape(self):
        report = SweepExecutor().run(
            fire_protection_system(), probability_sweep("x1", [0.1])
        )
        document = report.to_dict()
        assert document["tree"] == "fire-protection-system"
        assert document["base"]["mpmcs"] == ["x1", "x2"]
        assert document["scenarios"][0]["name"] == "x1=0.1"
        assert document["subtree_reuse"]["hits"] > 0


def _strip_timing(outcome):
    document = outcome.to_dict()
    document.pop("time_s")
    return document


class TestAcceptanceSweep:
    """The ISSUE acceptance criterion: a 200-scenario sweep with nonzero
    reuse whose per-scenario deltas match fresh per-scenario analysis on at
    least two backends."""

    def test_200_scenario_sweep_matches_fresh_analysis_on_two_backends(self):
        tree = fire_protection_system()
        scenarios = probability_sweep("x1", start=1e-4, stop=0.9, steps=200)

        report = SweepExecutor().run(tree, scenarios)
        assert len(report) == 200 and not report.failures

        # Nonzero artifact reuse, and the exact incremental profile: one
        # structural enumeration (5 gates), then 200 scenarios of pure hits.
        reuse = report.subtree_reuse
        assert reuse["misses"] == tree.num_gates
        assert reuse["hits"] == tree.num_gates * 200

        # Cross-check every scenario against fresh sessions on two
        # independent backends (BDD and brute force — neither shares code
        # with the incremental cut-set composition).
        for backend in ("bdd", "brute-force"):
            fresh = AnalysisSession()
            for scenario, outcome in zip(scenarios, report.outcomes):
                reference = fresh.analyze(
                    scenario.apply(tree), ["mpmcs", "top_event"], backend=backend
                )
                assert outcome.mpmcs_events == reference.mpmcs.events
                assert outcome.mpmcs_probability == pytest.approx(
                    reference.mpmcs.probability, rel=1e-9
                )
                assert outcome.top_event == pytest.approx(
                    reference.top_event.best_estimate, rel=1e-9
                )

    def test_incremental_and_naive_sweeps_agree_exactly(self):
        tree = pressure_tank()
        scenarios = probability_sweep(
            "relief_valve_fails", start=1e-5, stop=0.5, steps=40
        ) + mission_time_sweep([0.25, 0.5, 2.0, 4.0])
        incremental = SweepExecutor(incremental=True).run(tree, scenarios)
        naive = SweepExecutor(incremental=False).run(tree, scenarios)
        assert [_strip_timing(a) for a in incremental.outcomes] == [
            _strip_timing(b) for b in naive.outcomes
        ]
        assert incremental.subtree_reuse["hits"] > 0
        assert naive.subtree_reuse == {"hits": 0, "misses": 0}

    def test_session_cache_does_not_grow_with_scenario_count(self):
        # Per-scenario whole-tree artifacts are evicted after each scenario's
        # analysis; only the shared subtree entries and the base tree's
        # artifacts may remain, independent of sweep length.
        tree = fire_protection_system()
        executor = SweepExecutor()
        executor.run(tree, probability_sweep("x1", start=1e-3, stop=0.5, steps=5))
        entries_after_small = len(executor.session.artifacts)
        executor.run(tree, probability_sweep("x2", start=1e-3, stop=0.5, steps=60))
        assert len(executor.session.artifacts) == entries_after_small


class TestExactTopEventAtScale:
    """ROADMAP item: BDD-exact P(top) in the sweep path beyond 20 cut sets."""

    def _big_tree(self):
        from repro.workloads.generator import random_fault_tree

        tree = random_fault_tree(num_basic_events=40, seed=7)
        # Guard the premise: the cut-set backends cap exact inclusion-
        # exclusion at 20 cut sets, so this tree must exceed it.
        collection = AnalysisSession().analyze(tree, ["mcs"], backend="mocus").cut_sets
        assert len(collection) > 20
        return tree

    def test_sweep_reports_exact_value_beyond_cutset_cap(self):
        tree = self._big_tree()
        event = sorted(tree.events)[0]
        report = SweepExecutor().run(tree, probability_sweep(event, [0.001, 0.01, 0.1]))
        # Base and every scenario carry the exact value, cross-checked
        # against a direct BDD analysis of the same tree.
        bdd_exact = AnalysisSession().analyze(
            tree, ["top_event"], backend="bdd"
        ).top_event.exact
        assert report.base.top_event.exact == pytest.approx(bdd_exact, rel=1e-12)
        assert "bdd" in report.base.backends["top_event"]
        for outcome in report.outcomes:
            assert outcome.top_event is not None

    def test_one_bdd_build_serves_probability_only_sweep(self):
        from repro.api.cache import ARTIFACT_SUBTREE_BDD

        tree = self._big_tree()
        event = sorted(tree.events)[0]
        session = AnalysisSession()
        executor = SweepExecutor(session)
        executor.run(tree, probability_sweep(event, [0.001, 0.01, 0.1, 0.2]))
        # Probability patches keep the structure hash, so the BDD compiles
        # once (one miss) and every later scenario re-evaluates it (hits).
        assert session.artifacts.misses_for(ARTIFACT_SUBTREE_BDD) == 1
        assert session.artifacts.hits_for(ARTIFACT_SUBTREE_BDD) >= 4

    def test_exact_top_event_opt_out(self):
        tree = self._big_tree()
        event = sorted(tree.events)[0]
        report = SweepExecutor(exact_top_event=False).run(
            tree, probability_sweep(event, [0.01])
        )
        assert report.base.top_event.exact is None
        assert report.base.top_event.min_cut_upper_bound is not None

    def test_small_trees_unaffected(self):
        """Below the cap the cut-set exact path already answers; no BDD runs."""
        from repro.api.cache import ARTIFACT_SUBTREE_BDD

        session = AnalysisSession()
        SweepExecutor(session).run(
            fire_protection_system(), probability_sweep("x1", [0.01, 0.1])
        )
        assert session.artifacts.misses_for(ARTIFACT_SUBTREE_BDD) == 0

    def test_incremental_and_fresh_agree_with_exact_values(self):
        tree = self._big_tree()
        event = sorted(tree.events)[0]
        scenarios = probability_sweep(event, [0.001, 0.05, 0.3])
        incremental = SweepExecutor(incremental=True).run(tree, scenarios)
        fresh = SweepExecutor(incremental=False).run(tree, scenarios)
        for a, b in zip(incremental.outcomes, fresh.outcomes):
            assert a.top_event == pytest.approx(b.top_event, rel=1e-12)
            assert a.mpmcs_events == b.mpmcs_events


class TestMPMCSIdentityChange:
    """The ``mpmcs_changed`` predicate: displacement AND appearance/disappearance."""

    def test_predicate_treats_one_sided_none_as_changed(self):
        from repro.scenarios import mpmcs_identity_changed

        # appearance: the base had no MPMCS, the scenario produced one
        assert mpmcs_identity_changed(None, ("x1", "x2"))
        # disappearance: the scenario lost its MPMCS entirely
        assert mpmcs_identity_changed(("x1", "x2"), None)
        # two absences are not a change
        assert not mpmcs_identity_changed(None, None)
        # the ordinary cases are unaffected
        assert not mpmcs_identity_changed(("x1", "x2"), ("x1", "x2"))
        assert mpmcs_identity_changed(("x1", "x2"), ("x5", "x6"))

    def test_remove_event_displacing_the_weakest_link_is_flagged(self):
        # Removing x1 kills the base MPMCS {x1, x2}: the weakest-link role
        # moves to another cut set and the outcome must say so.
        report = SweepExecutor().run(
            fire_protection_system(), [Scenario("no-x1", [RemoveEvent("x1")])]
        )
        outcome = report.outcomes[0]
        assert outcome.ok
        assert outcome.mpmcs_events != report.base_mpmcs_events
        assert outcome.mpmcs_changed

    def test_remove_event_preserving_the_weakest_link_is_not_flagged(self):
        # x7 belongs to no dominant cut set: {x1, x2} stays the MPMCS.
        report = SweepExecutor().run(
            fire_protection_system(), [Scenario("no-x7", [RemoveEvent("x7")])]
        )
        outcome = report.outcomes[0]
        assert outcome.ok
        assert outcome.mpmcs_events == report.base_mpmcs_events
        assert not outcome.mpmcs_changed

    def test_sweep_without_mpmcs_analysis_reports_unchanged(self):
        # Neither side computes an MPMCS: two absences must not read as a
        # change (the pre-fix predicate got this right; keep it that way).
        report = SweepExecutor().run(
            fire_protection_system(),
            [Scenario("no-x7", [RemoveEvent("x7")])],
            analyses=("top_event",),
        )
        outcome = report.outcomes[0]
        assert outcome.ok
        assert report.base_mpmcs_events is None and outcome.mpmcs_events is None
        assert not outcome.mpmcs_changed
