"""Routing of the batched MaxSAT re-rank through sweeps, sessions and monitors.

The kernel itself is proven byte-identical in ``tests/maxsat/test_solve_batch``;
here we assert the plumbing: the sweep executor stages batched solves and the
per-scenario analyses consume them without changing any canonical report, the
profile and Prometheus counters expose the pooled/certified/bnb/fallback
split, and staged state never leaks past a run.
"""

import json

import pytest

from repro.api import AnalysisSession
from repro.monitoring import SyntheticFeed, TreeMonitor
from repro.observability.metrics import scoped_metrics
from repro.scenarios import SweepExecutor, probability_sweep
from repro.workloads.generator import random_fault_tree
from repro.workloads.library import fire_protection_system

RERANK_COUNTERS = tuple(
    f"repro_maxsat_rerank_{tier}_total"
    for tier in ("pooled", "certified", "bnb", "fallback")
)


def _canonical(report):
    return json.dumps(report.to_canonical_dict(), sort_keys=True)


class TestSweepRouting:
    def test_maxsat_sweep_exposes_the_batch_path(self):
        assert SweepExecutor(backend="maxsat").uses_batched_rerank

    def test_non_warm_backend_opts_out(self):
        executor = SweepExecutor(backend="mocus")
        assert not executor.uses_batched_rerank
        assert executor.precompute_rerank([fire_protection_system()]) == 0

    def test_batched_sweep_report_is_byte_identical_to_unbatched(self):
        tree = random_fault_tree(num_basic_events=18, seed=9)
        event = sorted(tree.events_reachable_from_top())[0]
        scenarios = probability_sweep(event, start=1e-4, stop=0.5, steps=15)

        batched = SweepExecutor(backend="maxsat").run(tree, scenarios)

        unbatched_executor = SweepExecutor(backend="maxsat")
        unbatched_executor.precompute_rerank = lambda trees: 0
        unbatched = unbatched_executor.run(tree, scenarios)

        assert _canonical(batched) == _canonical(unbatched)

    def test_staged_solves_are_cleared_after_the_run(self):
        tree = fire_protection_system()
        executor = SweepExecutor(backend="maxsat")
        executor.run(tree, probability_sweep("x1", [0.05, 0.2, 0.5]))
        assert executor._warm_backend._pending_rerank == {}

    def test_sweep_increments_rerank_counters(self):
        tree = fire_protection_system()
        scenarios = probability_sweep("x1", start=0.01, stop=0.6, steps=10)
        with scoped_metrics() as registry:
            SweepExecutor(backend="maxsat").run(tree, scenarios)
            staged = sum(
                registry.counter_value(name) for name in RERANK_COUNTERS
            )
        assert staged >= 10


class TestSessionProfile:
    def test_consumed_staged_solve_tags_the_profile(self):
        tree = fire_protection_system()
        session = AnalysisSession()
        backend = session.backend("maxsat")
        backend.enable_warm_sessions()
        # Warm the session, then stage a batch for a probability scenario.
        session.analyze(tree, ["mpmcs"], backend="maxsat")
        patched = tree.copy()
        patched.set_probability("x1", 0.42)
        assert backend.precompute_rerank([patched]) == 1
        report = session.analyze(patched, ["mpmcs"], backend="maxsat")
        tags = [key for key in report.profile if key.startswith("rerank_")]
        assert tags, f"no rerank_* profile key in {sorted(report.profile)}"
        # The canonical report ignores telemetry: profile tags never leak in.
        assert "rerank" not in _canonical(report)

    def test_unconsumed_staged_solves_can_be_dropped(self):
        tree = fire_protection_system()
        session = AnalysisSession()
        backend = session.backend("maxsat")
        backend.enable_warm_sessions()
        session.analyze(tree, ["mpmcs"], backend="maxsat")
        patched = tree.copy()
        patched.set_probability("x2", 0.3)
        backend.precompute_rerank([patched])
        backend.clear_staged_rerank()
        assert backend._pending_rerank == {}
        # Analysis still works: it simply solves per scenario.
        report = session.analyze(patched, ["mpmcs"], backend="maxsat")
        assert report.mpmcs is not None


class TestMonitorRouting:
    def test_apply_batch_goes_through_the_rerank_ladder(self):
        tree = fire_protection_system()
        updates = list(SyntheticFeed(tree, updates=10, seed=5))
        monitor = TreeMonitor(tree, backend="maxsat")
        with scoped_metrics() as registry:
            monitor.apply_batch(updates)
            batched = sum(
                registry.counter_value(name) for name in RERANK_COUNTERS
            )
        assert batched >= 10
