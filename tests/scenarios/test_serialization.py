"""Patch/scenario JSON round-trip and sweep-spec expansion (the wire format)."""

import pytest

from repro.exceptions import ReproError
from repro.scenarios import (
    AddRedundancy,
    AddSpareChild,
    ApplyCCF,
    Harden,
    RemoveEvent,
    ScaleMissionTime,
    ScaleProbability,
    Scenario,
    SetProbability,
    SetVotingThreshold,
    patch_from_dict,
    patch_to_dict,
    scenario_from_dict,
    scenario_to_dict,
    scenarios_from_spec,
)

ALL_PATCHES = [
    SetProbability("x1", 0.01),
    ScaleProbability("x2", 2.5),
    Harden("x3"),
    Harden("x3", factor=0.2),
    Harden("x3", probability=1e-4),
    ScaleMissionTime(4.0),
    RemoveEvent("x4"),
    AddRedundancy("x5"),
    AddRedundancy("x5", copies=3, probability=0.002),
    AddSpareChild("g1", 0.01),
    AddSpareChild("g1", 0.01, name="spare-unit"),
    SetVotingThreshold("g2", 3),
    ApplyCCF("pumps", ["p1", "p2", "p3"], 0.1),
]


class TestPatchRoundTrip:
    @pytest.mark.parametrize("patch", ALL_PATCHES, ids=lambda p: p.label)
    def test_every_patch_type_roundtrips(self, patch):
        document = patch_to_dict(patch)
        rebuilt = patch_from_dict(document)
        assert rebuilt == patch  # frozen dataclasses: field-wise equality
        assert patch_to_dict(rebuilt) == document

    def test_optional_fields_omitted_when_none(self):
        document = patch_to_dict(Harden("x1"))
        assert document == {"type": "harden", "event": "x1"}

    def test_unknown_type_rejected(self):
        with pytest.raises(ReproError, match="unknown patch type"):
            patch_from_dict({"type": "teleport", "event": "x1"})

    def test_missing_required_field_rejected(self):
        with pytest.raises(ReproError, match="missing the required field"):
            patch_from_dict({"type": "set_probability", "event": "x1"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ReproError, match="unknown fields"):
            patch_from_dict({"type": "remove_event", "event": "x1", "extra": 1})

    def test_untagged_document_rejected(self):
        with pytest.raises(ReproError, match="'type' tag"):
            patch_from_dict({"event": "x1"})


class TestScenarioRoundTrip:
    def test_scenario_roundtrips(self):
        scenario = Scenario(
            "mitigate", [Harden("x1", factor=0.1), AddRedundancy("x2")],
            description="harden the sensor and duplicate the pump",
        )
        rebuilt = scenario_from_dict(scenario_to_dict(scenario))
        assert rebuilt == scenario
        assert rebuilt.describe() == scenario.describe()

    def test_description_omitted_when_empty(self):
        document = scenario_to_dict(Scenario("s", [RemoveEvent("x1")]))
        assert "description" not in document

    def test_malformed_documents_rejected(self):
        with pytest.raises(ReproError):
            scenario_from_dict({"name": "s"})  # no patches
        with pytest.raises(ReproError):
            scenario_from_dict({"patches": []})  # no name
        with pytest.raises(ReproError):
            scenario_from_dict({"name": "s", "patches": "nope"})


class TestSpecExpansion:
    def test_explicit_scenario_list(self):
        scenarios = scenarios_from_spec(
            [scenario_to_dict(Scenario("a", [SetProbability("x1", 0.5)]))]
        )
        assert [scenario.name for scenario in scenarios] == ["a"]

    def test_probability_sweep_with_values(self):
        scenarios = scenarios_from_spec(
            {"family": "probability_sweep", "event": "x1", "values": [0.1, 0.2]}
        )
        assert [scenario.name for scenario in scenarios] == ["x1=0.1", "x1=0.2"]

    def test_probability_sweep_with_range(self):
        scenarios = scenarios_from_spec(
            {"family": "probability_sweep", "event": "x1",
             "start": 1e-3, "stop": 1e-1, "steps": 5}
        )
        assert len(scenarios) == 5
        first = scenarios[0].patches[0]
        assert isinstance(first, SetProbability) and first.event == "x1"
        # sweep_values is log-spaced: the endpoint returns via exp(log(x)).
        assert first.probability == pytest.approx(1e-3, rel=1e-12)

    def test_scale_and_mission_time_and_ccf_families(self):
        assert len(scenarios_from_spec(
            {"family": "scale_sweep", "event": "x1", "factors": [0.5, 2.0]}
        )) == 2
        assert len(scenarios_from_spec(
            {"family": "mission_time_sweep", "factors": [1, 2, 3]}
        )) == 3
        scenarios = scenarios_from_spec(
            {"family": "ccf_beta_sweep", "group": "g", "members": ["a", "b"],
             "betas": [0.05, 0.1]}
        )
        assert scenarios[0].patches[0] == ApplyCCF("g", ["a", "b"], 0.05)

    def test_prefix_forwarded(self):
        scenarios = scenarios_from_spec(
            {"family": "mission_time_sweep", "factors": [2.0], "prefix": "mt"}
        )
        assert scenarios[0].name == "mt:mission-time*2"

    def test_unknown_family_rejected(self):
        with pytest.raises(ReproError, match="unknown sweep family"):
            scenarios_from_spec({"family": "quantum_sweep"})

    def test_rangeless_spec_rejected(self):
        with pytest.raises(ReproError, match="'start'"):
            scenarios_from_spec({"family": "probability_sweep", "event": "x1"})
