"""Patch/scenario JSON round-trip and sweep-spec expansion (the wire format)."""

import pytest

from repro.exceptions import ReproError
from repro.scenarios import (
    AddRedundancy,
    AddSpareChild,
    ApplyCCF,
    Harden,
    RemoveEvent,
    ScaleMissionTime,
    ScaleProbability,
    Scenario,
    SetProbability,
    SetVotingThreshold,
    patch_from_dict,
    patch_to_dict,
    scenario_from_dict,
    scenario_to_dict,
    scenarios_from_spec,
)

ALL_PATCHES = [
    SetProbability("x1", 0.01),
    ScaleProbability("x2", 2.5),
    Harden("x3"),
    Harden("x3", factor=0.2),
    Harden("x3", probability=1e-4),
    ScaleMissionTime(4.0),
    RemoveEvent("x4"),
    AddRedundancy("x5"),
    AddRedundancy("x5", copies=3, probability=0.002),
    AddSpareChild("g1", 0.01),
    AddSpareChild("g1", 0.01, name="spare-unit"),
    SetVotingThreshold("g2", 3),
    ApplyCCF("pumps", ["p1", "p2", "p3"], 0.1),
]


class TestPatchRoundTrip:
    @pytest.mark.parametrize("patch", ALL_PATCHES, ids=lambda p: p.label)
    def test_every_patch_type_roundtrips(self, patch):
        document = patch_to_dict(patch)
        rebuilt = patch_from_dict(document)
        assert rebuilt == patch  # frozen dataclasses: field-wise equality
        assert patch_to_dict(rebuilt) == document

    def test_optional_fields_omitted_when_none(self):
        document = patch_to_dict(Harden("x1"))
        assert document == {"type": "harden", "event": "x1"}

    def test_unknown_type_rejected(self):
        with pytest.raises(ReproError, match="unknown patch type"):
            patch_from_dict({"type": "teleport", "event": "x1"})

    def test_missing_required_field_rejected(self):
        with pytest.raises(ReproError, match="missing the required field"):
            patch_from_dict({"type": "set_probability", "event": "x1"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ReproError, match="unknown fields"):
            patch_from_dict({"type": "remove_event", "event": "x1", "extra": 1})

    def test_untagged_document_rejected(self):
        with pytest.raises(ReproError, match="'type' tag"):
            patch_from_dict({"event": "x1"})


class TestScenarioRoundTrip:
    def test_scenario_roundtrips(self):
        scenario = Scenario(
            "mitigate", [Harden("x1", factor=0.1), AddRedundancy("x2")],
            description="harden the sensor and duplicate the pump",
        )
        rebuilt = scenario_from_dict(scenario_to_dict(scenario))
        assert rebuilt == scenario
        assert rebuilt.describe() == scenario.describe()

    def test_description_omitted_when_empty(self):
        document = scenario_to_dict(Scenario("s", [RemoveEvent("x1")]))
        assert "description" not in document

    def test_malformed_documents_rejected(self):
        with pytest.raises(ReproError):
            scenario_from_dict({"name": "s"})  # no patches
        with pytest.raises(ReproError):
            scenario_from_dict({"patches": []})  # no name
        with pytest.raises(ReproError):
            scenario_from_dict({"name": "s", "patches": "nope"})


class TestSpecExpansion:
    def test_explicit_scenario_list(self):
        scenarios = scenarios_from_spec(
            [scenario_to_dict(Scenario("a", [SetProbability("x1", 0.5)]))]
        )
        assert [scenario.name for scenario in scenarios] == ["a"]

    def test_probability_sweep_with_values(self):
        scenarios = scenarios_from_spec(
            {"family": "probability_sweep", "event": "x1", "values": [0.1, 0.2]}
        )
        assert [scenario.name for scenario in scenarios] == ["x1=0.1", "x1=0.2"]

    def test_probability_sweep_with_range(self):
        scenarios = scenarios_from_spec(
            {"family": "probability_sweep", "event": "x1",
             "start": 1e-3, "stop": 1e-1, "steps": 5}
        )
        assert len(scenarios) == 5
        first = scenarios[0].patches[0]
        assert isinstance(first, SetProbability) and first.event == "x1"
        # sweep_values is log-spaced: the endpoint returns via exp(log(x)).
        assert first.probability == pytest.approx(1e-3, rel=1e-12)

    def test_scale_and_mission_time_and_ccf_families(self):
        assert len(scenarios_from_spec(
            {"family": "scale_sweep", "event": "x1", "factors": [0.5, 2.0]}
        )) == 2
        assert len(scenarios_from_spec(
            {"family": "mission_time_sweep", "factors": [1, 2, 3]}
        )) == 3
        scenarios = scenarios_from_spec(
            {"family": "ccf_beta_sweep", "group": "g", "members": ["a", "b"],
             "betas": [0.05, 0.1]}
        )
        assert scenarios[0].patches[0] == ApplyCCF("g", ["a", "b"], 0.05)

    def test_prefix_forwarded(self):
        scenarios = scenarios_from_spec(
            {"family": "mission_time_sweep", "factors": [2.0], "prefix": "mt"}
        )
        assert scenarios[0].name == "mt:mission-time*2"

    def test_unknown_family_rejected(self):
        with pytest.raises(ReproError, match="unknown sweep family"):
            scenarios_from_spec({"family": "quantum_sweep"})

    def test_rangeless_spec_rejected(self):
        with pytest.raises(ReproError, match="'start'"):
            scenarios_from_spec({"family": "probability_sweep", "event": "x1"})


class TestMaintenanceWireFormat:
    """Maintenance patches, failure models and the maintenance sweep families."""

    def _assignment(self):
        from repro.reliability import (
            PeriodicallyTestedComponent,
            ReliabilityAssignment,
            RepairableComponent,
        )
        from repro.workloads.library import fire_protection_system

        assignment = ReliabilityAssignment(fire_protection_system())
        assignment.assign("x1", RepairableComponent(1e-3, 0.01))
        assignment.assign("x5", PeriodicallyTestedComponent(1e-4, 500.0))
        return assignment

    def test_every_maintenance_patch_roundtrips(self):
        from repro.scenarios import (
            ScaleFailureRate,
            ScaleRepairRate,
            ScaleTestInterval,
            SetFailureRate,
            SetMTTR,
            SetRepairRate,
            SetTestInterval,
        )

        for patch in [
            SetFailureRate("x1", 2e-3),
            ScaleFailureRate("x1", 0.5),
            SetRepairRate("x1", 0.1),
            ScaleRepairRate("x1", 4.0),
            SetMTTR("x1", 24.0),
            SetTestInterval("x5", 250.0),
            ScaleTestInterval("x5", 2.0),
        ]:
            document = patch_to_dict(patch)
            assert patch_from_dict(document) == patch

    def test_invalid_maintenance_parameters_rejected_at_deserialisation(self):
        with pytest.raises(ReproError):
            patch_from_dict({"type": "set_repair_rate", "event": "x1", "repair_rate": 0})
        with pytest.raises(ReproError):
            patch_from_dict({"type": "set_test_interval", "event": "x5",
                             "test_interval": -1})

    def test_invalid_static_patch_parameters_rejected_at_deserialisation(self):
        # every patch class validates in __post_init__, so garbage submitted
        # over the wire fails at decode time, not once per scenario mid-job
        bad = [
            {"type": "set_probability", "event": "x1", "probability": 1.5},
            {"type": "set_probability", "event": "x1", "probability": 0},
            {"type": "scale_probability", "event": "x1", "factor": -2},
            {"type": "harden", "event": "x1", "factor": 1.5},
            {"type": "harden", "event": "x1", "probability": -0.1},
            {"type": "scale_mission_time", "factor": 0},
            {"type": "remove_event", "event": ""},
            {"type": "add_redundancy", "event": "x1", "copies": 0},
            {"type": "add_spare_child", "gate": "g", "probability": 2},
            {"type": "set_voting_threshold", "gate": "g", "k": 0},
            {"type": "apply_ccf", "group": "g", "members": ["a"], "beta": 0.1},
            {"type": "apply_ccf", "group": "g", "members": ["a", "b"], "beta": 1.5},
        ]
        for document in bad:
            with pytest.raises(ReproError):
                patch_from_dict(document)

    def test_model_documents_roundtrip(self):
        from repro.reliability import (
            ExponentialFailure,
            FixedProbability,
            PeriodicallyTestedComponent,
            RepairableComponent,
            WeibullFailure,
        )
        from repro.scenarios import model_from_dict, model_to_dict

        for model in [
            FixedProbability(0.1),
            ExponentialFailure(1e-3),
            WeibullFailure(shape=2.0, scale=100.0),
            RepairableComponent(1e-3, 0.1),
            PeriodicallyTestedComponent(1e-4, 500.0),
        ]:
            assert model_from_dict(model_to_dict(model)) == model

    def test_malformed_model_documents_rejected(self):
        from repro.scenarios import model_from_dict

        with pytest.raises(ReproError, match="unknown model type"):
            model_from_dict({"type": "quantum"})
        with pytest.raises(ReproError, match="missing the required field"):
            model_from_dict({"type": "repairable", "failure_rate": 1e-3})
        with pytest.raises(ReproError, match="unknown fields"):
            model_from_dict({"type": "exponential", "failure_rate": 1e-3, "mu": 1})
        with pytest.raises(ReproError):  # model __post_init__ validation
            model_from_dict({"type": "exponential", "failure_rate": -1})

    def test_repair_rate_family_binds_to_the_assignment(self):
        scenarios = scenarios_from_spec(
            {"family": "repair_rate_sweep", "event": "x1", "rates": [0.01, 0.1]},
            assignment=self._assignment(),
            mission_time=1000.0,
        )
        assert [scenario.name for scenario in scenarios] == [
            "mu(x1)=0.01@t=1000", "mu(x1)=0.1@t=1000",
        ]

    def test_test_interval_family_accepts_spec_level_mission_time(self):
        scenarios = scenarios_from_spec(
            {"family": "test_interval_sweep", "event": "x5",
             "intervals": [100.0], "mission_time": 2000.0},
            assignment=self._assignment(),
        )
        assert scenarios[0].name == "tau(x5)=100@t=2000"

    def test_maintenance_family_without_models_rejected(self):
        with pytest.raises(ReproError, match="models"):
            scenarios_from_spec(
                {"family": "repair_rate_sweep", "event": "x1", "rates": [0.1]}
            )

    def test_maintenance_family_without_mission_time_rejected(self):
        with pytest.raises(ReproError, match="mission_time"):
            scenarios_from_spec(
                {"family": "repair_rate_sweep", "event": "x1", "rates": [0.1]},
                assignment=self._assignment(),
            )

    def test_explicit_scenario_with_maintenance_patch_binds(self):
        scenarios = scenarios_from_spec(
            [{"name": "faster-repairs",
              "patches": [{"type": "set_repair_rate", "event": "x1",
                           "repair_rate": 0.5}]}],
            assignment=self._assignment(),
            mission_time=1000.0,
        )
        from repro.workloads.library import fire_protection_system

        patched = scenarios[0].apply(self._assignment().tree_at(1000.0))
        assert patched.probability("x1") != fire_protection_system().probability("x1")

    def test_explicit_maintenance_scenario_without_models_rejected(self):
        with pytest.raises(ReproError, match="maintenance patch"):
            scenarios_from_spec(
                [{"name": "s", "patches": [
                    {"type": "set_repair_rate", "event": "x1", "repair_rate": 0.5}]}]
            )


class TestActionWireFormat:
    def test_action_roundtrip(self):
        from repro.scenarios import HardeningAction, action_from_dict, action_to_dict

        for action in [
            HardeningAction("x1", cost=2.0),
            HardeningAction("x2", cost=1.0, factor=0.5),
            HardeningAction("x3", cost=3.0, probability=1e-4),
        ]:
            assert action_from_dict(action_to_dict(action)) == action

    def test_malformed_actions_rejected(self):
        from repro.scenarios import action_from_dict, actions_from_spec

        with pytest.raises(ReproError, match="missing the required field"):
            action_from_dict({"event": "x1"})
        with pytest.raises(ReproError, match="unknown fields"):
            action_from_dict({"event": "x1", "cost": 1.0, "budget": 2})
        with pytest.raises(ReproError):  # cost must be positive
            action_from_dict({"event": "x1", "cost": 0})
        with pytest.raises(ReproError):  # factor validated via the patch
            action_from_dict({"event": "x1", "cost": 1.0, "factor": 2.0})
        with pytest.raises(ReproError, match="at least one"):
            actions_from_spec([])
        with pytest.raises(ReproError, match="list"):
            actions_from_spec("nope")

    def test_non_numeric_mission_time_rejected_as_serialization_error(self):
        # must be a ReproError (-> HTTP 400), not a bare ValueError/TypeError
        with pytest.raises(ReproError, match="must be a number"):
            scenarios_from_spec(
                {"family": "repair_rate_sweep", "event": "x1", "rates": [0.1],
                 "mission_time": "soon"},
                assignment=TestMaintenanceWireFormat()._assignment(),
            )
