"""Pareto frontier: exact brute-force agreement, endpoints, greedy fallback."""

import itertools

import pytest

from repro.api.cache import ArtifactCache
from repro.exceptions import AnalysisError
from repro.scenarios import (
    HardeningAction,
    exact_plan,
    incremental_cut_sets,
    pareto_frontier,
)
from repro.scenarios.planner import _MAX_THRESHOLD_CANDIDATES  # noqa: F401 - documented guard
from repro.workloads.library import fire_protection_system, pressure_tank


def brute_force_frontier(tree, actions):
    """Reference: the Pareto set over ALL action subsets, by float evaluation."""
    structure = list(incremental_cut_sets(tree, ArtifactCache()))

    def mpmcs_under(combo):
        probabilities = tree.probabilities()
        for action in combo:
            probabilities[action.event] = action.hardened_probability(
                probabilities[action.event]
            )
        return max(
            _product(cut_set, probabilities) for cut_set in structure
        )

    candidates = []
    for size in range(len(actions) + 1):
        for combo in itertools.combinations(actions, size):
            candidates.append(
                (sum(action.cost for action in combo), mpmcs_under(combo))
            )
    candidates.sort()
    frontier = []
    for cost, value in candidates:
        # Mirror the library's dominance rule: an "improvement" within float
        # noise of the previous point (identical bottleneck cut set up to
        # rounding) is a tie, not a frontier step.
        if not frontier or value < frontier[-1][1] * (1.0 - 1e-9):
            frontier.append((cost, value))
    return frontier


def _product(cut_set, probabilities):
    out = 1.0
    for name in cut_set:
        out *= probabilities[name]
    return out


FPS_ACTIONS = [
    HardeningAction("x1", cost=2.0),
    HardeningAction("x2", cost=2.0),
    HardeningAction("x4", cost=1.0),
    HardeningAction("x5", cost=1.0),
]


class TestExactFrontier:
    def test_matches_brute_force_on_fig1(self):
        tree = fire_protection_system()
        frontier = pareto_frontier(tree, FPS_ACTIONS, method="exact")
        expected = brute_force_frontier(tree, FPS_ACTIONS)
        assert len(frontier.points) == len(expected)
        for point, (cost, value) in zip(frontier.points, expected):
            assert point.cost == pytest.approx(cost)
            assert point.mpmcs_probability == pytest.approx(value, rel=1e-6)

    def test_matches_brute_force_with_heterogeneous_effects(self):
        tree = fire_protection_system()
        actions = [
            HardeningAction("x1", cost=2.0, factor=0.26),
            HardeningAction("x2", cost=1.0, factor=0.6),
            HardeningAction("x5", cost=1.0, factor=0.1),
            HardeningAction("x4", cost=3.0, probability=1e-5),
        ]
        frontier = pareto_frontier(tree, actions, method="exact")
        expected = brute_force_frontier(tree, actions)
        assert [
            (point.cost, pytest.approx(point.mpmcs_probability, rel=1e-6))
            for point in frontier.points
        ] == [(cost, pytest.approx(value, rel=1e-6)) for cost, value in expected]

    def test_matches_brute_force_on_pressure_tank(self):
        tree = pressure_tank()
        actions = [
            HardeningAction("relief_valve_fails", cost=2.0),
            HardeningAction("pressure_switch_stuck", cost=1.0),
            HardeningAction("operator_misses_gauge", cost=1.5),
        ]
        frontier = pareto_frontier(tree, actions, method="exact")
        expected = brute_force_frontier(tree, actions)
        assert len(frontier.points) == len(expected)
        for point, (cost, value) in zip(frontier.points, expected):
            assert point.cost == pytest.approx(cost)
            assert point.mpmcs_probability == pytest.approx(value, rel=1e-6)

    def test_endpoints_are_base_and_unconstrained_optimum(self):
        tree = fire_protection_system()
        frontier = pareto_frontier(tree, FPS_ACTIONS, method="exact")
        first, last = frontier.points[0], frontier.points[-1]
        assert first.cost == 0
        assert first.selected == ()
        assert first.mpmcs_probability == frontier.base_mpmcs_probability
        assert first.mpmcs == frontier.base_mpmcs
        unconstrained = exact_plan(
            tree, FPS_ACTIONS, budget=sum(action.cost for action in FPS_ACTIONS)
        )
        assert last.mpmcs_probability == pytest.approx(
            unconstrained.new_mpmcs_probability
        )

    def test_points_are_strictly_pareto_ordered(self):
        frontier = pareto_frontier(fire_protection_system(), FPS_ACTIONS, method="exact")
        costs = [point.cost for point in frontier.points]
        risks = [point.mpmcs_probability for point in frontier.points]
        assert costs == sorted(costs)
        assert all(a < b for a, b in zip(risks[1:], risks))  # strictly decreasing

    def test_points_carry_exact_top_event(self):
        tree = fire_protection_system()
        frontier = pareto_frontier(tree, FPS_ACTIONS, method="exact")
        tops = [point.top_event for point in frontier.points]
        # hardening can only lower P(top), and the base point leads
        assert tops[0] == frontier.base_top_event
        assert tops == sorted(tops, reverse=True)

    def test_best_within_budget(self):
        frontier = pareto_frontier(fire_protection_system(), FPS_ACTIONS, method="exact")
        assert frontier.best_within(0.0).selected == ()
        whole = frontier.best_within(sum(a.cost for a in FPS_ACTIONS))
        assert whole == frontier.points[-1]
        with pytest.raises(AnalysisError):
            frontier.best_within(-1.0)

    def test_budget_point_consistency_with_exact_plan(self):
        tree = fire_protection_system()
        frontier = pareto_frontier(tree, FPS_ACTIONS, method="exact")
        for budget in (0.0, 1.0, 2.0, 3.0, 6.0):
            plan = exact_plan(tree, FPS_ACTIONS, budget)
            assert frontier.best_within(budget).mpmcs_probability == pytest.approx(
                plan.new_mpmcs_probability
            )

    def test_to_dict_shape(self):
        frontier = pareto_frontier(fire_protection_system(), FPS_ACTIONS, method="exact")
        document = frontier.to_dict()
        assert document["method"] == "exact"
        assert document["base_mpmcs"] == ["x1", "x2"]
        assert document["points"][0]["cost"] == 0
        assert all("top_event" in point for point in document["points"])


class TestGreedyAndAuto:
    def test_greedy_frontier_is_pareto_ordered_and_anchored(self):
        frontier = pareto_frontier(
            fire_protection_system(), FPS_ACTIONS, method="greedy"
        )
        assert frontier.method == "greedy"
        assert frontier.points[0].cost == 0
        risks = [point.mpmcs_probability for point in frontier.points]
        assert all(a < b for a, b in zip(risks[1:], risks))

    def test_auto_prefers_exact_on_small_models(self):
        frontier = pareto_frontier(fire_protection_system(), FPS_ACTIONS)
        assert frontier.method == "exact"

    def test_auto_falls_back_to_greedy_when_guard_trips(self, monkeypatch):
        import repro.scenarios.planner as planner

        monkeypatch.setattr(planner, "_MAX_THRESHOLD_CANDIDATES", 1)
        frontier = pareto_frontier(fire_protection_system(), FPS_ACTIONS, method="auto")
        assert frontier.method == "greedy"
        with pytest.raises(AnalysisError, match="candidate thresholds"):
            pareto_frontier(fire_protection_system(), FPS_ACTIONS, method="exact")

    def test_empty_action_set_yields_base_only(self):
        frontier = pareto_frontier(fire_protection_system(), [])
        assert len(frontier) == 1
        assert frontier.points[0].cost == 0
        assert frontier.points[0].mpmcs_probability == frontier.base_mpmcs_probability

    def test_unknown_method_rejected(self):
        with pytest.raises(AnalysisError, match="unknown frontier method"):
            pareto_frontier(fire_protection_system(), FPS_ACTIONS, method="simplex")


class TestGreedyFrontierSingletons:
    def test_cheap_deferred_action_is_still_affordable_on_the_frontier(self):
        """The unconstrained greedy order buys the expensive high-impact
        action first; the frontier must still offer the cheap singleton to a
        tight budget (regression: best_within used to return the base)."""
        from repro.fta.builder import FaultTreeBuilder

        tree = (
            FaultTreeBuilder("two-sensors")
            .basic_event("a", 0.2)
            .basic_event("b", 0.1)
            .and_gate("top", ["a", "b"])
            .top("top")
            .build()
        )

        actions = [
            HardeningAction("a", cost=10.0, factor=0.001),
            HardeningAction("b", cost=1.0, factor=0.99),
        ]
        frontier = pareto_frontier(tree, actions, method="greedy")
        best = frontier.best_within(1.0)
        assert best.events == ("b",)
        assert best.mpmcs_probability == pytest.approx(0.2 * 0.1 * 0.99)
