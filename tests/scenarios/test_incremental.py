"""Incremental cut-set computation: correctness and subtree-level reuse."""

import pytest

from repro.analysis.bruteforce import brute_force_minimal_cut_sets
from repro.analysis.mocus import mocus_minimal_cut_sets
from repro.api.cache import (
    ARTIFACT_SUBTREE_CUT_SETS,
    ArtifactCache,
    subtree_structure_hashes,
)
from repro.scenarios import (
    AddRedundancy,
    Harden,
    RemoveEvent,
    incremental_cut_sets,
    seed_session_cut_sets,
)
from repro.workloads.generator import random_fault_tree
from repro.workloads.library import (
    NAMED_TREES,
    fire_protection_system,
    get_tree,
    redundant_power_supply,
)


class TestCorrectness:
    @pytest.mark.parametrize("name", sorted(NAMED_TREES))
    def test_matches_mocus_on_library_trees(self, name):
        tree = get_tree(name)
        incremental = incremental_cut_sets(tree, ArtifactCache())
        reference = mocus_minimal_cut_sets(tree)
        assert sorted(incremental.to_sorted_tuples()) == sorted(
            reference.to_sorted_tuples()
        )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_brute_force_on_random_trees(self, seed):
        tree = random_fault_tree(
            num_basic_events=10, seed=seed, voting_ratio=0.3, event_reuse=0.2
        )
        incremental = incremental_cut_sets(tree, ArtifactCache())
        reference = brute_force_minimal_cut_sets(tree)
        assert sorted(incremental.to_sorted_tuples()) == sorted(
            reference.to_sorted_tuples()
        )

    def test_collection_carries_tree_probabilities(self):
        tree = fire_protection_system()
        collection = incremental_cut_sets(tree, ArtifactCache())
        events, probability = collection.most_probable()
        assert tuple(sorted(events)) == ("x1", "x2")
        assert probability == pytest.approx(0.02)


class TestStructureHashes:
    def test_probability_change_keeps_structure_hashes(self):
        base = fire_protection_system()
        patched = Harden("x1", factor=0.5).apply(base)
        assert subtree_structure_hashes(base) == subtree_structure_hashes(patched)

    def test_structural_change_dirties_only_the_path_to_top(self):
        base = fire_protection_system()
        patched = AddRedundancy("x5").apply(base)
        before = subtree_structure_hashes(base)
        after = subtree_structure_hashes(patched)
        # untouched subtrees keep their hash ...
        for node in ("detection_failure", "remote_failure", "x1", "x3"):
            assert before[node] == after[node]
        # ... the ancestors of the edit do not.
        for node in ("trigger_failure", "suppression_failure", "fps_failure"):
            assert before[node] != after[node]

    def test_child_order_does_not_matter(self):
        from repro.fta.builder import FaultTreeBuilder

        def build(order):
            return (
                FaultTreeBuilder("t")
                .basic_event("a", 0.1)
                .basic_event("b", 0.2)
                .or_gate("top", list(order))
                .top("top")
                .build()
            )

        assert (
            subtree_structure_hashes(build(["a", "b"]))["top"]
            == subtree_structure_hashes(build(["b", "a"]))["top"]
        )


class TestReuse:
    def test_probability_patch_reuses_every_gate(self):
        cache = ArtifactCache()
        base = fire_protection_system()
        incremental_cut_sets(base, cache)
        assert cache.misses_for(ARTIFACT_SUBTREE_CUT_SETS) == base.num_gates
        patched = Harden("x1").apply(base)
        incremental_cut_sets(patched, cache)
        assert cache.misses_for(ARTIFACT_SUBTREE_CUT_SETS) == base.num_gates
        assert cache.hits_for(ARTIFACT_SUBTREE_CUT_SETS) == base.num_gates

    def test_structural_patch_recomputes_only_dirty_path(self):
        cache = ArtifactCache()
        base = fire_protection_system()
        incremental_cut_sets(base, cache)
        misses_before = cache.misses_for(ARTIFACT_SUBTREE_CUT_SETS)
        patched = RemoveEvent("x7").apply(base)
        incremental_cut_sets(patched, cache)
        new_misses = cache.misses_for(ARTIFACT_SUBTREE_CUT_SETS) - misses_before
        # remote_failure, trigger_failure, suppression_failure, fps_failure
        # change; detection_failure is reused.
        assert new_misses == 4
        assert cache.hits_for(ARTIFACT_SUBTREE_CUT_SETS) == 1

    def test_shared_structure_across_different_trees(self):
        cache = ArtifactCache()
        incremental_cut_sets(fire_protection_system(), cache)
        # A fresh object with identical structure is a full cache hit.
        incremental_cut_sets(fire_protection_system(), cache)
        assert cache.hits_for(ARTIFACT_SUBTREE_CUT_SETS) == fire_protection_system().num_gates

    def test_voting_trees_cache_cleanly(self):
        cache = ArtifactCache()
        tree = redundant_power_supply()
        first = incremental_cut_sets(tree, cache)
        second = incremental_cut_sets(tree, cache)
        assert first.to_sorted_tuples() == second.to_sorted_tuples()
        assert cache.hits_for(ARTIFACT_SUBTREE_CUT_SETS) == tree.num_gates


class TestSeeding:
    def test_seed_session_cut_sets_feeds_backends(self):
        from repro.api import ARTIFACT_CUT_SETS, AnalysisSession

        session = AnalysisSession()
        tree = fire_protection_system()
        seed_session_cut_sets(tree, session.artifacts)
        report = session.analyze(tree, ["mpmcs", "mcs"], backend="mocus")
        assert report.mpmcs.events == ("x1", "x2")
        # the MOCUS backend hit the seeded artifact instead of enumerating
        assert session.artifacts.hits_for(ARTIFACT_CUT_SETS) >= 1
        assert session.artifacts.misses_for(ARTIFACT_CUT_SETS) == 0
