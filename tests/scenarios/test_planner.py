"""Mitigation planner: greedy baseline, exact MaxSAT planner, action ranking."""

import itertools

import pytest

from repro.api.cache import ArtifactCache
from repro.exceptions import AnalysisError
from repro.scenarios import (
    HardeningAction,
    exact_plan,
    greedy_plan,
    incremental_cut_sets,
    plan_mitigation,
    rank_actions,
)
from repro.workloads.library import fire_protection_system, pressure_tank


def brute_force_optimum(tree, actions, budget):
    """Reference: minimal achievable MPMCS probability over all budget-feasible
    action subsets, with the cheapest witness set."""
    structure = list(incremental_cut_sets(tree, ArtifactCache()))
    best_value, best_cost, best_subset = None, None, ()
    for size in range(len(actions) + 1):
        for combo in itertools.combinations(actions, size):
            cost = sum(action.cost for action in combo)
            if cost > budget + 1e-12:
                continue
            probabilities = tree.probabilities()
            for action in combo:
                probabilities[action.event] = action.hardened_probability(
                    probabilities[action.event]
                )
            value = max(
                _product(cut_set, probabilities) for cut_set in structure
            )
            key = (value, cost)
            if best_value is None or key < (best_value, best_cost):
                best_value, best_cost = value, cost
                best_subset = tuple(sorted(action.event for action in combo))
    return best_value, best_subset


def _product(cut_set, probabilities):
    out = 1.0
    for name in cut_set:
        out *= probabilities[name]
    return out


FPS_ACTIONS = [
    HardeningAction("x1", cost=2.0),
    HardeningAction("x2", cost=2.0),
    HardeningAction("x4", cost=1.0),
    HardeningAction("x5", cost=1.0),
]


class TestExactPlanner:
    @pytest.mark.parametrize("budget", [0.0, 1.0, 2.0, 3.0, 4.0, 6.0])
    def test_matches_brute_force_on_fig1(self, budget):
        tree = fire_protection_system()
        plan = exact_plan(tree, FPS_ACTIONS, budget)
        optimum, _ = brute_force_optimum(tree, FPS_ACTIONS, budget)
        assert plan.new_mpmcs_probability == pytest.approx(optimum, rel=1e-6)
        assert plan.total_cost <= budget + 1e-9

    def test_known_optimal_set_on_fig1(self):
        # With budget 3 the optimum is 0.002: harden one sensor (cost 2,
        # {x1,x2} -> 0.002) plus x5 (cost 1, kills both {x5,*} cut sets);
        # {x4} = 0.002 remains the floor.  Hardening x4 instead of x5 would
        # leave {x5, x6} at 0.005.
        plan = exact_plan(fire_protection_system(), FPS_ACTIONS, budget=3.0)
        assert plan.new_mpmcs_probability == pytest.approx(0.002)
        assert "x5" in plan.events
        assert "x1" in plan.events or "x2" in plan.events
        assert plan.total_cost == pytest.approx(3.0)

    def test_zero_budget_selects_nothing(self):
        plan = exact_plan(fire_protection_system(), FPS_ACTIONS, budget=0.0)
        assert plan.selected == ()
        assert plan.new_mpmcs_probability == pytest.approx(0.02)

    def test_unlimited_budget_reaches_global_floor(self):
        tree = fire_protection_system()
        plan = exact_plan(tree, FPS_ACTIONS, budget=100.0)
        optimum, _ = brute_force_optimum(tree, FPS_ACTIONS, budget=100.0)
        assert plan.new_mpmcs_probability == pytest.approx(optimum, rel=1e-6)

    def test_exact_beats_greedy_trap(self):
        # Both x1 and x2 attack the dominant cut set {x1, x2}.  Greedy buys
        # the *cheap shallow* fix first (x2: reduction 0.008 per unit cost
        # beats x1's 0.0074), after which the leftover budget buys nothing
        # useful and the MPMCS stalls at 0.012.  The exact planner spends the
        # whole budget on the deep x1 fix and reaches 0.0052.
        tree = fire_protection_system()
        actions = [
            HardeningAction("x1", cost=2.0, factor=0.26),
            HardeningAction("x2", cost=1.0, factor=0.6),
            HardeningAction("x5", cost=1.0, factor=0.1),
        ]
        greedy = greedy_plan(tree, actions, budget=2.0)
        exact = exact_plan(tree, actions, budget=2.0)
        assert greedy.new_mpmcs_probability == pytest.approx(0.012)
        assert exact.new_mpmcs_probability == pytest.approx(0.0052)
        assert exact.events == ("x1",)

    def test_works_on_pressure_tank(self):
        tree = pressure_tank()
        actions = [
            HardeningAction("relief_valve_fails", cost=2.0),
            HardeningAction("pressure_switch_stuck", cost=1.0),
            HardeningAction("operator_misses_gauge", cost=1.0),
        ]
        plan = exact_plan(tree, actions, budget=2.0)
        optimum, _ = brute_force_optimum(tree, actions, budget=2.0)
        assert plan.new_mpmcs_probability == pytest.approx(optimum, rel=1e-6)


class TestGreedyPlanner:
    def test_respects_budget(self):
        plan = greedy_plan(fire_protection_system(), FPS_ACTIONS, budget=2.5)
        assert plan.total_cost <= 2.5

    def test_top_event_objective(self):
        plan = greedy_plan(
            fire_protection_system(), FPS_ACTIONS, budget=2.0, objective="top_event"
        )
        assert plan.new_top_event < plan.base_top_event

    def test_unknown_objective_rejected(self):
        with pytest.raises(AnalysisError):
            greedy_plan(fire_protection_system(), FPS_ACTIONS, budget=1.0, objective="bogus")

    def test_plan_mitigation_dispatch(self):
        greedy = plan_mitigation(
            fire_protection_system(), FPS_ACTIONS, 3.0, method="greedy"
        )
        exact = plan_mitigation(
            fire_protection_system(), FPS_ACTIONS, 3.0, method="exact"
        )
        assert greedy.method == "greedy" and exact.method == "maxsat"
        assert greedy.new_mpmcs_probability == pytest.approx(exact.new_mpmcs_probability)
        with pytest.raises(AnalysisError):
            plan_mitigation(fire_protection_system(), FPS_ACTIONS, 3.0, method="simplex")


class TestValidationAndRanking:
    def test_duplicate_actions_rejected(self):
        with pytest.raises(AnalysisError):
            greedy_plan(
                fire_protection_system(),
                [HardeningAction("x1", cost=1.0), HardeningAction("x1", cost=2.0)],
                budget=1.0,
            )

    def test_unknown_event_rejected(self):
        with pytest.raises(AnalysisError):
            exact_plan(
                fire_protection_system(), [HardeningAction("nope", cost=1.0)], budget=1.0
            )

    def test_nonpositive_cost_rejected(self):
        with pytest.raises(AnalysisError):
            HardeningAction("x1", cost=0.0)

    def test_rank_actions_sorted_by_reduction(self):
        impacts = rank_actions(fire_protection_system(), FPS_ACTIONS)
        reductions = [impact.top_event_reduction for impact in impacts]
        assert reductions == sorted(reductions, reverse=True)
        # hardening a detection sensor dominates on the Fig. 1 tree
        assert impacts[0].action.event in ("x1", "x2")

    def test_plan_document_shape(self):
        plan = exact_plan(fire_protection_system(), FPS_ACTIONS, budget=3.0)
        document = plan.to_dict()
        assert document["method"] == "maxsat"
        assert document["base_mpmcs"] == ["x1", "x2"]
        assert document["total_cost"] == pytest.approx(3.0)


class TestPlannerEdgeCases:
    """Degenerate inputs must return the base plan — no crash, no spend."""

    def _assert_base_plan(self, plan):
        assert plan.selected == ()
        assert plan.total_cost == 0.0
        assert plan.new_mpmcs_probability == pytest.approx(plan.base_mpmcs_probability)
        assert plan.new_mpmcs == plan.base_mpmcs
        assert plan.new_top_event == pytest.approx(plan.base_top_event)

    def test_empty_action_set(self):
        tree = fire_protection_system()
        self._assert_base_plan(greedy_plan(tree, [], budget=10.0))
        self._assert_base_plan(exact_plan(tree, [], budget=10.0))

    def test_zero_effect_actions_are_never_bought(self):
        # factor = 1 - 1e-12: the weight delta rounds to 0 at the exact
        # planner's default precision (1e-12 * 1e6 << 1), and the float
        # reduction (~1e-12 relative) is below the greedy tolerance.  Buying
        # such an action would spend budget for no measurable risk reduction.
        tree = fire_protection_system()
        actions = [
            HardeningAction("x1", cost=1.0, factor=1.0 - 1e-12),
            HardeningAction("x5", cost=1.0, factor=1.0 - 1e-12),
        ]
        self._assert_base_plan(greedy_plan(tree, actions, budget=10.0))
        self._assert_base_plan(exact_plan(tree, actions, budget=10.0))

    def test_budget_below_cheapest_action(self):
        tree = fire_protection_system()
        self._assert_base_plan(greedy_plan(tree, FPS_ACTIONS, budget=0.5))
        self._assert_base_plan(exact_plan(tree, FPS_ACTIONS, budget=0.5))
