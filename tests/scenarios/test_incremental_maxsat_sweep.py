"""Incremental MaxSAT sweeps: warm weight-only re-solves and fragment reuse.

Covers the tentpole acceptance criteria at test (not benchmark) scale:

* a ``maxsat``-backend sweep produces canonically identical results to fresh
  per-scenario cold analyses;
* probability/maintenance scenarios are weight-only re-solves — zero new CNF
  fragment misses after the base analysis;
* structure-changing patches (remove-event, add-redundancy, voting-k) fall
  back to re-encoding only the affected fragments, asserted through the
  fragment-level miss counters.
"""

import json

import pytest

from repro.api import AnalysisSession
from repro.api.cache import ARTIFACT_SUBTREE_CNF, subtree_structure_hashes
from repro.scenarios import (
    AddRedundancy,
    RemoveEvent,
    Scenario,
    SetProbability,
    SetVotingThreshold,
    SweepExecutor,
    probability_sweep,
)
from repro.workloads.generator import random_fault_tree
from repro.workloads.library import fire_protection_system, redundant_power_supply


def _canonical(report):
    return json.dumps(report.to_canonical_dict(), sort_keys=True)


class TestWarmSweepEquivalence:
    def test_probability_sweep_matches_cold_analyses(self):
        tree = random_fault_tree(num_basic_events=30, seed=4)
        event = sorted(tree.events_reachable_from_top())[0]
        scenarios = probability_sweep(event, [0.001, 0.01, 0.1, 0.4, 0.9])
        trees = [scenario.apply(tree) for scenario in scenarios]

        warm_session = AnalysisSession()
        warm_session.backend("maxsat").enable_warm_sessions()
        for patched in trees:
            warm = warm_session.analyze(patched, ["mpmcs"], backend="maxsat")
            cold = AnalysisSession().analyze(patched, ["mpmcs"], backend="maxsat")
            assert _canonical(warm) == _canonical(cold)
            assert warm.mpmcs.engine == "incremental-hitting-set"

    def test_sweep_executor_maxsat_backend_end_to_end(self):
        tree = fire_protection_system()
        scenarios = probability_sweep("x1", [0.05, 0.2, 0.5])
        executor = SweepExecutor(backend="maxsat")
        report = executor.run(tree, scenarios)
        assert len(report) == 3
        assert report.backend == "maxsat"
        # The default analyses include top_event, which the maxsat backend
        # cannot produce: the structure-keyed BDD fills it in.
        assert report.base_top_event is not None
        for outcome in report.outcomes:
            assert outcome.ok
            assert outcome.top_event is not None
            assert outcome.mpmcs_events is not None

    def test_maxsat_sweep_agrees_with_mocus_sweep(self):
        tree = fire_protection_system()
        scenarios = probability_sweep("x5", [0.01, 0.2, 0.6])
        maxsat_report = SweepExecutor(backend="maxsat").run(tree, scenarios)
        mocus_report = SweepExecutor(backend="mocus").run(tree, scenarios)
        for ours, theirs in zip(maxsat_report.outcomes, mocus_report.outcomes):
            assert ours.mpmcs_events == theirs.mpmcs_events
            assert ours.mpmcs_probability == pytest.approx(theirs.mpmcs_probability)
            assert ours.top_event == pytest.approx(theirs.top_event)

    def test_warm_opt_in_is_scoped_to_the_sweep(self):
        """One-off analyses on a shared session keep the cold portfolio."""
        session = AnalysisSession()
        executor = SweepExecutor(session, backend="maxsat")
        backend = session.backend("maxsat")
        executor.run(fire_protection_system(), probability_sweep("x1", [0.1]))
        assert backend.warm_enabled is False
        one_off = session.analyze(fire_protection_system(), ["mpmcs"], backend="maxsat")
        assert one_off.mpmcs.engine != "incremental-hitting-set"
        # The warm sessions themselves persist, so the next sweep starts warm.
        assert len(backend._warm_sessions) >= 1

    def test_unsupported_analysis_other_than_top_event_fails_loudly(self):
        from repro.exceptions import AnalysisError

        with pytest.raises(AnalysisError):
            SweepExecutor(backend="monte-carlo").run(
                fire_protection_system(), probability_sweep("x1", [0.1])
            )

    def test_incremental_flag_off_still_works(self):
        tree = fire_protection_system()
        scenarios = probability_sweep("x1", [0.1, 0.3])
        incremental = SweepExecutor(backend="maxsat", incremental=True).run(tree, scenarios)
        naive = SweepExecutor(backend="maxsat", incremental=False).run(tree, scenarios)
        # The reports differ only in the `incremental` configuration flag.
        first = dict(incremental.to_canonical_dict(), incremental=None)
        second = dict(naive.to_canonical_dict(), incremental=None)
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)


class TestFragmentMissAccounting:
    def _session_with_warm_maxsat(self):
        session = AnalysisSession()
        session.backend("maxsat").enable_warm_sessions()
        return session

    def test_probability_scenarios_add_zero_fragment_misses(self):
        tree = random_fault_tree(num_basic_events=24, seed=9)
        event = sorted(tree.events_reachable_from_top())[0]
        session = self._session_with_warm_maxsat()
        session.analyze(tree, ["mpmcs"], backend="maxsat")
        cache = session.artifacts
        base_misses = cache.misses_for(ARTIFACT_SUBTREE_CNF)
        assert base_misses == len(tree.gates)

        for probability in (0.002, 0.05, 0.7):
            # Weight-only perturbation: the structure hash is unchanged.
            patched = Scenario("p", [SetProbability(event, probability)]).apply(tree)
            session.analyze(patched, ["mpmcs"], backend="maxsat")
        assert cache.misses_for(ARTIFACT_SUBTREE_CNF) == base_misses

    def test_maintenance_sweep_is_weight_only(self):
        """Repair-rate scenarios never change structure: zero new misses."""
        from repro.reliability import ReliabilityAssignment, RepairableComponent
        from repro.scenarios import repair_rate_sweep

        tree = fire_protection_system()
        assignment = ReliabilityAssignment(
            tree, {"x1": RepairableComponent(failure_rate=1e-4, repair_rate=0.1)}
        )
        scenarios = repair_rate_sweep(
            assignment, "x1", [0.01, 0.05, 0.1, 0.5], mission_time=1000.0
        )
        base = assignment.tree_at(1000.0)
        session = AnalysisSession()
        report = SweepExecutor(session, backend="maxsat").run(base, scenarios)
        assert all(outcome.ok for outcome in report.outcomes)
        assert session.artifacts.misses_for(ARTIFACT_SUBTREE_CNF) == len(base.gates)

    @pytest.mark.parametrize(
        "make_patch",
        [
            lambda tree: RemoveEvent(sorted(tree.events_reachable_from_top())[0]),
            lambda tree: AddRedundancy(sorted(tree.events_reachable_from_top())[0]),
        ],
        ids=["remove-event", "add-redundancy"],
    )
    def test_structural_patch_re_encodes_only_affected_fragments(self, make_patch):
        tree = random_fault_tree(num_basic_events=24, seed=9)
        session = self._session_with_warm_maxsat()
        session.analyze(tree, ["mpmcs"], backend="maxsat")
        cache = session.artifacts
        base_misses = cache.misses_for(ARTIFACT_SUBTREE_CNF)
        base_hashes = set(subtree_structure_hashes(tree).values())

        patched = Scenario("structural", [make_patch(tree)]).apply(tree)
        session.analyze(patched, ["mpmcs"], backend="maxsat")

        patched_gates = [
            name for name in subtree_structure_hashes(patched) if patched.is_gate(name)
        ]
        changed_gates = [
            name
            for name, digest in subtree_structure_hashes(patched).items()
            if patched.is_gate(name) and digest not in base_hashes
        ]
        new_misses = cache.misses_for(ARTIFACT_SUBTREE_CNF) - base_misses
        # Exactly the gates whose subtree hash changed were re-encoded; every
        # untouched sibling fragment was a cache hit.
        assert new_misses == len(changed_gates)
        assert 0 < new_misses < len(patched_gates)
        assert cache.hits_for(ARTIFACT_SUBTREE_CNF) >= len(patched_gates) - new_misses

    def test_voting_threshold_patch_re_encodes_affected_path(self):
        tree = redundant_power_supply()
        voting_gates = [
            name
            for name, gate in tree.gates.items()
            if gate.gate_type.value == "voting"
        ]
        assert voting_gates, "library voting tree must contain a voting gate"
        session = self._session_with_warm_maxsat()
        session.analyze(tree, ["mpmcs"], backend="maxsat")
        cache = session.artifacts
        base_misses = cache.misses_for(ARTIFACT_SUBTREE_CNF)
        base_hashes = set(subtree_structure_hashes(tree).values())

        gate = tree.gates[voting_gates[0]]
        patched = Scenario(
            "voting-k", [SetVotingThreshold(gate.name, (gate.k or 2) + 1)]
        ).apply(tree)
        session.analyze(patched, ["mpmcs"], backend="maxsat")

        changed_gates = [
            name
            for name, digest in subtree_structure_hashes(patched).items()
            if patched.is_gate(name) and digest not in base_hashes
        ]
        assert (
            cache.misses_for(ARTIFACT_SUBTREE_CNF) - base_misses == len(changed_gates)
        )
