"""Kill a campaign mid-flight with SIGKILL, restart, assert exact resume.

The victim process runs the campaign in a subprocess with a ``before_chunk``
hook that SIGKILLs the process once a configured number of chunks have
completed — no cleanup handlers, no atexit, exactly like an OOM kill or a
power cut.  The restarted run must serve every completed chunk from the
ledger (zero recomputation, proven by the stage stats and ledger counters)
and produce a merged report canonically byte-identical to an uninterrupted
run of the same spec in a fresh store.
"""

import json
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[2] / "src")

SPEC_DOCUMENT = {
    "name": "crash-resume",
    "tree": {
        "name": "demo",
        "top": "TOP",
        "events": [
            {"name": "A", "probability": 0.1},
            {"name": "B", "probability": 0.2},
            {"name": "C", "probability": 0.3},
        ],
        "gates": [{"name": "TOP", "type": "or", "children": ["A", "B", "C"]}],
    },
    "stages": [
        {
            "name": "sweep",
            "kind": "sweep",
            "payload": {
                "chunk_size": 1,
                "scenarios": [
                    {
                        "name": f"s{i}",
                        "patches": [
                            {
                                "type": "set_probability",
                                "event": "A",
                                "probability": 0.02 * (i + 1),
                            }
                        ],
                    }
                    for i in range(4)
                ],
            },
        },
        {"name": "final", "kind": "report", "payload": {}, "depends_on": ["sweep"]},
    ],
}

VICTIM = textwrap.dedent(
    """
    import json, os, signal, sys

    from repro.campaigns import CampaignRunner, CampaignSpec

    store, spec_path, survive = sys.argv[1], sys.argv[2], int(sys.argv[3])
    spec = CampaignSpec.from_dict(json.loads(open(spec_path).read()))
    completed = {"count": 0}

    def kill_after(stage, index, attempt):
        # Called before each chunk attempt; by then `completed["count"]`
        # chunks have already finished and been ledgered.
        if completed["count"] >= survive:
            os.kill(os.getpid(), signal.SIGKILL)
        completed["count"] += 1

    CampaignRunner(store_path=store, before_chunk=kill_after).run(spec)
    """
)


def _run_victim(store: Path, spec_path: Path, survive: int) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-c", VICTIM, str(store), str(spec_path), str(survive)],
        capture_output=True,
        text=True,
        timeout=120,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
    )


@pytest.fixture
def spec_path(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC_DOCUMENT), encoding="utf-8")
    return path


def _canonical(outcome) -> str:
    return json.dumps(
        outcome.stage_results["final"]["stages"]["sweep"]["canonical"], sort_keys=True
    )


class TestCrashResume:
    def test_sigkill_mid_campaign_resumes_exactly(self, tmp_path, spec_path):
        from repro.campaigns import CampaignSpec, run_campaign

        store = tmp_path / "store"
        survive = 2
        victim = _run_victim(store, spec_path, survive)
        assert victim.returncode == -signal.SIGKILL, victim.stderr

        spec = CampaignSpec.from_dict(SPEC_DOCUMENT)
        resumed = run_campaign(spec, store_path=str(store))
        assert resumed.status == "done"
        stats = {s.name: s for s in resumed.stage_stats}
        # The two chunks that completed before the kill are served from the
        # ledger; only the remaining work executes.
        assert stats["sweep"].ledger_hits == survive
        assert stats["sweep"].executed == 4 - survive
        assert resumed.ledger_stats["hits"] == survive

        # Canonically byte-identical to an uninterrupted run in a pristine
        # store (canonical = minus wall-clock and cache telemetry, which is
        # the only thing allowed to differ).
        uninterrupted = run_campaign(spec, store_path=str(tmp_path / "fresh-store"))
        assert _canonical(resumed) == _canonical(uninterrupted)

    def test_kill_before_any_chunk_is_a_plain_cold_run(self, tmp_path, spec_path):
        from repro.campaigns import CampaignSpec, run_campaign

        store = tmp_path / "store"
        victim = _run_victim(store, spec_path, 0)
        assert victim.returncode == -signal.SIGKILL, victim.stderr

        resumed = run_campaign(CampaignSpec.from_dict(SPEC_DOCUMENT), store_path=str(store))
        assert resumed.status == "done"
        assert resumed.ledger_hits == 0
        assert resumed.executed_chunks == 5

    def test_interrupted_state_record_reports_running(self, tmp_path, spec_path):
        """A killed campaign leaves status='running' — the truth on disk."""
        from repro.campaigns import CampaignSpec
        from repro.campaigns.ledger import campaign_state
        from repro.service.store import DiskArtifactStore

        store = tmp_path / "store"
        victim = _run_victim(store, spec_path, 2)
        assert victim.returncode == -signal.SIGKILL, victim.stderr
        spec = CampaignSpec.from_dict(SPEC_DOCUMENT)
        state = campaign_state(DiskArtifactStore(store), spec.campaign_id())
        assert state is not None and state["status"] == "running"
