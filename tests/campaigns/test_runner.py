"""CampaignRunner: ledger-backed resume, retries with backoff, status documents."""

import json

import pytest

from repro.campaigns import (
    CampaignError,
    CampaignRunner,
    CampaignSpec,
    frontier_stage,
    report_stage,
    run_campaign,
    sweep_stage,
)
from repro.campaigns.ledger import campaign_state
from repro.service.store import DiskArtifactStore

TREE = {
    "name": "demo",
    "top": "TOP",
    "events": [
        {"name": "A", "probability": 0.1},
        {"name": "B", "probability": 0.2},
        {"name": "C", "probability": 0.3},
    ],
    "gates": [{"name": "TOP", "type": "or", "children": ["A", "B", "C"]}],
}

SCENARIOS = [
    {
        "name": f"s{i}",
        "patches": [
            {"type": "set_probability", "event": "A", "probability": 0.05 * (i + 1)}
        ],
    }
    for i in range(3)
]

ACTIONS = [
    {"event": "A", "cost": 2.0, "probability": 0.01},
    {"event": "B", "cost": 3.0, "probability": 0.02},
]


def three_stage_spec(**overrides):
    fields = dict(
        name="runner-test",
        tree=TREE,
        stages=(
            sweep_stage("sweep", SCENARIOS, chunk_size=1),
            frontier_stage("frontier", ACTIONS, depends_on=("sweep",)),
            report_stage("final", depends_on=("sweep", "frontier")),
        ),
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


class TestColdRun:
    def test_three_stage_campaign(self, tmp_path):
        outcome = run_campaign(three_stage_spec(), store_path=str(tmp_path))
        assert outcome.status == "done"
        assert [s.name for s in outcome.stage_stats] == ["sweep", "frontier", "final"]
        assert outcome.ledger_hits == 0
        assert outcome.executed_chunks == 5  # 3 sweep + 1 frontier + 1 report
        report = outcome.report()
        assert report is not None and len(report.outcomes) == 3
        frontier = outcome.stage_results["frontier"]
        assert frontier["points"]
        final = outcome.stage_results["final"]
        assert set(final["stages"]) == {"sweep", "frontier"}

    def test_merged_report_preserves_scenario_order(self, tmp_path):
        outcome = run_campaign(three_stage_spec(), store_path=str(tmp_path))
        names = [s.name for s in outcome.report().outcomes]
        assert names == ["s0", "s1", "s2"]

    def test_state_record_written(self, tmp_path):
        spec = three_stage_spec()
        run_campaign(spec, store_path=str(tmp_path))
        store = DiskArtifactStore(tmp_path)
        state = campaign_state(store, spec.campaign_id())
        assert state is not None
        assert state["status"] == "done"
        assert state["spec"] == spec.to_dict()
        assert state["result"]["kind"] == "campaign"

    def test_in_memory_runner_works_without_persistence(self):
        outcome = run_campaign(three_stage_spec())
        assert outcome.status == "done"
        assert outcome.ledger_stats["hits"] == 0
        assert outcome.ledger_stats["writes"] == 5


class TestResume:
    def test_resume_serves_every_chunk_from_ledger(self, tmp_path):
        spec = three_stage_spec()
        cold = run_campaign(spec, store_path=str(tmp_path))
        resumed = run_campaign(spec, store_path=str(tmp_path))
        assert resumed.status == "done"
        assert resumed.ledger_hits == 5
        assert resumed.executed_chunks == 0
        cold_doc = json.dumps(cold.result_document(), sort_keys=True)
        resumed_doc = json.dumps(resumed.result_document(), sort_keys=True)
        assert cold_doc == resumed_doc

    def test_resubmitting_equal_spec_is_a_resume(self, tmp_path):
        run_campaign(three_stage_spec(), store_path=str(tmp_path))
        # A *new* but canonically identical spec object shares the identity.
        resumed = run_campaign(three_stage_spec(), store_path=str(tmp_path))
        assert resumed.executed_chunks == 0

    def test_changed_spec_is_a_different_campaign(self, tmp_path):
        run_campaign(three_stage_spec(), store_path=str(tmp_path))
        other = run_campaign(three_stage_spec(top_k=7), store_path=str(tmp_path))
        assert other.ledger_hits == 0
        assert other.executed_chunks == 5


class TestRetries:
    def test_flaky_chunk_retries_with_backoff(self, tmp_path):
        spec = three_stage_spec(max_retries=3, retry_base_delay_s=0.5, retry_max_delay_s=10.0)
        failures = {"count": 0}
        delays = []

        def flaky(stage, index, attempt):
            if stage == "sweep" and index == 1 and failures["count"] < 2:
                failures["count"] += 1
                raise CampaignError("injected chunk failure")

        runner = CampaignRunner(
            store_path=str(tmp_path), sleep=delays.append, before_chunk=flaky
        )
        outcome = runner.run(spec)
        assert outcome.status == "done"
        assert delays == [0.5, 1.0]  # base * 2**attempt
        stats = {s.name: s for s in outcome.stage_stats}
        assert stats["sweep"].executed == 3
        assert stats["sweep"].attempts == 5  # 3 successes + 2 injected failures

    def test_backoff_delay_is_capped(self, tmp_path):
        spec = three_stage_spec(max_retries=4, retry_base_delay_s=1.0, retry_max_delay_s=2.5)
        failures = {"count": 0}
        delays = []

        def flaky(stage, index, attempt):
            if stage == "sweep" and index == 0 and failures["count"] < 4:
                failures["count"] += 1
                raise CampaignError("injected chunk failure")

        CampaignRunner(
            store_path=str(tmp_path), sleep=delays.append, before_chunk=flaky
        ).run(spec)
        assert delays == [1.0, 2.0, 2.5, 2.5]

    def test_exhausted_retries_fail_the_campaign(self, tmp_path):
        spec = three_stage_spec(max_retries=1)
        delays = []

        def always_fail(stage, index, attempt):
            if stage == "frontier":
                raise CampaignError("injected permanent failure")

        runner = CampaignRunner(
            store_path=str(tmp_path), sleep=delays.append, before_chunk=always_fail
        )
        with pytest.raises(CampaignError, match="failed after 2 attempt"):
            runner.run(spec)
        assert len(delays) == 1
        # The failure is durable: the state record says failed, the completed
        # sweep chunks stay ledgered.
        store = DiskArtifactStore(tmp_path)
        state = campaign_state(store, spec.campaign_id())
        assert state["status"] == "failed"
        assert "injected permanent failure" in state["error"]
        assert state["stages"]["frontier"]["status"] == "failed"
        assert state["stages"]["sweep"]["status"] == "done"

    def test_failed_campaign_resumes_past_completed_stages(self, tmp_path):
        spec = three_stage_spec(max_retries=0)
        calls = {"frontier": 0}

        def fail_frontier_once(stage, index, attempt):
            if stage == "frontier" and calls["frontier"] == 0:
                calls["frontier"] += 1
                raise CampaignError("injected transient failure")

        flaky_runner = CampaignRunner(
            store_path=str(tmp_path), sleep=lambda _ : None, before_chunk=fail_frontier_once
        )
        with pytest.raises(CampaignError):
            flaky_runner.run(spec)
        resumed = run_campaign(spec, store_path=str(tmp_path))
        assert resumed.status == "done"
        stats = {s.name: s for s in resumed.stage_stats}
        assert stats["sweep"].ledger_hits == 3 and stats["sweep"].executed == 0
        assert stats["frontier"].executed == 1
        assert stats["final"].executed == 1


class TestStatus:
    def test_status_before_during_after(self, tmp_path):
        spec = three_stage_spec()
        runner = CampaignRunner(store_path=str(tmp_path))
        before = runner.status(spec)
        assert before["status"] == "unknown"
        assert [(s["chunks_done"], s["chunks_total"]) for s in before["stages"]] == [
            (0, 3),
            (0, 1),
            (0, 1),
        ]
        runner.run(spec)
        after = CampaignRunner(store_path=str(tmp_path)).status(spec)
        assert after["status"] == "done"
        assert [(s["chunks_done"], s["chunks_total"]) for s in after["stages"]] == [
            (3, 3),
            (1, 1),
            (1, 1),
        ]
        assert after["persistent"] is True

    def test_status_without_store_is_not_persistent(self):
        document = CampaignRunner().status(three_stage_spec())
        assert document["persistent"] is False


class TestStopCheck:
    def test_stop_check_aborts_between_chunks(self, tmp_path):
        from repro.service.jobs import JobCancelled

        calls = {"count": 0}

        def stop_after_two():
            calls["count"] += 1
            if calls["count"] > 2:
                raise JobCancelled("stop requested")

        runner = CampaignRunner(store_path=str(tmp_path), stop_check=stop_after_two)
        with pytest.raises(JobCancelled):
            runner.run(three_stage_spec())
