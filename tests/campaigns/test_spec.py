"""CampaignSpec: DAG validation, content-addressed chunking, wire round-trip."""

import pytest

from repro.campaigns.spec import (
    DEFAULT_CHUNK_SIZE,
    CampaignError,
    CampaignSpec,
    StageSpec,
    frontier_stage,
    report_stage,
    sweep_stage,
)

TREE = {
    "name": "demo",
    "top": "TOP",
    "events": [
        {"name": "A", "probability": 0.1},
        {"name": "B", "probability": 0.2},
    ],
    "gates": [{"name": "TOP", "type": "or", "children": ["A", "B"]}],
}


def _scenarios(n=5):
    return [
        {
            "name": f"s{i}",
            "patches": [
                {"type": "set_probability", "event": "A", "probability": 0.01 * (i + 1)}
            ],
        }
        for i in range(n)
    ]


def _spec(stages):
    return CampaignSpec(name="test", tree=TREE, stages=tuple(stages))


class TestStageSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(CampaignError, match="unknown stage kind"):
            StageSpec(name="x", kind="mystery")

    def test_empty_name_rejected(self):
        with pytest.raises(CampaignError, match="non-empty string"):
            StageSpec(name="", kind="sweep")

    def test_round_trip(self):
        stage = sweep_stage("s", _scenarios(2), chunk_size=1, depends_on=("other",))
        assert StageSpec.from_dict(stage.to_dict()) == stage

    def test_unknown_fields_rejected(self):
        with pytest.raises(CampaignError, match="unknown fields"):
            StageSpec.from_dict({"name": "s", "kind": "sweep", "bogus": 1})


class TestDagValidation:
    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(CampaignError, match="duplicate stage names"):
            _spec([sweep_stage("s", _scenarios()), sweep_stage("s", _scenarios())])

    def test_unknown_dependency_rejected(self):
        with pytest.raises(CampaignError, match="unknown stage"):
            _spec([report_stage("r", depends_on=("ghost",))])

    def test_self_dependency_rejected(self):
        with pytest.raises(CampaignError, match="depends on itself"):
            _spec(
                [
                    sweep_stage("s", _scenarios()),
                    StageSpec(name="r", kind="report", depends_on=("r", "s")),
                ]
            )

    def test_cycle_rejected(self):
        with pytest.raises(CampaignError, match="dependency cycle"):
            _spec(
                [
                    StageSpec(name="a", kind="report", depends_on=("b",)),
                    StageSpec(name="b", kind="report", depends_on=("a",)),
                ]
            )

    def test_no_stages_rejected(self):
        with pytest.raises(CampaignError, match="at least one stage"):
            _spec([])

    def test_topological_order_respects_dependencies(self):
        spec = _spec(
            [
                report_stage("last", depends_on=("mid", "first")),
                StageSpec(name="mid", kind="report", depends_on=("first",)),
                sweep_stage("first", _scenarios()),
            ]
        )
        order = [stage.name for stage in spec.topological_order()]
        assert order.index("first") < order.index("mid") < order.index("last")


class TestChunking:
    def test_contiguous_order_preserving_slices(self):
        spec = _spec([sweep_stage("s", _scenarios(5), chunk_size=2)])
        chunks = spec.chunks_for(spec.stage("s"), _scenarios(5))
        assert [len(c.payload["scenarios"]) for c in chunks] == [2, 2, 1]
        flattened = [
            doc["name"] for c in chunks for doc in c.payload["scenarios"]
        ]
        assert flattened == [f"s{i}" for i in range(5)]

    def test_chunk_size_zero_means_one_chunk(self):
        spec = _spec([sweep_stage("s", _scenarios(5), chunk_size=0)])
        chunks = spec.chunks_for(spec.stage("s"), _scenarios(5))
        assert len(chunks) == 1

    def test_default_chunk_size(self):
        stage = StageSpec(name="s", kind="sweep", payload={"scenarios": _scenarios(40)})
        spec = _spec([stage])
        chunks = spec.chunks_for(stage, _scenarios(40))
        assert len(chunks) == -(-40 // DEFAULT_CHUNK_SIZE)

    def test_negative_chunk_size_rejected(self):
        stage = StageSpec(
            name="s", kind="sweep", payload={"scenarios": [], "chunk_size": -1}
        )
        spec = _spec([stage])
        with pytest.raises(CampaignError, match="chunk_size"):
            spec.chunks_for(stage, [])

    def test_hashes_are_content_addresses(self):
        spec = _spec([sweep_stage("s", _scenarios(4), chunk_size=2)])
        chunks_a = spec.chunks_for(spec.stage("s"), _scenarios(4))
        chunks_b = spec.chunks_for(spec.stage("s"), _scenarios(4))
        assert [c.hash for c in chunks_a] == [c.hash for c in chunks_b]
        assert len({c.hash for c in chunks_a}) == len(chunks_a)  # all distinct

    def test_hash_covers_analysis_config(self):
        base = _spec([sweep_stage("s", _scenarios(2), chunk_size=1)])
        other = CampaignSpec(
            name="test", tree=TREE, stages=base.stages, top_k=base.top_k + 1
        )
        hashes_a = [c.hash for c in base.chunks_for(base.stage("s"), _scenarios(2))]
        hashes_b = [c.hash for c in other.chunks_for(other.stage("s"), _scenarios(2))]
        assert set(hashes_a).isdisjoint(hashes_b)

    def test_single_chunk_for_frontier(self):
        stage = frontier_stage("f", [{"event": "A", "cost": 1.0, "probability": 0.01}])
        spec = _spec([stage])
        chunk = spec.single_chunk_for(stage)
        assert chunk.index == 0 and chunk.stage == "f" and chunk.hash


class TestIdentity:
    def test_campaign_id_is_deterministic(self):
        spec_a = _spec([sweep_stage("s", _scenarios())])
        spec_b = _spec([sweep_stage("s", _scenarios())])
        assert spec_a.campaign_id() == spec_b.campaign_id()
        assert len(spec_a.campaign_id()) == 32

    def test_campaign_id_changes_with_content(self):
        spec_a = _spec([sweep_stage("s", _scenarios(3))])
        spec_b = _spec([sweep_stage("s", _scenarios(4))])
        assert spec_a.campaign_id() != spec_b.campaign_id()

    def test_round_trip_preserves_identity(self):
        spec = CampaignSpec(
            name="rt",
            tree=TREE,
            stages=(
                sweep_stage("s", _scenarios(3), chunk_size=2),
                frontier_stage(
                    "f",
                    [{"event": "A", "cost": 1.0, "probability": 0.01}],
                    depends_on=("s",),
                ),
                report_stage("r", depends_on=("s", "f")),
            ),
            workers=3,
            max_retries=5,
            seed=7,
        )
        clone = CampaignSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.campaign_id() == spec.campaign_id()


class TestWireFormat:
    def test_missing_required_field(self):
        with pytest.raises(CampaignError, match="missing"):
            CampaignSpec.from_dict({"name": "x", "tree": TREE})

    def test_unknown_fields_rejected(self):
        document = _spec([sweep_stage("s", _scenarios())]).to_dict()
        document["surprise"] = True
        with pytest.raises(CampaignError, match="unknown fields"):
            CampaignSpec.from_dict(document)

    def test_non_object_rejected(self):
        with pytest.raises(CampaignError, match="must be an object"):
            CampaignSpec.from_dict([1, 2, 3])

    def test_serialization_wrappers(self):
        from repro.scenarios.serialization import (
            SerializationError,
            campaign_from_dict,
            campaign_to_dict,
        )

        spec = _spec([sweep_stage("s", _scenarios())])
        assert campaign_from_dict(campaign_to_dict(spec)) == spec
        with pytest.raises(SerializationError):
            campaign_from_dict({"name": "x"})
