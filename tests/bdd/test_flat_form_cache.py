"""The per-manager FlatBDD memo is LRU-bounded with ArtifactCache-style stats."""

import pytest

from repro.bdd.manager import BDD, BDDManager
from repro.bdd.probability import (
    FLAT_FORM_CACHE_LIMIT,
    FlatBDD,
    FlatFormCache,
    flatten_bdd,
)
from repro.exceptions import AnalysisError


def _or_chain(manager: BDDManager, names) -> BDD:
    node = manager.var(names[0]).node
    for name in names[1:]:
        node = manager.apply_or(node, manager.var(name).node)
    return BDD(manager, node)


class TestFlatFormCache:
    def test_default_limit(self):
        cache = FlatFormCache()
        assert cache.limit == FLAT_FORM_CACHE_LIMIT
        assert FLAT_FORM_CACHE_LIMIT >= 1

    def test_rejects_non_positive_limit(self):
        with pytest.raises(AnalysisError):
            FlatFormCache(limit=0)

    def test_miss_then_hit_counts(self):
        cache = FlatFormCache(limit=4)
        flat = FlatBDD(events=(), var_index=None, low=None, high=None, root=1)
        assert cache.get(7) is None
        cache.put(7, flat)
        assert cache.get(7) is flat
        assert cache.stats() == {
            "entries": 1,
            "limit": 4,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
        }

    def test_evicts_least_recently_used(self):
        cache = FlatFormCache(limit=2)
        a = FlatBDD(events=(), var_index=None, low=None, high=None, root=1)
        b = FlatBDD(events=(), var_index=None, low=None, high=None, root=1)
        c = FlatBDD(events=(), var_index=None, low=None, high=None, root=1)
        cache.put(1, a)
        cache.put(2, b)
        cache.get(1)  # refresh 1 so 2 becomes the LRU entry
        cache.put(3, c)
        assert cache.get(2) is None
        assert cache.get(1) is a
        assert cache.get(3) is c
        assert cache.evictions == 1
        assert len(cache) == 2


class TestFlattenBddMemo:
    def test_manager_memo_is_flat_form_cache(self):
        manager = BDDManager(["a", "b"])
        function = _or_chain(manager, ["a", "b"])
        flat = flatten_bdd(function)
        cache = manager._flat_forms
        assert isinstance(cache, FlatFormCache)
        assert flatten_bdd(function) is flat
        assert cache.hits >= 1 and cache.misses >= 1

    def test_eviction_forces_reflatten(self):
        names = ["a", "b", "c", "d"]
        manager = BDDManager(names)
        manager._flat_forms = FlatFormCache(limit=2)
        functions = [_or_chain(manager, names[: k + 1]) for k in range(4)]
        first = [flatten_bdd(f) for f in functions]
        assert manager._flat_forms.evictions == 2
        # The oldest entries were evicted: re-flattening rebuilds an equal form.
        again = flatten_bdd(functions[0])
        assert again is not first[0]
        assert again == first[0]
        # The newest entries are still memoised.
        assert flatten_bdd(functions[3]) is first[3]

    def test_stats_shape(self):
        manager = BDDManager(["a"])
        flatten_bdd(manager.var("a"))
        stats = manager._flat_forms.stats()
        assert set(stats) == {"entries", "limit", "hits", "misses", "evictions"}
