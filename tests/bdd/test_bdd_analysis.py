"""Unit and property tests for BDD-based cut sets, probability and MPMCS."""

import pytest
from hypothesis import given, settings

from repro.analysis.bruteforce import brute_force_minimal_cut_sets, brute_force_mpmcs
from repro.bdd.cutsets import bdd_minimal_cut_sets
from repro.bdd.manager import BDDManager
from repro.bdd.ordering import variable_order
from repro.bdd.probability import bdd_mpmcs, top_event_probability
from repro.exceptions import AnalysisError, BDDError
from repro.fta.builder import FaultTreeBuilder

from tests.conftest import small_random_trees


class TestOrdering:
    def test_dfs_order_contains_all_events(self, fps_tree):
        order = variable_order(fps_tree, heuristic="dfs")
        assert set(order) == {f"x{i}" for i in range(1, 8)}

    def test_frequency_order_puts_shared_events_first(self, shared_events_tree):
        order = variable_order(shared_events_tree, heuristic="frequency")
        assert order[0] in {"control_circuit", "power_supply"}

    def test_alphabetical_order(self, fps_tree):
        order = variable_order(fps_tree, heuristic="alphabetical")
        assert list(order) == sorted(order)

    def test_explicit_order_passthrough_and_validation(self, fps_tree):
        explicit = tuple(sorted(fps_tree.event_names, reverse=True))
        assert variable_order(fps_tree, explicit=explicit) == explicit
        with pytest.raises(BDDError):
            variable_order(fps_tree, explicit=("x1",))

    def test_unknown_heuristic_rejected(self, fps_tree):
        with pytest.raises(BDDError):
            variable_order(fps_tree, heuristic="magic")


class TestCutSets:
    def test_fps_cut_sets(self, fps_tree):
        collection = bdd_minimal_cut_sets(fps_tree)
        assert set(collection.to_sorted_tuples()) == {
            ("x3",),
            ("x4",),
            ("x1", "x2"),
            ("x5", "x6"),
            ("x5", "x7"),
        }

    def test_cut_set_limit(self, fps_tree):
        with pytest.raises(AnalysisError):
            bdd_minimal_cut_sets(fps_tree, max_cut_sets=2)

    @settings(max_examples=25, deadline=None)
    @given(small_random_trees(min_events=4, max_events=9))
    def test_matches_brute_force(self, tree):
        assert (
            bdd_minimal_cut_sets(tree).to_sorted_tuples()
            == brute_force_minimal_cut_sets(tree).to_sorted_tuples()
        )

    @settings(max_examples=15, deadline=None)
    @given(small_random_trees(min_events=4, max_events=8))
    def test_ordering_heuristic_does_not_change_cut_sets(self, tree):
        dfs = bdd_minimal_cut_sets(tree, heuristic="dfs").to_sorted_tuples()
        freq = bdd_minimal_cut_sets(tree, heuristic="frequency").to_sorted_tuples()
        assert dfs == freq


class TestProbabilityAndMPMCS:
    def test_fps_top_event_probability(self, fps_tree):
        # Exact value cross-checked against exhaustive enumeration elsewhere.
        assert top_event_probability(fps_tree) == pytest.approx(0.0300217392, rel=1e-6)

    def test_fps_bdd_mpmcs_matches_paper(self, fps_tree):
        events, probability = bdd_mpmcs(fps_tree)
        assert events == ("x1", "x2")
        assert probability == pytest.approx(0.02)

    def test_tree_with_single_cut_set(self):
        tree = (
            FaultTreeBuilder("and")
            .basic_event("a", 0.5)
            .basic_event("b", 0.25)
            .and_gate("top", ["a", "b"])
            .top("top")
            .build()
        )
        events, probability = bdd_mpmcs(tree)
        assert events == ("a", "b")
        assert probability == pytest.approx(0.125)
        assert top_event_probability(tree) == pytest.approx(0.125)

    @settings(max_examples=30, deadline=None)
    @given(small_random_trees(min_events=4, max_events=10))
    def test_bdd_mpmcs_matches_brute_force(self, tree):
        _, expected_probability = brute_force_mpmcs(tree)
        events, probability = bdd_mpmcs(tree)
        assert probability == pytest.approx(expected_probability, rel=1e-9)
        assert tree.is_minimal_cut_set(events)
