"""Unit and property tests for the ROBDD manager."""

import pytest
from hypothesis import given, settings

from repro.bdd.manager import BDDManager, FALSE_NODE, TRUE_NODE
from repro.exceptions import BDDError
from repro.logic.formula import And, AtLeast, Not, Or, Var

from tests.conftest import all_assignments, formulas, small_random_trees


class TestConstruction:
    def test_terminals(self):
        manager = BDDManager(["a"])
        assert manager.true().is_true
        assert manager.false().is_false

    def test_var_node(self):
        manager = BDDManager(["a", "b"])
        function = manager.var("a")
        assert function.evaluate({"a": True}) is True
        assert function.evaluate({"a": False}) is False

    def test_unknown_variable_rejected(self):
        manager = BDDManager(["a"])
        with pytest.raises(BDDError):
            manager.var("zzz")

    def test_duplicate_order_rejected(self):
        with pytest.raises(BDDError):
            BDDManager(["a", "a"])

    def test_empty_order_rejected(self):
        with pytest.raises(BDDError):
            BDDManager([])

    def test_canonicity_identical_functions_share_nodes(self):
        manager = BDDManager(["a", "b"])
        f1 = manager.var("a") & manager.var("b")
        f2 = manager.var("a") & manager.var("b")
        assert f1.node == f2.node

    def test_complemented_function_distinct(self):
        manager = BDDManager(["a"])
        assert (~manager.var("a")).node != manager.var("a").node

    def test_cross_manager_operations_rejected(self):
        m1, m2 = BDDManager(["a"]), BDDManager(["a"])
        with pytest.raises(BDDError):
            _ = m1.var("a") & m2.var("a")

    def test_terminal_triple_rejected(self):
        manager = BDDManager(["a"])
        with pytest.raises(BDDError):
            manager.node_triple(TRUE_NODE)


class TestOperations:
    def test_and_or_not_semantics(self):
        manager = BDDManager(["a", "b"])
        a, b = manager.var("a"), manager.var("b")
        for x in (False, True):
            for y in (False, True):
                env = {"a": x, "b": y}
                assert (a & b).evaluate(env) == (x and y)
                assert (a | b).evaluate(env) == (x or y)
                assert (~a).evaluate(env) == (not x)

    def test_ite_terminal_shortcuts(self):
        manager = BDDManager(["a", "b"])
        a = manager.var("a").node
        assert manager.ite(TRUE_NODE, a, FALSE_NODE) == a
        assert manager.ite(FALSE_NODE, a, TRUE_NODE) == TRUE_NODE
        assert manager.ite(a, TRUE_NODE, FALSE_NODE) == a
        assert manager.ite(a, a, a) == a

    def test_double_negation_restores_node(self):
        manager = BDDManager(["a", "b", "c"])
        f = (manager.var("a") & manager.var("b")) | manager.var("c")
        assert manager.negate(manager.negate(f.node)) == f.node

    def test_size_counts_internal_nodes(self):
        manager = BDDManager(["a", "b"])
        f = manager.var("a") & manager.var("b")
        assert f.size() == 2
        assert manager.true().size() == 0


class TestFormulaCompilation:
    @settings(max_examples=40, deadline=None)
    @given(formulas(max_depth=3, max_vars=4))
    def test_compiled_bdd_matches_formula(self, formula):
        names = sorted(formula.variables()) or ["v1"]
        manager = BDDManager(names)
        function = manager.from_formula(formula)
        for assignment in all_assignments(names):
            assert function.evaluate(assignment) == formula.evaluate(assignment)

    def test_threshold_compilation(self):
        manager = BDDManager(["a", "b", "c"])
        formula = AtLeast(2, (Var("a"), Var("b"), Var("c")))
        function = manager.from_formula(formula)
        for assignment in all_assignments(["a", "b", "c"]):
            assert function.evaluate(assignment) == formula.evaluate(assignment)


class TestFaultTreeCompilation:
    def test_fps_compilation_matches_tree(self, fps_tree):
        from repro.bdd.ordering import variable_order

        manager = BDDManager(variable_order(fps_tree))
        function = manager.from_fault_tree(fps_tree)
        events = sorted(fps_tree.events_reachable_from_top())
        for assignment in all_assignments(events):
            assert function.evaluate(assignment) == fps_tree.evaluate(assignment)

    @settings(max_examples=15, deadline=None)
    @given(small_random_trees(min_events=4, max_events=7))
    def test_random_tree_compilation_matches_evaluation(self, tree):
        from repro.bdd.ordering import variable_order

        manager = BDDManager(variable_order(tree))
        function = manager.from_fault_tree(tree)
        events = sorted(tree.events_reachable_from_top())
        for assignment in all_assignments(events):
            assert function.evaluate(assignment) == tree.evaluate(assignment)
