"""Batch BDD evaluation kernels: every tier must equal the scalar walk exactly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.bdd import BDDManager, variable_order
from repro.bdd.probability import flatten_bdd, probability_of_bdd

from tests.conftest import small_random_trees


def _compile(tree):
    manager = BDDManager(variable_order(tree, heuristic="dfs"))
    return manager.from_fault_tree(tree)


def _probability_grid(tree, count):
    """Deterministic per-scenario probability maps perturbing one event each."""
    base = tree.probabilities()
    events = sorted(base)
    maps = []
    for index in range(count):
        probabilities = dict(base)
        probabilities[events[index % len(events)]] = (index * 17 % 97 + 1) / 100.0
        maps.append(probabilities)
    return maps


@pytest.mark.parametrize("tier", kernels.available_tiers())
class TestTierMatchesScalar:
    def test_library_trees(self, tier, any_library_tree):
        function = _compile(any_library_tree)
        maps = _probability_grid(any_library_tree, 13)
        scalar = [probability_of_bdd(function, m) for m in maps]
        suite = kernels.select(tier)
        assert kernels.batch_probability_of_bdd(suite, function, maps) == scalar

    def test_empty_batch(self, tier, fps_tree):
        function = _compile(fps_tree)
        suite = kernels.select(tier)
        assert kernels.batch_probability_of_bdd(suite, function, ()) == []

    def test_single_scenario(self, tier, fps_tree):
        function = _compile(fps_tree)
        probabilities = fps_tree.probabilities()
        suite = kernels.select(tier)
        batched = kernels.batch_probability_of_bdd(suite, function, [probabilities])
        assert batched == [probability_of_bdd(function, probabilities)]


def test_all_tiers_agree_bit_for_bit(any_library_tree):
    function = _compile(any_library_tree)
    maps = _probability_grid(any_library_tree, 9)
    results = {
        tier: kernels.batch_probability_of_bdd(kernels.select(tier), function, maps)
        for tier in kernels.available_tiers()
    }
    reference = results["python"]
    for tier, values in results.items():
        assert values == reference, f"tier {tier!r} diverged"


class TestPropertyBatchEqualsScalar:
    """Hypothesis: on random trees and grids, batch ≡ scalar for every tier."""

    @settings(max_examples=40, deadline=None)
    @given(
        tree=small_random_trees(min_events=3, max_events=9, voting_ratio=0.25),
        seed=st.integers(min_value=0, max_value=2**31),
        count=st.integers(min_value=1, max_value=7),
    )
    def test_batch_matches_scalar_walk(self, tree, seed, count):
        import random

        function = _compile(tree)
        rng = random.Random(seed)
        events = sorted(tree.probabilities())
        maps = [
            {name: rng.random() for name in events} for _ in range(count)
        ]
        scalar = [probability_of_bdd(function, m) for m in maps]
        for tier in kernels.available_tiers():
            suite = kernels.select(tier)
            batched = kernels.batch_probability_of_bdd(suite, function, maps)
            assert batched == scalar, f"tier {tier!r} diverged"


class TestFlatBDD:
    def test_flatten_is_memoised_per_manager(self, fps_tree):
        function = _compile(fps_tree)
        assert flatten_bdd(function) is flatten_bdd(function)

    def test_flat_form_shape(self, fps_tree):
        function = _compile(fps_tree)
        flat = flatten_bdd(function)
        assert flat.num_nodes == 2 + len(flat.var_index)
        assert len(flat.low) == len(flat.high) == len(flat.var_index)
        assert 0 <= flat.root < flat.num_nodes
        # Children-first ordering: every child id precedes its parent's id.
        for position, (lo, hi) in enumerate(zip(flat.low, flat.high), start=2):
            assert lo < position and hi < position

    def test_probability_rows_missing_event(self, fps_tree):
        from repro.exceptions import AnalysisError

        function = _compile(fps_tree)
        flat = flatten_bdd(function)
        with pytest.raises(AnalysisError, match="no probability known"):
            flat.probability_rows(({},))
