"""Bitset solver kernels: coverage masks, assign buffers, and the hitting-set
property check against the deliberately naive set-based oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.bitset import (
    CoverageIndex,
    make_assign_buffer,
    popcount,
    set_based_hitting_set,
)
from repro.maxsat.hitting_set import minimum_cost_hitting_set


class TestPopcount:
    @pytest.mark.parametrize(
        "mask,expected", [(0, 0), (1, 1), (0b1011, 3), ((1 << 200) - 1, 200)]
    )
    def test_values(self, mask, expected):
        assert popcount(mask) == expected


class TestAssignBuffer:
    def test_ternary_storage_and_growth(self):
        buffer = make_assign_buffer([0])
        buffer.append(1)
        buffer.append(-1)
        buffer.append(0)
        assert list(buffer) == [0, 1, -1, 0]
        buffer[1] = -1
        assert buffer[1] == -1


class TestCoverageIndex:
    def test_masks_and_cover(self):
        cores = [frozenset({"a", "b"}), frozenset({"b", "c"}), frozenset({"d"})]
        index = CoverageIndex(cores)
        assert len(index) == 3
        assert index.all_mask == 0b111
        assert index.mask_of(["b"]) == 0b011
        assert index.mask_of(["unknown"]) == 0
        assert not index.covers_all(["b"])
        assert index.covers_all(["b", "d"])

    def test_greedy_cover_is_feasible(self):
        cores = [frozenset({"a", "b"}), frozenset({"b", "c"}), frozenset({"a", "c"})]
        weights = {"a": 3, "b": 1, "c": 2}
        chosen, cost = CoverageIndex(cores).greedy_cover(weights)
        assert all(chosen & core for core in cores)
        assert cost == sum(weights[element] for element in chosen)


def _cores_and_weights():
    """Random small hitting-set instances (literals 1..8, non-empty cores)."""
    literals = st.integers(min_value=1, max_value=8)
    core = st.frozensets(literals, min_size=1, max_size=4)
    cores = st.lists(core, min_size=0, max_size=8)
    weights = st.dictionaries(
        literals, st.integers(min_value=0, max_value=50), min_size=0, max_size=8
    )
    return st.tuples(cores, weights)


class TestHittingSetAgainstOracle:
    @settings(max_examples=150, deadline=None)
    @given(_cores_and_weights())
    def test_packed_search_matches_set_based_oracle(self, instance):
        cores, weights = instance
        chosen, cost = minimum_cost_hitting_set(list(cores), dict(weights))
        oracle_set, oracle_cost = set_based_hitting_set(cores, weights)
        # Optimal *sets* may legitimately differ; the optimal cost may not.
        assert cost == oracle_cost
        assert all(chosen & core for core in cores)
        assert cost == sum(weights.get(element, 0) for element in chosen)
        assert all(oracle_set & core for core in cores)

    def test_empty_instance(self):
        assert minimum_cost_hitting_set([], {}) == (set(), 0)
        assert set_based_hitting_set([], {}) == (set(), 0)
