"""Re-rank scoring kernels: every tier returns the oracle's exact integers."""

import random

import pytest

from repro import kernels
from repro.kernels import rerank
from repro.kernels.rerank import (
    _INT64_SAFE_WEIGHT,
    greedy_lower_bound_python,
    score_candidates_python,
)

TIERS = kernels.available_tiers()


def _random_problem(seed, num_events=12, num_candidates=6, num_rows=9):
    rng = random.Random(seed)
    candidates = [
        sorted(rng.sample(range(num_events), rng.randint(1, num_events // 2)))
        for _ in range(num_candidates)
    ]
    rows = [
        [rng.randint(1, 10**7) for _ in range(num_events)] for _ in range(num_rows)
    ]
    # Pairwise-disjoint cores, like the session's greedy packing produces.
    pool = list(range(num_events))
    rng.shuffle(pool)
    cores, cursor = [], 0
    while cursor + 2 <= len(pool) and len(cores) < 3:
        size = rng.randint(1, 3)
        cores.append(sorted(pool[cursor : cursor + size]))
        cursor += size
    return candidates, cores, rows


class TestScoreCandidates:
    @pytest.mark.parametrize("tier", TIERS)
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_reference_tier(self, tier, seed):
        candidates, _, rows = _random_problem(seed)
        suite = kernels.select(tier)
        assert suite.score_candidates(candidates, rows) == score_candidates_python(
            candidates, rows
        )

    @pytest.mark.parametrize("tier", TIERS)
    def test_empty_candidates(self, tier):
        assert kernels.select(tier).score_candidates([], [[1, 2], [3, 4]]) == []

    @pytest.mark.parametrize("tier", TIERS)
    def test_empty_rows(self, tier):
        assert kernels.select(tier).score_candidates([[0], [1]], []) == [[], []]

    def test_reference_values_by_hand(self):
        scores = score_candidates_python([[0, 2], [1]], [[5, 7, 11], [1, 2, 3]])
        assert scores == [[16, 4], [7, 2]]


class TestGreedyLowerBound:
    @pytest.mark.parametrize("tier", TIERS)
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_reference_tier(self, tier, seed):
        _, cores, rows = _random_problem(seed)
        suite = kernels.select(tier)
        assert suite.greedy_lower_bound(cores, rows) == greedy_lower_bound_python(
            cores, rows
        )

    @pytest.mark.parametrize("tier", TIERS)
    def test_no_cores_means_zero_bound(self, tier):
        assert kernels.select(tier).greedy_lower_bound([], [[1], [2]]) == [0, 0]

    @pytest.mark.parametrize("tier", TIERS)
    def test_no_rows(self, tier):
        assert kernels.select(tier).greedy_lower_bound([[0]], []) == []

    def test_reference_values_by_hand(self):
        bounds = greedy_lower_bound_python([[0, 1], [2]], [[5, 7, 11], [9, 2, 3]])
        assert bounds == [5 + 11, 2 + 3]


class TestInt64Guard:
    """Weights past the int64-safe bound fall back to exact reference math."""

    @pytest.mark.parametrize("tier", TIERS)
    def test_huge_weights_stay_exact(self, tier):
        huge = _INT64_SAFE_WEIGHT * 4
        candidates = [[0, 1]]
        rows = [[huge, huge + 1]]
        suite = kernels.select(tier)
        assert suite.score_candidates(candidates, rows) == [[2 * huge + 1]]
        assert suite.greedy_lower_bound([[0, 1]], rows) == [huge]

    def test_numpy_tier_delegates(self):
        if "numpy" not in TIERS:
            pytest.skip("numpy unavailable")
        huge = _INT64_SAFE_WEIGHT * 4
        assert rerank.score_candidates_numpy([[0]], [[huge]]) == [[huge]]
        assert rerank.greedy_lower_bound_numpy([[0]], [[huge]]) == [huge]
