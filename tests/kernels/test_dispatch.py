"""The kernel dispatch seam: tier selection, env override, error paths."""

import pytest

from repro import kernels
from repro.exceptions import ConfigurationError
from repro.numerics import HAVE_NUMPY


class TestAvailableTiers:
    def test_stdlib_tiers_always_available(self):
        tiers = kernels.available_tiers()
        assert "array" in tiers
        assert "python" in tiers

    def test_numpy_tier_tracks_numpy_availability(self):
        assert ("numpy" in kernels.available_tiers()) == HAVE_NUMPY

    def test_fastest_first_ordering(self):
        tiers = kernels.available_tiers()
        assert tiers.index("array") < tiers.index("python")
        if HAVE_NUMPY:
            assert tiers[0] == "numpy"

    def test_without_numpy_best_tier_is_array(self, monkeypatch):
        monkeypatch.setattr(kernels, "HAVE_NUMPY", False)
        assert kernels.available_tiers()[0] == "array"


class TestSelect:
    def test_auto_and_none_pick_the_best_available(self, monkeypatch):
        monkeypatch.delenv(kernels.KERNEL_ENV, raising=False)
        best = kernels.available_tiers()[0]
        assert kernels.select(None).name == best
        assert kernels.select("auto").name == best

    @pytest.mark.parametrize("tier", ["python", "array"])
    def test_explicit_stdlib_tiers(self, tier):
        suite = kernels.select(tier)
        assert suite.name == tier
        assert callable(suite.eval_bdd_batch)

    def test_env_override_steers_auto(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV, "python")
        assert kernels.select(None).name == "python"
        assert kernels.select("auto").name == "python"

    def test_explicit_tier_beats_env_override(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_ENV, "python")
        assert kernels.select("array").name == "array"

    def test_unknown_tier_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown kernel tier"):
            kernels.select("cuda")

    def test_numpy_without_numpy_is_a_configuration_error(self, monkeypatch):
        monkeypatch.setattr(kernels, "HAVE_NUMPY", False)
        with pytest.raises(ConfigurationError, match="numpy is unavailable"):
            kernels.select("numpy")

    @pytest.mark.skipif(not HAVE_NUMPY, reason="requires numpy")
    def test_numpy_tier_when_available(self):
        assert kernels.select("numpy").name == "numpy"


class TestSessionSurface:
    def test_session_records_kernel_in_profile(self, fps_tree):
        from repro.api import AnalysisSession

        session = AnalysisSession(kernel_tier="python")
        assert session.kernels.name == "python"
        report = session.analyze(fps_tree, ["mpmcs"], backend="maxsat")
        assert report.profile["kernel"] == "python"

    def test_kernel_name_stays_out_of_canonical_reports(self, fps_tree):
        from repro.api import AnalysisSession

        documents = []
        for tier in ("python", "array"):
            report = AnalysisSession(kernel_tier=tier).analyze(
                fps_tree, ["mpmcs"], backend="maxsat"
            )
            assert report.profile["kernel"] == tier
            documents.append(report.to_canonical_dict())
        assert documents[0] == documents[1]

    def test_session_rejects_unknown_tier(self):
        from repro.api import AnalysisSession

        with pytest.raises(ConfigurationError):
            AnalysisSession(kernel_tier="fortran")
