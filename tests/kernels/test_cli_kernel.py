"""CLI wiring of the kernel dispatch seam and the monitor batch/webhook flags."""

import pytest

from repro.cli import build_parser, main


class TestAnalyzeKernelFlag:
    @pytest.mark.parametrize("tier", ["auto", "python", "array"])
    def test_kernel_choices_run(self, tier, capsys):
        assert main(
            ["analyze", "--builtin", "fps", "--quiet", "--kernel", tier]
        ) == 0
        assert "MPMCS" in capsys.readouterr().out

    def test_profile_prints_the_chosen_kernel(self, capsys):
        assert main(
            ["analyze", "--builtin", "fps", "--quiet", "--profile", "--kernel", "python"]
        ) == 0
        output = capsys.readouterr().out
        assert "kernel" in output
        assert "python" in output

    def test_unknown_kernel_is_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["analyze", "--builtin", "fps", "--kernel", "cuda"]
            )

    def test_default_is_auto(self):
        args = build_parser().parse_args(["analyze", "--builtin", "fps"])
        assert args.kernel == "auto"


class TestMonitorFlags:
    def test_batch_size_and_webhook_defaults(self):
        args = build_parser().parse_args(["monitor", "--builtin", "fps"])
        assert args.batch_size == 1
        assert args.alert_webhook is None

    def test_batched_local_monitor_run(self, capsys):
        assert main(
            ["monitor", "--builtin", "fps", "--updates", "6", "--seed", "1",
             "--batch-size", "3"]
        ) == 0
        output = capsys.readouterr().out
        assert "updates:  6" in output
