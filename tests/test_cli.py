"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.fta.serializers import to_galileo, to_json
from repro.workloads.library import fire_protection_system


class TestAnalyzeCommand:
    def test_builtin_fps_analysis(self, capsys):
        assert main(["analyze", "--builtin", "fps", "--quiet"]) == 0
        output = capsys.readouterr().out
        assert "MPMCS      : {x1, x2}" in output
        assert "0.02" in output

    def test_json_model_file(self, tmp_path, capsys):
        model = tmp_path / "fps.json"
        model.write_text(to_json(fire_protection_system()), encoding="utf-8")
        assert main(["analyze", str(model), "--quiet"]) == 0
        assert "x1, x2" in capsys.readouterr().out

    def test_galileo_model_file(self, tmp_path, capsys):
        model = tmp_path / "fps.dft"
        model.write_text(to_galileo(fire_protection_system()), encoding="utf-8")
        assert main(["analyze", str(model), "--quiet"]) == 0
        assert "x1, x2" in capsys.readouterr().out

    def test_report_and_dot_outputs(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        dot = tmp_path / "tree.dot"
        code = main(
            ["analyze", "--builtin", "fps", "--quiet", "-o", str(report), "--dot", str(dot)]
        )
        assert code == 0
        document = json.loads(report.read_text(encoding="utf-8"))
        assert document["solution"]["mpmcs"] == ["x1", "x2"]
        assert "digraph" in dot.read_text(encoding="utf-8")

    def test_top_k_listing(self, capsys):
        assert main(["analyze", "--builtin", "fps", "--quiet", "--top-k", "3"]) == 0
        output = capsys.readouterr().out
        assert "#1: {x1, x2}" in output
        assert "#3:" in output

    def test_ascii_tree_shown_by_default(self, capsys):
        assert main(["analyze", "--builtin", "fps"]) == 0
        assert "fps_failure" in capsys.readouterr().out

    def test_missing_model_is_an_error(self, capsys):
        assert main(["analyze"]) == 1
        assert "error" in capsys.readouterr().err

    def test_sequential_mode(self, capsys):
        assert main(["analyze", "--builtin", "fps", "--quiet", "--mode", "sequential"]) == 0

    @pytest.mark.parametrize("backend", ["maxsat", "mocus", "bdd", "brute-force"])
    def test_explicit_backend(self, capsys, backend):
        assert main(["analyze", "--builtin", "fps", "--quiet", "--backend", backend]) == 0
        output = capsys.readouterr().out
        assert "MPMCS      : {x1, x2}" in output
        assert "0.02" in output

    def test_unknown_backend_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "--builtin", "fps", "--backend", "nope"])


class TestBackendsCommand:
    def test_registry_listing(self, capsys):
        assert main(["backends"]) == 0
        output = capsys.readouterr().out
        for name in ("maxsat", "mocus", "bdd", "brute-force", "monte-carlo"):
            assert name in output
        assert "mpmcs" in output


class TestOtherCommands:
    def test_weights_command_prints_table_one(self, capsys):
        assert main(["weights", "--builtin", "fps"]) == 0
        output = capsys.readouterr().out
        assert "1.60944" in output
        assert "6.21461" in output

    def test_show_command(self, capsys):
        assert main(["show", "--builtin", "pressure-tank"]) == 0
        assert "tank_rupture" in capsys.readouterr().out

    def test_generate_to_stdout(self, capsys):
        assert main(["generate", "--events", "12", "--seed", "4"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert len(document["events"]) == 12

    def test_generate_galileo_to_file(self, tmp_path, capsys):
        out = tmp_path / "random.dft"
        code = main(
            ["generate", "--events", "15", "--seed", "2", "--out-format", "galileo", "-o", str(out)]
        )
        assert code == 0
        assert "toplevel" in out.read_text(encoding="utf-8")

    def test_generated_file_can_be_analyzed(self, tmp_path, capsys):
        out = tmp_path / "random.json"
        assert main(["generate", "--events", "30", "--seed", "8", "-o", str(out)]) == 0
        assert main(["analyze", str(out), "--quiet"]) == 0
        assert "MPMCS" in capsys.readouterr().out


class TestParser:
    def test_parser_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_builtin_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "--builtin", "not-a-tree"])
