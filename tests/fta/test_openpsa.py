"""Unit tests for the Open-PSA MEF parser/writer."""

import pytest
from hypothesis import given, settings

from repro.exceptions import ParseError
from repro.fta.gates import GateType
from repro.fta.parsers.openpsa import parse_openpsa, parse_openpsa_file, to_openpsa

from tests.conftest import small_random_trees

FPS_OPENPSA = """<?xml version="1.0"?>
<opsa-mef>
  <define-fault-tree name="fps">
    <define-gate name="top">
      <or> <gate name="detection"/> <gate name="suppression"/> </or>
    </define-gate>
    <define-gate name="detection">
      <and> <basic-event name="x1"/> <basic-event name="x2"/> </and>
    </define-gate>
    <define-gate name="suppression">
      <or> <basic-event name="x3"/> <basic-event name="x4"/> <gate name="trigger"/> </or>
    </define-gate>
    <define-gate name="trigger">
      <and> <basic-event name="x5"/> <gate name="remote"/> </and>
    </define-gate>
    <define-gate name="remote">
      <or> <basic-event name="x6"/> <basic-event name="x7"/> </or>
    </define-gate>
  </define-fault-tree>
  <model-data>
    <define-basic-event name="x1"> <float value="0.2"/> </define-basic-event>
    <define-basic-event name="x2"> <float value="0.1"/> </define-basic-event>
    <define-basic-event name="x3"> <float value="0.001"/> </define-basic-event>
    <define-basic-event name="x4"> <float value="0.002"/> </define-basic-event>
    <define-basic-event name="x5"> <float value="0.05"/> </define-basic-event>
    <define-basic-event name="x6"> <float value="0.1"/> </define-basic-event>
    <define-basic-event name="x7"> <float value="0.05"/> </define-basic-event>
  </model-data>
</opsa-mef>
"""


class TestParsing:
    def test_fps_document(self):
        tree = parse_openpsa(FPS_OPENPSA)
        assert tree.name == "fps"
        assert tree.top_event == "top"
        assert tree.num_events == 7
        assert tree.num_gates == 5
        assert tree.probability("x1") == 0.2
        assert tree.gates["detection"].gate_type is GateType.AND

    def test_parsed_tree_reproduces_paper_result(self):
        from repro.core.pipeline import MPMCSSolver
        from repro.maxsat import RC2Engine

        tree = parse_openpsa(FPS_OPENPSA)
        result = MPMCSSolver(single_engine=RC2Engine()).solve(tree)
        assert result.events == ("x1", "x2")
        assert result.probability == pytest.approx(0.02)

    def test_voting_gate_with_min(self):
        text = """<opsa-mef>
          <define-fault-tree name="vote">
            <define-gate name="top">
              <atleast min="2">
                <basic-event name="a"/> <basic-event name="b"/> <basic-event name="c"/>
              </atleast>
            </define-gate>
          </define-fault-tree>
          <model-data>
            <define-basic-event name="a"><float value="0.1"/></define-basic-event>
            <define-basic-event name="b"><float value="0.1"/></define-basic-event>
            <define-basic-event name="c"><float value="0.1"/></define-basic-event>
          </model-data>
        </opsa-mef>"""
        tree = parse_openpsa(text)
        assert tree.gates["top"].gate_type is GateType.VOTING
        assert tree.gates["top"].k == 2

    def test_events_defined_inside_fault_tree(self):
        text = """<opsa-mef>
          <define-fault-tree name="t">
            <define-gate name="top"><or><basic-event name="a"/></or></define-gate>
            <define-basic-event name="a"><float value="0.4"/></define-basic-event>
          </define-fault-tree>
        </opsa-mef>"""
        assert parse_openpsa(text).probability("a") == 0.4

    def test_file_parsing(self, tmp_path):
        path = tmp_path / "fps.xml"
        path.write_text(FPS_OPENPSA, encoding="utf-8")
        assert parse_openpsa_file(path).num_events == 7


class TestErrors:
    def test_invalid_xml(self):
        with pytest.raises(ParseError, match="invalid XML"):
            parse_openpsa("<opsa-mef><broken")

    def test_wrong_root_element(self):
        with pytest.raises(ParseError, match="opsa-mef"):
            parse_openpsa("<something/>")

    def test_missing_fault_tree(self):
        with pytest.raises(ParseError, match="define-fault-tree"):
            parse_openpsa("<opsa-mef><model-data/></opsa-mef>")

    def test_unsupported_connective(self):
        text = """<opsa-mef><define-fault-tree name="t">
          <define-gate name="top"><not><basic-event name="a"/></not></define-gate>
          <define-basic-event name="a"><float value="0.1"/></define-basic-event>
        </define-fault-tree></opsa-mef>"""
        with pytest.raises(ParseError, match="not supported"):
            parse_openpsa(text)

    def test_atleast_requires_min(self):
        text = """<opsa-mef><define-fault-tree name="t">
          <define-gate name="top"><atleast>
            <basic-event name="a"/><basic-event name="b"/>
          </atleast></define-gate>
          <define-basic-event name="a"><float value="0.1"/></define-basic-event>
          <define-basic-event name="b"><float value="0.1"/></define-basic-event>
        </define-fault-tree></opsa-mef>"""
        with pytest.raises(ParseError, match="min"):
            parse_openpsa(text)

    def test_missing_probability(self):
        text = """<opsa-mef><define-fault-tree name="t">
          <define-gate name="top"><or><basic-event name="a"/></or></define-gate>
        </define-fault-tree></opsa-mef>"""
        with pytest.raises(ParseError, match="probability"):
            parse_openpsa(text)

    def test_ambiguous_top_event(self):
        text = """<opsa-mef><define-fault-tree name="t">
          <define-gate name="g1"><or><basic-event name="a"/></or></define-gate>
          <define-gate name="g2"><or><basic-event name="a"/></or></define-gate>
          <define-basic-event name="a"><float value="0.1"/></define-basic-event>
        </define-fault-tree></opsa-mef>"""
        with pytest.raises(ParseError, match="top event"):
            parse_openpsa(text)


class TestRoundTrip:
    def test_library_tree_round_trip(self, any_library_tree):
        parsed = parse_openpsa(to_openpsa(any_library_tree))
        assert parsed.top_event == any_library_tree.top_event
        assert parsed.probabilities() == any_library_tree.probabilities()
        for name, gate in any_library_tree.gates.items():
            assert parsed.gates[name].children == gate.children
            assert parsed.gates[name].gate_type == gate.gate_type
            assert parsed.gates[name].k == gate.k

    @settings(max_examples=20, deadline=None)
    @given(small_random_trees(min_events=4, max_events=10))
    def test_random_tree_round_trip(self, tree):
        parsed = parse_openpsa(to_openpsa(tree))
        assert parsed.probabilities() == tree.probabilities()
        assert parsed.top_event == tree.top_event
