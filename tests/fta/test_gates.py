"""Unit tests for fault-tree gates."""

import pytest

from repro.exceptions import FaultTreeError
from repro.fta.gates import Gate, GateType


class TestGateType:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("and", GateType.AND),
            ("AND", GateType.AND),
            ("or", GateType.OR),
            ("voting", GateType.VOTING),
            ("vot", GateType.VOTING),
            ("k-of-n", GateType.VOTING),
            (" atleast ", GateType.VOTING),
        ],
    )
    def test_from_string(self, text, expected):
        assert GateType.from_string(text) is expected

    def test_unknown_type_rejected(self):
        with pytest.raises(FaultTreeError):
            GateType.from_string("nand")


class TestGate:
    def test_and_gate(self):
        gate = Gate("g", GateType.AND, ("a", "b"))
        assert gate.arity == 2
        assert "AND" in gate.describe()

    def test_voting_gate_requires_k(self):
        with pytest.raises(FaultTreeError):
            Gate("g", GateType.VOTING, ("a", "b", "c"))

    def test_voting_gate_valid_k(self):
        gate = Gate("g", GateType.VOTING, ("a", "b", "c"), k=2)
        assert gate.k == 2
        assert "2-of-3" in gate.describe()

    @pytest.mark.parametrize("k", [0, 4, -1, 1.5])
    def test_voting_gate_invalid_k(self, k):
        with pytest.raises(FaultTreeError):
            Gate("g", GateType.VOTING, ("a", "b", "c"), k=k)

    def test_and_or_gates_must_not_define_k(self):
        with pytest.raises(FaultTreeError):
            Gate("g", GateType.AND, ("a", "b"), k=1)

    def test_no_children_rejected(self):
        with pytest.raises(FaultTreeError):
            Gate("g", GateType.OR, ())

    def test_duplicate_children_rejected(self):
        with pytest.raises(FaultTreeError):
            Gate("g", GateType.OR, ("a", "a"))

    def test_self_loop_rejected(self):
        with pytest.raises(FaultTreeError):
            Gate("g", GateType.OR, ("g", "a"))

    def test_empty_name_rejected(self):
        with pytest.raises(FaultTreeError):
            Gate("", GateType.OR, ("a",))

    def test_invalid_gate_type_rejected(self):
        with pytest.raises(FaultTreeError):
            Gate("g", "or", ("a",))  # type: ignore[arg-type]
