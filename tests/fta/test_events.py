"""Unit tests for basic events."""

import math

import pytest

from repro.exceptions import ProbabilityError
from repro.fta.events import BasicEvent


class TestBasicEvent:
    def test_valid_event(self):
        event = BasicEvent("x1", 0.2, description="sensor fails")
        assert event.name == "x1"
        assert event.probability == 0.2
        assert event.description == "sensor fails"

    def test_log_weight_matches_paper_table(self):
        # Table I: p(x1) = 0.2 -> w1 = 1.60944
        assert BasicEvent("x1", 0.2).log_weight == pytest.approx(1.60944, abs=1e-5)
        assert BasicEvent("x3", 0.001).log_weight == pytest.approx(6.90776, abs=1e-5)

    def test_probability_one_allowed(self):
        assert BasicEvent("certain", 1.0).log_weight == pytest.approx(0.0)

    @pytest.mark.parametrize("probability", [0.0, -0.1, 1.5, float("nan"), float("inf")])
    def test_invalid_probability_rejected(self, probability):
        with pytest.raises(ProbabilityError):
            BasicEvent("x", probability)

    def test_non_numeric_probability_rejected(self):
        with pytest.raises(ProbabilityError):
            BasicEvent("x", "0.5")  # type: ignore[arg-type]
        with pytest.raises(ProbabilityError):
            BasicEvent("x", True)  # type: ignore[arg-type]

    def test_empty_name_rejected(self):
        with pytest.raises(ProbabilityError):
            BasicEvent("", 0.5)

    def test_with_probability_returns_new_event(self):
        original = BasicEvent("x", 0.5, description="d")
        changed = original.with_probability(0.25)
        assert changed.probability == 0.25
        assert changed.name == "x"
        assert changed.description == "d"
        assert original.probability == 0.5

    def test_events_are_hashable_and_comparable(self):
        assert BasicEvent("x", 0.5) == BasicEvent("x", 0.5)
        assert BasicEvent("x", 0.5) != BasicEvent("x", 0.6)
        assert len({BasicEvent("x", 0.5), BasicEvent("x", 0.5)}) == 1
