"""Unit and property tests for fault tree -> Boolean formula conversion."""

from hypothesis import given, settings

from repro.fta.formula import structure_function, success_function
from repro.logic.formula import And, AtLeast, Or, Var

from tests.conftest import all_assignments, small_random_trees
from repro.workloads.library import fire_protection_system, redundant_power_supply


class TestStructureFunction:
    def test_fps_structure_matches_paper_equation(self, fps_tree):
        """f(t) = (x1 & x2) | (x3 | x4 | (x5 & (x6 | x7)))  (Section II)."""
        formula = structure_function(fps_tree)
        expected_vars = {f"x{i}" for i in range(1, 8)}
        assert formula.variables() == expected_vars
        # Spot-check the equation on characteristic assignments.
        base = {name: False for name in expected_vars}
        assert formula.evaluate({**base, "x1": True, "x2": True}) is True
        assert formula.evaluate({**base, "x1": True}) is False
        assert formula.evaluate({**base, "x3": True}) is True
        assert formula.evaluate({**base, "x5": True, "x7": True}) is True
        assert formula.evaluate({**base, "x5": True}) is False

    def test_voting_gate_produces_atleast_node(self):
        formula = structure_function(redundant_power_supply())
        assert any(isinstance(node, AtLeast) for node in formula.iter_nodes())

    def test_shared_subtrees_share_formula_objects(self, shared_events_tree):
        formula = structure_function(shared_events_tree)
        # The shared events appear as identical Var nodes (hash-equal).
        names = [node.name for node in formula.iter_nodes() if isinstance(node, Var)]
        assert names.count("control_circuit") >= 2

    @settings(max_examples=25, deadline=None)
    @given(small_random_trees(min_events=4, max_events=7))
    def test_structure_function_matches_tree_evaluation(self, tree):
        formula = structure_function(tree)
        events = sorted(tree.events_reachable_from_top())
        for assignment in all_assignments(events):
            assert formula.evaluate(assignment) == tree.evaluate(assignment)


class TestSuccessFunction:
    def test_success_is_complement(self, fps_tree):
        failure = structure_function(fps_tree)
        success = success_function(fps_tree)
        events = sorted(fps_tree.events_reachable_from_top())
        for assignment in all_assignments(events):
            assert success.evaluate(assignment) == (not failure.evaluate(assignment))

    @settings(max_examples=15, deadline=None)
    @given(small_random_trees(min_events=4, max_events=6))
    def test_success_complement_property(self, tree):
        failure = structure_function(tree)
        success = success_function(tree)
        events = sorted(tree.events_reachable_from_top())
        for assignment in all_assignments(events):
            assert success.evaluate(assignment) == (not failure.evaluate(assignment))
