"""Monte Carlo DFT simulation validated against analytic and CTMC results."""

import math

import pytest

from repro.numerics import HAVE_NUMPY

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="requires numpy (absent or disabled via REPRO_NO_NUMPY=1)"
)

from repro.bdd.probability import top_event_probability
from repro.exceptions import AnalysisError
from repro.fta.dynamic import DynamicFaultTree
from repro.fta.simulation import simulate_dft
from repro.markov.chain import ContinuousTimeMarkovChain

SAMPLES = 20_000


def tolerance(result, extra=0.0):
    """Five standard errors plus an optional analytic slack."""
    return 5.0 * result.std_error + extra + 1e-3


class TestStaticGatesViaSimulation:
    def test_or_of_two_events(self):
        dft = DynamicFaultTree("or2", top_event="top")
        dft.add_event("a", 1e-3)
        dft.add_event("b", 2e-3)
        dft.add_gate("top", "or", ["a", "b"])
        t = 400.0
        result = simulate_dft(dft, t, num_samples=SAMPLES, seed=1)
        expected = 1.0 - math.exp(-(1e-3 + 2e-3) * t)
        assert result.unreliability == pytest.approx(expected, abs=tolerance(result))

    def test_and_of_two_events(self):
        dft = DynamicFaultTree("and2", top_event="top")
        dft.add_event("a", 1e-3)
        dft.add_event("b", 2e-3)
        dft.add_gate("top", "and", ["a", "b"])
        t = 800.0
        result = simulate_dft(dft, t, num_samples=SAMPLES, seed=2)
        expected = (1.0 - math.exp(-1e-3 * t)) * (1.0 - math.exp(-2e-3 * t))
        assert result.unreliability == pytest.approx(expected, abs=tolerance(result))

    def test_two_of_three_voting(self):
        rate = 1e-3
        dft = DynamicFaultTree("vot", top_event="top")
        for name in ("a", "b", "c"):
            dft.add_event(name, rate)
        dft.add_gate("top", "voting", ["a", "b", "c"], k=2)
        t = 700.0
        result = simulate_dft(dft, t, num_samples=SAMPLES, seed=3)
        p = 1.0 - math.exp(-rate * t)
        expected = 3 * p**2 * (1 - p) + p**3
        assert result.unreliability == pytest.approx(expected, abs=tolerance(result))


class TestPriorityAnd:
    def test_pand_matches_ctmc(self):
        rate_a, rate_b = 1e-3, 1.5e-3
        t = 900.0
        dft = DynamicFaultTree("pand", top_event="g")
        dft.add_event("a", rate_a)
        dft.add_event("b", rate_b)
        dft.add_dynamic_gate("g", "pand", ["a", "b"])
        result = simulate_dft(dft, t, num_samples=SAMPLES, seed=4)

        chain = ContinuousTimeMarkovChain("none")
        chain.add_transition("none", "a-first", rate_a)
        chain.add_transition("none", "b-first", rate_b)
        chain.add_transition("a-first", "failed", rate_b)   # correct order
        chain.add_transition("b-first", "out-of-order", rate_a)
        expected = chain.probability_in(["failed"], t)
        assert result.unreliability == pytest.approx(expected, abs=tolerance(result))

    def test_pand_is_below_plain_and(self):
        dft = DynamicFaultTree("pand", top_event="g")
        dft.add_event("a", 1e-3)
        dft.add_event("b", 1e-3)
        dft.add_dynamic_gate("g", "pand", ["a", "b"])
        t = 1200.0
        simulated = simulate_dft(dft, t, num_samples=SAMPLES, seed=5)
        static = dft.to_static_tree(t)
        conservative = top_event_probability(static)
        assert simulated.unreliability <= conservative + 1e-9


class TestSpares:
    def test_cold_spare_is_erlang_two(self):
        rate = 1e-3
        t = 1500.0
        dft = DynamicFaultTree("cold", top_event="sp")
        dft.add_event("primary", rate)
        dft.add_event("backup", rate)
        dft.add_dynamic_gate("sp", "spare", ["primary", "backup"], dormancy=0.0)
        result = simulate_dft(dft, t, num_samples=SAMPLES, seed=6)
        expected = 1.0 - math.exp(-rate * t) * (1.0 + rate * t)
        assert result.unreliability == pytest.approx(expected, abs=tolerance(result))

    def test_hot_spare_equals_parallel_and(self):
        rate_p, rate_s = 1e-3, 2e-3
        t = 1000.0
        dft = DynamicFaultTree("hot", top_event="sp")
        dft.add_event("primary", rate_p)
        dft.add_event("backup", rate_s)
        dft.add_dynamic_gate("sp", "spare", ["primary", "backup"], dormancy=1.0)
        result = simulate_dft(dft, t, num_samples=SAMPLES, seed=7)
        expected = (1.0 - math.exp(-rate_p * t)) * (1.0 - math.exp(-rate_s * t))
        assert result.unreliability == pytest.approx(expected, abs=tolerance(result))

    def test_warm_spare_between_cold_and_hot(self):
        rate = 1e-3
        t = 1500.0

        def build(dormancy):
            dft = DynamicFaultTree(f"warm-{dormancy}", top_event="sp")
            dft.add_event("primary", rate)
            dft.add_event("backup", rate)
            dft.add_dynamic_gate("sp", "spare", ["primary", "backup"], dormancy=dormancy)
            return simulate_dft(dft, t, num_samples=SAMPLES, seed=8).unreliability

        cold, warm, hot = build(0.0), build(0.5), build(1.0)
        assert cold <= warm + 0.01
        assert warm <= hot + 0.01


class TestFunctionalDependency:
    def test_fdep_matches_static_probability(self):
        # With only static gates downstream, the FDEP semantics coincide with
        # the OR-rewiring of the static approximation, so the BDD value of the
        # static tree is the exact answer.
        dft = DynamicFaultTree("fdep", top_event="top")
        dft.add_event("power", 1e-3)
        dft.add_event("m1", 2e-3)
        dft.add_event("m2", 3e-3)
        dft.add_gate("top", "and", ["m1", "m2"])
        dft.add_dynamic_gate("fd", "fdep", ["power", "m1", "m2"])
        t = 300.0
        result = simulate_dft(dft, t, num_samples=SAMPLES, seed=9)
        expected = top_event_probability(dft.to_static_tree(t))
        assert result.unreliability == pytest.approx(expected, abs=tolerance(result))

    def test_cascading_fdep(self):
        # trigger -> a, and a -> b: when the trigger fails, both a and b fail.
        dft = DynamicFaultTree("cascade", top_event="top")
        dft.add_event("trigger", 1e-3)
        dft.add_event("a", 1e-4)
        dft.add_event("b", 1e-4)
        dft.add_gate("top", "and", ["a", "b"])
        dft.add_dynamic_gate("fd1", "fdep", ["trigger", "a"])
        dft.add_dynamic_gate("fd2", "fdep", ["a", "b"])
        t = 500.0
        result = simulate_dft(dft, t, num_samples=SAMPLES, seed=10)
        # The dominant scenario is the trigger failing (which takes a and b
        # down with it), so the unreliability must be at least P(trigger).
        assert result.unreliability >= (1.0 - math.exp(-1e-3 * t)) - tolerance(result)


class TestResultAndValidation:
    def test_result_fields_and_dict(self):
        dft = DynamicFaultTree("or2", top_event="top")
        dft.add_event("a", 1e-3)
        dft.add_event("b", 2e-3)
        dft.add_gate("top", "or", ["a", "b"])
        result = simulate_dft(dft, 100.0, num_samples=500, seed=11)
        assert result.num_samples == 500
        assert 0.0 <= result.unreliability <= 1.0
        low, high = result.confidence_interval
        assert low <= result.unreliability <= high
        payload = result.to_dict()
        assert payload["samples"] == 500
        assert payload["tree"] == "or2"

    def test_validation(self):
        dft = DynamicFaultTree("or2", top_event="top")
        dft.add_event("a", 1e-3)
        dft.add_event("b", 2e-3)
        dft.add_gate("top", "or", ["a", "b"])
        with pytest.raises(AnalysisError):
            simulate_dft(dft, 0.0)
        with pytest.raises(AnalysisError):
            simulate_dft(dft, 100.0, num_samples=0)

    def test_reproducible_from_seed(self):
        dft = DynamicFaultTree("or2", top_event="top")
        dft.add_event("a", 1e-3)
        dft.add_event("b", 2e-3)
        dft.add_gate("top", "or", ["a", "b"])
        first = simulate_dft(dft, 200.0, num_samples=2000, seed=42)
        second = simulate_dft(dft, 200.0, num_samples=2000, seed=42)
        assert first.unreliability == second.unreliability
