"""Unit tests for the Galileo (.dft) parser."""

import math

import pytest

from repro.exceptions import ParseError
from repro.fta.gates import GateType
from repro.fta.parsers.galileo import parse_galileo, parse_galileo_file
from repro.fta.serializers import to_galileo

FPS_GALILEO = """
// Fire protection system (paper Fig. 1)
toplevel "fps";
"fps" or "detection" "suppression";
"detection" and "x1" "x2";
"suppression" or "x3" "x4" "trigger";
"trigger" and "x5" "remote";
"remote" or "x6" "x7";
"x1" prob=0.2;
"x2" prob=0.1;
"x3" prob=0.001;
"x4" prob=0.002;
"x5" prob=0.05;
"x6" prob=0.1;
"x7" prob=0.05;
"""


class TestParsing:
    def test_fps_document(self):
        tree = parse_galileo(FPS_GALILEO, name="fps")
        assert tree.top_event == "fps"
        assert tree.num_events == 7
        assert tree.num_gates == 5
        assert tree.probability("x1") == 0.2
        assert tree.gates["detection"].gate_type is GateType.AND

    def test_voting_gate(self):
        text = """
        toplevel "t";
        "t" 2of3 "a" "b" "c";
        "a" prob=0.1; "b" prob=0.1; "c" prob=0.1;
        """
        tree = parse_galileo(text)
        gate = tree.gates["t"]
        assert gate.gate_type is GateType.VOTING
        assert gate.k == 2

    def test_voting_gate_arity_mismatch_rejected(self):
        text = 'toplevel "t"; "t" 2of3 "a" "b"; "a" prob=0.1; "b" prob=0.1;'
        with pytest.raises(ParseError, match="declares 3 inputs"):
            parse_galileo(text)

    def test_lambda_rate_converted_with_mission_time(self):
        text = 'toplevel "t"; "t" or "a"; "a" lambda=0.001;'
        tree = parse_galileo(text, mission_time=100.0)
        expected = 1.0 - math.exp(-0.001 * 100.0)
        assert tree.probability("a") == pytest.approx(expected)

    def test_unquoted_names_supported(self):
        text = "toplevel top; top and a b; a prob=0.5; b prob=0.5;"
        tree = parse_galileo(text)
        assert tree.top_event == "top"

    def test_statements_spanning_lines(self):
        text = 'toplevel "t";\n"t" and "a"\n   "b";\n"a" prob=0.1;\n"b" prob=0.2;'
        tree = parse_galileo(text)
        assert tree.gates["t"].children == ("a", "b")

    def test_comments_ignored(self):
        text = '// header\ntoplevel "t"; // trailing\n"t" or "a";\n"a" prob=0.3;'
        assert parse_galileo(text).probability("a") == 0.3


class TestErrors:
    def test_missing_toplevel(self):
        with pytest.raises(ParseError, match="toplevel"):
            parse_galileo('"t" or "a"; "a" prob=0.1;')

    def test_duplicate_toplevel(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse_galileo('toplevel "a"; toplevel "b"; "a" or "c"; "c" prob=0.1;')

    def test_dynamic_gate_rejected_with_clear_message(self):
        text = 'toplevel "t"; "t" spare "a" "b"; "a" prob=0.1; "b" prob=0.1;'
        with pytest.raises(ParseError, match="dynamic gate"):
            parse_galileo(text)

    def test_basic_event_without_probability(self):
        with pytest.raises(ParseError, match="prob"):
            parse_galileo('toplevel "t"; "t" or "a"; "a" dorm=0.5;')

    def test_unterminated_statement(self):
        with pytest.raises(ParseError, match="not terminated"):
            parse_galileo('toplevel "t"; "t" or "a"; "a" prob=0.1')

    def test_invalid_numeric_value(self):
        with pytest.raises(ParseError):
            parse_galileo('toplevel "t"; "t" or "a"; "a" prob=abc;')

    def test_invalid_mission_time(self):
        with pytest.raises(ParseError):
            parse_galileo(FPS_GALILEO, mission_time=0.0)

    def test_empty_document(self):
        with pytest.raises(ParseError):
            parse_galileo("")

    def test_missing_file(self, tmp_path):
        with pytest.raises(ParseError):
            parse_galileo_file(tmp_path / "missing.dft")


class TestRoundTrip:
    def test_serialise_then_parse(self, fps_tree):
        text = to_galileo(fps_tree)
        parsed = parse_galileo(text, name=fps_tree.name)
        assert parsed.top_event == fps_tree.top_event
        assert parsed.probabilities() == fps_tree.probabilities()
        assert set(parsed.gate_names) == set(fps_tree.gate_names)

    def test_round_trip_with_voting_gate(self, voting_tree):
        parsed = parse_galileo(to_galileo(voting_tree))
        gate = parsed.gates["feeders_majority_lost"]
        assert gate.gate_type is GateType.VOTING
        assert gate.k == 2

    def test_file_round_trip(self, tmp_path, fps_tree):
        path = tmp_path / "fps.dft"
        path.write_text(to_galileo(fps_tree), encoding="utf-8")
        parsed = parse_galileo_file(path)
        assert parsed.num_events == 7
        assert parsed.name == "fps"
