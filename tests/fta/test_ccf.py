"""Unit tests for the beta-factor common cause failure transformation."""

import pytest

from repro.analysis.bruteforce import brute_force_mpmcs
from repro.bdd.probability import top_event_probability
from repro.core.pipeline import MPMCSSolver
from repro.exceptions import FaultTreeError
from repro.fta.builder import FaultTreeBuilder
from repro.fta.ccf import CCFGroup, apply_beta_factor_model
from repro.maxsat import RC2Engine


def redundant_pump_tree():
    """Two redundant pumps in AND: without CCF the system looks very safe."""
    return (
        FaultTreeBuilder("pumps")
        .basic_event("pump_a", 0.01)
        .basic_event("pump_b", 0.01)
        .basic_event("valve", 1e-5)
        .and_gate("both_pumps", ["pump_a", "pump_b"])
        .or_gate("top", ["both_pumps", "valve"])
        .top("top")
        .build()
    )


class TestCCFGroupValidation:
    def test_valid_group(self):
        group = CCFGroup("pumps", ["pump_a", "pump_b"], 0.1)
        assert group.beta == 0.1
        assert group.members == ("pump_a", "pump_b")

    def test_needs_two_members(self):
        with pytest.raises(FaultTreeError):
            CCFGroup("g", ["only"], 0.1)

    def test_duplicate_members_rejected(self):
        with pytest.raises(FaultTreeError):
            CCFGroup("g", ["a", "a"], 0.1)

    @pytest.mark.parametrize("beta", [0.0, 1.0, -0.1, 1.5])
    def test_beta_range(self, beta):
        with pytest.raises(FaultTreeError):
            CCFGroup("g", ["a", "b"], beta)

    def test_empty_name_rejected(self):
        with pytest.raises(FaultTreeError):
            CCFGroup("", ["a", "b"], 0.1)


class TestTransformation:
    def test_structure_of_transformed_tree(self):
        tree = redundant_pump_tree()
        transformed = apply_beta_factor_model(tree, [CCFGroup("pumps", ["pump_a", "pump_b"], 0.1)])
        transformed.validate()
        assert "ccf__pumps" in transformed.events
        assert "pump_a__indep" in transformed.events
        assert "pump_a__with_ccf" in transformed.gates
        assert transformed.probability("pump_a__indep") == pytest.approx(0.009)
        assert transformed.probability("ccf__pumps") == pytest.approx(0.001)

    def test_original_tree_is_untouched(self):
        tree = redundant_pump_tree()
        apply_beta_factor_model(tree, [CCFGroup("pumps", ["pump_a", "pump_b"], 0.1)])
        assert set(tree.events) == {"pump_a", "pump_b", "valve"}

    def test_no_groups_returns_copy(self):
        tree = redundant_pump_tree()
        copy = apply_beta_factor_model(tree, [])
        assert set(copy.events) == set(tree.events)

    def test_unknown_member_rejected(self):
        with pytest.raises(FaultTreeError, match="unknown"):
            apply_beta_factor_model(
                redundant_pump_tree(), [CCFGroup("g", ["pump_a", "ghost"], 0.1)]
            )

    def test_overlapping_groups_rejected(self):
        groups = [
            CCFGroup("g1", ["pump_a", "pump_b"], 0.1),
            CCFGroup("g2", ["pump_b", "valve"], 0.1),
        ]
        with pytest.raises(FaultTreeError, match="overlapping"):
            apply_beta_factor_model(redundant_pump_tree(), groups)

    def test_duplicate_group_names_rejected(self):
        groups = [
            CCFGroup("g", ["pump_a", "pump_b"], 0.1),
            CCFGroup("g", ["valve", "pump_a"], 0.1),
        ]
        with pytest.raises(FaultTreeError, match="duplicate"):
            apply_beta_factor_model(redundant_pump_tree(), groups)


class TestAnalysisImpact:
    def test_ccf_event_becomes_the_mpmcs(self):
        """The classic CCF insight: with β = 10%, the single common-cause event
        (p = 1e-3) dominates the independent double failure (p ≈ 8.1e-5)."""
        tree = redundant_pump_tree()
        without_ccf = MPMCSSolver(single_engine=RC2Engine()).solve(tree)
        assert without_ccf.events == ("pump_a", "pump_b")

        transformed = apply_beta_factor_model(tree, [CCFGroup("pumps", ["pump_a", "pump_b"], 0.1)])
        with_ccf = MPMCSSolver(single_engine=RC2Engine()).solve(transformed)
        assert with_ccf.events == ("ccf__pumps",)
        assert with_ccf.probability == pytest.approx(0.001)
        assert with_ccf.probability > without_ccf.probability

    def test_top_event_probability_increases_with_ccf(self):
        tree = redundant_pump_tree()
        transformed = apply_beta_factor_model(tree, [CCFGroup("pumps", ["pump_a", "pump_b"], 0.1)])
        assert top_event_probability(transformed) > top_event_probability(tree)

    def test_maxsat_matches_brute_force_on_transformed_tree(self):
        tree = redundant_pump_tree()
        transformed = apply_beta_factor_model(tree, [CCFGroup("pumps", ["pump_a", "pump_b"], 0.2)])
        expected_events, expected_probability = brute_force_mpmcs(transformed)
        result = MPMCSSolver(single_engine=RC2Engine()).solve(transformed)
        assert result.events == expected_events
        assert result.probability == pytest.approx(expected_probability)

    def test_voting_architecture_with_ccf(self):
        tree = (
            FaultTreeBuilder("2oo3")
            .basic_event("ch_a", 0.01)
            .basic_event("ch_b", 0.01)
            .basic_event("ch_c", 0.01)
            .voting_gate("top", 2, ["ch_a", "ch_b", "ch_c"])
            .top("top")
            .build()
        )
        transformed = apply_beta_factor_model(
            tree, [CCFGroup("channels", ["ch_a", "ch_b", "ch_c"], 0.05)]
        )
        result = MPMCSSolver(single_engine=RC2Engine()).solve(transformed)
        assert result.events == ("ccf__channels",)
        assert result.probability == pytest.approx(0.05 * 0.01)
