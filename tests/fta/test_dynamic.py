"""Unit tests for the dynamic fault tree model and its static approximation."""

import math

import pytest

from repro.bdd.probability import top_event_probability
from repro.core.pipeline import MPMCSSolver
from repro.exceptions import FaultTreeError, ProbabilityError
from repro.fta.dynamic import DynamicFaultTree, DynamicGate, DynamicGateType, RatedEvent
from repro.maxsat.rc2 import RC2Engine


class TestRatedEvent:
    def test_probability_at(self):
        event = RatedEvent("pump", 1e-3)
        assert event.probability_at(0.0) == 0.0
        assert event.probability_at(1000.0) == pytest.approx(1.0 - math.exp(-1.0))

    def test_validation(self):
        with pytest.raises(ProbabilityError):
            RatedEvent("", 1e-3)
        with pytest.raises(ProbabilityError):
            RatedEvent("pump", 0.0)
        with pytest.raises(ProbabilityError):
            RatedEvent("pump", float("inf"))
        with pytest.raises(ProbabilityError):
            RatedEvent("pump", 1e-3).probability_at(-1.0)


class TestDynamicGate:
    def test_from_string_aliases(self):
        assert DynamicGateType.from_string("PAND") is DynamicGateType.PAND
        assert DynamicGateType.from_string("csp") is DynamicGateType.SPARE
        assert DynamicGateType.from_string("sequence") is DynamicGateType.SEQ
        with pytest.raises(FaultTreeError):
            DynamicGateType.from_string("magic")

    def test_needs_two_children(self):
        with pytest.raises(FaultTreeError):
            DynamicGate("g", DynamicGateType.PAND, ("a",))

    def test_duplicate_children_rejected(self):
        with pytest.raises(FaultTreeError):
            DynamicGate("g", DynamicGateType.PAND, ("a", "a"))

    def test_dormancy_only_for_spares(self):
        DynamicGate("g", DynamicGateType.SPARE, ("a", "b"), dormancy=0.5)
        with pytest.raises(FaultTreeError):
            DynamicGate("g", DynamicGateType.PAND, ("a", "b"), dormancy=0.5)
        with pytest.raises(FaultTreeError):
            DynamicGate("g", DynamicGateType.SPARE, ("a", "b"), dormancy=1.5)


class TestDynamicFaultTreeValidation:
    def test_duplicate_names_rejected(self):
        dft = DynamicFaultTree("d")
        dft.add_event("a", 1e-3)
        with pytest.raises(FaultTreeError):
            dft.add_event("a", 1e-3)

    def test_undefined_child_rejected(self):
        dft = DynamicFaultTree("d", top_event="g")
        dft.add_event("a", 1e-3)
        dft.add_dynamic_gate("g", "pand", ["a", "missing"])
        with pytest.raises(FaultTreeError):
            dft.validate()

    def test_spare_children_must_be_events(self):
        dft = DynamicFaultTree("d", top_event="sp")
        dft.add_event("a", 1e-3)
        dft.add_event("b", 1e-3)
        dft.add_gate("or1", "or", ["a", "b"])
        dft.add_dynamic_gate("sp", "spare", ["or1", "b"])
        with pytest.raises(FaultTreeError):
            dft.validate()

    def test_fdep_dependents_must_be_events(self):
        dft = DynamicFaultTree("d", top_event="top")
        dft.add_event("a", 1e-3)
        dft.add_event("b", 1e-3)
        dft.add_gate("g", "and", ["a", "b"])
        dft.add_gate("top", "or", ["a", "b"])
        dft.add_dynamic_gate("f", "fdep", ["a", "g"])
        with pytest.raises(FaultTreeError):
            dft.validate()

    def test_cycle_detection(self):
        dft = DynamicFaultTree("d", top_event="g1")
        dft.add_event("a", 1e-3)
        dft.add_gate("g1", "and", ["g2", "a"])
        dft.add_gate("g2", "or", ["g1", "a"])
        with pytest.raises(FaultTreeError):
            dft.validate()

    def test_missing_top_event(self):
        dft = DynamicFaultTree("d")
        dft.add_event("a", 1e-3)
        with pytest.raises(FaultTreeError):
            dft.validate()


class TestStaticApproximation:
    def pand_tree(self):
        dft = DynamicFaultTree("pand-example", top_event="g")
        dft.add_event("a", 1e-3)
        dft.add_event("b", 2e-3)
        dft.add_dynamic_gate("g", "pand", ["a", "b"])
        return dft

    def test_pand_becomes_and(self):
        static = self.pand_tree().to_static_tree(1000.0)
        static.validate()
        gate = static.gates["g"]
        assert gate.gate_type.value == "and"
        p_a = 1.0 - math.exp(-1e-3 * 1000.0)
        p_b = 1.0 - math.exp(-2e-3 * 1000.0)
        assert top_event_probability(static) == pytest.approx(p_a * p_b)

    def test_static_tree_feeds_the_mpmcs_pipeline(self):
        static = self.pand_tree().to_static_tree(1000.0)
        result = MPMCSSolver(single_engine=RC2Engine()).solve(static)
        assert result.events == ("a", "b")

    def test_fdep_rewiring_probability(self):
        dft = DynamicFaultTree("fdep-example", top_event="top")
        dft.add_event("power", 1e-3)
        dft.add_event("m1", 2e-3)
        dft.add_event("m2", 3e-3)
        dft.add_gate("top", "and", ["m1", "m2"])
        dft.add_dynamic_gate("fd", "fdep", ["power", "m1", "m2"])
        static = dft.to_static_tree(100.0)
        static.validate()
        p_power = 1.0 - math.exp(-1e-3 * 100.0)
        p_m1 = 1.0 - math.exp(-2e-3 * 100.0)
        p_m2 = 1.0 - math.exp(-3e-3 * 100.0)
        # top = (m1 or power) and (m2 or power)
        expected = (
            p_power
            + (1.0 - p_power) * p_m1 * p_m2
        )
        assert top_event_probability(static) == pytest.approx(expected, rel=1e-9)

    def test_fdep_mpmcs_is_the_common_cause_trigger(self):
        dft = DynamicFaultTree("fdep-example", top_event="top")
        dft.add_event("power", 1e-3)
        dft.add_event("m1", 2e-3)
        dft.add_event("m2", 3e-3)
        dft.add_gate("top", "and", ["m1", "m2"])
        dft.add_dynamic_gate("fd", "fdep", ["power", "m1", "m2"])
        static = dft.to_static_tree(100.0)
        result = MPMCSSolver(single_engine=RC2Engine()).solve(static)
        assert result.events == ("power",)

    def test_spare_becomes_and(self):
        dft = DynamicFaultTree("spare-example", top_event="sp")
        dft.add_event("primary", 1e-3)
        dft.add_event("spare", 1e-3)
        dft.add_dynamic_gate("sp", "spare", ["primary", "spare"], dormancy=0.0)
        static = dft.to_static_tree(500.0)
        assert static.gates["sp"].gate_type.value == "and"

    def test_top_event_cannot_be_fdep(self):
        dft = DynamicFaultTree("d", top_event="fd")
        dft.add_event("a", 1e-3)
        dft.add_event("b", 1e-3)
        dft.add_dynamic_gate("fd", "fdep", ["a", "b"])
        with pytest.raises(FaultTreeError):
            dft.to_static_tree(100.0)

    def test_mission_time_validation(self):
        with pytest.raises(FaultTreeError):
            self.pand_tree().to_static_tree(0.0)
        with pytest.raises(FaultTreeError):
            self.pand_tree().to_static_tree(float("inf"))
