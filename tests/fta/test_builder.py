"""Unit tests for the fluent fault-tree builder."""

import pytest

from repro.exceptions import FaultTreeError
from repro.fta.builder import FaultTreeBuilder
from repro.fta.gates import GateType


class TestBuilder:
    def test_full_build(self):
        tree = (
            FaultTreeBuilder("demo")
            .basic_event("a", 0.1)
            .basic_event("b", 0.2)
            .basic_event("c", 0.3)
            .and_gate("g1", ["a", "b"])
            .or_gate("top", ["g1", "c"])
            .top("top")
            .build()
        )
        assert tree.name == "demo"
        assert tree.num_nodes == 5
        assert tree.top_event == "top"

    def test_voting_gate(self):
        tree = (
            FaultTreeBuilder()
            .basic_event("a", 0.1)
            .basic_event("b", 0.1)
            .basic_event("c", 0.1)
            .voting_gate("v", 2, ["a", "b", "c"])
            .top("v")
            .build()
        )
        assert tree.gates["v"].gate_type is GateType.VOTING
        assert tree.gates["v"].k == 2

    def test_top_before_children_declared(self):
        # top-down construction: gate references children added later
        tree = (
            FaultTreeBuilder()
            .or_gate("top", ["a", "b"])
            .basic_event("a", 0.1)
            .basic_event("b", 0.2)
            .top("top")
            .build()
        )
        assert tree.num_events == 2

    def test_build_without_top_raises(self):
        builder = FaultTreeBuilder().basic_event("a", 0.1)
        with pytest.raises(FaultTreeError, match="top event"):
            builder.build()

    def test_build_validates_by_default(self):
        builder = (
            FaultTreeBuilder().basic_event("a", 0.1).or_gate("top", ["a", "ghost"]).top("top")
        )
        with pytest.raises(FaultTreeError):
            builder.build()

    def test_build_can_skip_validation(self):
        builder = (
            FaultTreeBuilder().basic_event("a", 0.1).or_gate("top", ["a", "ghost"]).top("top")
        )
        tree = builder.build(validate=False)
        assert tree.num_gates == 1

    def test_descriptions_are_stored(self):
        tree = (
            FaultTreeBuilder()
            .basic_event("a", 0.1, description="sensor")
            .or_gate("top", ["a"], description="system fails")
            .top("top")
            .build()
        )
        assert tree.events["a"].description == "sensor"
        assert tree.gates["top"].description == "system fails"
