"""Unit tests for the FaultTree container."""

import pytest

from repro.exceptions import FaultTreeError
from repro.fta.gates import GateType
from repro.fta.tree import FaultTree


def small_tree() -> FaultTree:
    tree = FaultTree("small", top_event="top")
    tree.add_basic_event("a", 0.1)
    tree.add_basic_event("b", 0.2)
    tree.add_basic_event("c", 0.3)
    tree.add_gate("g1", GateType.AND, ["a", "b"])
    tree.add_gate("top", GateType.OR, ["g1", "c"])
    return tree


class TestConstruction:
    def test_node_counts(self):
        tree = small_tree()
        assert tree.num_events == 3
        assert tree.num_gates == 2
        assert tree.num_nodes == 5

    def test_duplicate_names_rejected(self):
        tree = small_tree()
        with pytest.raises(FaultTreeError):
            tree.add_basic_event("a", 0.5)
        with pytest.raises(FaultTreeError):
            tree.add_gate("g1", GateType.OR, ["a"])
        with pytest.raises(FaultTreeError):
            tree.add_gate("a", GateType.OR, ["b"])

    def test_gate_type_as_string(self):
        tree = FaultTree("t", top_event="g")
        tree.add_basic_event("a", 0.1)
        tree.add_basic_event("b", 0.1)
        gate = tree.add_gate("g", "voting", ["a", "b"], k=1)
        assert gate.gate_type is GateType.VOTING

    def test_node_lookup(self):
        tree = small_tree()
        assert tree.node("a").probability == 0.1
        assert tree.node("g1").gate_type is GateType.AND
        with pytest.raises(FaultTreeError):
            tree.node("missing")

    def test_probability_accessors(self):
        tree = small_tree()
        assert tree.probability("b") == 0.2
        assert tree.probabilities()["c"] == 0.3
        tree.set_probability("b", 0.9)
        assert tree.probability("b") == 0.9
        with pytest.raises(FaultTreeError):
            tree.probability("g1")
        with pytest.raises(FaultTreeError):
            tree.set_probability("missing", 0.1)

    def test_empty_name_rejected(self):
        with pytest.raises(FaultTreeError):
            FaultTree("")
        with pytest.raises(FaultTreeError):
            small_tree().set_top_event("")


class TestValidation:
    def test_valid_tree_passes(self):
        small_tree().validate()

    def test_missing_top_event(self):
        tree = FaultTree("t")
        tree.add_basic_event("a", 0.1)
        with pytest.raises(FaultTreeError):
            tree.validate()
        with pytest.raises(FaultTreeError):
            _ = tree.top_event

    def test_top_event_must_exist(self):
        tree = FaultTree("t", top_event="nope")
        tree.add_basic_event("a", 0.1)
        with pytest.raises(FaultTreeError):
            tree.validate()

    def test_undefined_child_rejected(self):
        tree = FaultTree("t", top_event="g")
        tree.add_basic_event("a", 0.1)
        tree.add_gate("g", GateType.OR, ["a", "ghost"])
        with pytest.raises(FaultTreeError):
            tree.validate()

    def test_cycle_detected(self):
        tree = FaultTree("t", top_event="g1")
        tree.add_basic_event("a", 0.1)
        tree.add_gate("g1", GateType.OR, ["g2", "a"])
        tree.add_gate("g2", GateType.OR, ["g1", "a"])
        with pytest.raises(FaultTreeError, match="cycle"):
            tree.validate()

    def test_unreachable_nodes_rejected(self):
        tree = small_tree()
        tree.add_basic_event("orphan", 0.5)
        with pytest.raises(FaultTreeError, match="reachable"):
            tree.validate()

    def test_tree_without_events_rejected(self):
        tree = FaultTree("t", top_event="g")
        with pytest.raises(FaultTreeError):
            tree.validate()

    def test_event_as_top_event_is_allowed(self):
        tree = FaultTree("t", top_event="a")
        tree.add_basic_event("a", 0.1)
        tree.validate()
        assert tree.evaluate({"a": True}) is True


class TestTraversal:
    def test_topological_order_children_first(self):
        tree = small_tree()
        order = tree.topological_order()
        assert order.index("a") < order.index("g1")
        assert order.index("b") < order.index("g1")
        assert order.index("g1") < order.index("top")
        assert order[-1] == "top"

    def test_reachable_from_top(self):
        tree = small_tree()
        assert set(tree.reachable_from("top")) == {"top", "g1", "a", "b", "c"}
        assert set(tree.events_reachable_from_top()) == {"a", "b", "c"}

    def test_depth(self):
        assert small_tree().depth() == 3

    def test_statistics(self):
        stats = small_tree().statistics()
        assert stats["num_nodes"] == 5
        assert stats["num_and_gates"] == 1
        assert stats["num_or_gates"] == 1
        assert stats["depth"] == 3


class TestSemantics:
    def test_evaluate_or_of_and(self):
        tree = small_tree()
        assert tree.evaluate({"c": True}) is True
        assert tree.evaluate({"a": True, "b": True}) is True
        assert tree.evaluate({"a": True}) is False
        assert tree.evaluate({}) is False

    def test_is_cut_set(self):
        tree = small_tree()
        assert tree.is_cut_set(["c"])
        assert tree.is_cut_set(["a", "b"])
        assert tree.is_cut_set(["a", "b", "c"])
        assert not tree.is_cut_set(["a"])

    def test_is_minimal_cut_set(self):
        tree = small_tree()
        assert tree.is_minimal_cut_set(["a", "b"])
        assert tree.is_minimal_cut_set(["c"])
        assert not tree.is_minimal_cut_set(["a", "b", "c"])
        assert not tree.is_minimal_cut_set(["a"])

    def test_voting_gate_semantics(self):
        tree = FaultTree("vote", top_event="v")
        for name in ("a", "b", "c"):
            tree.add_basic_event(name, 0.1)
        tree.add_gate("v", GateType.VOTING, ["a", "b", "c"], k=2)
        assert tree.evaluate({"a": True, "b": True}) is True
        assert tree.evaluate({"a": True}) is False

    def test_copy_is_equivalent_but_independent(self):
        tree = small_tree()
        clone = tree.copy(name="clone")
        assert clone.name == "clone"
        assert clone.evaluate({"c": True}) is True
        clone.add_basic_event("extra", 0.5)
        assert tree.num_events == 3
        assert clone.num_events == 4


class TestSharedSubtrees:
    def test_dag_with_shared_events_validates_and_evaluates(self):
        tree = FaultTree("dag", top_event="top")
        tree.add_basic_event("shared", 0.01)
        tree.add_basic_event("m1", 0.1)
        tree.add_basic_event("m2", 0.1)
        tree.add_gate("g1", GateType.OR, ["shared", "m1"])
        tree.add_gate("g2", GateType.OR, ["shared", "m2"])
        tree.add_gate("top", GateType.AND, ["g1", "g2"])
        tree.validate()
        assert tree.evaluate({"shared": True}) is True
        assert tree.evaluate({"m1": True}) is False
        assert tree.is_minimal_cut_set(["shared"])
        assert tree.is_minimal_cut_set(["m1", "m2"])
