"""Unit and property tests for the JSON fault-tree format."""

import json

import pytest
from hypothesis import given, settings

from repro.exceptions import ParseError
from repro.fta.gates import GateType
from repro.fta.parsers.json_format import parse_json, parse_json_document, parse_json_file
from repro.fta.serializers import to_json, to_json_document

from tests.conftest import small_random_trees

VALID_DOCUMENT = {
    "name": "demo",
    "top": "top",
    "events": [
        {"name": "a", "probability": 0.1, "description": "event a"},
        {"name": "b", "probability": 0.2},
    ],
    "gates": [{"name": "top", "type": "and", "children": ["a", "b"]}],
}


class TestParsing:
    def test_valid_document(self):
        tree = parse_json_document(VALID_DOCUMENT)
        assert tree.name == "demo"
        assert tree.top_event == "top"
        assert tree.probability("a") == 0.1
        assert tree.events["a"].description == "event a"

    def test_parse_json_text(self):
        tree = parse_json(json.dumps(VALID_DOCUMENT))
        assert tree.num_events == 2

    def test_prob_alias_accepted(self):
        document = {
            "top": "a",
            "events": [{"name": "a", "prob": 0.5}],
            "gates": [],
        }
        assert parse_json_document(document).probability("a") == 0.5

    def test_voting_gate_with_k(self):
        document = {
            "top": "v",
            "events": [{"name": n, "probability": 0.1} for n in "abc"],
            "gates": [{"name": "v", "type": "voting", "k": 2, "children": ["a", "b", "c"]}],
        }
        tree = parse_json_document(document)
        assert tree.gates["v"].gate_type is GateType.VOTING
        assert tree.gates["v"].k == 2

    def test_file_parsing(self, tmp_path):
        path = tmp_path / "tree.json"
        path.write_text(json.dumps(VALID_DOCUMENT), encoding="utf-8")
        tree = parse_json_file(path)
        assert tree.num_gates == 1


class TestErrors:
    def test_invalid_json_text(self):
        with pytest.raises(ParseError, match="invalid JSON"):
            parse_json("{not json")

    def test_non_object_document(self):
        with pytest.raises(ParseError):
            parse_json_document(["a", "b"])  # type: ignore[arg-type]

    def test_missing_events(self):
        with pytest.raises(ParseError, match="events"):
            parse_json_document({"top": "a", "gates": []})

    def test_event_missing_probability(self):
        document = {"top": "a", "events": [{"name": "a"}], "gates": []}
        with pytest.raises(ParseError):
            parse_json_document(document)

    def test_invalid_probability_value(self):
        document = {"top": "a", "events": [{"name": "a", "probability": 2.0}], "gates": []}
        with pytest.raises(ParseError):
            parse_json_document(document)

    def test_gate_without_children(self):
        document = {
            "top": "g",
            "events": [{"name": "a", "probability": 0.1}],
            "gates": [{"name": "g", "type": "or", "children": []}],
        }
        with pytest.raises(ParseError):
            parse_json_document(document)

    def test_missing_top(self):
        document = {"events": [{"name": "a", "probability": 0.1}], "gates": []}
        with pytest.raises(ParseError, match="top"):
            parse_json_document(document)

    def test_structurally_invalid_tree_reported_as_parse_error(self):
        document = {
            "top": "g",
            "events": [{"name": "a", "probability": 0.1}],
            "gates": [{"name": "g", "type": "or", "children": ["ghost"]}],
        }
        with pytest.raises(ParseError, match="invalid fault tree"):
            parse_json_document(document)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ParseError):
            parse_json_file(tmp_path / "none.json")


class TestRoundTrip:
    def test_library_tree_round_trip(self, any_library_tree):
        document = to_json_document(any_library_tree)
        parsed = parse_json_document(document)
        assert parsed.top_event == any_library_tree.top_event
        assert parsed.probabilities() == any_library_tree.probabilities()
        assert set(parsed.gate_names) == set(any_library_tree.gate_names)
        for name, gate in any_library_tree.gates.items():
            assert parsed.gates[name].children == gate.children
            assert parsed.gates[name].gate_type == gate.gate_type

    def test_to_json_text_round_trip(self, fps_tree):
        parsed = parse_json(to_json(fps_tree))
        assert parsed.num_events == fps_tree.num_events

    @settings(max_examples=25, deadline=None)
    @given(small_random_trees(min_events=4, max_events=10))
    def test_random_tree_round_trip(self, tree):
        parsed = parse_json_document(to_json_document(tree))
        assert parsed.probabilities() == tree.probabilities()
        assert parsed.top_event == tree.top_event
        assert set(parsed.gate_names) == set(tree.gate_names)
