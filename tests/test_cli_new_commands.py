"""Tests for the report / uncertainty / modules / truncate / solve-wcnf CLI commands."""

import pytest

from repro.cli import main
from repro.logic.dimacs import write_wcnf
from repro.numerics import HAVE_NUMPY


class TestReportCommand:
    def test_markdown_report(self, tmp_path, capsys):
        output = tmp_path / "fps.md"
        exit_code = main(["report", "--builtin", "fps", "-o", str(output), "--top-k", "3"])
        assert exit_code == 0
        text = output.read_text(encoding="utf-8")
        assert "# MPMCS analysis" in text
        assert "{x1, x2}" in text
        assert "## Most probable minimal cut sets" in text
        assert "markdown report written" in capsys.readouterr().out

    def test_html_report(self, tmp_path, capsys):
        output = tmp_path / "fps.html"
        exit_code = main(["report", "--builtin", "fps", "-o", str(output), "--to", "html"])
        assert exit_code == 0
        text = output.read_text(encoding="utf-8")
        assert text.startswith("<!DOCTYPE html>")
        assert "<svg" in text
        assert "html report written" in capsys.readouterr().out


class TestUncertaintyCommand:
    @pytest.mark.skipif(
        not HAVE_NUMPY,
        reason="requires numpy (absent or disabled via REPRO_NO_NUMPY=1)",
    )
    def test_fps_uncertainty(self, capsys):
        exit_code = main(
            ["uncertainty", "--builtin", "fps", "--samples", "300", "--seed", "7"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "top-event probability over 300 samples" in out
        assert "P5:" in out and "P95:" in out
        assert "MPMCS identity stability" in out
        assert "uncertainty importance" in out

    def test_invalid_error_factor(self, capsys):
        exit_code = main(["uncertainty", "--builtin", "fps", "--error-factor", "0.5"])
        assert exit_code == 1
        assert "error-factor" in capsys.readouterr().err


class TestModulesCommand:
    def test_fps_modules(self, capsys):
        exit_code = main(["modules", "--builtin", "fps"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "modules        : 5" in out
        assert "detection_failure" in out

    def test_shared_event_tree_has_only_the_top_module(self, capsys):
        exit_code = main(["modules", "--builtin", "three-motor-system"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "modules        : 1" in out


class TestTruncateCommand:
    def test_fps_truncation(self, capsys):
        exit_code = main(["truncate", "--builtin", "fps", "--cutoff", "0.0024"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "3 cut sets retained" in out
        assert "x1, x2" in out

    def test_cutoff_above_everything(self, capsys):
        exit_code = main(["truncate", "--builtin", "fps", "--cutoff", "0.9"])
        assert exit_code == 0
        assert "0 cut sets retained" in capsys.readouterr().out


class TestSolveWcnfCommand:
    @pytest.fixture
    def wcnf_file(self, tmp_path):
        text = write_wcnf(
            hard=[[1, 2]],
            soft=[(2.0, [-1]), (5.0, [-2])],
            num_vars=2,
            precision=1,
        )
        path = tmp_path / "instance.wcnf"
        path.write_text(text, encoding="utf-8")
        return path

    @pytest.mark.parametrize("engine", ["rc2", "hitting-set", "binary-search", "brute-force"])
    def test_solves_with_every_engine(self, wcnf_file, capsys, engine):
        exit_code = main(["solve-wcnf", str(wcnf_file), "--engine", engine])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "status : optimum" in out
        assert "cost   : 2" in out

    def test_show_model(self, wcnf_file, capsys):
        exit_code = main(["solve-wcnf", str(wcnf_file), "--show-model"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "model  : 1 -2" in out
