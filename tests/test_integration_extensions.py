"""Cross-subsystem integration tests for the extension packages.

These tests wire several of the newer subsystems together the way the
examples do — reliability models feeding the MaxSAT pipeline, uncertainty
propagation on library trees, dynamic trees flowing through the static
approximation into top-k ranking and reporting — to catch interface drift
between packages that the per-module unit tests cannot see.
"""

import pytest

from repro.analysis.contributions import cut_set_contributions, mpmcs_dominance
from repro.analysis.modules import find_modules
from repro.analysis.mocus import mocus_minimal_cut_sets
from repro.analysis.truncation import truncated_cut_sets
from repro.core.pipeline import MPMCSSolver
from repro.core.topk import enumerate_mpmcs
from repro.fta.dynamic import DynamicFaultTree
from repro.fta.simulation import simulate_dft
from repro.maxsat import PreprocessingEngine, RC2Engine
from repro.numerics import HAVE_NUMPY
from repro.maxsat.portfolio import PortfolioSolver, default_engines
from repro.core.encoder import encode_mpmcs
from repro.reliability import (
    ExponentialFailure,
    ReliabilityAssignment,
    mpmcs_over_time,
    top_event_curve,
)
from repro.reporting.html import html_report
from repro.reporting.markdown import markdown_report
from repro.uncertainty import LognormalUncertainty, propagate_uncertainty
from repro.workloads.library import (
    data_center_power,
    emergency_shutdown_system,
    fire_protection_system,
    get_tree,
)


class TestReliabilityPipelineIntegration:
    def test_frozen_trees_flow_through_every_analysis(self):
        assignment = ReliabilityAssignment(
            fire_protection_system(),
            {"x1": ExponentialFailure(2e-4), "x2": ExponentialFailure(1e-4)},
        )
        frozen = assignment.tree_at(5000.0)
        result = MPMCSSolver(single_engine=RC2Engine()).solve(frozen)
        collection = mocus_minimal_cut_sets(frozen)
        reference_events, reference_probability = collection.most_probable()
        assert set(result.events) == set(reference_events)
        assert result.probability == pytest.approx(reference_probability, rel=1e-9)

    def test_curve_final_point_matches_direct_solve(self):
        assignment = ReliabilityAssignment(
            fire_protection_system(), {"x6": ExponentialFailure(5e-4)}
        )
        times = (10.0, 1000.0, 10000.0)
        curve = top_event_curve(assignment, times, method="exact")
        samples = mpmcs_over_time(
            assignment, times, solver=MPMCSSolver(single_engine=RC2Engine())
        )
        # The MPMCS probability can never exceed the top-event probability.
        for sample, point in zip(samples, curve.points):
            assert sample.probability <= point.value + 1e-12


class TestUncertaintyIntegration:
    pytestmark = pytest.mark.skipif(
        not HAVE_NUMPY, reason="requires numpy (absent or disabled via REPRO_NO_NUMPY=1)"
    )

    @pytest.mark.parametrize("tree_name", ["fps", "emergency-shutdown", "data-center-power"])
    def test_point_estimate_mpmcs_matches_maxsat(self, tree_name):
        tree = get_tree(tree_name)
        maxsat = MPMCSSolver(single_engine=RC2Engine()).solve(tree)
        result = propagate_uncertainty(tree, {}, num_samples=100, seed=1)
        assert result.point_estimate_mpmcs == maxsat.events

    def test_wide_uncertainty_still_brackets_the_point_estimate(self):
        tree = emergency_shutdown_system()
        spec = {
            name: LognormalUncertainty(median=probability, error_factor=5.0)
            for name, probability in tree.probabilities().items()
        }
        result = propagate_uncertainty(tree, spec, num_samples=400, seed=3)
        maxsat = MPMCSSolver(single_engine=RC2Engine()).solve(tree)
        low = result.mpmcs_probability.percentiles[5.0]
        high = result.mpmcs_probability.percentiles[95.0]
        assert low <= maxsat.probability <= high


class TestDynamicTreeIntegration:
    def build_dft(self):
        dft = DynamicFaultTree("integration-dft", top_event="top")
        dft.add_event("primary", 3e-4)
        dft.add_event("standby", 3e-4)
        dft.add_event("bus", 5e-5)
        dft.add_event("ctrl_a", 1e-4)
        dft.add_event("ctrl_b", 1e-4)
        dft.add_dynamic_gate("supply", "spare", ["primary", "standby"], dormancy=0.0)
        dft.add_dynamic_gate("dep", "fdep", ["bus", "ctrl_a", "ctrl_b"])
        dft.add_gate("control", "and", ["ctrl_a", "ctrl_b"])
        dft.add_gate("top", "or", ["supply", "control"])
        return dft

    def test_static_tree_supports_topk_modules_truncation_and_reports(self):
        dft = self.build_dft()
        static = dft.to_static_tree(2000.0)
        solver = MPMCSSolver(single_engine=RC2Engine())
        result = solver.solve(static)

        ranking = enumerate_mpmcs(static, 3, solver=solver)
        assert ranking[0].events == result.events
        assert [entry.probability for entry in ranking] == sorted(
            (entry.probability for entry in ranking), reverse=True
        )

        modules = find_modules(static)
        assert any(module.gate == static.top_event for module in modules)

        truncated = truncated_cut_sets(static, result.probability / 2.0)
        assert frozenset(result.events) in set(truncated.collection)

        markdown = markdown_report(static, result, ranking=ranking)
        assert result.events[0] in markdown
        html = html_report(static, result)
        assert "<svg" in html

    @pytest.mark.skipif(
        not HAVE_NUMPY, reason="requires numpy (absent or disabled via REPRO_NO_NUMPY=1)"
    )
    def test_simulation_bounded_by_static_contributions(self):
        dft = self.build_dft()
        static = dft.to_static_tree(2000.0)
        collection = mocus_minimal_cut_sets(static)
        dominance = mpmcs_dominance(collection)
        assert 0.0 < dominance <= 1.0
        contributions = cut_set_contributions(collection)
        assert contributions[0].cumulative_fraction == pytest.approx(dominance)

        simulated = simulate_dft(dft, 2000.0, num_samples=4000, seed=5)
        rare_event_total = sum(entry.probability for entry in contributions)
        assert simulated.unreliability <= rare_event_total + 5.0 * simulated.std_error + 1e-3


class TestPreprocessingInPortfolio:
    def test_portfolio_with_preprocessed_member_agrees(self):
        tree = data_center_power()
        encoding = encode_mpmcs(tree)
        engines = default_engines() + [PreprocessingEngine(RC2Engine())]
        portfolio = PortfolioSolver(engines, mode="sequential")
        report = portfolio.solve_with_report(encoding.instance)
        reference = RC2Engine().solve(encode_mpmcs(tree).instance)
        assert report.result.cost == reference.cost
