"""EventBuffer: ids, replay, blocking waits, close semantics, retention."""

import threading

import pytest

from repro.monitoring.events import EventBuffer


class TestIds:
    def test_ids_start_at_one_and_increase(self):
        buffer = EventBuffer()
        ids = [buffer.append("delta", {"seq": n}) for n in range(5)]
        assert ids == [1, 2, 3, 4, 5]
        assert buffer.last_id == 5

    def test_last_id_of_empty_buffer_is_zero(self):
        assert EventBuffer().last_id == 0

    def test_ids_keep_increasing_past_the_retention_window(self):
        buffer = EventBuffer(max_events=3)
        for n in range(10):
            buffer.append("delta", {"seq": n})
        assert [event.id for event in buffer.events_after(0)] == [8, 9, 10]


class TestReplay:
    def test_events_after_returns_only_missed_events(self):
        buffer = EventBuffer()
        for n in range(6):
            buffer.append("delta", {"seq": n})
        replayed = buffer.events_after(4)
        assert [event.id for event in replayed] == [5, 6]
        assert [event.data["seq"] for event in replayed] == [4, 5]

    def test_caught_up_consumer_gets_nothing(self):
        buffer = EventBuffer()
        buffer.append("delta", {})
        assert buffer.events_after(1) == []

    def test_fallen_behind_consumer_resumes_from_oldest_retained(self):
        buffer = EventBuffer(max_events=2)
        for n in range(5):
            buffer.append("delta", {"seq": n})
        assert [event.id for event in buffer.events_after(1)] == [4, 5]


class TestWaitFor:
    def test_returns_immediately_when_events_are_pending(self):
        buffer = EventBuffer()
        buffer.append("delta", {"seq": 1})
        events, closed = buffer.wait_for(0, timeout=0.01)
        assert [event.id for event in events] == [1]
        assert closed is False

    def test_times_out_empty_when_nothing_arrives(self):
        buffer = EventBuffer()
        events, closed = buffer.wait_for(0, timeout=0.01)
        assert events == [] and closed is False

    def test_wakes_on_append_from_another_thread(self):
        buffer = EventBuffer()
        threading.Timer(0.05, buffer.append, ("delta", {"seq": 1})).start()
        events, closed = buffer.wait_for(0, timeout=5.0)
        assert [event.id for event in events] == [1]
        assert closed is False

    def test_wakes_on_close_from_another_thread(self):
        buffer = EventBuffer()
        threading.Timer(0.05, buffer.close).start()
        events, closed = buffer.wait_for(0, timeout=5.0)
        assert events == [] and closed is True


class TestClose:
    def test_append_after_close_raises(self):
        buffer = EventBuffer()
        buffer.close()
        with pytest.raises(RuntimeError):
            buffer.append("delta", {})

    def test_closed_buffer_still_drains_pending_events(self):
        buffer = EventBuffer()
        buffer.append("delta", {"seq": 1})
        buffer.append("end", {})
        buffer.close()
        events, closed = buffer.wait_for(0, timeout=0.01)
        assert [event.kind for event in events] == ["delta", "end"]
        assert closed is True
        # Fully caught up: the empty list is the end-of-stream signal.
        events, closed = buffer.wait_for(2, timeout=0.01)
        assert events == [] and closed is True

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            EventBuffer(max_events=0)
