"""The webhook alert sink: delivery, retry/backoff, drop accounting, wiring."""

import json
import urllib.error

import pytest

from repro.monitoring.alerts import (
    Alert,
    AlertEngine,
    PTopThreshold,
    RuleError,
    WebhookSink,
)
from repro.observability.metrics import MetricsRegistry, get_metrics, set_metrics


@pytest.fixture(autouse=True)
def registry():
    previous = set_metrics(MetricsRegistry())
    try:
        yield get_metrics()
    finally:
        set_metrics(previous)


def _alert(seq=1):
    return Alert(
        rule="ptop_above_0.5", kind="ptop_threshold",
        message="P(top) above 0.5", seq=seq, timestamp=123.0, value=0.7,
    )


class RecordingTransport:
    """Injectable transport failing the first ``failures`` attempts."""

    def __init__(self, failures=0):
        self.failures = failures
        self.calls = []

    def __call__(self, url, payload, timeout_s):
        self.calls.append((url, payload, timeout_s))
        if len(self.calls) <= self.failures:
            raise urllib.error.URLError("connection refused")


class TestWebhookSink:
    def test_rejects_non_http_urls(self):
        with pytest.raises(RuleError, match="http\\(s\\) URL"):
            WebhookSink("ftp://example.invalid/hook")
        with pytest.raises(RuleError):
            WebhookSink("not a url")

    def test_delivers_alert_json(self, registry):
        transport = RecordingTransport()
        sink = WebhookSink("https://example.invalid/hook", transport=transport)
        assert sink.deliver(_alert()) is True
        (url, payload, timeout_s), = transport.calls
        assert url == "https://example.invalid/hook"
        assert timeout_s == pytest.approx(5.0)
        document = json.loads(payload.decode("utf-8"))
        assert document["rule"] == "ptop_above_0.5"
        assert document["value"] == 0.7
        assert registry.counter_value("repro_monitor_webhook_delivered_total") == 1
        assert registry.counter_value("repro_monitor_webhook_dropped_total") == 0

    def test_retries_with_exponential_backoff(self, registry):
        transport = RecordingTransport(failures=2)
        sleeps = []
        sink = WebhookSink(
            "http://example.invalid/hook",
            max_retries=2, backoff_s=0.25,
            transport=transport, sleep=sleeps.append,
        )
        assert sink.deliver(_alert()) is True
        assert len(transport.calls) == 3
        assert sleeps == [0.25, 0.5]
        assert registry.counter_value("repro_monitor_webhook_retries_total") == 2
        assert registry.counter_value("repro_monitor_webhook_delivered_total") == 1

    def test_exhausted_retries_drop_the_alert(self, registry):
        transport = RecordingTransport(failures=10)
        sink = WebhookSink(
            "http://example.invalid/hook",
            max_retries=1, transport=transport, sleep=lambda _s: None,
        )
        assert sink.deliver(_alert()) is False
        assert len(transport.calls) == 2
        assert registry.counter_value("repro_monitor_webhook_dropped_total") == 1
        assert registry.counter_value("repro_monitor_webhook_delivered_total") == 0

    def test_to_dict(self):
        sink = WebhookSink("https://example.invalid/hook", transport=lambda *a: None)
        document = sink.to_dict()
        assert document["sink"] == "webhook"
        assert document["url"] == "https://example.invalid/hook"


class _Delta:
    """Minimal delta for PTopThreshold.evaluate."""

    def __init__(self, ptop, seq):
        self.ptop = ptop
        self.seq = seq
        self.timestamp = 99.0


class TestEngineSinkWiring:
    def test_recorded_alerts_reach_the_sink(self):
        transport = RecordingTransport()
        sink = WebhookSink("http://example.invalid/hook", transport=transport)
        engine = AlertEngine([PTopThreshold(0.5)], sinks=[sink])
        engine.evaluate(_Delta(ptop=0.9, seq=7))
        assert len(engine.alerts) == 1
        assert len(transport.calls) == 1
        assert json.loads(transport.calls[0][1])["seq"] == 7

    def test_sink_errors_never_disturb_the_ledger(self):
        class ExplodingSink:
            def deliver(self, alert):
                raise RuntimeError("sink blew up")

        engine = AlertEngine([PTopThreshold(0.5)], sinks=[ExplodingSink()])
        engine.evaluate(_Delta(ptop=0.9, seq=3))
        assert len(engine.alerts) == 1
