"""Batched monitor updates: apply_batch must be indistinguishable from the
one-at-a-time loop, and run(batch_size=N) must drain feeds in chunks."""

import json

import pytest

from repro.monitoring import (
    MonitorError,
    ProbabilityUpdate,
    SyntheticFeed,
    TreeMonitor,
)
from repro.workloads.library import fire_protection_system


def _updates(count, seed=3):
    tree = fire_protection_system()
    return list(SyntheticFeed(tree, updates=count, seed=seed))


_VOLATILE = ("latency_s", "ts")


def _delta_documents(deltas):
    documents = []
    for delta in deltas:
        document = delta.to_dict()
        for key in _VOLATILE:
            document.pop(key, None)
        documents.append(json.dumps(document, sort_keys=True))
    return documents


class TestApplyBatch:
    def test_batch_deltas_equal_sequential_deltas(self):
        updates = _updates(20)
        sequential = TreeMonitor(fire_protection_system(), backend="maxsat")
        expected = [sequential.apply_update(update) for update in updates]
        batched = TreeMonitor(fire_protection_system(), backend="maxsat")
        actual = []
        for start in range(0, len(updates), 5):
            actual.extend(batched.apply_batch(updates[start : start + 5]))
        assert _delta_documents(actual) == _delta_documents(expected)

    def test_batch_reports_are_byte_identical(self):
        updates = _updates(8)
        sequential = TreeMonitor(
            fire_protection_system(), backend="maxsat", include_reports=True
        )
        expected = [sequential.apply_update(update) for update in updates]
        batched = TreeMonitor(
            fire_protection_system(), backend="maxsat", include_reports=True
        )
        actual = batched.apply_batch(updates)
        for left, right in zip(actual, expected):
            assert left.report is not None
            assert (
                left.report.to_canonical_dict() == right.report.to_canonical_dict()
            )

    def test_empty_batch_is_a_no_op(self):
        monitor = TreeMonitor(fire_protection_system(), backend="maxsat")
        assert monitor.apply_batch([]) == []

    def test_staged_updates_are_cumulative_within_a_batch(self):
        monitor = TreeMonitor(fire_protection_system(), backend="maxsat")
        first = ProbabilityUpdate.create({"x1": 0.5}, seq=1)
        second = ProbabilityUpdate.create({"x2": 0.2}, seq=2)
        deltas = monitor.apply_batch([first, second])
        # The second staged update sees the first one's value already applied.
        assert tuple(deltas[1].changed_events) == ("x2",)
        third = monitor.apply_update(ProbabilityUpdate.create({"x1": 0.5}, seq=3))
        assert tuple(third.changed_events) == ()  # x1 already at 0.5 from the batch


class TestRunBatchSize:
    def test_chunked_run_applies_every_update(self):
        tree = fire_protection_system()
        monitor = TreeMonitor(tree, backend="maxsat")
        applied = monitor.run(SyntheticFeed(tree, updates=11, seed=1), batch_size=4)
        assert applied == 11

    def test_chunked_run_respects_max_updates(self):
        tree = fire_protection_system()
        monitor = TreeMonitor(tree, backend="maxsat")
        applied = monitor.run(
            SyntheticFeed(tree, updates=50, seed=1), max_updates=7, batch_size=3
        )
        assert applied == 7

    def test_chunked_run_matches_unchunked_deltas(self):
        tree = fire_protection_system()
        chunked = TreeMonitor(tree, backend="maxsat")
        chunked.run(SyntheticFeed(tree, updates=9, seed=2), batch_size=4)
        plain = TreeMonitor(tree, backend="maxsat")
        plain.run(SyntheticFeed(tree, updates=9, seed=2))
        def delta_documents(monitor):
            documents = []
            for event in monitor.events.events_after(0):
                if event.kind != "delta":
                    continue
                document = dict(event.data)
                for key in _VOLATILE:
                    document.pop(key, None)
                documents.append(document)
            return documents

        assert delta_documents(chunked) == delta_documents(plain)

    def test_invalid_batch_size_raises(self):
        tree = fire_protection_system()
        monitor = TreeMonitor(tree, backend="maxsat")
        with pytest.raises(MonitorError, match="batch_size"):
            monitor.run(SyntheticFeed(tree, updates=2, seed=1), batch_size=0)
        with pytest.raises(MonitorError, match="batch_size"):
            monitor.start(SyntheticFeed(tree, updates=2, seed=1), batch_size=-1)
