"""Alert rules, hysteresis, the engine's ledger, and wire round-trips."""

import pytest

from repro.monitoring.alerts import (
    AlertEngine,
    FeedStaleness,
    MpmcsChanged,
    PTopJump,
    PTopThreshold,
    RuleError,
    load_alert_ledger,
    rule_from_dict,
    rule_to_dict,
    rules_from_spec,
)
from repro.monitoring.monitor import MonitorDelta
from repro.service.store import DiskArtifactStore


def delta(seq=1, ptop=None, previous=None, mpmcs=None, changed=False):
    return MonitorDelta(
        seq=seq,
        timestamp=float(seq),
        ptop=ptop,
        previous_ptop=previous,
        base_ptop=previous,
        mpmcs_events=mpmcs,
        mpmcs_probability=None,
        mpmcs_changed=changed,
        changed_events=(),
        latency_s=0.001,
    )


class TestPTopThreshold:
    def test_fires_once_on_entering_the_region(self):
        rule = PTopThreshold(0.5)
        assert rule.evaluate(delta(1, ptop=0.4)) is None
        assert rule.evaluate(delta(2, ptop=0.6)) is not None
        # Still above: suppressed until re-armed.
        assert rule.evaluate(delta(3, ptop=0.9)) is None

    def test_hysteresis_gates_the_rearm(self):
        rule = PTopThreshold(0.5, hysteresis=0.1)
        assert rule.evaluate(delta(1, ptop=0.6)) is not None
        # Dips below the threshold but inside the band: not re-armed.
        assert rule.evaluate(delta(2, ptop=0.45)) is None
        assert rule.evaluate(delta(3, ptop=0.55)) is None
        # Leaves the band: re-armed, next crossing fires again.
        assert rule.evaluate(delta(4, ptop=0.3)) is None
        assert rule.evaluate(delta(5, ptop=0.7)) is not None

    def test_below_direction(self):
        rule = PTopThreshold(0.01, direction="below")
        assert rule.evaluate(delta(1, ptop=0.02)) is None
        assert rule.evaluate(delta(2, ptop=0.005)) is not None
        assert rule.evaluate(delta(3, ptop=0.004)) is None

    def test_ignores_missing_ptop(self):
        rule = PTopThreshold(0.5)
        assert rule.evaluate(delta(1, ptop=None)) is None

    def test_parameter_validation(self):
        with pytest.raises(RuleError):
            PTopThreshold(1.5)
        with pytest.raises(RuleError):
            PTopThreshold(0.5, direction="sideways")
        with pytest.raises(RuleError):
            PTopThreshold(0.5, hysteresis=-0.1)


class TestMpmcsChanged:
    def test_fires_only_on_identity_change(self):
        rule = MpmcsChanged()
        assert rule.evaluate(delta(1, mpmcs=("x1", "x2"), changed=False)) is None
        message = rule.evaluate(delta(2, mpmcs=("x5", "x6"), changed=True))
        assert message is not None and "x5" in message
        assert rule.evaluate(delta(3, mpmcs=("x5", "x6"), changed=False)) is None

    def test_name_is_the_issue_wire_name(self):
        assert MpmcsChanged().name == "mpmcs_identity_changed"


class TestPTopJump:
    def test_fires_on_relative_jump(self):
        rule = PTopJump(0.5)
        assert rule.evaluate(delta(1, ptop=0.011, previous=0.01)) is None
        assert rule.evaluate(delta(2, ptop=0.02, previous=0.01)) is not None
        assert rule.evaluate(delta(3, ptop=0.004, previous=0.01)) is not None

    def test_needs_a_positive_previous(self):
        rule = PTopJump(0.5)
        assert rule.evaluate(delta(1, ptop=0.5, previous=None)) is None
        assert rule.evaluate(delta(2, ptop=0.5, previous=0.0)) is None

    def test_validation(self):
        with pytest.raises(RuleError):
            PTopJump(0.0)


class TestFeedStaleness:
    def test_fires_once_per_silence(self):
        rule = FeedStaleness(1.0)
        assert rule.check(0.5) is None
        assert rule.check(1.5) is not None
        assert rule.check(2.5) is None  # same silence: suppressed
        rule.evaluate(delta(1, ptop=0.1))  # data arrived: re-armed
        assert rule.check(1.5) is not None

    def test_validation(self):
        with pytest.raises(RuleError):
            FeedStaleness(0.0)


class TestWireFormat:
    @pytest.mark.parametrize(
        "rule",
        [
            PTopThreshold(0.25, direction="below", hysteresis=0.05),
            MpmcsChanged(),
            PTopJump(0.75),
            FeedStaleness(3.5),
        ],
    )
    def test_round_trip(self, rule):
        document = rule_to_dict(rule)
        rebuilt = rule_from_dict(document)
        assert rule_to_dict(rebuilt) == document
        assert rebuilt.name == rule.name

    def test_unknown_rule_kind_rejected(self):
        with pytest.raises(RuleError):
            rule_from_dict({"rule": "sacrificial-goat"})
        with pytest.raises(RuleError):
            rule_from_dict("ptop_threshold")

    def test_rules_from_spec(self):
        rules = rules_from_spec(
            [{"rule": "ptop_threshold", "threshold": 0.4}, {"rule": "mpmcs_changed"}]
        )
        assert [rule.kind for rule in rules] == ["ptop_threshold", "mpmcs_changed"]
        assert rules_from_spec(None) == []
        with pytest.raises(RuleError):
            rules_from_spec("not-a-list")


class TestAlertEngine:
    def test_evaluate_collects_fired_rules(self):
        engine = AlertEngine([PTopThreshold(0.5), MpmcsChanged()])
        fired = engine.evaluate(delta(3, ptop=0.7, mpmcs=("a",), changed=True))
        assert sorted(alert.kind for alert in fired) == [
            "mpmcs_changed", "ptop_threshold"
        ]
        assert all(alert.seq == 3 for alert in fired)
        assert len(engine.alerts) == 2

    def test_ledger_is_bounded(self):
        engine = AlertEngine([MpmcsChanged()], max_alerts=3)
        for seq in range(1, 8):
            engine.evaluate(delta(seq, mpmcs=("a",), changed=True))
        assert [alert.seq for alert in engine.alerts] == [5, 6, 7]

    def test_ledger_persists_to_store_and_loads_back(self, tmp_path):
        store = DiskArtifactStore(str(tmp_path))
        engine = AlertEngine(
            [MpmcsChanged()], store=store, ledger_key="monitor-abc"
        )
        engine.evaluate(delta(4, mpmcs=("x5",), changed=True))
        persisted = load_alert_ledger(store, "monitor-abc")
        assert len(persisted) == 1
        assert persisted[0]["rule"] == "mpmcs_identity_changed"
        assert persisted[0]["seq"] == 4
        assert load_alert_ledger(store, "unknown-key") == []
        assert load_alert_ledger(None, "monitor-abc") == []
