"""Feed adapters: update validation, synthetic determinism, file tailing."""

import json
import threading
import time

import pytest

from repro.monitoring.feeds import (
    FeedError,
    FileTailFeed,
    ProbabilityUpdate,
    SyntheticFeed,
    feed_from_spec,
)
from repro.scenarios.serialization import (
    SerializationError,
    update_from_dict,
    update_to_dict,
)
from repro.workloads.library import fire_protection_system


class TestProbabilityUpdate:
    def test_create_sorts_and_coerces(self):
        update = ProbabilityUpdate.create({"b": 0.5, "a": 0.25}, seq=3, source="s")
        assert update.values == (("a", 0.25), ("b", 0.5))
        assert update.as_mapping() == {"a": 0.25, "b": 0.5}

    def test_rejects_empty_and_out_of_range_values(self):
        with pytest.raises(FeedError):
            ProbabilityUpdate.create({})
        with pytest.raises(FeedError):
            ProbabilityUpdate.create({"a": 1.5})
        with pytest.raises(FeedError):
            ProbabilityUpdate.create({"a": -0.1})

    def test_wire_round_trip(self):
        update = ProbabilityUpdate.create(
            {"x1": 0.02}, timestamp=12.5, seq=7, source="sensor"
        )
        document = update.to_dict()
        assert document == {
            "values": {"x1": 0.02}, "ts": 12.5, "seq": 7, "source": "sensor"
        }
        assert ProbabilityUpdate.from_dict(document) == update

    def test_from_dict_rejects_malformed_documents(self):
        with pytest.raises(FeedError):
            ProbabilityUpdate.from_dict({"ts": 1.0})
        with pytest.raises(FeedError):
            ProbabilityUpdate.from_dict({"values": {"a": "not-a-number"}})
        with pytest.raises(FeedError):
            ProbabilityUpdate.from_dict({"values": {"a": 0.1}, "seq": "seven"})
        with pytest.raises(FeedError):
            ProbabilityUpdate.from_dict([1, 2])

    def test_serialization_facade_reraises_as_serialization_error(self):
        update = update_from_dict({"values": {"x1": 0.5}, "seq": 1})
        assert update_to_dict(update)["seq"] == 1
        with pytest.raises(SerializationError):
            update_from_dict({"values": {}})


class TestSyntheticFeed:
    def test_same_seed_same_sequence(self):
        tree = fire_protection_system()
        first = [u.values for u in SyntheticFeed(tree, updates=10, seed=3)]
        second = [u.values for u in SyntheticFeed(tree, updates=10, seed=3)]
        assert first == second and len(first) == 10

    def test_seq_counts_from_one(self):
        tree = fire_protection_system()
        updates = list(SyntheticFeed(tree, updates=4, seed=0))
        assert [u.seq for u in updates] == [1, 2, 3, 4]
        assert all(u.source == "synthetic" for u in updates)

    def test_values_stay_probabilities(self):
        tree = fire_protection_system()
        for update in SyntheticFeed(tree, updates=50, seed=1, volatility=2.0):
            for _, value in update.values:
                assert 0.0 <= value <= 1.0


class TestFileTailFeed:
    def test_reads_existing_then_appended_lines(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        path.write_text(
            json.dumps({"values": {"x1": 0.1}}) + "\n", encoding="utf-8"
        )
        feed = FileTailFeed(str(path), poll_interval_s=0.01, idle_timeout_s=0.5)

        def append_later():
            time.sleep(0.1)
            with open(path, "a", encoding="utf-8") as stream:
                stream.write(json.dumps({"values": {"x2": 0.2}, "seq": 9}) + "\n")

        threading.Thread(target=append_later, daemon=True).start()
        updates = list(feed)
        assert [u.as_mapping() for u in updates] == [{"x1": 0.1}, {"x2": 0.2}]
        # Lines without a seq get the feed's running counter; explicit wins.
        assert [u.seq for u in updates] == [1, 9]

    def test_malformed_lines_are_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        path.write_text(
            "this is not json\n"
            + json.dumps({"values": {"x1": 2.0}}) + "\n"  # out of range
            + json.dumps({"values": {"x1": 0.3}}) + "\n"
            + "\n",  # blank
            encoding="utf-8",
        )
        feed = FileTailFeed(str(path), poll_interval_s=0.01, idle_timeout_s=0.05)
        updates = list(feed)
        assert [u.as_mapping() for u in updates] == [{"x1": 0.3}]

    def test_idle_timeout_terminates_iteration(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        path.write_text("", encoding="utf-8")
        feed = FileTailFeed(str(path), poll_interval_s=0.01, idle_timeout_s=0.05)
        started = time.monotonic()
        assert list(feed) == []
        assert time.monotonic() - started < 5.0


class TestFeedFromSpec:
    def test_synthetic_spec(self):
        tree = fire_protection_system()
        feed = feed_from_spec(
            {"type": "synthetic", "updates": 7, "seed": 2}, tree=tree
        )
        assert isinstance(feed, SyntheticFeed)
        assert feed.updates == 7 and feed.seed == 2

    def test_synthetic_spec_needs_a_tree(self):
        with pytest.raises(FeedError):
            feed_from_spec({"type": "synthetic"})

    def test_file_spec(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        feed = feed_from_spec(
            {"type": "file", "path": str(path), "idle_timeout_s": 0.1}
        )
        assert isinstance(feed, FileTailFeed)
        assert feed.idle_timeout_s == 0.1

    def test_file_spec_needs_a_path(self):
        with pytest.raises(FeedError):
            feed_from_spec({"type": "file"})

    def test_http_spec_needs_a_url(self):
        with pytest.raises(FeedError):
            feed_from_spec({"type": "http"})

    def test_unknown_type_rejected(self):
        with pytest.raises(FeedError):
            feed_from_spec({"type": "carrier-pigeon"})
        with pytest.raises(FeedError):
            feed_from_spec("synthetic")
