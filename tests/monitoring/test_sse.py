"""SSE framing and the reconnecting client, against a scripted HTTP server."""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.monitoring.events import BufferedEvent
from repro.monitoring.sse import SSEClient, SSEvent, StreamError, format_sse, parse_sse


class TestFraming:
    def test_format_renders_the_standard_frame(self):
        frame = format_sse(BufferedEvent(42, "delta", {"seq": 17, "ptop": 0.5}))
        assert frame == b'id: 42\nevent: delta\ndata: {"ptop":0.5,"seq":17}\n\n'

    def test_round_trip(self):
        events = [
            BufferedEvent(1, "base", {"tree": "fps"}),
            BufferedEvent(2, "delta", {"seq": 1, "mpmcs": ["x1", "x2"]}),
            BufferedEvent(3, "end", {}),
        ]
        wire = b"".join(format_sse(event) for event in events)
        parsed = list(parse_sse(wire.splitlines(keepends=True)))
        assert [(e.id, e.event, e.data) for e in parsed] == [
            (1, "base", {"tree": "fps"}),
            (2, "delta", {"seq": 1, "mpmcs": ["x1", "x2"]}),
            (3, "end", {}),
        ]

    def test_parse_handles_multiline_data_and_comments(self):
        wire = (
            b": keepalive comment\n"
            b"id: 7\n"
            b"event: delta\n"
            b"data: line one\n"
            b"data: line two\n"
            b"\n"
        )
        (event,) = parse_sse(wire.splitlines(keepends=True))
        assert event == SSEvent(id=7, event="delta", data="line one\nline two")

    def test_parse_drops_an_unterminated_trailing_frame(self):
        wire = b"id: 1\nevent: delta\ndata: {}\n\nid: 2\nevent: delta\n"
        parsed = list(parse_sse(wire.splitlines(keepends=True)))
        assert [event.id for event in parsed] == [1]

    def test_parse_passes_non_json_data_through_as_text(self):
        (event,) = parse_sse([b"data: not json\n", b"\n"])
        assert event.data == "not json"
        assert event.event == "message" and event.id is None


class _ScriptedSSEHandler(BaseHTTPRequestHandler):
    """Serves /stream from a per-server script of (frames, drop) acts.

    Each connection consumes the next act: its frames are filtered by the
    request's ``Last-Event-ID`` (mimicking the ring-buffer replay), then the
    connection is closed — abruptly when ``drop`` is set, cleanly otherwise.
    """

    server_version = "scripted-sse"

    def do_GET(self):  # noqa: N802 - BaseHTTPRequestHandler API
        script = self.server.script
        acts_served = self.server.acts_served
        act = script[min(len(acts_served), len(script) - 1)]
        acts_served.append(self.headers.get("Last-Event-ID"))
        frames, drop = act
        last_id = int(self.headers.get("Last-Event-ID", 0))
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Connection", "close")
        self.end_headers()
        for event in frames:
            if event.id > last_id:
                self.wfile.write(format_sse(event))
        self.wfile.flush()
        if drop:
            # Abrupt close mid-stream: no terminating chunk, reader errors.
            self.connection.close()

    def log_message(self, *args):  # noqa: D102 - silence test output
        pass


@pytest.fixture
def scripted_server():
    server = ThreadingHTTPServer(("127.0.0.1", 0), _ScriptedSSEHandler)
    server.script = []
    server.acts_served = []
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()


def _events(*specs):
    return [BufferedEvent(i, kind, data) for i, kind, data in specs]


class TestSSEClient:
    def test_consumes_a_finite_stream(self, scripted_server):
        scripted_server.script.append((
            _events(
                (1, "base", {}), (2, "delta", {"seq": 1}), (3, "end", {})
            ),
            False,
        ))
        url = f"http://127.0.0.1:{scripted_server.server_address[1]}/stream"
        events = list(SSEClient(url, retry_interval_s=0.01))
        assert [event.id for event in events] == [1, 2, 3]
        assert events[-1].is_end

    def test_survives_a_dropped_connection_and_replays_only_missed(
        self, scripted_server
    ):
        full = _events(
            (1, "base", {}),
            (2, "delta", {"seq": 1}),
            (3, "delta", {"seq": 2}),
            (4, "delta", {"seq": 3}),
            (5, "end", {}),
        )
        # First connection drops after event 2; the second serves the rest.
        scripted_server.script.append((full[:2], True))
        scripted_server.script.append((full, False))
        url = f"http://127.0.0.1:{scripted_server.server_address[1]}/stream"
        client = SSEClient(url, retry_interval_s=0.01)
        events = list(client)
        # Every event exactly once, ids strictly increasing across the drop.
        assert [event.id for event in events] == [1, 2, 3, 4, 5]
        assert client.reconnects == 1
        # The reconnect carried Last-Event-ID: the server replayed from 3.
        assert scripted_server.acts_served == [None, "2"]

    def test_last_event_id_skips_already_seen_frames(self, scripted_server):
        scripted_server.script.append((
            _events(
                (1, "base", {}), (2, "delta", {}), (3, "delta", {}), (4, "end", {})
            ),
            False,
        ))
        url = f"http://127.0.0.1:{scripted_server.server_address[1]}/stream"
        events = list(SSEClient(url, last_event_id=2, retry_interval_s=0.01))
        assert [event.id for event in events] == [3, 4]

    def test_missing_endpoint_raises_before_first_connect(self):
        client = SSEClient(
            "http://127.0.0.1:9/stream", retry_interval_s=0.01, max_retries=1
        )
        with pytest.raises(StreamError):
            list(client)
