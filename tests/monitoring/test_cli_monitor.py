"""The ``repro monitor`` and ``repro watch`` commands."""

import json

import pytest

from repro.cli import main
from repro.service.http import AnalysisService, serve
from repro.workloads.library import fire_protection_system


class TestMonitorLocal:
    def test_synthetic_run_prints_deltas_and_summary(self, capsys):
        code = main([
            "monitor", "--builtin", "fps", "--updates", "5", "--seed", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("P(top)=") >= 6  # base + 5 deltas + summary
        assert "#5 " in out
        assert "updates:  5" in out

    def test_alert_flags_fire_and_print(self, capsys):
        # Drive P(top) across 0.0 from above: direction below never fires,
        # but an above-threshold at ~0 fires on the first delta.
        code = main([
            "monitor", "--builtin", "fps", "--updates", "4", "--seed", "2",
            "--alert-ptop", "0.0001", "--alerts-only",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "ALERT [ptop_above_0.0001]" in out
        assert "#1 " not in out  # deltas suppressed by --alerts-only

    def test_file_feed_with_idle_timeout(self, tmp_path, capsys):
        feed = tmp_path / "feed.jsonl"
        feed.write_text(
            json.dumps({"values": {"x1": 0.9, "x2": 0.9}, "seq": 1}) + "\n",
            encoding="utf-8",
        )
        code = main([
            "monitor", "--builtin", "fps",
            "--feed-file", str(feed), "--idle-timeout", "0.2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "updates:  1" in out

    def test_feed_file_and_feed_url_are_mutually_exclusive(self, capsys):
        code = main([
            "monitor", "--builtin", "fps",
            "--feed-file", "x.jsonl", "--feed-url", "http://example.invalid",
        ])
        assert code == 1
        assert "mutually exclusive" in capsys.readouterr().err

    def test_alert_ledger_persists_to_the_store(self, tmp_path, capsys):
        feed = tmp_path / "feed.jsonl"
        feed.write_text(
            json.dumps({"values": {"x1": 1e-6, "x2": 1e-6}, "seq": 1}) + "\n",
            encoding="utf-8",
        )
        store = tmp_path / "store"
        code = main([
            "monitor", "--builtin", "fps",
            "--feed-file", str(feed), "--idle-timeout", "0.2",
            "--store", str(store),
        ])
        assert code == 0
        assert "ALERT [mpmcs_identity_changed]" in capsys.readouterr().out
        assert any(store.iterdir())  # the ledger reached disk


@pytest.fixture()
def live_server(tmp_path):
    service = AnalysisService(store_path=str(tmp_path / "store"), workers=1)
    server = serve(service, port=0)
    yield f"http://127.0.0.1:{server.server_port}"
    server.shutdown()
    server.server_close()
    service.stop()


class TestRemote:
    def test_monitor_url_streams_from_the_service(self, live_server, capsys):
        code = main([
            "monitor", "--builtin", "fps", "--url", live_server,
            "--updates", "4", "--seed", "1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "monitor monitor-fire-protection-system started" in out
        assert out.count("#") >= 4
        assert "stream ended" in out

    def test_watch_attaches_to_a_running_monitor(self, live_server, capsys):
        assert main([
            "monitor", "--builtin", "fps", "--url", live_server,
            "--updates", "3", "--seed", "1",
        ]) == 0
        capsys.readouterr()
        # The finished monitor's stream replays fully for a late watcher.
        code = main(["watch", "--url", live_server])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("#") == 3 and "stream ended" in out

    def test_watch_respects_max_events_and_last_event_id(
        self, live_server, capsys
    ):
        assert main([
            "monitor", "--builtin", "fps", "--url", live_server,
            "--updates", "3", "--seed", "1",
        ]) == 0
        capsys.readouterr()
        code = main([
            "watch", "--url", live_server,
            "--last-event-id", "1", "--max-events", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert len(out.strip().splitlines()) == 2

    def test_watch_without_a_monitor_fails_cleanly(self, live_server, capsys):
        code = main(["watch", "--url", live_server])
        assert code == 1
        assert "404" in capsys.readouterr().err
