"""TreeMonitor: incremental per-update re-analysis, deltas, lifecycle.

Ends with the PR's acceptance test: a 100+-update synthetic feed whose
incremental deltas are byte-identical to a fresh sequential re-analysis,
with zero new cache misses after warmup, exactly one alert per alert kind
under hysteresis, and a latency histogram whose count equals the number of
updates applied.
"""

import json

import pytest

from repro.api import AnalysisSession
from repro.api.cache import ArtifactCache
from repro.monitoring import (
    MonitorError,
    MpmcsChanged,
    PTopThreshold,
    ProbabilityUpdate,
    SyntheticFeed,
    TreeMonitor,
)
from repro.observability.metrics import MetricsRegistry, set_metrics
from repro.scenarios.sweep import SweepExecutor
from repro.workloads.library import fire_protection_system


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    yield registry
    set_metrics(previous)


def update(seq, **values):
    return ProbabilityUpdate.create(values, seq=seq)


class TestBase:
    def test_ensure_base_analyses_once_and_streams_a_base_event(self):
        monitor = TreeMonitor(fire_protection_system())
        first = monitor.ensure_base()
        assert monitor.ensure_base() is first
        events = monitor.events.events_after(0)
        assert [event.kind for event in events] == ["base"]
        assert events[0].data["mpmcs"] == ["x1", "x2"]

    def test_base_ptop_matches_the_known_fps_value(self):
        monitor = TreeMonitor(fire_protection_system())
        monitor.ensure_base()
        assert monitor.status()["base_ptop"] == pytest.approx(0.030021740460)


class TestApplyUpdate:
    def test_delta_tracks_previous_and_base(self):
        monitor = TreeMonitor(fire_protection_system())
        first = monitor.apply_update(update(1, x1=0.5))
        second = monitor.apply_update(update(2, x1=0.6))
        assert first.previous_ptop == pytest.approx(0.030021740460)
        assert second.previous_ptop == first.ptop
        assert second.base_ptop == first.base_ptop
        assert second.ptop_delta == pytest.approx(second.ptop - first.ptop)
        assert second.base_delta == pytest.approx(second.ptop - second.base_ptop)

    def test_changed_events_lists_only_actual_changes(self):
        monitor = TreeMonitor(fire_protection_system())
        delta = monitor.apply_update(update(1, x1=0.5, x2=0.1))  # x2 unchanged
        assert delta.changed_events == ("x1",)

    def test_unknown_events_are_skipped_and_counted(self, registry):
        monitor = TreeMonitor(fire_protection_system())
        delta = monitor.apply_update(update(1, nonexistent=0.4, x1=0.5))
        assert delta.changed_events == ("x1",)
        assert monitor.status()["unknown_events"] == 1
        assert registry.counter_value("repro_monitor_unknown_events_total") == 1

    def test_updates_are_cumulative(self):
        monitor = TreeMonitor(fire_protection_system())
        monitor.apply_update(update(1, x1=0.5))
        delta = monitor.apply_update(update(2, x2=0.2))
        # x1 from update 1 still applies.
        patched = fire_protection_system()
        patched.set_probability("x1", 0.5)
        patched.set_probability("x2", 0.2)
        fresh = SweepExecutor(AnalysisSession(), backend="maxsat")
        expected = fresh.analyze_tree(patched, fresh.prepare_analyses(), top_k=5)
        assert delta.report.to_canonical_dict() == expected.to_canonical_dict()

    def test_monitored_tree_is_never_mutated(self):
        tree = fire_protection_system()
        before = dict(tree.probabilities())
        monitor = TreeMonitor(tree)
        monitor.apply_update(update(1, x1=0.9))
        assert dict(tree.probabilities()) == before


class TestLifecycle:
    def test_run_drains_the_feed_and_closes_the_stream(self):
        tree = fire_protection_system()
        monitor = TreeMonitor(tree)
        applied = monitor.run(SyntheticFeed(tree, updates=5, seed=1))
        assert applied == 5
        assert monitor.events.closed
        kinds = [event.kind for event in monitor.events.events_after(0)]
        assert kinds[0] == "base" and kinds[-1] == "end"
        assert kinds.count("delta") == 5

    def test_max_updates_stops_early(self):
        tree = fire_protection_system()
        monitor = TreeMonitor(tree)
        assert monitor.run(SyntheticFeed(tree, updates=50, seed=1), max_updates=3) == 3

    def test_start_twice_raises(self):
        tree = fire_protection_system()
        monitor = TreeMonitor(tree)
        monitor.start(SyntheticFeed(tree, updates=2, seed=1))
        try:
            with pytest.raises(MonitorError):
                monitor.start(SyntheticFeed(tree, updates=2, seed=1))
        finally:
            monitor.stop()

    def test_stop_closes_the_stream(self):
        tree = fire_protection_system()
        monitor = TreeMonitor(tree)
        monitor.start(SyntheticFeed(tree, updates=10_000, seed=1, interval_s=0.01))
        monitor.stop()
        assert monitor.events.closed
        assert not monitor.running

    def test_status_document_shape(self):
        tree = fire_protection_system()
        monitor = TreeMonitor(tree, rules=[MpmcsChanged()])
        monitor.run(SyntheticFeed(tree, updates=2, seed=1))
        status = monitor.status()
        assert status["tree"] == tree.name
        assert status["updates"] == 2 and status["last_seq"] == 2
        assert status["stream_closed"] is True
        assert status["rules"] == [{"rule": "mpmcs_changed"}]


class TestAcceptance:
    """ISSUE acceptance: 100+ updates, byte-identity, zero misses, alerts."""

    def test_end_to_end_monitoring_run(self, registry):
        tree = fire_protection_system()
        session = AnalysisSession(cache=ArtifactCache())
        monitor = TreeMonitor(
            tree,
            session=session,
            rules=[
                PTopThreshold(0.3, hysteresis=0.05),
                MpmcsChanged(),
            ],
        )

        # A controlled prefix drives each alert kind across its trigger
        # exactly once, then a long wobbly tail (neither crossing the
        # threshold again nor moving the MPMCS) exercises hysteresis.
        updates = [
            update(1, x1=0.9, x2=0.9),     # ptop ~0.81: threshold fires
            update(2, x1=0.88),            # still above: suppressed
            update(3, x1=1e-6, x2=1e-6),   # MPMCS -> {x5, x6}: identity fires;
                                           # ptop ~0.01: threshold re-arms
        ]
        updates += [
            update(seq, x7=0.05 + (seq % 2) * 0.001) for seq in range(4, 105)
        ]
        assert len(updates) >= 100

        # Warmup: base analysis plus the first update populate every
        # structure-keyed artifact (cut sets, CNF fragments, BDD).
        monitor.ensure_base()
        monitor.apply_update(updates[0])
        warm_misses = session.cache_info()["misses"]

        for item in updates[1:]:
            monitor.apply_update(item)

        # 1. Zero new cache misses after warmup: every update was a pure
        #    weight-only re-solve against warm structure-keyed artifacts.
        assert session.cache_info()["misses"] == warm_misses

        # 2. Each alert kind fired exactly once under hysteresis.
        by_rule = {}
        for alert in monitor.engine.alerts:
            by_rule[alert.rule] = by_rule.get(alert.rule, 0) + 1
        assert by_rule == {"ptop_above_0.3": 1, "mpmcs_identity_changed": 1}
        assert registry.counter_value("repro_monitor_alerts_total") == 2

        # 3. The latency histogram counted every applied update.
        assert registry.histogram_count(
            "repro_monitor_update_latency_seconds"
        ) == len(updates)
        assert registry.counter_value("repro_monitor_updates_total") == len(updates)

        # 4. Streamed deltas are byte-identical to a fresh sequential
        #    re-analysis of the same cumulative probability states.
        deltas = [
            event.data
            for event in monitor.events.events_after(0)
            if event.kind == "delta"
        ]
        assert len(deltas) == len(updates)

        sequential = SweepExecutor(AnalysisSession(), backend="maxsat")
        prepared = sequential.prepare_analyses()
        state = dict(tree.probabilities())
        for item, streamed in zip(updates, deltas):
            for name, value in item.values:
                state[name] = value
            patched = tree.copy()
            for name, value in state.items():
                patched.set_probability(name, value)
            report = sequential.analyze_tree(patched, prepared, top_k=5)
            fresh_ptop = (
                report.top_event.best_estimate if report.top_event else None
            )
            assert json.dumps(streamed["ptop"], sort_keys=True) == json.dumps(
                fresh_ptop, sort_keys=True
            )
            assert streamed["mpmcs"] == list(report.mpmcs.events)
            assert streamed["mpmcs_probability"] == report.mpmcs.probability
