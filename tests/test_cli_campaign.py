"""CLI ``repro campaign run/status/resume`` in local-store mode."""

import json

import pytest

from repro.cli import main

SPEC = {
    "name": "cli-campaign",
    "tree": {
        "name": "demo",
        "top": "TOP",
        "events": [
            {"name": "A", "probability": 0.1},
            {"name": "B", "probability": 0.2},
        ],
        "gates": [{"name": "TOP", "type": "or", "children": ["A", "B"]}],
    },
    "stages": [
        {
            "name": "sweep",
            "kind": "sweep",
            "payload": {
                "chunk_size": 1,
                "scenarios": [
                    {
                        "name": f"s{i}",
                        "patches": [
                            {
                                "type": "set_probability",
                                "event": "A",
                                "probability": 0.03 * (i + 1),
                            }
                        ],
                    }
                    for i in range(2)
                ],
            },
        },
        {"name": "final", "kind": "report", "payload": {}, "depends_on": ["sweep"]},
    ],
}


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC), encoding="utf-8")
    return path


class TestCampaignRun:
    def test_run_then_resume_via_store(self, tmp_path, spec_file, capsys):
        store = tmp_path / "store"
        output = tmp_path / "out.json"
        exit_code = main(
            ["campaign", "run", str(spec_file), "--store", str(store), "-o", str(output)]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "done" in out and "| sweep |" in out
        result = json.loads(output.read_text(encoding="utf-8"))
        assert result["kind"] == "campaign" and result["status"] == "done"
        campaign_id = result["campaign"]

        exit_code = main(["campaign", "status", campaign_id, "--store", str(store)])
        assert exit_code == 0
        status = json.loads(capsys.readouterr().out)
        assert status["status"] == "done"
        assert [(s["chunks_done"], s["chunks_total"]) for s in status["stages"]] == [
            (2, 2),
            (1, 1),
        ]

        exit_code = main(["campaign", "resume", campaign_id, "--store", str(store)])
        assert exit_code == 0
        out = capsys.readouterr().out
        # Everything ledgered: the resume executes nothing.
        assert "| sweep | sweep | done | 2 | 2 | 0 |" in out

    def test_run_without_store_is_in_memory(self, spec_file, capsys):
        exit_code = main(["campaign", "run", str(spec_file)])
        assert exit_code == 0
        assert "done" in capsys.readouterr().out

    def test_spec_wrapped_in_spec_key_accepted(self, tmp_path, capsys):
        path = tmp_path / "wrapped.json"
        path.write_text(json.dumps({"spec": SPEC}), encoding="utf-8")
        assert main(["campaign", "run", str(path)]) == 0

    def test_missing_spec_file_fails_cleanly(self, tmp_path, capsys):
        exit_code = main(["campaign", "run", str(tmp_path / "ghost.json")])
        assert exit_code == 1
        assert "cannot read campaign spec" in capsys.readouterr().err

    def test_malformed_spec_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "x"}), encoding="utf-8")
        exit_code = main(["campaign", "run", str(path)])
        assert exit_code == 1
        assert "error:" in capsys.readouterr().err


class TestCampaignErrors:
    def test_status_requires_store_or_url(self, capsys):
        exit_code = main(["campaign", "status", "deadbeef"])
        assert exit_code == 1
        assert "--url" in capsys.readouterr().err

    def test_unknown_campaign_id(self, tmp_path, capsys):
        exit_code = main(
            ["campaign", "status", "deadbeef", "--store", str(tmp_path / "store")]
        )
        assert exit_code == 1
        assert "unknown campaign id" in capsys.readouterr().err

    def test_url_and_store_mutually_exclusive(self, tmp_path, spec_file, capsys):
        exit_code = main(
            [
                "campaign",
                "run",
                str(spec_file),
                "--store",
                str(tmp_path / "s"),
                "--url",
                "http://127.0.0.1:1",
            ]
        )
        assert exit_code == 1
        assert "mutually exclusive" in capsys.readouterr().err
