"""Unit tests for the CTMC substrate (validated against analytic formulas)."""

import math

import pytest

from repro.numerics import HAVE_NUMPY

np = pytest.importorskip("numpy")
pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="requires numpy (absent or disabled via REPRO_NO_NUMPY=1)"
)

from repro.exceptions import AnalysisError
from repro.markov.chain import ContinuousTimeMarkovChain
from repro.reliability.models import RepairableComponent


def repairable_chain(failure_rate=1e-3, repair_rate=0.05):
    chain = ContinuousTimeMarkovChain("up")
    chain.add_transition("up", "down", failure_rate)
    chain.add_transition("down", "up", repair_rate)
    return chain


class TestConstruction:
    def test_states_are_registered_in_order(self):
        chain = repairable_chain()
        assert chain.states == ("up", "down")
        assert chain.num_states == 2
        assert chain.num_transitions == 2

    def test_duplicate_transitions_accumulate(self):
        chain = ContinuousTimeMarkovChain("a")
        chain.add_transition("a", "b", 1.0)
        chain.add_transition("a", "b", 2.0)
        matrix = chain.generator_matrix()
        assert matrix[0, 1] == pytest.approx(3.0)

    def test_generator_rows_sum_to_zero(self):
        matrix = repairable_chain().generator_matrix()
        assert np.allclose(matrix.sum(axis=1), 0.0)

    def test_rejects_bad_rates_and_self_loops(self):
        chain = ContinuousTimeMarkovChain("a")
        with pytest.raises(AnalysisError):
            chain.add_transition("a", "b", 0.0)
        with pytest.raises(AnalysisError):
            chain.add_transition("a", "b", -1.0)
        with pytest.raises(AnalysisError):
            chain.add_transition("a", "a", 1.0)

    def test_is_absorbing(self):
        chain = ContinuousTimeMarkovChain("up")
        chain.add_transition("up", "down", 1e-3)
        assert chain.is_absorbing("down")
        assert not chain.is_absorbing("up")
        with pytest.raises(AnalysisError):
            chain.is_absorbing("nope")


class TestTransient:
    def test_two_state_availability_matches_analytic_formula(self):
        failure_rate, repair_rate = 1e-3, 0.05
        chain = repairable_chain(failure_rate, repair_rate)
        model = RepairableComponent(failure_rate, repair_rate)
        for t in (0.0, 10.0, 100.0, 1000.0):
            distribution = chain.transient_distribution(t)
            assert distribution["down"] == pytest.approx(model.probability_at(t), abs=1e-9)
            assert distribution["up"] + distribution["down"] == pytest.approx(1.0)

    def test_single_absorbing_transition_is_exponential_cdf(self):
        rate = 2e-3
        chain = ContinuousTimeMarkovChain("up")
        chain.add_transition("up", "down", rate)
        for t in (1.0, 50.0, 500.0, 5000.0):
            assert chain.absorption_probability(t) == pytest.approx(
                1.0 - math.exp(-rate * t), abs=1e-9
            )

    def test_erlang_two_stage_absorption(self):
        rate = 1e-3
        chain = ContinuousTimeMarkovChain(0)
        chain.add_transition(0, 1, rate)
        chain.add_transition(1, 2, rate)
        t = 1500.0
        expected = 1.0 - math.exp(-rate * t) * (1.0 + rate * t)
        assert chain.absorption_probability(t) == pytest.approx(expected, abs=1e-9)

    def test_time_zero_is_initial_distribution(self):
        chain = repairable_chain()
        distribution = chain.transient_distribution(0.0)
        assert distribution == {"up": 1.0, "down": 0.0}

    def test_chain_without_transitions(self):
        chain = ContinuousTimeMarkovChain("only")
        assert chain.transient_distribution(100.0) == {"only": 1.0}

    def test_probability_in_validates_states(self):
        chain = repairable_chain()
        with pytest.raises(AnalysisError):
            chain.probability_in(["nope"], 1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(AnalysisError):
            repairable_chain().transient_distribution(-1.0)

    def test_absorption_requires_an_absorbing_state(self):
        with pytest.raises(AnalysisError):
            repairable_chain().absorption_probability(10.0)

    def test_convergence_guard(self):
        chain = repairable_chain(failure_rate=10.0, repair_rate=10.0)
        with pytest.raises(AnalysisError):
            chain.transient_distribution(1e6, max_steps=10)


class TestSteadyState:
    def test_repairable_steady_state(self):
        failure_rate, repair_rate = 1e-3, 0.05
        chain = repairable_chain(failure_rate, repair_rate)
        steady = chain.steady_state()
        expected_down = failure_rate / (failure_rate + repair_rate)
        assert steady["down"] == pytest.approx(expected_down, abs=1e-9)
        assert steady["up"] == pytest.approx(1.0 - expected_down, abs=1e-9)

    def test_absorbing_chain_concentrates_on_absorbing_state(self):
        chain = ContinuousTimeMarkovChain("up")
        chain.add_transition("up", "down", 1e-3)
        steady = chain.steady_state()
        assert steady["down"] == pytest.approx(1.0, abs=1e-6)

    def test_chain_without_transitions_stays_in_initial_state(self):
        chain = ContinuousTimeMarkovChain("only")
        assert chain.steady_state() == {"only": 1.0}

    def test_birth_death_three_states(self):
        chain = ContinuousTimeMarkovChain(0)
        chain.add_transition(0, 1, 2.0)
        chain.add_transition(1, 0, 4.0)
        chain.add_transition(1, 2, 1.0)
        chain.add_transition(2, 1, 3.0)
        steady = chain.steady_state()
        # Detailed balance: pi1 = pi0 * 2/4, pi2 = pi1 * 1/3.
        pi0 = 1.0 / (1.0 + 0.5 + 0.5 / 3.0)
        assert steady[0] == pytest.approx(pi0, abs=1e-9)
        assert steady[1] == pytest.approx(pi0 * 0.5, abs=1e-9)
        assert steady[2] == pytest.approx(pi0 * 0.5 / 3.0, abs=1e-9)
