"""Unit tests for the canonical tree library."""

import pytest

from repro.exceptions import FaultTreeError
from repro.workloads.library import (
    NAMED_TREES,
    fire_protection_system,
    get_tree,
    pressure_tank,
    redundant_power_supply,
    three_motor_system,
)


class TestFireProtectionSystem:
    def test_structure_matches_paper(self):
        tree = fire_protection_system()
        assert tree.num_events == 7
        assert tree.num_gates == 5
        assert tree.top_event == "fps_failure"
        assert tree.depth() == 5

    def test_probabilities_match_table_one(self):
        tree = fire_protection_system()
        expected = {
            "x1": 0.2,
            "x2": 0.1,
            "x3": 0.001,
            "x4": 0.002,
            "x5": 0.05,
            "x6": 0.1,
            "x7": 0.05,
        }
        assert tree.probabilities() == expected

    def test_structure_function_shape(self):
        tree = fire_protection_system()
        # Detection needs both sensors; suppression has three alternatives.
        assert tree.evaluate({"x1": True, "x2": True}) is True
        assert tree.evaluate({"x1": True}) is False
        assert tree.evaluate({"x3": True}) is True
        assert tree.evaluate({"x5": True, "x6": True}) is True
        assert tree.evaluate({"x6": True, "x7": True}) is False


class TestOtherTrees:
    def test_pressure_tank_validates(self):
        tree = pressure_tank()
        assert tree.num_events == 6
        tree.validate()

    def test_redundant_power_supply_has_voting_gate(self):
        tree = redundant_power_supply()
        assert tree.statistics()["num_voting_gates"] == 1

    def test_three_motor_system_shares_events(self):
        tree = three_motor_system()
        referencing = [
            gate.name for gate in tree.gates.values() if "control_circuit" in gate.children
        ]
        assert len(referencing) == 3

    def test_every_library_tree_is_valid(self):
        for name in set(NAMED_TREES):
            tree = get_tree(name)
            tree.validate()
            assert tree.num_events >= 5

    def test_registry_lookup(self):
        assert get_tree("fps").name == "fire-protection-system"
        with pytest.raises(FaultTreeError):
            get_tree("does-not-exist")

    def test_factories_return_fresh_instances(self):
        first = fire_protection_system()
        second = fire_protection_system()
        first.set_probability("x1", 0.9)
        assert second.probability("x1") == 0.2
