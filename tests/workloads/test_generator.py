"""Unit and property tests for the random fault-tree generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.fta.gates import GateType
from repro.workloads.generator import GeneratorConfig, random_fault_tree


class TestDeterminism:
    def test_same_seed_same_tree(self):
        first = random_fault_tree(num_basic_events=50, seed=7)
        second = random_fault_tree(num_basic_events=50, seed=7)
        assert first.probabilities() == second.probabilities()
        assert {g.name: g.children for g in first.gates.values()} == {
            g.name: g.children for g in second.gates.values()
        }
        assert first.top_event == second.top_event

    def test_different_seed_different_tree(self):
        first = random_fault_tree(num_basic_events=50, seed=1)
        second = random_fault_tree(num_basic_events=50, seed=2)
        assert first.probabilities() != second.probabilities()


class TestStructure:
    def test_requested_event_count(self):
        tree = random_fault_tree(num_basic_events=123, seed=0)
        assert tree.num_events == 123

    def test_generated_tree_always_validates(self):
        tree = random_fault_tree(num_basic_events=200, seed=3, voting_ratio=0.2)
        tree.validate()

    def test_probability_range_respected(self):
        config = GeneratorConfig(
            num_basic_events=100, probability_range=(1e-4, 1e-2), seed=11
        )
        tree = random_fault_tree(config)
        for probability in tree.probabilities().values():
            assert 1e-4 * 0.999 <= probability <= 1e-2 * 1.001

    def test_voting_gates_generated_when_requested(self):
        config = GeneratorConfig(
            num_basic_events=150,
            voting_ratio=1.0,
            and_ratio=0.0,
            or_ratio=0.0,
            gate_arity=(3, 4),
            seed=5,
        )
        tree = random_fault_tree(config)
        assert any(g.gate_type is GateType.VOTING for g in tree.gates.values())

    def test_event_reuse_creates_shared_children(self):
        tree = random_fault_tree(num_basic_events=60, seed=9, event_reuse=0.4)
        reference_counts = {}
        for gate in tree.gates.values():
            for child in gate.children:
                reference_counts[child] = reference_counts.get(child, 0) + 1
        assert any(count > 1 for count in reference_counts.values())
        tree.validate()

    def test_custom_name(self):
        assert random_fault_tree(num_basic_events=10, seed=0, name="bench-1").name == "bench-1"


class TestConfigValidation:
    def test_too_few_events_rejected(self):
        with pytest.raises(ConfigurationError):
            random_fault_tree(num_basic_events=1, seed=0)

    def test_invalid_arity_rejected(self):
        with pytest.raises(ConfigurationError):
            random_fault_tree(num_basic_events=10, gate_arity=(1, 3), seed=0)
        with pytest.raises(ConfigurationError):
            random_fault_tree(num_basic_events=10, gate_arity=(4, 2), seed=0)

    def test_invalid_ratios_rejected(self):
        with pytest.raises(ConfigurationError):
            random_fault_tree(num_basic_events=10, and_ratio=-1.0, seed=0)
        with pytest.raises(ConfigurationError):
            random_fault_tree(
                num_basic_events=10, and_ratio=0.0, or_ratio=0.0, voting_ratio=0.0, seed=0
            )

    def test_invalid_probability_range_rejected(self):
        with pytest.raises(ConfigurationError):
            random_fault_tree(num_basic_events=10, probability_range=(0.5, 0.1), seed=0)
        with pytest.raises(ConfigurationError):
            random_fault_tree(num_basic_events=10, probability_range=(0.0, 0.1), seed=0)

    def test_invalid_event_reuse_rejected(self):
        with pytest.raises(ConfigurationError):
            random_fault_tree(num_basic_events=10, event_reuse=1.0, seed=0)

    def test_config_and_overrides_are_mutually_exclusive(self):
        with pytest.raises(ConfigurationError):
            random_fault_tree(GeneratorConfig(), num_basic_events=10)


class TestDeterminismExtended:
    def test_same_config_same_serialised_tree(self):
        from repro.fta.serializers import to_json

        config = GeneratorConfig(
            num_basic_events=80, seed=42, voting_ratio=0.3, event_reuse=0.25,
            gate_arity=(2, 5), probability_range=(1e-6, 0.5),
        )
        first = random_fault_tree(GeneratorConfig(**config.__dict__))
        second = random_fault_tree(GeneratorConfig(**config.__dict__))
        assert to_json(first) == to_json(second)

    def test_structural_hash_determinism(self):
        from repro.api.cache import structural_hash

        assert structural_hash(
            random_fault_tree(num_basic_events=60, seed=11, voting_ratio=0.2)
        ) == structural_hash(
            random_fault_tree(num_basic_events=60, seed=11, voting_ratio=0.2)
        )


class TestVotingGateArity:
    def test_voting_thresholds_always_within_arity(self):
        for seed in range(8):
            tree = random_fault_tree(
                num_basic_events=60, seed=seed, voting_ratio=1.0,
                and_ratio=0.0, or_ratio=0.0, gate_arity=(3, 6),
            )
            for gate in tree.gates.values():
                if gate.gate_type is GateType.VOTING:
                    # generator draws k in [2, arity-1]: strictly between
                    # OR (k=1) and AND (k=n), the interesting regime
                    assert 2 <= gate.k <= gate.arity - 1

    def test_minimum_arity_falls_back_to_and(self):
        # with arity forced to 2, voting is impossible and every gate must
        # fall back to AND rather than emit an invalid threshold
        tree = random_fault_tree(
            num_basic_events=40, seed=7, voting_ratio=1.0,
            and_ratio=0.0, or_ratio=0.0, gate_arity=(2, 2),
        )
        assert all(g.gate_type is GateType.AND for g in tree.gates.values())
        tree.validate()

    def test_mixed_arity_range_produces_valid_voting_trees(self):
        tree = random_fault_tree(
            num_basic_events=100, seed=13, voting_ratio=0.5, gate_arity=(2, 3)
        )
        tree.validate()
        for gate in tree.gates.values():
            if gate.gate_type is GateType.VOTING:
                assert gate.arity >= 3


class TestProbabilityRangeValidation:
    def test_degenerate_range_pins_every_probability(self):
        tree = random_fault_tree(
            num_basic_events=30, seed=0, probability_range=(0.01, 0.01)
        )
        for probability in tree.probabilities().values():
            assert probability == pytest.approx(0.01)

    def test_upper_bound_one_is_accepted_and_clamped(self):
        tree = random_fault_tree(
            num_basic_events=30, seed=1, probability_range=(0.5, 1.0)
        )
        for probability in tree.probabilities().values():
            assert 0.5 * 0.999 <= probability <= 1.0

    def test_bound_above_one_rejected(self):
        with pytest.raises(ConfigurationError):
            random_fault_tree(num_basic_events=10, probability_range=(0.5, 1.5))

    def test_negative_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            random_fault_tree(num_basic_events=10, probability_range=(-0.1, 0.5))


class TestGeneratedTreeProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=4, max_value=40),
        st.integers(min_value=0, max_value=1000),
        st.floats(min_value=0.0, max_value=0.4),
    )
    def test_always_valid_and_analysable(self, num_events, seed, voting_ratio):
        tree = random_fault_tree(
            num_basic_events=num_events, seed=seed, voting_ratio=voting_ratio
        )
        tree.validate()
        assert tree.num_events == num_events
        # the all-events set must always be a cut set of a coherent tree
        assert tree.is_cut_set(tree.event_names)
