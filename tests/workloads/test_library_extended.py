"""Tests for the extended canonical tree library."""

import pytest

from repro.analysis.mocus import mocus_mpmcs
from repro.core.pipeline import MPMCSSolver
from repro.maxsat.rc2 import RC2Engine
from repro.workloads.library import (
    NAMED_TREES,
    aircraft_hydraulic_system,
    chemical_reactor_protection,
    data_center_power,
    emergency_shutdown_system,
    get_tree,
    railway_level_crossing,
    scada_water_treatment,
)

NEW_TREES = [
    chemical_reactor_protection,
    railway_level_crossing,
    scada_water_treatment,
    data_center_power,
    aircraft_hydraulic_system,
    emergency_shutdown_system,
]
NEW_TREE_IDS = [factory.__name__ for factory in NEW_TREES]


@pytest.fixture(params=NEW_TREES, ids=NEW_TREE_IDS)
def new_tree(request):
    return request.param()


class TestStructure:
    def test_tree_validates(self, new_tree):
        new_tree.validate()

    def test_tree_is_non_trivial(self, new_tree):
        assert new_tree.num_events >= 7
        assert new_tree.num_gates >= 4
        assert new_tree.depth() >= 3

    def test_registered_in_named_trees(self):
        for name in (
            "chemical-reactor",
            "railway-crossing",
            "scada-water",
            "data-center-power",
            "aircraft-hydraulics",
            "emergency-shutdown",
        ):
            tree = get_tree(name)
            tree.validate()
            assert NAMED_TREES[name]().name == tree.name

    def test_factories_are_deterministic(self, new_tree):
        # Rebuilding from the registry returns an identical structure.
        again = NAMED_TREES[
            {
                "chemical-reactor-protection": "chemical-reactor",
                "railway-level-crossing": "railway-crossing",
                "scada-water-treatment": "scada-water",
                "data-center-power": "data-center-power",
                "aircraft-hydraulic-system": "aircraft-hydraulics",
                "emergency-shutdown-system": "emergency-shutdown",
            }[new_tree.name]
        ]()
        assert again.probabilities() == new_tree.probabilities()
        assert set(again.gate_names) == set(new_tree.gate_names)


class TestMPMCSConsistency:
    def test_maxsat_agrees_with_mocus(self, new_tree):
        result = MPMCSSolver(single_engine=RC2Engine()).solve(new_tree)
        mocus_events, mocus_probability = mocus_mpmcs(new_tree)
        assert result.probability == pytest.approx(mocus_probability, rel=1e-9)
        assert new_tree.is_minimal_cut_set(result.events)

    def test_emergency_shutdown_mpmcs_is_the_common_cause(self):
        result = MPMCSSolver(single_engine=RC2Engine()).solve(emergency_shutdown_system())
        assert result.events == ("transmitters_miscalibrated",)
        assert result.probability == pytest.approx(5e-4)

    def test_data_center_mpmcs_is_the_transfer_switch(self):
        result = MPMCSSolver(single_engine=RC2Engine()).solve(data_center_power())
        assert result.events == ("transfer_switch_fails",)
        assert result.probability == pytest.approx(2e-3)

    def test_railway_mpmcs_is_the_shared_power_supply(self):
        result = MPMCSSolver(single_engine=RC2Engine()).solve(railway_level_crossing())
        assert result.events == ("power_supply_fails",)
        assert result.probability == pytest.approx(1e-3)

    def test_scada_mpmcs_is_the_dosing_pump(self):
        result = MPMCSSolver(single_engine=RC2Engine()).solve(scada_water_treatment())
        assert result.events == ("dosing_pump_fails",)
        assert result.probability == pytest.approx(3e-3)
