"""End-to-end integration tests across subsystems.

These tests exercise complete user workflows: file in -> analysis -> report
out, agreement between the MaxSAT pipeline and every classical baseline on
non-trivial trees, and failure-injection scenarios (malformed models,
impossible top events, adversarial inputs).
"""

import json

import pytest

from repro import (
    FaultTreeBuilder,
    MPMCSSolver,
    enumerate_mpmcs,
    find_mpmcs,
    random_fault_tree,
)
from repro.analysis.bruteforce import brute_force_mpmcs
from repro.analysis.mocus import mocus_mpmcs
from repro.bdd.probability import bdd_mpmcs
from repro.core.weights import probability_from_cost
from repro.exceptions import ParseError
from repro.fta.parsers.galileo import parse_galileo
from repro.fta.parsers.json_format import parse_json
from repro.fta.serializers import to_galileo, to_json
from repro.maxsat import FuMalikEngine, LinearSearchEngine, RC2Engine
from repro.reporting.json_report import analysis_report
from repro.workloads.library import NAMED_TREES, get_tree


class TestFileToReportWorkflow:
    def test_galileo_to_json_report(self, tmp_path, fps_tree):
        """Full tool workflow: Galileo file -> parse -> solve -> JSON report."""
        model_path = tmp_path / "model.dft"
        model_path.write_text(to_galileo(fps_tree), encoding="utf-8")

        parsed = parse_galileo(model_path.read_text(encoding="utf-8"))
        result = MPMCSSolver().solve(parsed)
        report = analysis_report(parsed, result)

        report_path = tmp_path / "report.json"
        report_path.write_text(json.dumps(report), encoding="utf-8")
        reloaded = json.loads(report_path.read_text(encoding="utf-8"))
        assert reloaded["solution"]["mpmcs"] == ["x1", "x2"]
        assert reloaded["solution"]["probability"] == pytest.approx(0.02)

    def test_json_round_trip_preserves_analysis_result(self, any_library_tree):
        original_result = find_mpmcs(any_library_tree, single_engine=RC2Engine())
        round_tripped = parse_json(to_json(any_library_tree))
        new_result = find_mpmcs(round_tripped, single_engine=RC2Engine())
        assert new_result.probability == pytest.approx(original_result.probability)


class TestAllMethodsAgree:
    """The MaxSAT pipeline, MOCUS, BDD and brute force must agree everywhere."""

    @pytest.mark.parametrize("name", sorted(set(NAMED_TREES)))
    def test_library_trees(self, name):
        tree = get_tree(name)
        maxsat = MPMCSSolver().solve(tree)
        assert mocus_mpmcs(tree)[1] == pytest.approx(maxsat.probability)
        assert bdd_mpmcs(tree)[1] == pytest.approx(maxsat.probability)
        assert brute_force_mpmcs(tree)[1] == pytest.approx(maxsat.probability)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_medium_random_trees(self, seed):
        tree = random_fault_tree(num_basic_events=40, seed=seed, voting_ratio=0.1)
        maxsat = MPMCSSolver(single_engine=RC2Engine()).solve(tree)
        bdd_events, bdd_probability = bdd_mpmcs(tree)
        assert maxsat.probability == pytest.approx(bdd_probability, rel=1e-9)
        assert tree.is_minimal_cut_set(maxsat.events)

    def test_engines_agree_on_medium_tree(self):
        tree = random_fault_tree(num_basic_events=60, seed=11, voting_ratio=0.15)
        costs = set()
        for engine in (RC2Engine(), RC2Engine(stratified=True), FuMalikEngine()):
            result = MPMCSSolver(single_engine=engine).solve(tree)
            costs.add(round(result.cost, 6))
        assert len(costs) == 1


class TestTopKConsistency:
    def test_topk_first_entry_equals_single_solve(self, fps_tree):
        single = MPMCSSolver().solve(fps_tree)
        ranked = enumerate_mpmcs(fps_tree, 1)
        assert ranked[0].events == single.events
        assert ranked[0].probability == pytest.approx(single.probability)

    def test_topk_probabilities_consistent_with_costs(self, voting_tree):
        for entry in enumerate_mpmcs(voting_tree, 4):
            assert probability_from_cost(entry.cost) == pytest.approx(
                entry.probability, rel=1e-6
            )


class TestFailureInjection:
    def test_impossible_top_event_is_reported(self):
        # A 3-of-3 voting gate whose children can never all be distinct events
        # is still satisfiable; instead build an unsatisfiable model by nesting
        # a tree whose only gate has an unreachable threshold: not possible in
        # a coherent tree, so check the UNSAT path through the raw instance.
        from repro.core.encoder import encode_mpmcs
        from repro.maxsat import MaxSATStatus

        tree = (
            FaultTreeBuilder("blocked")
            .basic_event("a", 0.5)
            .basic_event("b", 0.5)
            .and_gate("top", ["a", "b"])
            .top("top")
            .build()
        )
        encoding = encode_mpmcs(tree)
        # Make the instance artificially unsatisfiable by forbidding both events.
        encoding.instance.add_hard([-encoding.event_vars["a"]])
        encoding.instance.add_hard([-encoding.event_vars["b"]])
        result = RC2Engine().solve(encoding.instance)
        assert result.status is MaxSATStatus.UNSATISFIABLE

    def test_malformed_galileo_reports_line_numbers(self):
        bad = 'toplevel "t";\n"t" or "a";\n"a" probability=0.5;'
        with pytest.raises(ParseError, match="line 3"):
            parse_galileo(bad)

    def test_malformed_json_rejected(self):
        with pytest.raises(ParseError):
            parse_json('{"events": [], "gates": []}')

    def test_adversarial_names_survive_round_trips(self):
        tree = (
            FaultTreeBuilder("weird names")
            .basic_event("event with spaces", 0.1)
            .basic_event("unicode-événement", 0.2)
            .or_gate("top gate", ["event with spaces", "unicode-événement"])
            .top("top gate")
            .build()
        )
        result = find_mpmcs(tree, single_engine=RC2Engine())
        assert result.events == ("unicode-événement",)
        parsed = parse_json(to_json(tree))
        assert parsed.probability("event with spaces") == 0.1

    def test_deep_chain_tree(self):
        """A pathological 60-level deep chain still analyses correctly."""
        builder = FaultTreeBuilder("chain")
        builder.basic_event("leaf0", 0.5)
        previous = "leaf0"
        for level in range(1, 60):
            leaf = f"leaf{level}"
            builder.basic_event(leaf, 0.5)
            gate = f"g{level}"
            if level % 2 == 0:
                builder.and_gate(gate, [previous, leaf])
            else:
                builder.or_gate(gate, [previous, leaf])
            previous = gate
        tree = builder.top(previous).build()
        result = find_mpmcs(tree, single_engine=RC2Engine())
        assert tree.is_minimal_cut_set(result.events)

    def test_wide_or_tree(self):
        """A 500-child OR gate: the MPMCS is the single most likely event."""
        builder = FaultTreeBuilder("wide")
        names = []
        for index in range(500):
            name = f"e{index}"
            builder.basic_event(name, 0.001 + (index % 97) * 1e-5)
            names.append(name)
        tree = builder.or_gate("top", names).top("top").build()
        result = find_mpmcs(tree, single_engine=RC2Engine())
        assert len(result.events) == 1
        expected_best = max(names, key=lambda n: tree.probability(n))
        assert result.probability == pytest.approx(tree.probability(expected_best))
