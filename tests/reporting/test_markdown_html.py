"""Tests for the Markdown and HTML report renderers."""

import pytest

from repro.analysis.importance import importance_measures
from repro.analysis.mocus import mocus_minimal_cut_sets
from repro.analysis.spof import single_points_of_failure
from repro.core.pipeline import MPMCSSolver
from repro.core.topk import enumerate_mpmcs
from repro.maxsat.rc2 import RC2Engine
from repro.reporting.html import html_report, write_html_report
from repro.reporting.markdown import markdown_report, write_markdown_report
from repro.workloads.library import fire_protection_system, redundant_power_supply


@pytest.fixture(scope="module")
def fps_result():
    tree = fire_protection_system()
    solver = MPMCSSolver(single_engine=RC2Engine())
    return tree, solver.solve(tree)


class TestMarkdownReport:
    def test_contains_mpmcs_and_table1(self, fps_result):
        tree, result = fps_result
        text = markdown_report(tree, result)
        assert "# MPMCS analysis — fire-protection-system" in text
        assert "{x1, x2}" in text
        assert "0.02" in text
        assert "1.60944" in text  # Table I weight of x1
        assert "2.30259" in text  # Table I weight of x2

    def test_optional_sections(self, fps_result):
        tree, result = fps_result
        ranking = enumerate_mpmcs(tree, 3, solver=MPMCSSolver(single_engine=RC2Engine()))
        cut_sets = mocus_minimal_cut_sets(tree)
        importance = importance_measures(tree, cut_sets)
        spofs = single_points_of_failure(tree)
        text = markdown_report(
            tree, result, ranking=ranking, importance=importance, spofs=spofs
        )
        assert "## Most probable minimal cut sets" in text
        assert "## Importance measures" in text
        assert "## Single points of failure" in text
        assert "Fussell-Vesely" in text
        # The FPS tree has two single points of failure: x3 and x4.
        assert "| x3 |" in text
        assert "| x4 |" in text

    def test_no_spof_message(self):
        tree = redundant_power_supply()
        # busbar_failure *is* a SPOF here, so pass an empty list explicitly to
        # exercise the "none" rendering path.
        result = MPMCSSolver(single_engine=RC2Engine()).solve(tree)
        text = markdown_report(tree, result, spofs=[])
        assert "None — no single basic event" in text

    def test_write_markdown_report(self, fps_result, tmp_path):
        tree, result = fps_result
        path = write_markdown_report(tree, result, tmp_path / "report.md")
        assert path.exists()
        assert "MPMCS" in path.read_text(encoding="utf-8")

    def test_portfolio_section_present_when_portfolio_used(self):
        tree = fire_protection_system()
        result = MPMCSSolver(mode="sequential").solve(tree)
        text = markdown_report(tree, result)
        assert "Portfolio winner" in text


class TestHtmlReport:
    def test_structure_and_highlighting(self, fps_result):
        tree, result = fps_result
        text = html_report(tree, result)
        assert text.startswith("<!DOCTYPE html>")
        assert "<svg" in text and "</svg>" in text
        assert "{x1, x2}" in text
        # Every node appears in the SVG; MPMCS members are filled red.
        for name in tree.event_names:
            assert f">{name}<" in text
        assert text.count("#f1948a") == 2  # exactly the two MPMCS events

    def test_gates_are_labelled(self, fps_result):
        tree, result = fps_result
        text = html_report(tree, result)
        assert "detection_failure [AND]" in text
        assert "fps_failure [OR]" in text

    def test_voting_gate_label(self):
        tree = redundant_power_supply()
        result = MPMCSSolver(single_engine=RC2Engine()).solve(tree)
        text = html_report(tree, result)
        assert "2-of-3" in text

    def test_custom_title_is_escaped(self, fps_result):
        tree, result = fps_result
        text = html_report(tree, result, title="<script>alert(1)</script>")
        assert "<script>alert(1)</script>" not in text
        assert "&lt;script&gt;" in text

    def test_write_html_report(self, fps_result, tmp_path):
        tree, result = fps_result
        path = write_html_report(tree, result, tmp_path / "report.html")
        assert path.exists()
        assert "<svg" in path.read_text(encoding="utf-8")
