"""Unit tests for the reporting layer (JSON, DOT, ASCII, tables)."""

import json

import pytest

from repro.core.pipeline import MPMCSSolver
from repro.maxsat import RC2Engine
from repro.reporting.ascii_art import render_tree
from repro.reporting.dot import to_dot
from repro.reporting.json_report import analysis_report, write_analysis_report
from repro.reporting.tables import markdown_table, weights_table


@pytest.fixture
def fps_result(fps_tree):
    return MPMCSSolver(single_engine=RC2Engine()).solve(fps_tree)


class TestJsonReport:
    def test_report_contains_fig2_content(self, fps_tree, fps_result):
        """The report must carry the same information as the Fig. 2 output:
        the fault tree, the MPMCS and its probability."""
        report = analysis_report(fps_tree, fps_result)
        assert report["solution"]["mpmcs"] == ["x1", "x2"]
        assert report["solution"]["probability"] == pytest.approx(0.02)
        assert report["tree"]["top"] == "fps_failure"
        assert len(report["tree"]["events"]) == 7

    def test_nodes_are_annotated_with_mpmcs_membership(self, fps_tree, fps_result):
        report = analysis_report(fps_tree, fps_result)
        by_name = {node["name"]: node for node in report["nodes"] if node["kind"] == "basic-event"}
        assert by_name["x1"]["in_mpmcs"] is True
        assert by_name["x3"]["in_mpmcs"] is False
        assert by_name["x1"]["weight"] == pytest.approx(1.60944, abs=1e-4)

    def test_solver_and_instance_sections(self, fps_tree, fps_result):
        report = analysis_report(fps_tree, fps_result)
        assert report["solver"]["engine"] == "rc2"
        assert report["instance"]["soft_clauses"] == 7
        assert report["report_version"]

    def test_report_is_json_serialisable(self, fps_tree, fps_result):
        text = json.dumps(analysis_report(fps_tree, fps_result))
        assert "mpmcs" in text

    def test_write_report_to_disk(self, tmp_path, fps_tree, fps_result):
        path = write_analysis_report(fps_tree, fps_result, tmp_path / "report.json")
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["solution"]["mpmcs"] == ["x1", "x2"]

    def test_portfolio_section_present_when_portfolio_used(self, fps_tree):
        result = MPMCSSolver(mode="sequential").solve(fps_tree)
        report = analysis_report(fps_tree, result)
        assert report["solver"]["portfolio"] is not None
        assert report["solver"]["portfolio"]["winner"]


class TestDot:
    def test_dot_contains_all_nodes_and_edges(self, fps_tree):
        dot = to_dot(fps_tree)
        for name in list(fps_tree.event_names) + list(fps_tree.gate_names):
            assert f'"{name}"' in dot
        assert dot.count("->") == sum(len(g.children) for g in fps_tree.gates.values())

    def test_highlighted_events_are_filled(self, fps_tree):
        dot = to_dot(fps_tree, highlight=["x1", "x2"])
        assert "indianred1" in dot
        assert dot.index("digraph") == 0

    def test_voting_gate_label(self, voting_tree):
        dot = to_dot(voting_tree)
        assert "2-of-3" in dot

    def test_probabilities_shown(self, fps_tree):
        assert "p=0.001" in to_dot(fps_tree)


class TestAscii:
    def test_render_contains_all_events(self, fps_tree):
        text = render_tree(fps_tree)
        for index in range(1, 8):
            assert f"x{index}" in text

    def test_highlight_marker(self, fps_tree):
        text = render_tree(fps_tree, highlight=["x1"])
        assert "<< MPMCS" in text

    def test_max_depth_truncates(self, fps_tree):
        shallow = render_tree(fps_tree, max_depth=1)
        assert "x6" not in shallow

    def test_voting_gate_rendered_with_threshold(self, voting_tree):
        assert "2-of-3" in render_tree(voting_tree)

    def test_shared_subtrees_marked(self, shared_events_tree):
        # control_circuit appears under three motor gates
        text = render_tree(shared_events_tree)
        assert text.count("control_circuit") >= 3


class TestTables:
    def test_markdown_table_shape(self):
        table = markdown_table(["a", "b"], [[1, 2], [3, 4]])
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert len(lines) == 4

    def test_weights_table_reproduces_table_one(self, fps_tree):
        table = weights_table(fps_tree)
        assert "| p(xi) | 0.2 | 0.1 | 0.001 | 0.002 | 0.05 | 0.1 | 0.05 |" in table
        assert "1.60944" in table
        assert "6.90776" in table
        assert "2.99573" in table
