"""Monitoring over HTTP: /monitor lifecycle, SSE streams, queue gauges."""

import time

import pytest

from repro.monitoring.sse import StreamError
from repro.service.http import AnalysisService, ServiceClient, ServiceError, serve
from repro.workloads.library import fire_protection_system


@pytest.fixture()
def live_service(tmp_path):
    """A fresh service per test: monitors are a process-wide singleton."""
    service = AnalysisService(store_path=str(tmp_path / "store"), workers=1)
    server = serve(service, port=0)
    client = ServiceClient(f"http://127.0.0.1:{server.server_port}", timeout=60.0)
    yield client
    server.shutdown()
    server.server_close()
    service.stop()


SYNTH = {"type": "synthetic", "updates": 6, "seed": 3}


def _wait_stopped(client, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = client.monitor()
        if not status["running"]:
            return status
        time.sleep(0.05)
    raise AssertionError("monitor did not finish in time")


class TestMonitorEndpoints:
    def test_lifecycle_start_status_alerts_stream(self, live_service):
        status = live_service.start_monitor(
            fire_protection_system(),
            feed=SYNTH,
            rules=[{"rule": "mpmcs_changed"}],
        )
        assert status["tree"] == "fire-protection-system"
        final = _wait_stopped(live_service)
        assert final["updates"] == 6

        events = list(live_service.stream_monitor())
        kinds = [event.event for event in events]
        assert kinds[0] == "base" and kinds[-1] == "end"
        assert kinds.count("delta") == 6
        # Event ids are strictly monotonic over the whole stream.
        ids = [event.id for event in events]
        assert ids == sorted(ids) and len(set(ids)) == len(ids)
        assert ids[0] == 1

        alerts = live_service.monitor_alerts()
        assert all(alert["rule"] == "mpmcs_identity_changed" for alert in alerts)

    def test_stream_replays_only_missed_events_after_last_event_id(
        self, live_service
    ):
        live_service.start_monitor(fire_protection_system(), feed=SYNTH)
        _wait_stopped(live_service)
        full = list(live_service.stream_monitor())
        resumed = list(live_service.stream_monitor(last_event_id=full[2].id))
        assert [event.id for event in resumed] == [event.id for event in full[3:]]

    def test_no_monitor_is_404(self, live_service):
        with pytest.raises(ServiceError, match="404"):
            live_service.monitor()
        with pytest.raises(ServiceError, match="404"):
            live_service.monitor_alerts()
        with pytest.raises(ServiceError, match="404"):
            live_service.stop_monitor()
        with pytest.raises(StreamError, match="404"):
            list(live_service.stream_monitor())

    def test_second_monitor_while_running_is_409(self, live_service):
        slow = {"type": "synthetic", "updates": 500, "seed": 1, "interval_s": 0.05}
        live_service.start_monitor(fire_protection_system(), feed=slow)
        try:
            with pytest.raises(ServiceError, match="409"):
                live_service.start_monitor(fire_protection_system(), feed=SYNTH)
        finally:
            live_service.stop_monitor()

    def test_stopping_the_monitor_terminates_attached_streams(self, live_service):
        slow = {"type": "synthetic", "updates": 500, "seed": 1, "interval_s": 0.05}
        live_service.start_monitor(fire_protection_system(), feed=slow)
        stream = iter(live_service.stream_monitor())
        assert next(stream).event == "base"  # attached and receiving
        live_service.stop_monitor()
        remaining = list(stream)
        assert remaining and remaining[-1].event == "end"

    def test_a_finished_monitor_can_be_replaced(self, live_service):
        live_service.start_monitor(fire_protection_system(), feed=SYNTH)
        _wait_stopped(live_service)
        live_service.start_monitor(
            fire_protection_system(), feed={**SYNTH, "updates": 2}
        )
        final = _wait_stopped(live_service)
        assert final["updates"] == 2  # a fresh monitor, not the old one

    def test_bad_payloads_are_400(self, live_service):
        with pytest.raises(ServiceError, match="400"):
            live_service.start_monitor({"not": "a tree"}, feed=SYNTH)
        with pytest.raises(ServiceError, match="400"):
            live_service.start_monitor(
                fire_protection_system(), feed={"type": "carrier-pigeon"}
            )
        with pytest.raises(ServiceError, match="400"):
            live_service.start_monitor(
                fire_protection_system(), feed=SYNTH, rules=[{"rule": "nope"}]
            )
        with pytest.raises(ServiceError, match="400"):
            live_service.start_monitor(
                fire_protection_system(), feed=SYNTH, max_updates=-1
            )

    def test_monitor_metric_families_are_exposed(self, live_service):
        live_service.start_monitor(
            fire_protection_system(),
            feed=SYNTH,
            rules=[{"rule": "mpmcs_changed"}],
        )
        _wait_stopped(live_service)
        text = live_service.metrics_text()
        for family in (
            "repro_monitor_updates_total",
            "repro_monitor_update_latency_seconds_bucket",
            "repro_monitor_ptop",
            "repro_monitor_feed_age_seconds",
        ):
            assert family in text, f"missing {family}"


class TestSweepStream:
    def test_streams_per_scenario_progress_then_end(self, live_service):
        job = live_service.submit_sweep(
            fire_protection_system(),
            {"family": "probability_sweep", "event": "x1",
             "start": 0.001, "stop": 0.5, "steps": 5},
        )
        events = list(live_service.stream_sweep(job["id"]))
        kinds = [event.event for event in events]
        assert kinds.count("scenario") == 5
        assert kinds[-1] == "end"
        assert events[-1].data["status"] == "done"
        names = [e.data["name"] for e in events if e.event == "scenario"]
        assert len(names) == 5
        totals = {e.data["total"] for e in events if e.event == "scenario"}
        assert totals == {5}

    def test_unknown_job_stream_is_404(self, live_service):
        with pytest.raises(StreamError, match="404"):
            list(live_service.stream_sweep("job-does-not-exist"))


class TestQueueGauges:
    def test_queue_depth_and_per_state_gauges(self, live_service):
        job = live_service.submit_analyze(fire_protection_system())
        assert live_service.wait(job["id"], timeout=60.0)["status"] == "done"
        text = live_service.metrics_text()
        assert "repro_queue_depth 0" in text
        assert 'repro_jobs_by_state{state="done"} 1' in text
        assert 'repro_jobs_by_state{state="queued"} 0' in text


class TestBatchAndWebhookPayload:
    def test_batch_size_drains_the_feed_in_chunks(self, live_service):
        live_service.start_monitor(
            fire_protection_system(), feed=SYNTH, batch_size=3
        )
        final = _wait_stopped(live_service)
        assert final["updates"] == 6
        kinds = [event.event for event in live_service.stream_monitor()]
        assert kinds.count("delta") == 6

    def test_invalid_batch_size_is_rejected(self, live_service):
        with pytest.raises(ServiceError, match="batch_size"):
            live_service.start_monitor(
                fire_protection_system(), feed=SYNTH, batch_size=0
            )

    def test_invalid_webhook_url_is_rejected(self, live_service):
        with pytest.raises(ServiceError, match="webhook"):
            live_service.start_monitor(
                fire_protection_system(), feed=SYNTH, webhook_url=123
            )
