"""HTTP front end: endpoints, wait-inline submissions, error codes."""

import json
import urllib.request

import pytest

from repro.fta.serializers import to_json_document
from repro.scenarios.serialization import scenario_to_dict
from repro.scenarios.scenario import probability_sweep
from repro.service.http import AnalysisService, ServiceClient, ServiceError, serve
from repro.workloads.library import fire_protection_system


@pytest.fixture(scope="module")
def live_service(tmp_path_factory):
    """One service + HTTP server shared by the module's tests."""
    store = tmp_path_factory.mktemp("store")
    service = AnalysisService(store_path=str(store), workers=2)
    server = serve(service, port=0)
    client = ServiceClient(f"http://127.0.0.1:{server.server_port}", timeout=120.0)
    yield client
    server.shutdown()
    server.server_close()
    service.stop()


class TestEndpoints:
    def test_health(self, live_service):
        health = live_service.health()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert "jobs" in health and "store" in health

    def test_backends(self, live_service):
        backends = live_service.backends()
        assert "maxsat" in backends and "mpmcs" in backends["maxsat"]

    def test_analyze_submit_poll_fetch(self, live_service):
        job = live_service.submit_analyze(
            fire_protection_system(), analyses=["mpmcs", "top_event"]
        )
        assert job["status"] in ("queued", "running", "done")
        done = live_service.wait(job["id"], timeout=60.0)
        assert done["status"] == "done"
        report = done["result"]["report"]
        assert report["mpmcs"]["events"] == ["x1", "x2"]
        assert report["top_event"]["exact"] == pytest.approx(0.030021740460)

    def test_sweep_with_explicit_scenarios(self, live_service):
        scenarios = [
            scenario_to_dict(scenario)
            for scenario in probability_sweep("x1", [0.001, 0.01, 0.1])
        ]
        job = live_service.submit_sweep(fire_protection_system(), scenarios)
        done = live_service.wait(job["id"], timeout=60.0)
        assert done["status"] == "done"
        result = done["result"]
        assert result["num_scenarios"] == 3
        names = [outcome["name"] for outcome in result["report"]["scenarios"]]
        assert names == ["x1=0.001", "x1=0.01", "x1=0.1"]

    def test_sweep_with_family_spec(self, live_service):
        job = live_service.submit_sweep(
            fire_protection_system(),
            {"family": "mission_time_sweep", "factors": [0.5, 1.0, 2.0]},
        )
        done = live_service.wait(job["id"], timeout=60.0)
        assert done["status"] == "done"
        assert done["result"]["num_scenarios"] == 3

    def test_batch(self, live_service):
        trees = [fire_protection_system(), fire_protection_system()]
        job = live_service.submit_batch(trees, analyses=["mpmcs"])
        done = live_service.wait(job["id"], timeout=60.0)
        assert done["status"] == "done"
        assert done["result"]["num_ok"] == 2

    def test_wait_inline_submission(self, live_service):
        """wait=true blocks the POST and returns the result in one round trip."""
        document = {
            "tree": to_json_document(fire_protection_system()),
            "analyses": ["mpmcs"],
            "wait": True,
            "timeout": 60,
        }
        request = urllib.request.Request(
            f"{live_service.base_url}/analyze",
            data=json.dumps(document).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=120) as response:
            assert response.status == 200
            payload = json.loads(response.read())
        assert payload["job"]["status"] == "done"
        assert payload["job"]["result"]["report"]["mpmcs"]["events"] == ["x1", "x2"]

    def test_jobs_listing(self, live_service):
        live_service.wait(
            live_service.submit_analyze(fire_protection_system())["id"], timeout=60.0
        )
        jobs = live_service.jobs()
        assert jobs and all("id" in job and "status" in job for job in jobs)


class TestObservabilityEndpoints:
    def test_health_exposes_per_kind_cache_stats(self, live_service):
        live_service.wait(
            live_service.submit_analyze(fire_protection_system())["id"], timeout=60.0
        )
        health = live_service.health()
        cache = health["cache"]
        assert {"entries", "hits", "misses", "store_hits", "store_misses"} <= set(cache)
        assert "by_kind" in cache

    def test_metrics_endpoint_serves_prometheus_text(self, live_service):
        live_service.wait(
            live_service.submit_analyze(fire_protection_system())["id"], timeout=60.0
        )
        text = live_service.metrics_text()
        assert "# TYPE repro_jobs_submitted_total counter" in text
        assert 'repro_jobs_completed_total{kind="analyze",status="done"}' in text
        assert "repro_queue_claim_latency_seconds_bucket" in text
        assert "repro_queue_depth" in text
        assert "repro_cache_misses_total" in text
        assert "repro_analyses_total" in text

    def test_completed_sweep_job_serves_a_nested_span_tree(self, live_service):
        scenarios = [
            scenario_to_dict(scenario)
            for scenario in probability_sweep("x1", [0.001, 0.01])
        ]
        job = live_service.submit_sweep(fire_protection_system(), scenarios)
        done = live_service.wait(job["id"], timeout=60.0)
        assert done["status"] == "done"
        trace = live_service.trace(job["id"])
        assert trace["name"] == "job:sweep"
        assert trace["attrs"]["job_id"] == job["id"]
        assert trace["status"] == "ok"
        names = set()

        def visit(node):
            names.add(node["name"])
            for child in node.get("children", []):
                visit(child)

        visit(trace)
        # The sweep runs as a one-stage campaign over per-scenario analyses.
        assert "campaign" in names
        assert any(name.startswith("stage:") for name in names)
        assert "analyze" in names

    def test_failed_job_still_serves_its_trace(self, live_service):
        job = live_service.submit_analyze({"name": "broken"})  # no top/events
        done = live_service.wait(job["id"], timeout=60.0)
        assert done["status"] == "failed"
        trace = live_service.trace(job["id"])
        assert trace["status"] == "error"
        assert trace["error_type"]

    def test_trace_conflicts_until_terminal(self, tmp_path):
        service = AnalysisService(store_path=None, workers=1)
        server = serve(service, port=0, background=True, start_workers=False)
        try:
            client = ServiceClient(f"http://127.0.0.1:{server.server_port}")
            job = client.submit_analyze(fire_protection_system())
            with pytest.raises(ServiceError, match="409"):
                client.trace(job["id"])
        finally:
            server.shutdown()
            server.server_close()

    def test_trace_unknown_job_404(self, live_service):
        with pytest.raises(ServiceError, match="404"):
            live_service.trace("job-999999")


class TestErrors:
    def test_malformed_tree_job_fails_cleanly(self, live_service):
        job = live_service.submit_analyze({"name": "broken"})  # no top/events
        done = live_service.wait(job["id"], timeout=60.0)
        assert done["status"] == "failed"
        assert done["error"]

    def test_missing_tree_rejected_at_submit(self, live_service):
        with pytest.raises(ServiceError, match="400"):
            live_service._request("POST", "/analyze", {"analyses": ["mpmcs"]})

    def test_sweep_without_scenarios_rejected(self, live_service):
        with pytest.raises(ServiceError, match="400"):
            live_service._request(
                "POST", "/sweep", {"tree": to_json_document(fire_protection_system())}
            )

    def test_unknown_job_404(self, live_service):
        with pytest.raises(ServiceError, match="404"):
            live_service.job("job-999999")

    def test_unknown_path_404(self, live_service):
        with pytest.raises(ServiceError, match="404"):
            live_service._request("GET", "/nope")

    def test_non_numeric_timeout_rejected_before_enqueue(self, live_service):
        jobs_before = len(live_service.jobs())
        with pytest.raises(ServiceError, match="400"):
            live_service._request(
                "POST",
                "/analyze",
                {
                    "tree": to_json_document(fire_protection_system()),
                    "wait": True,
                    "timeout": "soon",
                },
            )
        # The invalid request must not have left an orphan job behind.
        assert len(live_service.jobs()) == jobs_before

    def test_invalid_json_body_400(self, live_service):
        request = urllib.request.Request(
            f"{live_service.base_url}/analyze",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400


class TestCancelOverHTTP:
    def test_cancel_queued_job(self, tmp_path):
        # A service whose pool never starts: jobs stay queued and cancellable.
        service = AnalysisService(store_path=None, workers=1)
        server = serve(service, port=0, background=True, start_workers=False)
        try:
            client = ServiceClient(f"http://127.0.0.1:{server.server_port}")
            job = client.submit_analyze(fire_protection_system())
            cancelled = client.cancel(job["id"])
            assert cancelled["status"] == "cancelled"
        finally:
            server.shutdown()
            server.server_close()


class TestMaintenanceAndFrontierEndpoints:
    def _models(self):
        from repro.reliability import RepairableComponent
        from repro.scenarios.serialization import model_to_dict

        return {"x1": model_to_dict(RepairableComponent(1e-3, 0.01))}

    def test_maintenance_sweep_over_the_wire(self, live_service):
        job = live_service.submit_sweep(
            fire_protection_system(),
            {"family": "repair_rate_sweep", "event": "x1", "rates": [0.01, 0.1, 1.0]},
            models=self._models(),
            mission_time=1000.0,
        )
        done = live_service.wait(job["id"], timeout=60.0)
        assert done["status"] == "done"
        report = done["result"]["report"]
        names = [outcome["name"] for outcome in report["scenarios"]]
        assert names == ["mu(x1)=0.01@t=1000", "mu(x1)=0.1@t=1000", "mu(x1)=1@t=1000"]
        tops = [outcome["top_event"] for outcome in report["scenarios"]]
        assert tops == sorted(tops, reverse=True)  # faster repairs, lower risk

    def test_frontier_job_end_to_end(self, live_service):
        job = live_service.submit_frontier(
            fire_protection_system(),
            [{"event": "x1", "cost": 2.0}, {"event": "x5", "cost": 1.0}],
            method="exact",
        )
        done = live_service.wait(job["id"], timeout=60.0)
        assert done["status"] == "done"
        frontier = done["result"]["frontier"]
        assert frontier["points"][0]["cost"] == 0
        assert frontier["points"][0]["mpmcs_probability"] == pytest.approx(0.02)
        assert frontier["points"][-1]["mpmcs_probability"] == pytest.approx(0.002)
        costs = [point["cost"] for point in frontier["points"]]
        assert costs == sorted(costs)

    def test_invalid_patch_rejected_at_submit_with_400(self, live_service):
        # scale factor 0 is invalid; pre-validation must reject the submission
        # outright (HTTP 400) instead of queueing a job that fails per scenario
        with pytest.raises(ServiceError, match="400"):
            live_service.submit_sweep(
                fire_protection_system(),
                [{"name": "bad", "patches": [
                    {"type": "scale_probability", "event": "x1", "factor": 0}]}],
            )

    def test_maintenance_sweep_without_models_rejected_with_400(self, live_service):
        with pytest.raises(ServiceError, match="400"):
            live_service.submit_sweep(
                fire_protection_system(),
                {"family": "repair_rate_sweep", "event": "x1", "rates": [0.1]},
            )

    def test_malformed_frontier_action_rejected_with_400(self, live_service):
        with pytest.raises(ServiceError, match="400"):
            live_service.submit_frontier(
                fire_protection_system(), [{"event": "x1", "cost": -1.0}]
            )
        with pytest.raises(ServiceError, match="400"):
            live_service.submit_frontier(
                fire_protection_system(),
                [{"event": "unknown-event", "cost": 1.0}],
            )
        with pytest.raises(ServiceError, match="400"):
            live_service.submit_frontier(
                fire_protection_system(),
                [{"event": "x1", "cost": 1.0}],
                method="simplex",
            )

    def test_incomplete_family_spec_rejected_with_400_not_a_crash(self, live_service):
        # A spec missing its required field used to raise a bare KeyError out
        # of the handler (connection dropped); it must be a clean HTTP 400.
        with pytest.raises(ServiceError, match="400"):
            live_service.submit_sweep(
                fire_protection_system(),
                {"family": "scale_sweep", "factors": [1.0]},  # no "event"
            )
        with pytest.raises(ServiceError, match="400"):
            live_service.submit_sweep(
                fire_protection_system(),
                {"family": "probability_sweep", "event": "x1", "values": ["abc"]},
            )

    def test_incompatible_maintenance_model_rejected_at_submit(self, live_service):
        # x2 has no repairable model in the payload: binding must fail with a
        # 400 at submission, not once per scenario mid-job.
        with pytest.raises(ServiceError, match="400"):
            live_service.submit_sweep(
                fire_protection_system(),
                [{"name": "s", "patches": [
                    {"type": "set_repair_rate", "event": "x2", "repair_rate": 0.5}]}],
                models=self._models(),  # models only x1
                mission_time=1000.0,
            )

    def test_conflicting_spec_mission_time_rejected_at_submit(self, live_service):
        # The base tree freezes at the payload's mission_time; a different
        # spec-level time would corrupt every delta.
        with pytest.raises(ServiceError, match="400"):
            live_service.submit_sweep(
                fire_protection_system(),
                {"family": "repair_rate_sweep", "event": "x1", "rates": [0.1],
                 "mission_time": 2000.0},
                models=self._models(),
                mission_time=1000.0,
            )


class TestCampaignEndpoints:
    def _spec(self):
        from repro.campaigns import CampaignSpec, report_stage, sweep_stage
        from repro.fta.serializers import to_json_document as doc

        scenarios = [
            scenario_to_dict(scenario)
            for scenario in probability_sweep("x1", [0.001, 0.01, 0.1])
        ]
        return CampaignSpec(
            name="http-campaign",
            tree=doc(fire_protection_system()),
            stages=(
                sweep_stage("sweep", scenarios, chunk_size=1),
                report_stage("final", depends_on=("sweep",)),
            ),
        )

    def test_submit_status_result_resume(self, live_service):
        spec = self._spec()
        response = live_service.submit_campaign(spec, wait=True, timeout=120)
        job = response["job"]
        assert response["campaign"] == spec.campaign_id()
        assert job["status"] == "done"
        outcome = job["result"]
        assert outcome["kind"] == "campaign"
        assert sum(stage["executed"] for stage in outcome["stages"]) == 4

        status = live_service.campaign(spec.campaign_id())
        assert status["status"] == "done"
        assert [(s["chunks_done"], s["chunks_total"]) for s in status["stages"]] == [
            (3, 3),
            (1, 1),
        ]
        assert status["jobs"]  # the submitting job is recorded

        result = live_service.campaign_result(spec.campaign_id())
        assert result["status"] == "done"
        assert set(result["stages"]) == {"sweep", "final"}

        listing = live_service.campaigns()
        assert any(entry["campaign"] == spec.campaign_id() for entry in listing)

        # Resume by id: everything is served from the ledger.
        resumed = live_service.resume_campaign(spec.campaign_id())
        done = live_service.wait(resumed["job"]["id"], timeout=120)
        assert done["status"] == "done"
        assert sum(stage["executed"] for stage in done["result"]["stages"]) == 0
        assert sum(stage["ledger_hits"] for stage in done["result"]["stages"]) == 4

    def test_resubmitting_spec_is_a_resume(self, live_service):
        spec = self._spec()
        first = live_service.submit_campaign(spec, wait=True, timeout=120)
        again = live_service.submit_campaign(spec.to_dict(), wait=True, timeout=120)
        assert again["campaign"] == first["campaign"]
        assert sum(s["executed"] for s in again["job"]["result"]["stages"]) == 0

    def test_unknown_campaign_404(self, live_service):
        with pytest.raises(ServiceError, match="404"):
            live_service.campaign("no-such-campaign")
        with pytest.raises(ServiceError, match="404"):
            live_service.resume_campaign("no-such-campaign")

    def test_malformed_spec_rejected_at_submit(self, live_service):
        with pytest.raises(ServiceError, match="400"):
            live_service.submit_campaign({"name": "broken"})

    def test_campaign_result_conflict_until_done(self, tmp_path):
        # Workers never start: the campaign stays queued, result must be 409.
        service = AnalysisService(store_path=str(tmp_path), workers=1)
        server = serve(service, port=0, background=True, start_workers=False)
        try:
            client = ServiceClient(f"http://127.0.0.1:{server.server_port}")
            response = client.submit_campaign(self._spec())
            with pytest.raises(ServiceError, match="409"):
                client.campaign_result(response["campaign"])
        finally:
            server.shutdown()
            server.server_close()
