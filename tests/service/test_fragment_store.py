"""CNF fragments flowing through the persistent artifact store.

The incremental MaxSAT path stores per-gate :class:`CNFFragment` artifacts
under the ``subtree-cnf`` kind; they must serialise through the disk store's
wire format so parallel sweep workers (and later service runs) reuse the
encodings a previous process produced.
"""

from repro.api.cache import ARTIFACT_SUBTREE_CNF, ArtifactCache
from repro.core.encoder import assemble_structure_cnf
from repro.logic.formula import AtLeast, Var, Xor
from repro.logic.tseitin import CNFFragment, encode_fragment
from repro.service.store import DiskArtifactStore
from repro.workloads.generator import random_fault_tree


class TestFragmentWireFormat:
    def test_fragment_survives_store_round_trip(self, tmp_path):
        store = DiskArtifactStore(tmp_path / "store")
        fragment = encode_fragment(
            Xor((Var("a"), AtLeast(2, (Var("b"), Var("c"), Var("d"))))),
            ["a", "b", "c", "d"],
        )
        store.store("k" * 64, ARTIFACT_SUBTREE_CNF, fragment)
        found, restored = store.load("k" * 64, ARTIFACT_SUBTREE_CNF)
        assert found
        assert restored == fragment
        assert isinstance(restored, CNFFragment)

    def test_fragment_dict_wire_form_round_trips(self):
        fragment = encode_fragment(AtLeast(2, (Var("x"), Var("y"), Var("z"))), ["x", "y", "z"])
        assert CNFFragment.from_dict(fragment.to_dict()) == fragment


class TestCrossCacheFragmentReuse:
    def test_second_cache_hits_fragments_from_store(self, tmp_path):
        """A cold cache pointed at a warm store re-assembles without encoding."""
        store = DiskArtifactStore(tmp_path / "store")
        tree = random_fault_tree(num_basic_events=20, seed=13, voting_ratio=0.3)

        first = ArtifactCache(backend=store)
        original = assemble_structure_cnf(tree, first)
        assert first.misses_for(ARTIFACT_SUBTREE_CNF) == len(tree.gates)
        assert first.store_misses_for(ARTIFACT_SUBTREE_CNF) == len(tree.gates)

        second = ArtifactCache(backend=store)  # fresh memory tier, warm disk
        reassembled = assemble_structure_cnf(tree, second)
        assert second.store_hits_for(ARTIFACT_SUBTREE_CNF) == len(tree.gates)
        assert second.stats()["by_kind"][ARTIFACT_SUBTREE_CNF]["store_hits"] == len(
            tree.gates
        )
        assert [c.literals for c in reassembled.cnf] == [
            c.literals for c in original.cnf
        ]
        assert reassembled.root_literal == original.root_literal
