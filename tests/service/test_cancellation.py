"""Cooperative cancellation and per-job timeouts through the worker stack."""

import time

import pytest

from repro.fta.serializers import to_json_document
from repro.service.jobs import JobCancelled, JobQueue, JobStatus, JobTimeout
from repro.service.workers import JobRunner, WorkerPool, _JobGuard
from repro.workloads.library import fire_protection_system


def _tree_doc():
    return to_json_document(fire_protection_system())


class TestJobGuard:
    def test_no_timeout_no_cancel_is_quiet(self):
        queue = JobQueue()
        job = queue.submit("analyze", {})
        queue.claim(timeout=0)
        guard = _JobGuard(job)
        guard.check()
        assert guard() is False

    def test_cancel_event_raises_job_cancelled(self):
        queue = JobQueue()
        job = queue.submit("analyze", {})
        queue.claim(timeout=0)
        job.cancel_event.set()
        guard = _JobGuard(job)
        assert guard() is True
        with pytest.raises(JobCancelled):
            guard.check()

    def test_expired_deadline_raises_job_timeout(self):
        queue = JobQueue()
        job = queue.submit("analyze", {}, timeout=0.001)
        queue.claim(timeout=0)
        time.sleep(0.01)
        guard = _JobGuard(job)
        assert guard() is True
        with pytest.raises(JobTimeout, match="timed out after"):
            guard.check()


class TestRunnerCancellation:
    def test_cancelled_job_raises_before_work(self, tmp_path):
        queue = JobQueue()
        job = queue.submit("analyze", {"tree": _tree_doc()})
        queue.claim(timeout=0)
        job.cancel_event.set()
        runner = JobRunner(store_path=str(tmp_path))
        with pytest.raises(JobCancelled):
            runner.execute(job)

    def test_cancellation_aborts_batch_between_items(self, tmp_path):
        queue = JobQueue()
        documents = [_tree_doc() for _ in range(5)]
        job = queue.submit("batch", {"trees": documents, "analyses": ["mpmcs"]})
        queue.claim(timeout=0)
        runner = JobRunner(store_path=str(tmp_path))
        guard = _JobGuard(job)
        original_check = guard.check
        seen = {"items": 0}

        def counting_check():
            # Cancel once the second item is about to start: the batch must
            # abort there instead of recording the rest as failures.
            seen["items"] += 1
            if seen["items"] == 2:
                job.cancel_event.set()
            original_check()

        guard.check = counting_check
        with pytest.raises(JobCancelled):
            runner._run_batch(job.payload, guard)
        assert seen["items"] == 2

    def test_guard_resets_portfolio_hook_after_execute(self, tmp_path):
        queue = JobQueue()
        job = queue.submit("analyze", {"tree": _tree_doc()})
        queue.claim(timeout=0)
        runner = JobRunner(store_path=str(tmp_path))
        runner.execute(job)
        portfolio = getattr(runner.session.solver, "portfolio", None)
        if portfolio is not None:
            assert portfolio.external_stop is None


class TestWorkerPoolSettlement:
    def _drain(self, queue, job, timeout=30.0):
        settled = queue.wait(job.id, timeout=timeout)
        assert settled.status.terminal, settled.status
        return settled

    def test_timed_out_job_fails_with_distinguishable_reason(self, tmp_path):
        queue = JobQueue()
        pool = WorkerPool(queue, workers=1, store_path=str(tmp_path))
        pool.start()
        try:
            # Several items: even if the first guard check passes, a later
            # item boundary lands past the 1 ms deadline.
            job = queue.submit(
                "batch",
                {"trees": [_tree_doc() for _ in range(20)], "analyses": ["mpmcs"]},
                timeout=0.001,
            )
            settled = self._drain(queue, job)
            assert settled.status is JobStatus.FAILED
            assert "timed out after" in settled.error
        finally:
            pool.stop()

    def test_cancel_running_job_settles_cancelled(self, tmp_path):
        queue = JobQueue()
        pool = WorkerPool(queue, workers=1, store_path=str(tmp_path), poll_interval=0.02)
        pool.start()
        try:
            # Enough items that the job is still running when cancel lands.
            job = queue.submit(
                "batch",
                {"trees": [_tree_doc() for _ in range(200)], "analyses": ["mpmcs"]},
            )
            deadline = time.monotonic() + 10.0
            while queue.get(job.id).status is JobStatus.QUEUED:
                if time.monotonic() > deadline:
                    pytest.fail("job never started")
                time.sleep(0.005)
            queue.cancel(job.id)
            settled = self._drain(queue, job)
            assert settled.status is JobStatus.CANCELLED
        finally:
            pool.stop()

    def test_untimed_job_still_completes(self, tmp_path):
        queue = JobQueue()
        pool = WorkerPool(queue, workers=1, store_path=str(tmp_path))
        pool.start()
        try:
            job = queue.submit("analyze", {"tree": _tree_doc(), "analyses": ["mpmcs"]})
            settled = self._drain(queue, job)
            assert settled.status is JobStatus.DONE
        finally:
            pool.stop()
