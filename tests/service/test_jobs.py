"""Job queue semantics: FIFO order, state transitions, cancellation, trimming."""

import threading

import pytest

from repro.service.jobs import JobError, JobQueue, JobStatus


class TestSubmitClaim:
    def test_fifo_order(self):
        queue = JobQueue()
        first = queue.submit("analyze", {"n": 1})
        second = queue.submit("analyze", {"n": 2})
        assert queue.claim(timeout=0).id == first.id
        assert queue.claim(timeout=0).id == second.id
        assert queue.claim(timeout=0) is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(JobError):
            JobQueue().submit("mystery", {})

    def test_claim_marks_running_with_timestamp(self):
        queue = JobQueue()
        job = queue.submit("sweep", {})
        claimed = queue.claim(timeout=0)
        assert claimed.id == job.id
        assert claimed.status is JobStatus.RUNNING
        assert claimed.started_at is not None

    def test_claim_blocks_until_submission(self):
        queue = JobQueue()
        claimed = []

        def worker():
            claimed.append(queue.claim(timeout=5.0))

        thread = threading.Thread(target=worker)
        thread.start()
        queue.submit("analyze", {})
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert claimed[0] is not None and claimed[0].status is JobStatus.RUNNING


class TestPriority:
    def test_higher_priority_claimed_first(self):
        queue = JobQueue()
        bulk = queue.submit("sweep", {}, priority=0)
        control = queue.submit("campaign", {"spec": {}}, priority=10)
        assert queue.claim(timeout=0).id == control.id
        assert queue.claim(timeout=0).id == bulk.id

    def test_fifo_within_equal_priority(self):
        queue = JobQueue()
        ids = [queue.submit("analyze", {}, priority=3).id for _ in range(3)]
        assert [queue.claim(timeout=0).id for _ in range(3)] == ids

    def test_priority_beats_submission_order(self):
        queue = JobQueue()
        first_low = queue.submit("analyze", {}, priority=0)
        high = queue.submit("analyze", {}, priority=5)
        second_low = queue.submit("analyze", {}, priority=0)
        claimed = [queue.claim(timeout=0).id for _ in range(3)]
        assert claimed == [high.id, first_low.id, second_low.id]

    def test_priority_recorded_on_job_document(self):
        queue = JobQueue()
        job = queue.submit("analyze", {}, priority=7, timeout=12.5)
        document = job.to_dict()
        assert document["priority"] == 7
        assert document["timeout"] == 12.5


class TestSettlement:
    def test_finish_carries_result(self):
        queue = JobQueue()
        job = queue.submit("analyze", {})
        queue.claim(timeout=0)
        settled = queue.finish(job.id, {"answer": 42})
        assert settled.status is JobStatus.DONE
        assert settled.result == {"answer": 42}
        assert settled.finished_at is not None

    def test_fail_carries_error(self):
        queue = JobQueue()
        job = queue.submit("analyze", {})
        queue.claim(timeout=0)
        settled = queue.fail(job.id, "boom")
        assert settled.status is JobStatus.FAILED
        assert settled.error == "boom"

    def test_cannot_finish_unclaimed_job(self):
        queue = JobQueue()
        job = queue.submit("analyze", {})
        with pytest.raises(JobError):
            queue.finish(job.id, {})

    def test_wait_returns_settled_job(self):
        queue = JobQueue()
        job = queue.submit("analyze", {})

        def worker():
            claimed = queue.claim(timeout=5.0)
            queue.finish(claimed.id, {"ok": True})

        thread = threading.Thread(target=worker)
        thread.start()
        settled = queue.wait(job.id, timeout=5.0)
        thread.join()
        assert settled.status is JobStatus.DONE

    def test_wait_timeout_returns_current_state(self):
        queue = JobQueue()
        job = queue.submit("analyze", {})
        assert queue.wait(job.id, timeout=0.01).status is JobStatus.QUEUED


class TestCancel:
    def test_cancel_queued_job(self):
        queue = JobQueue()
        job = queue.submit("analyze", {})
        cancelled = queue.cancel(job.id)
        assert cancelled.status is JobStatus.CANCELLED
        assert queue.claim(timeout=0) is None  # never handed to a worker

    def test_cancel_running_job_is_cooperative(self):
        queue = JobQueue()
        job = queue.submit("analyze", {})
        queue.claim(timeout=0)
        requested = queue.cancel(job.id)
        # The job keeps running; the worker observes the flag and settles it.
        assert requested.status is JobStatus.RUNNING
        assert requested.cancel_requested
        settled = queue.finish_cancelled(job.id)
        assert settled.status is JobStatus.CANCELLED

    def test_cancel_terminal_job_rejected(self):
        queue = JobQueue()
        job = queue.submit("analyze", {})
        queue.claim(timeout=0)
        queue.finish(job.id, {})
        with pytest.raises(JobError):
            queue.cancel(job.id)

    def test_unknown_id(self):
        with pytest.raises(JobError):
            JobQueue().get("job-999999")

    def test_claim_survives_cancelled_job_trimmed_from_ledger(self):
        """A cancelled id still in the pending deque must not kill a worker."""
        queue = JobQueue(max_finished=2)
        first = queue.submit("analyze", {})
        second = queue.submit("analyze", {})
        queue.claim(timeout=0)
        queue.claim(timeout=0)  # both running; pending deque is empty
        cancelled = queue.submit("analyze", {})
        queue.cancel(cancelled.id)  # cancelled while its id is still pending
        # Two settlements trim the cancelled entry from the ledger.
        queue.finish(first.id, {})
        queue.finish(second.id, {})
        survivor = queue.submit("analyze", {})
        claimed = queue.claim(timeout=0)  # must skip the dangling id, not KeyError
        assert claimed is not None and claimed.id == survivor.id


class TestLedger:
    def test_finished_jobs_trimmed(self):
        queue = JobQueue(max_finished=2)
        ids = []
        for index in range(4):
            job = queue.submit("analyze", {"n": index})
            queue.claim(timeout=0)
            queue.finish(job.id, {})
            ids.append(job.id)
        remaining = {job.id for job in queue.jobs()}
        assert ids[0] not in remaining and ids[1] not in remaining
        assert ids[2] in remaining and ids[3] in remaining

    def test_stats_counts(self):
        queue = JobQueue()
        queue.submit("analyze", {})
        running = queue.submit("analyze", {})
        queue.claim(timeout=0)  # claims the first
        stats = queue.stats()
        assert stats["queued"] == 1 and stats["running"] == 1 and stats["total"] == 2
        assert running.status is JobStatus.QUEUED

    def test_closed_queue_rejects_submissions_and_drains(self):
        queue = JobQueue()
        queue.submit("analyze", {})
        queue.close()
        with pytest.raises(JobError):
            queue.submit("analyze", {})
        assert queue.claim(timeout=0) is not None  # drains what was queued
        assert queue.claim(timeout=0) is None

    def test_to_dict_shape(self):
        queue = JobQueue()
        job = queue.submit("sweep", {"tree": {}})
        document = job.to_dict()
        assert document["id"] == job.id
        assert document["kind"] == "sweep"
        assert document["status"] == "queued"
        assert "result" not in document
        assert "result" in job.to_dict(include_result=True)
