"""Disk artifact store: format integrity, contention, crash and cold-start tests."""

import os
import pickle
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.api.cache import ARTIFACT_CUT_SETS, ARTIFACT_SUBTREE_CUT_SETS, ArtifactCache
from repro.api.session import AnalysisSession
from repro.service.store import FORMAT_VERSION, MAGIC, DiskArtifactStore
from repro.workloads.library import fire_protection_system

KEY = "a" * 64


class TestRoundTrip:
    def test_store_then_load(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        value = (frozenset({"x1", "x2"}), frozenset({"x5"}))
        store.store(KEY, "cut-sets", value)
        found, loaded = store.load(KEY, "cut-sets")
        assert found and loaded == value

    def test_missing_key_is_a_miss(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        found, value = store.load("f" * 64, "cut-sets")
        assert not found and value is None
        assert store.stats()["load_misses"] == 1

    def test_kinds_are_namespaced(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        store.store(KEY, "kind-a", 1)
        store.store(KEY, "kind-b", 2)
        assert store.load(KEY, "kind-a") == (True, 1)
        assert store.load(KEY, "kind-b") == (True, 2)
        assert len(store) == 2

    def test_unpicklable_value_is_skipped_not_raised(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        store.store(KEY, "kind", lambda: None)  # lambdas don't pickle
        assert store.stats()["skipped_unpicklable"] == 1
        assert store.load(KEY, "kind")[0] is False

    def test_second_store_handle_sees_entries(self, tmp_path):
        DiskArtifactStore(tmp_path).store(KEY, "kind", {"v": 1})
        assert DiskArtifactStore(tmp_path).load(KEY, "kind") == (True, {"v": 1})


class TestCorruption:
    """Torn and corrupt entries must read as misses and be dropped."""

    def _entry_path(self, store: DiskArtifactStore) -> Path:
        store.store(KEY, "kind", list(range(100)))
        path = store.path_for(KEY, "kind")
        assert path.is_file()
        return path

    def test_truncated_entry_detected_and_dropped(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        path = self._entry_path(store)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])  # torn write
        found, _ = store.load(KEY, "kind")
        assert not found
        assert not path.exists(), "corrupt entry must be removed"
        assert store.stats()["corrupt_dropped"] == 1

    def test_bit_flip_in_payload_detected(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        path = self._entry_path(store)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert store.load(KEY, "kind")[0] is False

    def test_foreign_file_detected(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        path = store.path_for(KEY, "kind")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not an artifact at all")
        assert store.load(KEY, "kind")[0] is False

    def test_wrong_format_version_detected(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        path = self._entry_path(store)
        blob = bytearray(path.read_bytes())
        # The 4 bytes after the magic are the big-endian format version.
        blob[len(MAGIC) : len(MAGIC) + 4] = (FORMAT_VERSION + 1).to_bytes(4, "big")
        path.write_bytes(bytes(blob))
        assert store.load(KEY, "kind")[0] is False

    def test_raw_pickle_is_never_trusted(self, tmp_path):
        """An unchecksummed file (e.g. from a foreign tool) must not load."""
        store = DiskArtifactStore(tmp_path)
        path = store.path_for(KEY, "kind")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps({"v": 1}))
        assert store.load(KEY, "kind")[0] is False

    def test_sweep_temp_files(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        path = store.path_for(KEY, "kind")
        path.parent.mkdir(parents=True, exist_ok=True)
        (path.parent / f".{KEY[:8]}.abandoned.tmp").write_bytes(b"partial")
        assert store.sweep_temp_files() == 1


class TestContention:
    def test_concurrent_writers_same_key(self, tmp_path):
        """Racing writers of one content-addressed entry are benign."""
        value = {"payload": list(range(500))}
        errors = []

        def hammer():
            try:
                store = DiskArtifactStore(tmp_path)
                for _ in range(25):
                    store.store(KEY, "kind", value)
                    found, loaded = store.load(KEY, "kind")
                    # os.replace is atomic: once any writer has published,
                    # every read sees a complete, verified entry.
                    assert found and loaded == value
            except Exception as exc:  # noqa: BLE001 - collected for the main thread
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert DiskArtifactStore(tmp_path).load(KEY, "kind") == (True, value)

    def test_concurrent_writers_distinct_keys(self, tmp_path):
        keys = [f"{index:02x}" * 32 for index in range(24)]
        errors = []

        def writer(part):
            try:
                store = DiskArtifactStore(tmp_path)
                for key in part:
                    store.store(key, "kind", {"key": key})
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(keys[index::4],)) for index in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        store = DiskArtifactStore(tmp_path)
        assert len(store) == len(keys)
        for key in keys:
            assert store.load(key, "kind") == (True, {"key": key})


class TestColdStart:
    """A fresh process must reuse artifacts a previous process computed."""

    def test_cold_start_reuses_warm_store(self, tmp_path):
        # Process 1: a real subprocess analyses the Fig. 1 tree against the store.
        script = (
            "from repro.api.cache import ArtifactCache\n"
            "from repro.api.session import AnalysisSession\n"
            "from repro.service.store import DiskArtifactStore\n"
            "from repro.workloads.library import fire_protection_system\n"
            f"cache = ArtifactCache(backend=DiskArtifactStore({str(tmp_path)!r}))\n"
            "session = AnalysisSession(cache=cache)\n"
            "report = session.analyze(fire_protection_system(),\n"
            "                         ['mpmcs', 'top_event', 'mcs'], backend='mocus')\n"
            "assert report.mpmcs.events == ('x1', 'x2')\n"
            "print(cache.store_hits, cache.store_misses)\n"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        first = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True, text=True
        )
        assert first.returncode == 0, first.stderr
        assert DiskArtifactStore(tmp_path).stats()["entries"] > 0

        # Process 2 (this one): a brand-new cache over the same store path.
        cache = ArtifactCache(backend=DiskArtifactStore(tmp_path))
        session = AnalysisSession(cache=cache)
        report = session.analyze(
            fire_protection_system(), ["mpmcs", "top_event", "mcs"], backend="mocus"
        )
        assert report.mpmcs.events == ("x1", "x2")
        assert cache.store_hits > 0, "cold-start process must hit the warm store"
        assert cache.misses_for(ARTIFACT_CUT_SETS) == 1  # memory miss ...
        assert cache._store_hits.get(ARTIFACT_CUT_SETS, 0) == 1  # ... served by disk

    def test_artifacts_survive_within_process_restart_simulation(self, tmp_path):
        """Same-process equivalent (fast path covered without a subprocess)."""
        first = ArtifactCache(backend=DiskArtifactStore(tmp_path))
        AnalysisSession(cache=first).analyze(
            fire_protection_system(), ["mcs"], backend="mocus"
        )
        assert first.store_hits == 0

        second = ArtifactCache(backend=DiskArtifactStore(tmp_path))
        AnalysisSession(cache=second).analyze(
            fire_protection_system(), ["mcs"], backend="mocus"
        )
        assert second.store_hits > 0
        assert second.stats()["store_hits"] == second.store_hits


class TestInvalidation:
    def test_invalidate_reaches_the_disk_tier(self, tmp_path):
        """Explicit invalidation must not be undone by a stale disk re-fetch."""
        store = DiskArtifactStore(tmp_path)
        cache = ArtifactCache(backend=store)
        tree = fire_protection_system()
        cache.get_or_compute(tree, "kind", lambda: "stale")
        assert cache.invalidate(tree) >= 1
        # Both tiers are empty now: the next probe recomputes.
        assert cache.get_or_compute(tree, "kind", lambda: "fresh") == "fresh"
        assert cache.store_hits == 0

    def test_memory_only_invalidation_keeps_disk_entries(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        cache = ArtifactCache(backend=store)
        tree = fire_protection_system()
        cache.get_or_compute(tree, "kind", lambda: "value")
        cache.invalidate(tree, include_backend=False)
        assert cache.get_or_compute(tree, "kind", lambda: "recomputed") == "value"
        assert cache.store_hits == 1

    def test_discard_removes_every_kind(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        store.store(KEY, "kind-a", 1)
        store.store(KEY, "kind-b", 2)
        assert store.discard(KEY) == 2
        assert store.load(KEY, "kind-a")[0] is False


class TestStoreStats:
    def test_stats_and_clear(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        store.store(KEY, "kind", [1, 2, 3])
        stats = store.stats()
        assert stats["writes"] == 1
        assert stats["entries"] == 1
        assert stats["format_version"] == FORMAT_VERSION
        assert store.size_bytes() > 0
        assert store.clear() == 1
        assert len(store) == 0

    def test_invalid_max_entries_rejected(self):
        with pytest.raises(ValueError):
            ArtifactCache(max_entries=0)


class TestEntriesMemoFreshness:
    def test_new_entry_refreshes_memoised_count(self, tmp_path):
        """Regression: store() must bump the memo so /health never reports a
        stale entry count while the service is writing heavily."""
        store = DiskArtifactStore(tmp_path)
        assert store.stats()["entries"] == 0  # memo populated (TTL starts now)
        store.store(KEY, "cut-sets", {"value": 1})
        assert store.stats()["entries"] == 1  # fresh without waiting the TTL out
        store.store("b" * 64, "cut-sets", {"value": 2})
        store.store("c" * 64, "bdd", {"value": 3})
        assert store.stats()["entries"] == 3

    def test_overwrites_do_not_inflate_the_count(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        assert store.stats()["entries"] == 0
        store.store(KEY, "cut-sets", {"value": 1})
        store.store(KEY, "cut-sets", {"value": 2})  # same key+kind: overwrite
        assert store.stats()["entries"] == 1

    def test_writes_before_first_stats_need_no_memo(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        store.store(KEY, "cut-sets", {"value": 1})  # no memo yet: nothing to bump
        assert store.stats()["entries"] == 1

    def test_concurrent_same_key_writers_do_not_overcount(self, tmp_path):
        """The check-rename-bump critical section: many threads racing on the
        same small key set must leave the memo at exactly the distinct count."""
        store = DiskArtifactStore(tmp_path)
        assert store.stats()["entries"] == 0  # arm the memo
        keys = [c * 64 for c in "abcde"]
        barrier = threading.Barrier(8)

        def hammer():
            barrier.wait()
            for key in keys:
                store.store(key, "cut-sets", {"key": key})

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert store.stats()["entries"] == len(keys)
        assert len(store) == len(keys)


class TestGarbageCollection:
    @staticmethod
    def _age(store, key, kind, seconds):
        path = store.path_for(key, kind)
        old = os.stat(path).st_mtime - seconds
        os.utime(path, (old, old))

    def test_noop_without_limits(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        store.store(KEY, "cut-sets", [1, 2, 3])
        summary = store.gc()
        assert summary == {"removed": 0, "removed_bytes": 0, "protected": 0}
        assert store.load(KEY, "cut-sets")[0]

    def test_age_based_eviction(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        store.store(KEY, "cut-sets", "old")
        store.store("b" * 64, "cut-sets", "fresh")
        self._age(store, KEY, "cut-sets", 3600)
        summary = store.gc(max_age_s=60)
        assert summary["removed"] == 1 and summary["removed_bytes"] > 0
        assert not store.load(KEY, "cut-sets")[0]
        assert store.load("b" * 64, "cut-sets")[0]

    def test_size_based_eviction_is_oldest_first(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        keys = [ch * 64 for ch in "abcd"]
        for index, key in enumerate(keys):
            store.store(key, "cut-sets", "x" * 100)
            self._age(store, key, "cut-sets", (len(keys) - index) * 100)
        total = store.size_bytes()
        per_entry = total // len(keys)
        store.gc(max_bytes=total - per_entry)  # must evict exactly the oldest
        assert not store.load(keys[0], "cut-sets")[0]
        assert all(store.load(key, "cut-sets")[0] for key in keys[1:])

    def test_max_bytes_zero_clears_unprotected(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        store.store(KEY, "cut-sets", 1)
        store.store("b" * 64, "bdd", 2)
        summary = store.gc(max_bytes=0)
        assert summary["removed"] == 2
        assert len(store) == 0

    def test_running_campaign_ledger_is_protected(self, tmp_path):
        from repro.campaigns import CampaignSpec, sweep_stage
        from repro.campaigns.ledger import CompletionLedger

        store = DiskArtifactStore(tmp_path)
        spec = CampaignSpec(
            name="gc-test",
            tree={
                "name": "t",
                "top": "TOP",
                "events": [{"name": "A", "probability": 0.1}],
                "gates": [{"name": "TOP", "type": "or", "children": ["A"]}],
            },
            stages=(sweep_stage("s", [{"name": "s0", "patches": []}]),),
        )
        ledger = CompletionLedger(store, spec.campaign_id())
        ledger.store_state(status="running", spec_document=spec.to_dict(), name=spec.name)
        ledger.store_chunk(stage="s", index=0, chunk_hash="c" * 64, result={"ok": 1}, attempts=1)
        store.store(KEY, "cut-sets", "ordinary cache entry")
        summary = store.gc(max_bytes=0, max_age_s=0)
        # Both ledger records survive; the cache entry does not.
        assert summary["protected"] >= 2
        assert ledger.load_chunk("c" * 64)[0]
        assert ledger.load_state()["status"] == "running"
        assert not store.load(KEY, "cut-sets")[0]

    def test_terminal_campaign_ledger_is_evictable(self, tmp_path):
        from repro.campaigns import CampaignSpec, sweep_stage
        from repro.campaigns.ledger import CompletionLedger

        store = DiskArtifactStore(tmp_path)
        spec = CampaignSpec(
            name="gc-done",
            tree={
                "name": "t",
                "top": "TOP",
                "events": [{"name": "A", "probability": 0.1}],
                "gates": [{"name": "TOP", "type": "or", "children": ["A"]}],
            },
            stages=(sweep_stage("s", [{"name": "s0", "patches": []}]),),
        )
        ledger = CompletionLedger(store, spec.campaign_id())
        ledger.store_state(status="done", spec_document=spec.to_dict(), name=spec.name)
        ledger.store_chunk(stage="s", index=0, chunk_hash="c" * 64, result={"ok": 1}, attempts=1)
        summary = store.gc(max_bytes=0)
        assert summary["removed"] == 2 and summary["protected"] == 0
        assert not ledger.load_chunk("c" * 64)[0]

    def test_gc_counters_accumulate_in_stats(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        store.store(KEY, "cut-sets", "victim")
        store.gc(max_bytes=0)
        store.gc(max_age_s=10)
        stats = store.stats()
        assert stats["gc_runs"] == 2
        assert stats["gc_removed"] == 1
        assert stats["gc_removed_bytes"] > 0

    def test_entry_count_refreshes_after_gc(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        store.store(KEY, "cut-sets", 1)
        assert store.stats()["entries"] == 1
        store.gc(max_bytes=0)
        assert store.stats()["entries"] == 0
