"""Partitioned parallel sweeps: equivalence, merging, store sharing."""

import json

import pytest

from repro.api.cache import ArtifactCache
from repro.api.session import AnalysisSession
from repro.scenarios import SweepExecutor, mission_time_sweep, probability_sweep
from repro.service.jobs import JobQueue
from repro.service.store import DiskArtifactStore
from repro.service.workers import (
    JobRunner,
    WorkerPool,
    _partition,
    merge_scenario_reports,
    run_parallel_sweep,
)
from repro.fta.serializers import to_json_document
from repro.workloads.generator import random_fault_tree
from repro.workloads.library import fire_protection_system


def _canonical(report):
    return json.dumps(report.to_canonical_dict(), sort_keys=True)


class TestPartition:
    def test_partition_preserves_order_and_members(self):
        items = list(range(10))
        chunks = _partition(items, 3)
        assert [item for chunk in chunks for item in chunk] == items
        assert len(chunks) == 3
        assert {len(chunk) for chunk in chunks} == {3, 4}

    def test_partition_never_exceeds_items(self):
        assert len(_partition([1, 2], 8)) == 2
        assert _partition([], 4) == [[]]


class TestParallelEquivalence:
    def test_parallel_matches_sequential_fig1(self, tmp_path):
        tree = fire_protection_system()
        scenarios = probability_sweep("x1", start=1e-3, stop=0.5, steps=12)
        sequential = SweepExecutor().run(tree, scenarios)
        parallel = run_parallel_sweep(
            tree, scenarios, workers=3, store_path=str(tmp_path)
        )
        assert _canonical(parallel) == _canonical(sequential)
        assert len(parallel) == 12

    def test_parallel_matches_sequential_structural_scenarios(self, tmp_path):
        tree = random_fault_tree(num_basic_events=24, seed=11)
        scenarios = mission_time_sweep([0.5, 0.75, 1.0, 1.5, 2.0, 3.0])
        sequential = SweepExecutor().run(tree, scenarios)
        parallel = run_parallel_sweep(
            tree, scenarios, workers=2, store_path=str(tmp_path)
        )
        assert _canonical(parallel) == _canonical(sequential)

    def test_single_worker_degrades_to_sequential(self, tmp_path):
        tree = fire_protection_system()
        scenarios = probability_sweep("x1", [0.01, 0.02, 0.05])
        report = run_parallel_sweep(
            tree, scenarios, workers=1, store_path=str(tmp_path)
        )
        assert _canonical(report) == _canonical(SweepExecutor().run(tree, scenarios))

    def test_workers_share_store_artifacts(self, tmp_path):
        """A warm store turns every worker's enumeration into disk hits."""
        tree = random_fault_tree(num_basic_events=20, seed=5)
        scenarios = probability_sweep(
            sorted(tree.events)[0], start=1e-4, stop=0.1, steps=8
        )
        # Warm the store with one sequential pass.
        warm_cache = ArtifactCache(backend=DiskArtifactStore(tmp_path))
        SweepExecutor(AnalysisSession(cache=warm_cache)).run(tree, scenarios)

        report = run_parallel_sweep(
            tree, scenarios, workers=2, store_path=str(tmp_path)
        )
        assert report.cache_stats.get("store_hits", 0) > 0


class TestMerge:
    def test_merge_concatenates_outcomes_and_sums_stats(self):
        tree = fire_protection_system()
        first = SweepExecutor().run(tree, probability_sweep("x1", [0.01, 0.02]))
        second = SweepExecutor().run(tree, probability_sweep("x1", [0.05, 0.1]))
        merged = merge_scenario_reports([first, second])
        assert [outcome.name for outcome in merged.outcomes] == [
            "x1=0.01", "x1=0.02", "x1=0.05", "x1=0.1",
        ]
        assert merged.base_top_event == first.base_top_event
        assert merged.cache_stats["misses"] == (
            first.cache_stats["misses"] + second.cache_stats["misses"]
        )

    def test_merge_empty_rejected(self):
        from repro.exceptions import ReproError

        with pytest.raises(ReproError):
            merge_scenario_reports([])


class TestWorkerPoolExecution:
    def test_pool_runs_jobs_through_runner(self, tmp_path):
        queue = JobQueue()
        pool = WorkerPool(queue, workers=2, store_path=str(tmp_path)).start()
        try:
            document = to_json_document(fire_protection_system())
            analyze = queue.submit("analyze", {"tree": document, "analyses": ["mpmcs"]})
            sweep = queue.submit(
                "sweep",
                {
                    "tree": document,
                    "scenarios": {
                        "family": "probability_sweep",
                        "event": "x1",
                        "values": [0.001, 0.01, 0.1],
                    },
                },
            )
            analyze_done = queue.wait(analyze.id, timeout=60.0)
            sweep_done = queue.wait(sweep.id, timeout=60.0)
            assert analyze_done.status.value == "done", analyze_done.error
            assert sweep_done.status.value == "done", sweep_done.error
            assert analyze_done.result["report"]["mpmcs"]["events"] == ["x1", "x2"]
            assert sweep_done.result["num_scenarios"] == 3
        finally:
            pool.stop()

    def test_runner_batch_isolates_failures(self, tmp_path):
        runner = JobRunner(store_path=str(tmp_path))
        good = to_json_document(fire_protection_system())
        result = runner._run_batch({"trees": [good, {"name": "broken"}], "analyses": ["mpmcs"]})
        assert result["num_ok"] == 1
        assert result["items"][0]["ok"] is True
        assert result["items"][1]["ok"] is False and result["items"][1]["error"]

    def test_sweep_workers_service_default_applies(self, tmp_path):
        """workers omitted or 0 in the payload falls back to the service default."""
        runner = JobRunner(store_path=str(tmp_path), sweep_workers=2)
        payload = {
            "tree": to_json_document(fire_protection_system()),
            "scenarios": {
                "family": "probability_sweep", "event": "x1", "values": [0.01, 0.1],
            },
        }
        assert runner._run_sweep(dict(payload))["workers"] == 2
        assert runner._run_sweep(dict(payload, workers=0))["workers"] == 2
        assert runner._run_sweep(dict(payload, workers=1))["workers"] == 1

    def test_runner_rejects_malformed_payloads(self, tmp_path):
        from repro.service.jobs import JobError

        runner = JobRunner()
        with pytest.raises(JobError):
            runner._run_analyze({})
        with pytest.raises(JobError):
            runner._run_sweep({"tree": to_json_document(fire_protection_system())})
        with pytest.raises(JobError):
            runner._run_batch({"trees": []})
