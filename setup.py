"""Setuptools shim.

The execution environment is offline and ships neither the ``wheel`` package
nor a PEP 660-capable setuptools, so ``pip install -e .`` falls back to the
legacy ``setup.py develop`` code path provided by this file.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
