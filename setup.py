"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file exists for the
offline execution environment, which ships neither the ``wheel`` package nor
a PEP 660-capable toolchain.  There, install in development mode with the
legacy code path this file provides::

    python setup.py develop

On a normal host, ``pip install -e .`` works directly (pip's build isolation
resolves ``wheel``).
"""

from setuptools import setup

setup()
