"""E15 — Kernel dispatch: batched BDD evaluation vs per-scenario scalar walks.

The tentpole claim of the kernel layer: on a node-heavy BDD (voting gates,
~13k nodes) and a 1000-scenario probability grid, one vectorised pass through
the ``numpy`` kernel tier is **≥10x faster** than evaluating the same grid
scenario-by-scenario with scalar :func:`probability_of_bdd` walks — with
**exact float equality** across every kernel tier (the three tiers execute
the identical IEEE-754 operation sequence per node, so they are
interchangeable without perturbing canonical reports).

The smoke variant emits a machine-readable ``BENCH_kernels.json`` (node and
scenario counts, wall-clocks and per-tier speedups) so the CI benchmark job
can upload it as an artifact and seed the perf trajectory.  Without numpy
the benchmark still runs: it checks the stdlib tiers' exactness and records
their speedups, skipping only the ≥10x assertion.
"""

import json
import os
import time
from pathlib import Path

from repro import kernels
from repro.bdd import BDDManager, variable_order
from repro.bdd.probability import probability_of_bdd
from repro.numerics import HAVE_NUMPY
from repro.workloads.generator import random_fault_tree

from benchmarks.conftest import emit


def _available_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _voting_bdd_workload(num_scenarios: int):
    """A voting-gate tree (node-heavy BDD) plus a deterministic scenario grid."""
    tree = random_fault_tree(
        num_basic_events=120,
        seed=1,
        voting_ratio=1.0,
        and_ratio=0.0,
        or_ratio=0.0,
        gate_arity=(30, 50),
    )
    manager = BDDManager(variable_order(tree, heuristic="dfs"))
    function = manager.from_fault_tree(tree)
    base = tree.probabilities()
    events = sorted(base)
    maps = []
    for index in range(num_scenarios):
        probabilities = dict(base)
        probabilities[events[index % len(events)]] = (
            0.0005 + 0.999 * ((index * 37) % num_scenarios) / num_scenarios
        )
        maps.append(probabilities)
    return function, maps


def test_bench_kernels_batch_vs_scalar(tmp_path):
    """1000-scenario grid: ≥10x batched numpy vs scalar, exact across tiers."""
    function, maps = _voting_bdd_workload(num_scenarios=1000)

    started = time.perf_counter()
    scalar = [probability_of_bdd(function, probabilities) for probabilities in maps]
    scalar_s = time.perf_counter() - started

    tier_results = {}
    for tier in kernels.available_tiers():
        suite = kernels.select(tier)
        started = time.perf_counter()
        batched = kernels.batch_probability_of_bdd(suite, function, maps)
        tier_s = time.perf_counter() - started
        # Exact equality, not approximate: every tier runs the identical
        # IEEE-754 operation sequence as the scalar reference walk.
        assert batched == scalar, f"tier {tier!r} diverged from the scalar walk"
        tier_results[tier] = {
            "wall_clock_s": round(tier_s, 4),
            "speedup_vs_scalar": round(scalar_s / tier_s, 2) if tier_s else float("inf"),
        }

    from repro.bdd.probability import flatten_bdd

    record = {
        "benchmark": "E15-kernel-batch-bdd-eval",
        "scenarios": len(maps),
        "bdd_nodes": flatten_bdd(function).num_nodes,
        "numpy_available": HAVE_NUMPY,
        "scalar_wall_clock_s": round(scalar_s, 4),
        "tiers": tier_results,
        "host_cores": _available_cores(),
    }
    if "numpy" in tier_results:
        # Flat copy of the headline metric for tools/bench_history.py.
        record["numpy_speedup_vs_scalar"] = tier_results["numpy"]["speedup_vs_scalar"]
    output = Path(os.environ.get("BENCH_KERNELS_JSON", "BENCH_kernels.json"))
    output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    emit(
        "E15 (smoke) — batched kernel BDD evaluation vs per-scenario scalar",
        [f"{key:26}: {value}" for key, value in record.items()]
        + [f"{'json record':26}: {output}"],
    )

    if HAVE_NUMPY:
        # The headline: one vectorised pass beats 1000 scalar walks ≥10x
        # (~15x measured on one core; the margin is not runner-sensitive
        # because both sides are single-threaded CPU-bound loops).
        assert tier_results["numpy"]["speedup_vs_scalar"] >= 10.0
    # The stdlib batch tier must never lose to the per-scenario reference.
    assert tier_results["array"]["speedup_vs_scalar"] >= 1.0
