"""E3 — Fig. 2: the MPMCS4FTA tool output (JSON report + rendering).

MPMCS4FTA runs on the command line and writes a JSON document that a browser
viewer renders with the MPMCS highlighted.  This benchmark reproduces the
machine-readable half of that pipeline end to end: parse the model, solve,
produce the JSON report and the DOT/ASCII renderings, and assert the report
carries the same content the figure shows (the tree, the MPMCS members and
the joint probability).
"""

import json

import pytest

from repro.core.pipeline import MPMCSSolver
from repro.fta.parsers.json_format import parse_json
from repro.fta.serializers import to_json
from repro.reporting.ascii_art import render_tree
from repro.reporting.dot import to_dot
from repro.reporting.json_report import analysis_report
from repro.workloads.library import fire_protection_system

from benchmarks.conftest import emit


def full_tool_run(model_text: str) -> dict:
    """The complete CLI workflow: JSON model in -> analysis report out."""
    tree = parse_json(model_text)
    result = MPMCSSolver().solve(tree)
    report = analysis_report(tree, result)
    # Renderings are part of the tool output; build them too.
    report["_dot"] = to_dot(tree, highlight=result.events)
    report["_ascii"] = render_tree(tree, highlight=result.events)
    return report


def test_bench_fig2_tool_output(benchmark):
    model_text = to_json(fire_protection_system())

    report = benchmark(full_tool_run, model_text)

    # The Fig. 2 content: the fault tree, the MPMCS and its probability.
    assert report["solution"]["mpmcs"] == ["x1", "x2"]
    assert report["solution"]["probability"] == pytest.approx(0.02)
    assert len(report["tree"]["events"]) == 7
    assert len(report["tree"]["gates"]) == 5
    highlighted = [
        node["name"]
        for node in report["nodes"]
        if node["kind"] == "basic-event" and node["in_mpmcs"]
    ]
    assert sorted(highlighted) == ["x1", "x2"]
    # The report must be valid JSON end to end (that is what the viewer loads).
    assert json.loads(json.dumps({k: v for k, v in report.items() if not k.startswith("_")}))
    # The DOT rendering highlights exactly the MPMCS members.
    assert report["_dot"].count("indianred1") == 2

    emit(
        "E3 / Fig. 2 — tool output (JSON report summary)",
        [
            f"tree      : {report['tree']['name']} "
            f"({len(report['tree']['events'])} events, {len(report['tree']['gates'])} gates)",
            f"MPMCS     : {report['solution']['mpmcs']}",
            f"P(MPMCS)  : {report['solution']['probability']:.6g}",
            f"engine    : {report['solver']['engine']}",
            f"instance  : {report['instance']}",
        ],
    )
    emit("E3 / Fig. 2 — ASCII rendering of the tree with the MPMCS highlighted",
         report["_ascii"].splitlines())
