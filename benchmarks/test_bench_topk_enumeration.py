"""E8 — Top-k cut-set ranking: iterated MaxSAT with blocking clauses.

The paper computes the single MPMCS; ranking the k most probable minimal cut
sets is the natural extension used for fault prioritisation (Section IV).
This benchmark measures the iterated-MaxSAT enumeration on the paper's example
and on larger random trees, and checks the ranking against full MOCUS
enumeration wherever the latter is feasible.
"""

import pytest

from repro.analysis.mocus import mocus_minimal_cut_sets
from repro.core.pipeline import MPMCSSolver
from repro.core.topk import enumerate_mpmcs
from repro.maxsat import RC2Engine
from repro.workloads.generator import GeneratorConfig, random_fault_tree
from repro.workloads.library import fire_protection_system

from benchmarks.conftest import emit

#: The full probability ranking of the FPS tree's five minimal cut sets.
FPS_RANKING = [
    (("x1", "x2"), 0.02),
    (("x5", "x6"), 0.005),
    (("x5", "x7"), 0.0025),
    (("x4",), 0.002),
    (("x3",), 0.001),
]


def test_bench_topk_fps_full_ranking(benchmark):
    tree = fire_protection_system()
    solver = MPMCSSolver(single_engine=RC2Engine())

    ranking = benchmark(enumerate_mpmcs, tree, 5, solver=solver)

    rows = []
    for entry, (expected_events, expected_probability) in zip(ranking, FPS_RANKING):
        rows.append(
            f"#{entry.rank}: {{{', '.join(entry.events)}}}  p={entry.probability:.6g}"
        )
        assert entry.events == expected_events
        assert entry.probability == pytest.approx(expected_probability, rel=1e-9)
    emit("E8 — FPS tree: top-5 minimal cut sets by probability (iterated MaxSAT)", rows)


@pytest.mark.parametrize("num_events,k", [(60, 5), (150, 10)], ids=["60ev-top5", "150ev-top10"])
def test_bench_topk_random_trees(benchmark, num_events, k):
    tree = random_fault_tree(GeneratorConfig(num_basic_events=num_events, seed=num_events))
    solver = MPMCSSolver(single_engine=RC2Engine())

    ranking = benchmark(enumerate_mpmcs, tree, k, solver=solver)

    # Probabilities must be non-increasing, all sets minimal and distinct.
    probabilities = [entry.probability for entry in ranking]
    assert probabilities == sorted(probabilities, reverse=True)
    assert len({entry.events for entry in ranking}) == len(ranking)
    for entry in ranking:
        assert tree.is_minimal_cut_set(entry.events)

    # Where full enumeration is possible, the ranking prefix must match.
    try:
        collection = mocus_minimal_cut_sets(tree, max_candidates=100_000)
    except Exception:
        collection = None
    rows = [
        f"#{entry.rank}: p={entry.probability:.4e} size={entry.size}" for entry in ranking
    ]
    if collection is not None:
        reference = collection.ranked()[: len(ranking)]
        for entry, (cut_set, probability) in zip(ranking, reference):
            assert entry.probability == pytest.approx(probability, rel=1e-9)
        rows.append(f"(verified against full MOCUS enumeration of {len(collection)} cut sets)")
    emit(
        f"E8 — random tree ({num_events} events): top-{k} cut sets via blocking clauses",
        rows,
    )
