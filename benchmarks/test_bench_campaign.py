"""E13 — Campaign resume overhead: replaying a finished campaign vs cold.

The resumability claim of :mod:`repro.campaigns` has a measurable cost
model: a resumed campaign pays only ledger lookups (one content-hash probe
and one store read per chunk) instead of re-running the analyses.  This
benchmark runs a three-stage campaign (probability sweep -> mitigation
frontier -> merged report) cold into a fresh store, then resubmits the
identical spec and measures the pure-replay wall clock.  It asserts

* the replay executes **zero** chunks — every chunk is a ledger hit,
* the replayed merged report is canonically byte-identical to the cold one,
* the replay is faster than the cold run (the whole point of the ledger),

and writes a JSON perf record for the CI artifact (``BENCH_CAMPAIGN_JSON``,
default ``BENCH_campaign.json``).
"""

import json
import os
import time
from pathlib import Path

from repro.campaigns import CampaignSpec, run_campaign
from repro.campaigns.spec import frontier_stage, report_stage, sweep_stage
from repro.fta.serializers import to_json_document
from repro.workloads.library import fire_protection_system

from benchmarks.conftest import emit


def _spec(steps=40, chunk_size=4) -> CampaignSpec:
    return CampaignSpec(
        name="bench-campaign-resume",
        tree=to_json_document(fire_protection_system()),
        stages=(
            sweep_stage(
                "sweep",
                {"family": "probability_sweep", "event": "x1",
                 "start": 1e-4, "stop": 0.5, "steps": steps},
                chunk_size=chunk_size,
            ),
            frontier_stage(
                "frontier",
                [
                    {"event": "x1", "cost": 2.0, "factor": 0.1},
                    {"event": "x2", "cost": 2.0, "factor": 0.1},
                    {"event": "x4", "cost": 1.0, "factor": 0.5},
                    {"event": "x5", "cost": 1.0, "factor": 0.5},
                ],
                depends_on=("sweep",),
            ),
            report_stage("final", depends_on=("sweep", "frontier")),
        ),
    )


def _canonical(outcome) -> str:
    return json.dumps(
        outcome.stage_results["final"]["stages"]["sweep"]["canonical"],
        sort_keys=True,
    )


def test_bench_campaign_resume_overhead(tmp_path):
    """Cold campaign vs pure-ledger replay of the identical spec."""
    spec = _spec()
    store = tmp_path / "store"

    started = time.perf_counter()
    cold = run_campaign(spec, store_path=str(store))
    cold_s = time.perf_counter() - started
    assert cold.status == "done", cold.error

    started = time.perf_counter()
    resumed = run_campaign(spec, store_path=str(store))
    resume_s = time.perf_counter() - started
    assert resumed.status == "done", resumed.error

    total_chunks = cold.ledger_hits + cold.executed_chunks
    assert resumed.executed_chunks == 0
    assert resumed.ledger_hits == total_chunks
    assert _canonical(resumed) == _canonical(cold)

    speedup = cold_s / resume_s if resume_s else float("inf")
    record = {
        "benchmark": "E13-campaign-resume-overhead",
        "campaign": spec.campaign_id(),
        "stages": len(spec.stages),
        "chunks": total_chunks,
        "cold_wall_clock_s": round(cold_s, 4),
        "resume_wall_clock_s": round(resume_s, 4),
        "resume_speedup": round(speedup, 2),
        "resume_s_per_chunk": round(resume_s / total_chunks, 6),
        "ledger": dict(resumed.ledger_stats),
    }
    output = Path(os.environ.get("BENCH_CAMPAIGN_JSON", "BENCH_campaign.json"))
    output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    emit(
        "E13 — campaign resume overhead (pure ledger replay vs cold)",
        [f"{key:22}: {value}" for key, value in record.items()]
        + [f"{'json record':22}: {output}"],
    )
    # A replay does no solving at all; even on a noisy runner it must win.
    assert speedup > 1.5
