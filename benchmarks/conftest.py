"""Shared helpers for the benchmark harness.

Each benchmark module reproduces one experiment of DESIGN.md §4 (E1–E7).
Benchmarks print the rows/series they regenerate so that running

.. code-block:: console

    pytest benchmarks/ --benchmark-only -s

shows the reproduced tables next to pytest-benchmark's timing output, and they
``assert`` the *shape* of the paper's results (who wins, what the optimum is),
so a regression in the reproduction fails the benchmark run loudly.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"

try:  # pragma: no cover - import guard
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(_SRC))


def pytest_collection_modifyitems(items) -> None:
    """Tag every test in this directory with the ``bench`` marker.

    The default run (``testpaths = tests`` in pytest.ini) already skips this
    directory; the marker additionally allows ``-m "not bench"`` to deselect
    benchmarks when they are collected explicitly alongside other tests.
    """
    for item in items:
        item.add_marker(pytest.mark.bench)


def emit(title: str, lines) -> None:
    """Print a reproduced table/series in a recognisable block."""
    banner = "=" * 72
    print(f"\n{banner}\n{title}\n{banner}")
    for line in lines:
        print(line)
    print(banner)
