"""E2 — Fig. 1 / Section II worked example: MPMCS of the fire protection system.

The paper states the MPMCS of the example fault tree is {x1, x2} with a joint
probability of 0.02.  This benchmark runs the full six-step pipeline on that
tree (with the default parallel portfolio) and asserts the exact result.
"""

import pytest

from repro.core.pipeline import MPMCSSolver
from repro.core.topk import enumerate_mpmcs
from repro.workloads.library import fire_protection_system

from benchmarks.conftest import emit


def test_bench_fig1_example_mpmcs(benchmark):
    tree = fire_protection_system()
    solver = MPMCSSolver()

    result = benchmark(solver.solve, tree)

    assert result.events == ("x1", "x2")
    assert result.probability == pytest.approx(0.02)
    assert result.cost == pytest.approx(1.60944 + 2.30259, abs=1e-4)

    emit(
        "E2 / Fig. 1 — MPMCS of the fire protection system",
        [
            f"paper    : MPMCS = {{x1, x2}}   P = 0.02",
            f"measured : MPMCS = {{{', '.join(result.events)}}}   "
            f"P = {result.probability:.6g}   cost = {result.cost:.5f}   "
            f"engine = {result.engine}   solve = {result.solve_time * 1000:.2f} ms",
        ],
    )


def test_bench_fig1_cut_set_ranking(benchmark):
    """Extension of the worked example: the full probability ranking of the
    five minimal cut sets of the FPS tree (the MPMCS is rank 1)."""
    tree = fire_protection_system()

    ranked = benchmark(enumerate_mpmcs, tree, 5)

    assert [entry.events for entry in ranked] == [
        ("x1", "x2"),
        ("x5", "x6"),
        ("x5", "x7"),
        ("x4",),
        ("x3",),
    ]
    emit(
        "E2 (extension) — all minimal cut sets of the FPS tree by probability",
        [
            f"#{entry.rank}: {{{', '.join(entry.events)}}}  p={entry.probability:.6g}"
            for entry in ranked
        ],
    )
