"""E7 — Voting (k-of-n) gates: the paper's announced extension.

The paper's future work plans "extending our approach to include additional
operators such as voting gates".  The reproduction implements them end to end
(model, sequential-counter Tseitin encoding, MOCUS/BDD expansion), and this
benchmark measures the pipeline on voting-heavy trees and checks the results
against the BDD baseline.
"""

import pytest

from repro.bdd.probability import bdd_mpmcs
from repro.core.pipeline import MPMCSSolver
from repro.fta.builder import FaultTreeBuilder
from repro.maxsat import RC2Engine
from repro.workloads.generator import random_fault_tree
from repro.workloads.library import redundant_power_supply

from benchmarks.conftest import emit


def build_k_of_n_ladder(width: int, k: int) -> "FaultTree":
    """A two-level voting structure: k-of-n over OR pairs (a common pattern in
    redundant architectures such as 2-out-of-3 channel voting)."""
    builder = FaultTreeBuilder(f"{k}-of-{width}-ladder")
    gate_names = []
    for index in range(width):
        sensor = f"sensor_{index}"
        actuator = f"actuator_{index}"
        builder.basic_event(sensor, 0.01 + index * 1e-4)
        builder.basic_event(actuator, 0.005 + index * 1e-4)
        builder.or_gate(f"channel_{index}", [sensor, actuator])
        gate_names.append(f"channel_{index}")
    builder.voting_gate("top", k, gate_names)
    builder.top("top")
    return builder.build()


def test_bench_voting_gate_library_tree(benchmark):
    tree = redundant_power_supply()
    solver = MPMCSSolver(single_engine=RC2Engine())

    result = benchmark(solver.solve, tree)

    reference_events, reference_probability = bdd_mpmcs(tree)
    assert result.probability == pytest.approx(reference_probability, rel=1e-9)
    assert result.probability == pytest.approx(0.004 * 0.004)
    emit(
        "E7 — voting gates: redundant power supply (2-of-3 feeders)",
        [
            f"MPMCS = {{{', '.join(result.events)}}}  P = {result.probability:.3e}  "
            f"(BDD baseline agrees: {reference_probability:.3e})"
        ],
    )


@pytest.mark.parametrize("width,k", [(5, 3), (9, 5), (15, 8)], ids=["3of5", "5of9", "8of15"])
def test_bench_voting_gate_ladders(benchmark, width, k):
    tree = build_k_of_n_ladder(width, k)
    solver = MPMCSSolver(single_engine=RC2Engine())

    result = benchmark(solver.solve, tree)

    reference_events, reference_probability = bdd_mpmcs(tree)
    assert result.probability == pytest.approx(reference_probability, rel=1e-9)
    assert len(result.events) == k  # one cheapest component per selected channel
    assert tree.is_minimal_cut_set(result.events)


def test_bench_voting_gate_random_trees(benchmark):
    """Voting-heavy random trees: the sequential-counter encoding keeps the
    instance polynomial, so the pipeline stays in the seconds range."""
    trees = [
        random_fault_tree(num_basic_events=300, seed=s, voting_ratio=0.5, gate_arity=(3, 5))
        for s in (1, 2, 3)
    ]
    solver = MPMCSSolver(single_engine=RC2Engine())

    def run_all():
        return [solver.solve(tree) for tree in trees]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = []
    for tree, result in zip(trees, results):
        assert tree.is_minimal_cut_set(result.events)
        lines.append(
            f"{tree.name:32s} nodes={tree.num_nodes:5d} |MPMCS|={result.size:3d} "
            f"P={result.probability:.3e} vars={result.num_vars}"
        )
    emit("E7 — voting-heavy random trees (50% voting gates)", lines)
