"""E14 — live monitor update latency: warm incremental path vs cold.

The live-monitoring claim: once the base analysis has warmed the caches, every
:class:`~repro.monitoring.TreeMonitor` update is a structure-preserving patch —
a weight-only re-solve on the persistent MaxSAT session plus a linear-time
re-evaluation of the structure-keyed BDD — so steady-state update latency is a
small fraction of a cold re-encode+re-solve, with **byte-identical** canonical
reports and **zero** steady-state cache misses.

The smoke variant emits a machine-readable ``BENCH_monitor.json`` (update
count, per-update latency percentiles, speedup vs cold) which
``tools/bench_history.py`` folds into the cumulative perf trajectory.
"""

import json
import os
import statistics
import time
from pathlib import Path

import pytest

from repro.api import AnalysisSession
from repro.monitoring import SyntheticFeed, TreeMonitor
from repro.scenarios.sweep import SweepExecutor
from repro.workloads.generator import random_fault_tree

from benchmarks.conftest import emit


def _available_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _feed_updates(tree, *, updates: int, seed: int):
    """Materialise the deterministic synthetic walk up front.

    Timing must cover analysis only, not random-number generation, and the
    cold comparator needs the exact same batches.
    """
    return list(
        SyntheticFeed(tree, updates=updates, seed=seed, events_per_update=2,
                      volatility=0.6)
    )


def _cumulative_states(tree, updates):
    """The probability state after each update, as the monitor sees it."""
    state = dict(tree.probabilities())
    states = []
    for update in updates:
        for event, value in update.values:
            state[event] = value
        states.append(dict(state))
    return states


def _cold_canonical(tree, states, *, top_k: int):
    """Fresh session+executor per state: full re-encode + cold solve."""
    documents = []
    for state in states:
        patched = tree.copy()
        for event, value in state.items():
            patched.set_probability(event, value)
        executor = SweepExecutor(AnalysisSession(), backend="maxsat")
        report = executor.analyze_tree(
            patched, executor.prepare_analyses(), top_k=top_k
        )
        documents.append(json.dumps(report.to_canonical_dict(), sort_keys=True))
    return documents


def test_bench_monitor_updates_smoke(tmp_path):
    """100-update feed: latency percentiles, ≥x speedup, JSON perf record."""
    tree = random_fault_tree(num_basic_events=40, seed=7)
    updates = _feed_updates(tree, updates=100, seed=7)
    states = _cumulative_states(tree, updates)

    session = AnalysisSession()
    monitor = TreeMonitor(tree, session=session, backend="maxsat", top_k=5)
    monitor.ensure_base()
    # Warm-up: the first update pays the one-off incremental-session setup.
    first_delta = monitor.apply_update(updates[0])
    warm_misses = session.cache_info()["misses"]

    started = time.perf_counter()
    deltas = [monitor.apply_update(update) for update in updates[1:]]
    warm_s = time.perf_counter() - started
    deltas.insert(0, first_delta)
    monitor.stop()

    # Steady state touches no cold artifact: every re-analysis after warm-up
    # is cache hits + weight-only re-solves.
    steady_misses = session.cache_info()["misses"] - warm_misses
    assert steady_misses == 0

    cold_sample = 10
    started = time.perf_counter()
    cold_documents = _cold_canonical(tree, states[:cold_sample], top_k=5)
    cold_per_update = (time.perf_counter() - started) / cold_sample

    # Identity: the monitor's streamed reports are byte-identical to a cold
    # sequential re-analysis of the same cumulative probability state.
    warm_documents = [
        json.dumps(delta.report.to_canonical_dict(), sort_keys=True)
        for delta in deltas[:cold_sample]
    ]
    assert warm_documents == cold_documents

    latencies_ms = sorted(delta.latency_s * 1000 for delta in deltas[1:])
    cold_estimate = cold_per_update * len(updates)
    speedup = cold_estimate / warm_s if warm_s else float("inf")

    record = {
        "benchmark": "E14-live-monitor-updates",
        "updates": len(updates),
        "events": 40,
        "warm_wall_clock_s": round(warm_s, 4),
        "update_latency_ms_p50": round(
            statistics.median(latencies_ms), 3
        ),
        "update_latency_ms_p95": round(
            latencies_ms[int(len(latencies_ms) * 0.95)], 3
        ),
        "cold_wall_clock_s_estimated": round(cold_estimate, 4),
        "cold_sample_size": cold_sample,
        "speedup_vs_cold": round(speedup, 2),
        "steady_state_cache_misses": steady_misses,
        "host_cores": _available_cores(),
    }
    output = Path(os.environ.get("BENCH_MONITOR_JSON", "BENCH_monitor.json"))
    output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    emit(
        "E14 (smoke) — live monitor updates: warm incremental vs cold",
        [f"{key:28}: {value}" for key, value in record.items()]
        + [f"{'json record':28}: {output}"],
    )
    # The warm per-update path must beat cold re-analysis outright; on
    # starved runners only a noise-proof margin is asserted.
    if _available_cores() >= 2:
        assert speedup > 1.5
    else:
        assert speedup > 1.1


@pytest.mark.slow
def test_bench_monitor_updates_acceptance():
    """Larger tree, full cold comparison, end-to-end identity on every update."""
    # Seed chosen for a mid-weight structure: the cold comparator compiles a
    # fresh BDD per update, and BDD cost is strongly structure-dependent
    # (seed 13 at this size takes >60s per cold analysis).
    tree = random_fault_tree(num_basic_events=60, seed=5)
    updates = _feed_updates(tree, updates=100, seed=5)
    states = _cumulative_states(tree, updates)

    session = AnalysisSession()
    monitor = TreeMonitor(tree, session=session, backend="maxsat", top_k=5)
    monitor.ensure_base()

    started = time.perf_counter()
    deltas = [monitor.apply_update(update) for update in updates]
    warm_s = time.perf_counter() - started
    monitor.stop()

    started = time.perf_counter()
    cold_documents = _cold_canonical(tree, states, top_k=5)
    cold_s = time.perf_counter() - started

    warm_documents = [
        json.dumps(delta.report.to_canonical_dict(), sort_keys=True)
        for delta in deltas
    ]
    assert warm_documents == cold_documents

    speedup = cold_s / warm_s
    cores = _available_cores()
    emit(
        "E14 — live monitor updates (60 events, 100 updates)",
        [
            f"cold (fresh re-encode per update) : {cold_s:8.2f} s",
            f"warm (monitor incremental path)   : {warm_s:8.2f} s",
            f"speedup                           : {speedup:8.2f} x",
            f"host cores                        : {cores}",
        ],
    )
    assert warm_s < cold_s
    if cores >= 2:
        assert speedup >= 3.0, (
            f"warm monitor updates ({warm_s:.2f}s) should be ≥3x faster than "
            f"cold per-update analysis ({cold_s:.2f}s); got {speedup:.2f}x"
        )
    else:
        assert speedup >= 2.0
