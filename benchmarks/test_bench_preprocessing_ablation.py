"""E9 — WCNF preprocessing ablation.

Measures the effect of the WCNF preprocessor (hard unit propagation,
subsumption, soft merging) on the MPMCS instances produced by Step 4: the
optimum must be identical with and without preprocessing, while the simplified
instances are strictly smaller (Tseitin encodings of fault trees always
contain the asserted-root unit clause, so propagation always fires).
"""

import pytest

from repro.core.encoder import encode_mpmcs
from repro.maxsat import MaxSATStatus, PreprocessingEngine, RC2Engine, preprocess_instance
from repro.workloads.generator import GeneratorConfig, random_fault_tree
from repro.workloads.library import fire_protection_system

from benchmarks.conftest import emit


def _tree(num_events: int):
    if num_events == 0:
        return fire_protection_system()
    return random_fault_tree(GeneratorConfig(num_basic_events=num_events, seed=17))


@pytest.mark.parametrize("num_events", [0, 120, 400], ids=["fps", "120ev", "400ev"])
def test_bench_preprocessing_reduces_instances(benchmark, num_events):
    tree = _tree(num_events)
    encoding = encode_mpmcs(tree)
    original = encoding.instance

    preprocessed = benchmark(preprocess_instance, original)

    assert not preprocessed.proven_unsat
    simplified = preprocessed.instance
    assert simplified.num_hard < original.num_hard
    emit(
        f"E9 — preprocessing on {tree.name}",
        [
            f"hard clauses : {original.num_hard} -> {simplified.num_hard}",
            f"soft clauses : {original.num_soft} -> {simplified.num_soft}",
            f"forced literals: {len(preprocessed.forced)}  "
            f"(simplifications: {preprocessed.stats.total_simplifications()})",
        ],
    )


@pytest.mark.parametrize("num_events", [0, 120, 400], ids=["fps", "120ev", "400ev"])
def test_bench_preprocessed_solver_matches_plain_solver(benchmark, num_events):
    tree = _tree(num_events)
    plain_encoding = encode_mpmcs(tree)
    wrapped_encoding = encode_mpmcs(tree)
    plain = RC2Engine().solve(plain_encoding.instance)

    engine = PreprocessingEngine(RC2Engine())
    wrapped = benchmark(engine.solve, wrapped_encoding.instance)

    assert plain.status is MaxSATStatus.OPTIMUM
    assert wrapped.status is MaxSATStatus.OPTIMUM
    assert wrapped.cost == plain.cost
    assert (
        wrapped_encoding.cut_set_from_model(wrapped.model)
        == plain_encoding.cut_set_from_model(plain.model)
    )
    emit(
        f"E9 — preprocess+rc2 vs rc2 on {tree.name}",
        [
            f"optimum cost  : {plain.cost} (identical for both configurations)",
            f"rc2           : {plain.solve_time * 1000.0:8.2f} ms, {plain.sat_calls} SAT calls",
            f"preprocess+rc2: {wrapped.solve_time * 1000.0:8.2f} ms, {wrapped.sat_calls} SAT calls",
        ],
    )
