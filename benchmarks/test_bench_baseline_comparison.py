"""E6 — MaxSAT vs classical baselines (MOCUS enumeration and BDD).

The paper's future work announces a comparison of the MaxSAT formulation
against BDD-based techniques; classical FTA practice would instead enumerate
all minimal cut sets (MOCUS) and rank them.  This benchmark implements that
comparison:

* on small/medium trees all three methods must return the same MPMCS
  probability (correctness cross-check);
* as the tree grows, full enumeration via MOCUS blows up combinatorially
  (its candidate count explodes), while the MaxSAT pipeline — which never
  enumerates cut sets — keeps scaling.  The benchmark asserts this crossover:
  MOCUS (with a generous candidate budget) fails or slows dramatically on the
  largest instance while MaxSAT completes.
"""

import time

import pytest

from repro.analysis.mocus import mocus_mpmcs
from repro.bdd.probability import bdd_mpmcs
from repro.core.pipeline import MPMCSSolver
from repro.exceptions import AnalysisError
from repro.maxsat import RC2Engine
from repro.workloads.generator import random_fault_tree

from benchmarks.conftest import emit

#: Sizes (basic events).  The largest is designed to break full enumeration:
#: an AND/OR mix with moderate arity has exponentially many minimal cut sets.
SIZES = [30, 80, 200, 600, 1500]

#: Candidate budget for MOCUS before it gives up (generous but finite).
MOCUS_BUDGET = 50_000

#: BDD compilation is only attempted up to this size; far beyond it the BDD can
#: explode in time/memory on unfavourable structures, which is precisely the
#: behaviour the MaxSAT formulation avoids.
BDD_MAX_EVENTS = 600


def run_comparison():
    rows = []
    for num_events in SIZES:
        tree = random_fault_tree(num_basic_events=num_events, seed=7, event_reuse=0.05)

        start = time.perf_counter()
        maxsat = MPMCSSolver(single_engine=RC2Engine()).solve(tree)
        maxsat_time = time.perf_counter() - start

        start = time.perf_counter()
        try:
            mocus_probability = mocus_mpmcs(tree, max_candidates=MOCUS_BUDGET)[1]
            mocus_status = "ok"
        except AnalysisError:
            mocus_probability = None
            mocus_status = "blow-up"
        mocus_time = time.perf_counter() - start

        start = time.perf_counter()
        if num_events <= BDD_MAX_EVENTS:
            try:
                bdd_probability = bdd_mpmcs(tree)[1]
                bdd_status = "ok"
            except (AnalysisError, MemoryError, RecursionError):
                bdd_probability = None
                bdd_status = "blow-up"
        else:
            bdd_probability = None
            bdd_status = "skipped"
        bdd_time = time.perf_counter() - start

        rows.append(
            {
                "events": num_events,
                "nodes": tree.num_nodes,
                "maxsat_p": maxsat.probability,
                "maxsat_t": maxsat_time,
                "mocus_p": mocus_probability,
                "mocus_t": mocus_time,
                "mocus_status": mocus_status,
                "bdd_p": bdd_probability,
                "bdd_t": bdd_time,
                "bdd_status": bdd_status,
            }
        )
    return rows


def test_bench_baseline_comparison(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    # Correctness: wherever a baseline completes, it agrees with MaxSAT.
    for row in rows:
        if row["mocus_p"] is not None:
            assert row["mocus_p"] == pytest.approx(row["maxsat_p"], rel=1e-9)
        if row["bdd_p"] is not None:
            assert row["bdd_p"] == pytest.approx(row["maxsat_p"], rel=1e-9)

    # Shape: MaxSAT completes on every size ...
    assert all(row["maxsat_p"] > 0 for row in rows)
    # ... while full enumeration (MOCUS) must hit its budget on the largest
    # instances — the scalability gap that motivates the MaxSAT formulation.
    assert any(row["mocus_status"] == "blow-up" for row in rows[-2:])

    emit(
        "E6 — MPMCS via MaxSAT vs MOCUS enumeration vs BDD "
        "(probability agreement + where enumeration blows up)",
        [
            (
                f"events={row['events']:5d} nodes={row['nodes']:5d}  "
                f"maxsat={row['maxsat_t']:6.2f}s  "
                f"mocus={row['mocus_t']:6.2f}s [{row['mocus_status']:8s}]  "
                f"bdd={row['bdd_t']:6.2f}s [{row['bdd_status']:8s}]  "
                f"P={row['maxsat_p']:.3e}"
            )
            for row in rows
        ],
    )
