"""E16 — Batched weight-only MaxSAT re-rank: solve_batch vs solve_chunk.

The tentpole claim: on a 500-scenario weight-only sweep, one
``solve_batch`` call — pooled candidate scoring through the kernel matmul,
SAT-free certification, vectorised hitting-set lower bounds — is **≥3x
faster** than the per-scenario ``solve_chunk`` loop on an identically warmed
session, returns **byte-identical** results, and spends **< 0.1 SAT calls
per scenario** in steady state.

The sweep-level variant re-asserts byte-identity where it matters to users:
``SweepExecutor`` canonical scenario reports with the batch path on vs off.

The smoke variant emits a machine-readable ``BENCH_rerank.json`` (scenario
count, wall-clocks, speedup, SAT calls per scenario, ladder split) for the CI
benchmark artifact and the perf trajectory in ``tools/bench_history.py``.
"""

import json
import os
import time
from pathlib import Path

from repro.maxsat.incremental import IncrementalMaxSATSession
from repro.scenarios import SweepExecutor, probability_sweep
from repro.workloads.generator import random_fault_tree

from benchmarks.conftest import emit


def _drift_grid(session, tree, scenarios=500):
    """A drift-shaped weight grid: one event sweeps, the rest breathe gently.

    This is the shape warm sweeps and live monitors produce — smooth
    per-scenario weight motion — and the steady-state regime the < 0.1 SAT
    calls/scenario acceptance criterion talks about.
    """
    from repro.core.weights import log_weight

    probabilities = tree.probabilities()
    base = {name: log_weight(probabilities[name]) for name in session.event_vars}
    names = sorted(base)
    swept = names[0]
    rows = []
    for k in range(scenarios):
        ramp = k / max(1, scenarios - 1)
        row = {
            name: base[name] * (1.0 + 0.05 * ramp * ((index % 7) - 3) / 7.0)
            for index, name in enumerate(names)
        }
        row[swept] = max(1e-9, base[swept] * (0.25 + 3.0 * ramp))
        rows.append(row)
    return rows


def _essence(result):
    if result is None:
        return None
    return (
        result.events,
        result.scaled_cost,
        result.cost,
        result.probability_weights,
    )


def test_bench_rerank_batch_smoke(tmp_path):
    """500 drift scenarios: ≥3x over solve_chunk, SAT-free steady state."""
    tree = random_fault_tree(num_basic_events=60, seed=13)
    chunk_session = IncrementalMaxSATSession(tree)
    batch_session = IncrementalMaxSATSession(tree)
    # Warm both sessions identically: one full solve seeds cores and pool.
    chunk_session.solve_tree(tree)
    batch_session.solve_tree(tree)
    weights_seq = _drift_grid(batch_session, tree, scenarios=500)

    started = time.perf_counter()
    chunk_results = chunk_session.solve_chunk(weights_seq)
    chunk_s = time.perf_counter() - started

    calls_before = batch_session.sat_calls
    started = time.perf_counter()
    batch_results = batch_session.solve_batch(weights_seq)
    batch_s = time.perf_counter() - started
    sat_per_scenario = (batch_session.sat_calls - calls_before) / len(weights_seq)

    assert [_essence(r) for r in batch_results] == [
        _essence(r) for r in chunk_results
    ]
    speedup = chunk_s / batch_s if batch_s else float("inf")

    record = {
        "benchmark": "E16-maxsat-rerank-batch",
        "scenarios": len(weights_seq),
        "events": 60,
        "chunk_wall_clock_s": round(chunk_s, 4),
        "batch_wall_clock_s": round(batch_s, 4),
        "batch_speedup_vs_chunk": round(speedup, 2),
        "sat_calls_per_scenario": round(sat_per_scenario, 4),
        "kernel": batch_session.stats()["kernel"],
        "pool_candidates": batch_session.pool_size,
        "rerank_split": dict(batch_session.rerank_stats),
    }
    output = Path(os.environ.get("BENCH_RERANK_JSON", "BENCH_rerank.json"))
    output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    emit(
        "E16 (smoke) — batched re-rank kernel vs per-scenario chunk loop",
        [f"{key:26}: {value}" for key, value in record.items()]
        + [f"{'json record':26}: {output}"],
    )

    # Acceptance criteria: measured ~6x and ~0.008 SAT calls/scenario on a
    # single core; the asserted margins leave room for starved CI runners.
    assert speedup >= 3.0
    assert sat_per_scenario < 0.1


def test_bench_rerank_sweep_byte_identity():
    """Sweep-level contract: batch path on vs off, canonical reports equal."""
    tree = random_fault_tree(num_basic_events=30, seed=13)
    event = sorted(tree.events_reachable_from_top())[0]
    scenarios = probability_sweep(event, start=1e-4, stop=0.6, steps=60)

    batched = SweepExecutor(backend="maxsat").run(tree, scenarios)

    unbatched_executor = SweepExecutor(backend="maxsat")
    unbatched_executor.precompute_rerank = lambda trees: 0
    unbatched = unbatched_executor.run(tree, scenarios)

    left = json.dumps(batched.to_canonical_dict(), sort_keys=True)
    right = json.dumps(unbatched.to_canonical_dict(), sort_keys=True)
    assert left == right
    emit(
        "E16 — sweep-level byte identity",
        [
            f"{'scenarios':26}: {len(batched)}",
            f"{'canonical bytes':26}: {len(left)}",
            f"{'identical':26}: True",
        ],
    )
