"""E11 — Maintenance-policy sweeps: repair-rate throughput, warm vs cold.

A repair-rate sweep perturbs one component's reliability model and re-freezes
it at the mission time, so no scenario ever changes the structure function —
the best case for the incremental cache: the cut-set structure is enumerated
once (cold) and every scenario afterwards is a pure probability re-ranking.
This benchmark measures that claim on the Fig. 1 tree with repairable
sensors:

* **cold** — a fresh executor pays the one-off structural enumeration plus
  100 re-rankings;
* **warm** — a second sweep through the *same* executor starts with every
  subtree artifact cached and must not add a single further miss;
* correctness — the incremental and naive paths produce canonically
  identical reports, and each scenario matches the direct
  ``ReliabilityAssignment.tree_at`` materialisation of its perturbed model.
"""

import time

from repro.reliability import ReliabilityAssignment, RepairableComponent
from repro.scenarios import SetRepairRate, SweepExecutor, repair_rate_sweep, sweep_values

from benchmarks.conftest import emit

MISSION_TIME = 1000.0


def _repairable_assignment():
    from repro.workloads.library import fire_protection_system

    assignment = ReliabilityAssignment(fire_protection_system())
    assignment.assign("x1", RepairableComponent(failure_rate=1e-3, repair_rate=0.01))
    assignment.assign("x2", RepairableComponent(failure_rate=5e-4, repair_rate=0.02))
    return assignment


def _canonical_without_mode(report):
    """Canonical dict minus the configuration flag that names the sweep path."""
    document = report.to_canonical_dict()
    document.pop("incremental")
    return document


def test_bench_repair_rate_sweep_warm_vs_cold(benchmark):
    assignment = _repairable_assignment()
    base = assignment.tree_at(MISSION_TIME)
    rates = sweep_values(1e-3, 1.0, 100)
    scenarios = repair_rate_sweep(assignment, "x1", rates, mission_time=MISSION_TIME)

    executor = SweepExecutor()
    started = time.perf_counter()
    cold = executor.run(base, scenarios)
    cold_time = time.perf_counter() - started

    warm = benchmark(lambda: executor.run(base, scenarios))

    assert not cold.failures and not warm.failures
    cold_reuse = cold.subtree_reuse
    warm_reuse = warm.subtree_reuse
    # Cold run: one structural enumeration (a miss per gate), then pure hits.
    assert cold_reuse["misses"] == base.num_gates
    assert cold_reuse["hits"] == base.num_gates * len(scenarios)
    # Warm run: the session cache already holds every subtree — the counters
    # are cumulative across the executor's lifetime, so the miss count must
    # not move at all while the hits grow by a full sweep's worth.
    assert warm_reuse["misses"] == cold_reuse["misses"]
    assert warm_reuse["hits"] >= cold_reuse["hits"] + base.num_gates * len(scenarios)

    naive = SweepExecutor(incremental=False).run(base, scenarios)
    assert _canonical_without_mode(warm) == _canonical_without_mode(naive)

    # Spot-check the model semantics: a scenario's probabilities equal the
    # direct materialisation of the perturbed assignment.
    middle = len(rates) // 2
    direct = (
        SetRepairRate("x1", rates[middle])
        .apply_to_assignment(assignment)
        .tree_at(MISSION_TIME)
    )
    patched = scenarios[middle].apply(base)
    assert patched.probabilities() == direct.probabilities()

    emit(
        "E11 — FPS tree (repairable sensors): 100-policy repair-rate sweep",
        [
            f"cold: {cold_time:.3f}s ({cold_reuse['hits']} hits / "
            f"{cold_reuse['misses']} misses)   warm: {warm.total_time_s:.3f}s",
            f"naive total: {naive.total_time_s:.3f}s",
            f"best policy: {warm.best().name}  P(top)={warm.best().top_event:.4e}",
        ],
    )
