"""E5 — Step 5 ablation: parallel portfolio vs individual MaxSAT engines.

The paper motivates the parallel portfolio with the observation that
individual solvers are "very good at some instances and not that good at
others", and claims the first-finisher-wins architecture "provides a more
stable behaviour in terms of performance and scalability".

This benchmark runs every engine alone and the portfolio on a set of
structurally different instances and asserts the stability property: on every
instance the portfolio's winner matches the cost of the best single engine
(no instance exists where the portfolio returns a worse optimum), and the
portfolio never needs more than the slowest engine's time plus a small
overhead factor.
"""

import time

import pytest

from repro.core.encoder import encode_mpmcs
from repro.maxsat import FuMalikEngine, LinearSearchEngine, PortfolioSolver, RC2Engine
from repro.maxsat.result import MaxSATStatus
from repro.workloads.generator import random_fault_tree
from repro.workloads.library import fire_protection_system, redundant_power_supply

from benchmarks.conftest import emit


def instances():
    """A small heterogeneous instance family (structure and size vary)."""
    trees = [
        fire_protection_system(),
        redundant_power_supply(),
        random_fault_tree(num_basic_events=150, seed=1, voting_ratio=0.0),
        random_fault_tree(num_basic_events=150, seed=2, voting_ratio=0.3),
        random_fault_tree(num_basic_events=400, seed=3),
        random_fault_tree(num_basic_events=120, seed=4, and_ratio=0.7, or_ratio=0.3),
    ]
    return [(tree.name, encode_mpmcs(tree).instance) for tree in trees]


ENGINE_FACTORIES = [
    ("rc2", RC2Engine),
    ("rc2-stratified", lambda: RC2Engine(stratified=True)),
    ("fu-malik", FuMalikEngine),
    ("linear-sat-unsat", LinearSearchEngine),
]


def run_ablation():
    rows = []
    summary = []
    for name, instance in instances():
        engine_times = {}
        engine_costs = {}
        for engine_name, factory in ENGINE_FACTORIES:
            start = time.perf_counter()
            result = factory().solve(instance.copy())
            elapsed = time.perf_counter() - start
            engine_times[engine_name] = elapsed
            engine_costs[engine_name] = (
                result.cost if result.status is MaxSATStatus.OPTIMUM else None
            )

        portfolio = PortfolioSolver(mode="thread")
        start = time.perf_counter()
        report = portfolio.solve_with_report(instance.copy())
        portfolio_time = time.perf_counter() - start

        rows.append((name, engine_times, engine_costs, report, portfolio_time))
        best_single = min(engine_times.values())
        summary.append(
            f"{name:35s} best-single={best_single:7.3f}s "
            f"portfolio={portfolio_time:7.3f}s winner={report.winner:16s} "
            f"cost={report.result.cost}"
        )
    return rows, summary


def test_bench_portfolio_ablation(benchmark):
    rows, summary = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    for name, engine_times, engine_costs, report, portfolio_time in rows:
        optimum_costs = {cost for cost in engine_costs.values() if cost is not None}
        # Every conclusive engine agrees on the optimum...
        assert len(optimum_costs) == 1, (name, engine_costs)
        # ...and the portfolio returns exactly that optimum (stability claim).
        assert report.result.cost in optimum_costs
        assert report.result.status is MaxSATStatus.OPTIMUM
        # The portfolio's winner is one of the configured engines.
        assert report.winner in dict(ENGINE_FACTORIES) or report.winner == "linear-sat-unsat"

    emit(
        "E5 — portfolio vs single engines (first finisher wins, optimum always preserved)",
        summary
        + [
            "",
            "per-engine wall-clock seconds per instance:",
        ]
        + [
            f"  {name:35s} "
            + "  ".join(f"{engine}={elapsed:.3f}s" for engine, elapsed in engine_times.items())
            for name, engine_times, _, _, _ in rows
        ],
    )
