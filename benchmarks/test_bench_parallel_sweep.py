"""E10 — Parallel scenario sweeps through the service: 1 vs N workers.

The :mod:`repro.service` worker layer partitions a scenario grid over a
process pool whose workers share artifacts through the persistent disk store.
This benchmark demonstrates the acceptance claim of the service subsystem:

* a sweep submitted through the service with **4 workers and a warm disk
  store** produces **byte-identical canonical report dicts** to the
  sequential in-process :class:`SweepExecutor` on the same grid, and
* it completes **faster** than the sequential run — asserted wherever the
  host actually has multiple cores (a single-core container cannot speed up
  CPU-bound work by adding processes, so there the wall-clock comparison is
  reported but not asserted), and
* the warm store serves a **nonzero artifact hit rate** to every worker.
"""

import json
import os
import time

import pytest

from repro.scenarios import SweepExecutor, probability_sweep
from repro.scenarios.report import ScenarioReport
from repro.service.jobs import JobQueue
from repro.service.workers import WorkerPool, run_parallel_sweep
from repro.fta.serializers import to_json_document
from repro.workloads.generator import random_fault_tree
from repro.workloads.library import fire_protection_system

from benchmarks.conftest import emit


def _canonical_json(report_dict):
    return json.dumps(ScenarioReport.canonicalize(report_dict), sort_keys=True)


def _available_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def test_bench_parallel_sweep_smoke(benchmark, tmp_path):
    """Fig. 1 grid: service-submitted parallel sweep ≡ sequential executor."""
    tree = fire_protection_system()
    scenarios = probability_sweep("x1", start=1e-4, stop=0.5, steps=60)
    sequential = SweepExecutor().run(tree, scenarios)

    store = tmp_path / "store"
    parallel = benchmark(
        lambda: run_parallel_sweep(
            tree, scenarios, workers=2, store_path=str(store)
        )
    )
    assert _canonical_json(parallel.to_dict()) == _canonical_json(sequential.to_dict())
    # The repeated benchmark rounds re-read the store the first round wrote.
    assert parallel.cache_stats.get("store_hits", 0) > 0


@pytest.mark.slow
def test_bench_parallel_sweep_one_vs_four_workers(tmp_path):
    """The acceptance comparison on a 56-event tree with ~2800 cut sets."""
    tree = random_fault_tree(num_basic_events=56, seed=3)
    event = sorted(tree.events)[0]
    scenarios = probability_sweep(event, start=1e-4, stop=0.5, steps=160)
    store = str(tmp_path / "store")

    # Sequential baseline: the plain in-process executor, cold cache.
    started = time.perf_counter()
    sequential = SweepExecutor().run(tree, scenarios)
    sequential_s = time.perf_counter() - started

    # Warm the disk store (one pass over a slice of the grid suffices: the
    # subtree artifacts and the structure-keyed BDD cover the whole grid).
    run_parallel_sweep(tree, scenarios[:2], workers=1, store_path=store)

    # The 4-worker sweep, submitted through the service job queue.
    queue = JobQueue()
    pool = WorkerPool(queue, workers=1, store_path=store).start()
    try:
        job = queue.submit(
            "sweep",
            {
                "tree": to_json_document(tree),
                "scenarios": {
                    "family": "probability_sweep",
                    "event": event,
                    "start": 1e-4,
                    "stop": 0.5,
                    "steps": 160,
                },
                "workers": 4,
            },
        )
        started = time.perf_counter()
        settled = queue.wait(job.id, timeout=600.0)
        parallel_s = time.perf_counter() - started
        assert settled.status.value == "done", settled.error
        result = settled.result
    finally:
        pool.stop()

    report_dict = result["report"]
    store_hits = report_dict["cache"].get("store_hits", 0)
    cores = _available_cores()
    emit(
        "E10 — parallel sweep, 1 vs 4 workers (warm store)",
        [
            f"grid                : 160 scenarios over {event!r}, 56-event tree",
            f"sequential          : {sequential_s:8.2f} s",
            f"service, 4 workers  : {parallel_s:8.2f} s  (warm store)",
            f"speedup             : {sequential_s / parallel_s:8.2f} x",
            f"warm-store hits     : {store_hits}",
            f"host cores          : {cores}",
        ],
    )

    # Identical results, always.
    assert _canonical_json(report_dict) == _canonical_json(sequential.to_dict())
    assert len(report_dict["scenarios"]) == 160
    # Warm store served every worker's structural artifacts.
    assert store_hits > 0
    # The speedup claim needs hardware that can actually run work in
    # parallel; a 1-core container serialises the processes again.
    if cores >= 2:
        assert parallel_s < sequential_s, (
            f"4-worker warm-store sweep ({parallel_s:.2f}s) should beat the "
            f"sequential executor ({sequential_s:.2f}s) on a {cores}-core host"
        )


@pytest.mark.slow
def test_bench_warm_store_accelerates_cold_process(tmp_path):
    """A second run over a warm store skips the structural enumeration."""
    tree = random_fault_tree(num_basic_events=56, seed=3)
    event = sorted(tree.events)[0]
    scenarios = probability_sweep(event, start=1e-4, stop=0.5, steps=20)
    store = str(tmp_path / "store")

    started = time.perf_counter()
    cold = run_parallel_sweep(tree, scenarios, workers=1, store_path=store)
    cold_s = time.perf_counter() - started

    started = time.perf_counter()
    warm = run_parallel_sweep(tree, scenarios, workers=1, store_path=store)
    warm_s = time.perf_counter() - started

    emit(
        "E10b — cold vs warm store (sequential, same grid)",
        [
            f"cold store : {cold_s:8.2f} s  (store hits: {cold.cache_stats.get('store_hits', 0)})",
            f"warm store : {warm_s:8.2f} s  (store hits: {warm.cache_stats.get('store_hits', 0)})",
        ],
    )
    assert cold.cache_stats.get("store_hits", 0) == 0
    assert warm.cache_stats.get("store_hits", 0) > 0
    assert _canonical_json(warm.to_dict()) == _canonical_json(cold.to_dict())
