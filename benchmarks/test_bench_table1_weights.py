"""E1 — Table I: event probabilities and their -log weights (paper Table I).

Regenerates the exact probability/weight table of the paper for the
fire-protection-system example and benchmarks the Step 3 transformation.
"""

import math

import pytest

from repro.core.weights import log_weights
from repro.reporting.tables import weights_table
from repro.workloads.library import fire_protection_system

from benchmarks.conftest import emit

#: The exact rows of Table I in the paper (probability, -log weight to 5 d.p.).
PAPER_TABLE_I = {
    "x1": (0.2, 1.60944),
    "x2": (0.1, 2.30259),
    "x3": (0.001, 6.90776),
    "x4": (0.002, 6.21461),
    "x5": (0.05, 2.99573),
    "x6": (0.1, 2.30259),
    "x7": (0.05, 2.99573),
}


def test_bench_table1_weights(benchmark):
    tree = fire_protection_system()
    probabilities = tree.probabilities()

    weights = benchmark(log_weights, probabilities)

    rows = []
    for name in sorted(PAPER_TABLE_I):
        paper_probability, paper_weight = PAPER_TABLE_I[name]
        measured = weights[name]
        rows.append(
            f"{name}:  p={probabilities[name]:<7g} paper w={paper_weight:<8.5f} "
            f"measured w={measured:.5f}"
        )
        # Exact reproduction: probabilities identical, weights to 5 decimals.
        assert probabilities[name] == paper_probability
        assert measured == pytest.approx(paper_weight, abs=5e-6)
        assert measured == pytest.approx(-math.log(paper_probability), rel=1e-12)

    emit("E1 / Table I — probabilities and -log weights (paper vs measured)", rows)
    emit("E1 / Table I — markdown rendering", weights_table(tree).splitlines())
