"""E9 — Scenario sweeps: incremental re-analysis vs naive per-scenario work.

The :mod:`repro.scenarios` sweep executor memoises every gate's minimal cut
sets under a structure-only subtree hash, so a probability sweep enumerates
the cut-set structure once and re-ranks it per scenario.  This benchmark
quantifies the claim on two scales:

* the paper's Fig. 1 tree with a 200-point probability sweep (the smoke case
  the CI ``bench-smoke`` job runs), asserting incremental and naive sweeps
  produce identical deltas and that the cache counters prove reuse;
* a 60-event random tree where the naive path repeats a multi-second MOCUS
  enumeration per scenario — the incremental path must win wall-clock, not
  just counters.
"""

import time

import pytest

from repro.scenarios import SweepExecutor, probability_sweep
from repro.workloads.generator import random_fault_tree
from repro.workloads.library import fire_protection_system

from benchmarks.conftest import emit


def _strip_timing(outcome):
    document = outcome.to_dict()
    document.pop("time_s")
    return document


def test_bench_sweep_fig1_incremental_vs_naive(benchmark):
    tree = fire_protection_system()
    scenarios = probability_sweep("x1", start=1e-4, stop=0.5, steps=200)

    report = benchmark(
        lambda: SweepExecutor().run(tree, scenarios)
    )
    naive = SweepExecutor(incremental=False).run(tree, scenarios)

    assert len(report) == 200 and not report.failures
    reuse = report.subtree_reuse
    assert reuse["hits"] > 0, "incremental sweep must reuse subtree artifacts"
    # 5 gates: one structural enumeration total, every scenario a full hit.
    assert reuse["misses"] == tree.num_gates
    assert reuse["hits"] == tree.num_gates * len(scenarios)
    assert [_strip_timing(a) for a in report.outcomes] == [
        _strip_timing(b) for b in naive.outcomes
    ]

    emit(
        "E9 — FPS tree: 200-scenario probability sweep over x1",
        [
            f"subtree cache: {reuse['hits']} hits / {reuse['misses']} misses",
            f"incremental total: {report.total_time_s:.3f}s   "
            f"naive total: {naive.total_time_s:.3f}s",
            f"best scenario: {report.best().name}  P(top)={report.best().top_event:.4e}",
        ],
    )


@pytest.mark.slow
def test_bench_sweep_speedup_on_random_tree():
    tree = random_fault_tree(num_basic_events=60, seed=3)
    event = tree.event_names[0]
    scenarios = probability_sweep(event, start=1e-4, stop=0.2, steps=10)

    started = time.perf_counter()
    incremental = SweepExecutor().run(tree, scenarios)
    incremental_time = time.perf_counter() - started

    started = time.perf_counter()
    naive = SweepExecutor(incremental=False).run(tree, scenarios)
    naive_time = time.perf_counter() - started

    assert not incremental.failures and not naive.failures
    assert [_strip_timing(a) for a in incremental.outcomes] == [
        _strip_timing(b) for b in naive.outcomes
    ]
    reuse = incremental.subtree_reuse
    # Probability-only sweep: every gate enumerated exactly once overall.
    assert reuse["misses"] == tree.num_gates
    assert reuse["hits"] == tree.num_gates * len(scenarios)
    # The naive path repeats a ~1s MOCUS enumeration per scenario; the
    # incremental path must be measurably faster (observed ~8x; asserted
    # conservatively to keep the benchmark robust on slow hosts).
    assert incremental_time < naive_time

    emit(
        "E9 — 60-event random tree: 10-scenario sweep, incremental vs naive",
        [
            f"incremental: {incremental_time:.2f}s   naive: {naive_time:.2f}s   "
            f"speedup: x{naive_time / incremental_time:.1f}",
            f"subtree cache: {reuse['hits']} hits / {reuse['misses']} misses "
            f"({tree.num_gates} gates, {len(scenarios)} scenarios)",
        ],
    )
