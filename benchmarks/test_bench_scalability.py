"""E4 — Section IV scalability claim.

"The results of our analytical evaluation indicate that the method is able to
scale to fault trees with thousands of nodes in seconds."

The authors' benchmark trees are not published, so the claim is reproduced on
seeded random fault trees (DESIGN.md §2) spanning two orders of magnitude in
size, up to several thousand nodes.  For every size the benchmark records the
wall-clock time of the full pipeline (encode + solve + extract) and asserts:

* the result is a genuine minimal cut set of the tree (soundness), and
* the multi-thousand-node instances complete within a seconds-scale budget —
  the *shape* of the paper's claim.
"""

import time

import pytest

from repro.core.pipeline import MPMCSSolver
from repro.maxsat import RC2Engine
from repro.workloads.generator import random_fault_tree

from benchmarks.conftest import emit

#: (number of basic events, seconds budget for one full pipeline run).
SIZES = [
    (100, 5.0),
    (250, 5.0),
    (500, 10.0),
    (1000, 20.0),
    (2000, 30.0),
    (4000, 60.0),
]

_series = []


@pytest.mark.parametrize("num_events,budget_s", SIZES, ids=[f"n{n}" for n, _ in SIZES])
def test_bench_scalability(benchmark, num_events, budget_s):
    tree = random_fault_tree(
        num_basic_events=num_events, seed=42, voting_ratio=0.05, event_reuse=0.05
    )
    solver = MPMCSSolver(single_engine=RC2Engine())

    start = time.perf_counter()
    result = benchmark.pedantic(solver.solve, args=(tree,), rounds=1, iterations=1)
    elapsed = time.perf_counter() - start

    assert tree.is_minimal_cut_set(result.events)
    assert result.probability > 0.0
    assert elapsed < budget_s, (
        f"{tree.num_nodes}-node tree took {elapsed:.1f}s, above the seconds-scale budget"
    )

    _series.append(
        f"events={num_events:5d}  nodes={tree.num_nodes:5d}  vars={result.num_vars:6d}  "
        f"hard={result.num_hard:6d}  |MPMCS|={result.size:3d}  "
        f"P={result.probability:9.3e}  time={elapsed:6.2f}s"
    )
    if num_events == SIZES[-1][0]:
        emit(
            "E4 — scalability of the MaxSAT pipeline on random fault trees "
            "(paper claim: thousands of nodes in seconds)",
            _series,
        )
