"""E10 — Dynamic fault trees: static approximation vs Monte Carlo semantics.

A further extension in the spirit of the paper's future work: dynamic gates
(PAND, SPARE, FDEP) are analysed by (a) the conservative static approximation
fed to the MPMCS MaxSAT pipeline and (b) Monte Carlo simulation of the exact
order-dependent semantics.  The benchmark measures both paths on a redundant
pumping system and checks the expected relationships: the static approximation
upper-bounds the simulated unreliability, and the MPMCS it reports is a real
minimal cut set of the approximated tree.
"""

import pytest

from repro.core.pipeline import MPMCSSolver
from repro.fta.dynamic import DynamicFaultTree
from repro.fta.simulation import simulate_dft
from repro.bdd.probability import top_event_probability
from repro.maxsat import RC2Engine

from benchmarks.conftest import emit

MISSION_TIME = 2000.0


def redundant_pumping_dft() -> DynamicFaultTree:
    """Primary pump with a cold spare, order-dependent valve damage and a
    shared power supply that takes both controllers down (FDEP)."""
    dft = DynamicFaultTree("redundant-pumping", top_event="system_fails")
    dft.add_event("pump_primary", 1e-4, description="Primary pump fails")
    dft.add_event("pump_spare", 1e-4, description="Spare pump fails (cold standby)")
    dft.add_event("valve_upstream", 1e-4, description="Upstream valve fails")
    dft.add_event("valve_downstream", 1e-4, description="Downstream valve fails")
    dft.add_event("controller_a", 5e-5, description="Controller A fails")
    dft.add_event("controller_b", 5e-5, description="Controller B fails")
    dft.add_event("power_supply", 5e-5, description="Shared power supply fails")
    dft.add_dynamic_gate("pumping_lost", "spare", ["pump_primary", "pump_spare"], dormancy=0.0)
    dft.add_dynamic_gate("valve_damage", "pand", ["valve_upstream", "valve_downstream"])
    dft.add_gate("controllers_lost", "and", ["controller_a", "controller_b"])
    dft.add_dynamic_gate("fdep_power", "fdep", ["power_supply", "controller_a", "controller_b"])
    dft.add_gate(
        "system_fails", "or", ["pumping_lost", "valve_damage", "controllers_lost"]
    )
    return dft


def test_bench_dynamic_static_approximation(benchmark):
    dft = redundant_pumping_dft()

    static = benchmark(dft.to_static_tree, MISSION_TIME)

    solver = MPMCSSolver(single_engine=RC2Engine())
    result = solver.solve(static)
    assert static.is_minimal_cut_set(result.events)
    # The shared power supply is the dominant (common-cause) cut set.
    assert result.events == ("power_supply",)
    emit(
        "E10 — dynamic tree, static approximation (MaxSAT MPMCS)",
        [
            f"mission time {MISSION_TIME:g} h, static tree: {static.num_nodes} nodes",
            f"MPMCS = {{{', '.join(result.events)}}}  p = {result.probability:.4e}",
        ],
    )


def test_bench_dynamic_simulation_vs_static_bound(benchmark):
    dft = redundant_pumping_dft()
    static = dft.to_static_tree(MISSION_TIME)
    static_bound = top_event_probability(static)

    simulated = benchmark(simulate_dft, dft, MISSION_TIME, num_samples=5000, seed=2020)

    slack = 5.0 * simulated.std_error + 1e-3
    assert simulated.unreliability <= static_bound + slack
    assert simulated.unreliability > 0.0
    emit(
        "E10 — dynamic tree, exact (Monte Carlo) vs conservative static bound",
        [
            f"simulated unreliability : {simulated.unreliability:.4e} "
            f"(95% CI {simulated.confidence_interval[0]:.3e} .. "
            f"{simulated.confidence_interval[1]:.3e})",
            f"static approximation    : {static_bound:.4e} (upper bound, as expected)",
        ],
    )
