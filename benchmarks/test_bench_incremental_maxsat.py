"""E12 — Incremental MaxSAT sweeps: warm weight-only re-solves vs cold.

The tentpole claim of the incremental sweep engine: on a ≥60-event tree and a
≥100-scenario probability sweep, the warm ``maxsat`` path — cached CNF
fragments, one persistent hitting-set session per structure, weight-only
re-solves — is **≥3x faster** than per-scenario cold re-encode+re-solve,
with **byte-identical** canonical :class:`AnalysisReport` dicts for every
scenario.

The smoke variant also emits a machine-readable ``BENCH_sweep.json``
(scenario count, wall-clock, hit rates, speedup vs cold) so the CI benchmark
job can upload it as an artifact and seed the perf trajectory.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.api import AnalysisSession
from repro.api.cache import ARTIFACT_SUBTREE_CNF
from repro.scenarios import probability_sweep
from repro.workloads.generator import random_fault_tree

from benchmarks.conftest import emit


def _available_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _scenario_trees(num_events: int, seed: int, steps: int):
    tree = random_fault_tree(num_basic_events=num_events, seed=seed)
    event = sorted(tree.events_reachable_from_top())[0]
    scenarios = probability_sweep(
        event, [0.0005 + 0.9 * index / steps / 2 for index in range(steps)]
    )
    return tree, event, [scenario.apply(tree) for scenario in scenarios]


def _cold_canonical(trees):
    """Fresh session per scenario: full re-encode + cold portfolio solve."""
    documents = []
    for patched in trees:
        report = AnalysisSession().analyze(patched, ["mpmcs"], backend="maxsat")
        documents.append(json.dumps(report.to_canonical_dict(), sort_keys=True))
    return documents


def _warm_canonical(trees):
    """One warm session: fragments cached, solver persistent, weights only."""
    session = AnalysisSession()
    session.backend("maxsat").enable_warm_sessions()
    documents = []
    for patched in trees:
        report = session.analyze(patched, ["mpmcs"], backend="maxsat")
        documents.append(json.dumps(report.to_canonical_dict(), sort_keys=True))
    return documents, session


def test_bench_incremental_maxsat_smoke(tmp_path):
    """Small grid: identical reports, JSON perf record for the CI artifact."""
    _, event, trees = _scenario_trees(num_events=40, seed=5, steps=40)

    started = time.perf_counter()
    cold_subset = _cold_canonical(trees[:10])
    cold_per_scenario = (time.perf_counter() - started) / 10

    started = time.perf_counter()
    warm, session = _warm_canonical(trees)
    warm_s = time.perf_counter() - started

    assert warm[:10] == cold_subset
    cold_estimate = cold_per_scenario * len(trees)
    speedup = cold_estimate / warm_s if warm_s else float("inf")
    stats = session.cache_info()
    fragment_counters = stats["by_kind"].get(ARTIFACT_SUBTREE_CNF, {})

    record = {
        "benchmark": "E12-incremental-maxsat-sweep",
        "scenarios": len(trees),
        "events": 40,
        "swept_event": event,
        "warm_wall_clock_s": round(warm_s, 4),
        "cold_wall_clock_s_estimated": round(cold_estimate, 4),
        "cold_sample_size": 10,
        "speedup_vs_cold": round(speedup, 2),
        "cache_hits": stats["hits"],
        "cache_misses": stats["misses"],
        "fragment_hits": fragment_counters.get("hits", 0),
        "fragment_misses": fragment_counters.get("misses", 0),
        "host_cores": _available_cores(),
    }
    output = Path(os.environ.get("BENCH_SWEEP_JSON", "BENCH_sweep.json"))
    output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    emit(
        "E12 (smoke) — warm incremental maxsat sweep vs cold",
        [f"{key:26}: {value}" for key, value in record.items()]
        + [f"{'json record':26}: {output}"],
    )
    # Even the smoke grid must show a real win (measured ~13-17x on a
    # single core); on starved runners only a noise-proof margin is asserted.
    if _available_cores() >= 2:
        assert speedup > 1.5
    else:
        assert speedup > 1.1


@pytest.mark.slow
def test_bench_incremental_maxsat_acceptance():
    """The acceptance comparison: 60-event tree, 110-scenario sweep, ≥3x."""
    _, event, trees = _scenario_trees(num_events=60, seed=11, steps=110)

    started = time.perf_counter()
    cold = _cold_canonical(trees)
    cold_s = time.perf_counter() - started

    started = time.perf_counter()
    warm, session = _warm_canonical(trees)
    warm_s = time.perf_counter() - started

    # Canonical identity, scenario by scenario, always.
    assert warm == cold

    stats = session.cache_info()
    fragment_counters = stats["by_kind"].get(ARTIFACT_SUBTREE_CNF, {})
    speedup = cold_s / warm_s
    cores = _available_cores()
    emit(
        "E12 — incremental maxsat sweep (60 events, 110 scenarios)",
        [
            f"swept event       : {event!r}",
            f"cold (per-scenario re-encode+re-solve) : {cold_s:8.2f} s",
            f"warm (fragments + persistent session)  : {warm_s:8.2f} s",
            f"speedup           : {speedup:8.2f} x",
            f"fragment cache    : {fragment_counters.get('hits', 0)} hits / "
            f"{fragment_counters.get('misses', 0)} misses",
            f"host cores        : {cores}",
        ],
    )
    # The warm path never loses; the full ≥3x claim is asserted wherever the
    # host is not so starved that timing noise dominates.
    assert warm_s < cold_s
    if cores >= 2:
        assert speedup >= 3.0, (
            f"warm incremental sweep ({warm_s:.2f}s) should be ≥3x faster than "
            f"cold per-scenario analysis ({cold_s:.2f}s); got {speedup:.2f}x"
        )
    else:
        assert speedup >= 2.0
