"""Exception hierarchy shared across the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so downstream
users can catch a single exception type at API boundaries.  More specific subclasses
exist for each subsystem (formula handling, SAT/MaxSAT solving, fault-tree modelling,
parsing, and the analysis pipeline) so callers can discriminate failure modes without
string-matching messages.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class FormulaError(ReproError):
    """Raised when a Boolean formula is malformed or an operation is unsupported."""


class CNFError(ReproError):
    """Raised when CNF clauses or literals are malformed."""


class DimacsError(ReproError):
    """Raised when a DIMACS CNF/WCNF document cannot be parsed or written."""


class SolverError(ReproError):
    """Raised when a SAT or MaxSAT solver is misused or reaches an invalid state."""


class BudgetExceededError(SolverError):
    """Raised when a solver exceeds a user-provided conflict or time budget."""


class SolverInterrupted(SolverError):
    """Raised when a cooperative stop signal interrupts a running solver.

    The parallel portfolio (paper Step 5) sets a stop flag once the first
    engine finishes; the remaining engines observe the flag at their next
    restart boundary and unwind by raising this exception.
    """


class UnsatisfiableError(SolverError):
    """Raised when an operation requires a satisfiable instance but none exists."""


class FaultTreeError(ReproError):
    """Raised when a fault tree is structurally invalid."""


class ProbabilityError(FaultTreeError):
    """Raised when an event probability lies outside the open interval (0, 1]."""


class ParseError(ReproError):
    """Raised when an external fault-tree document (Galileo, JSON, ...) is invalid."""


class AnalysisError(ReproError):
    """Raised when an analysis (MPMCS, MOCUS, BDD, ...) cannot be completed."""


class BDDError(ReproError):
    """Raised on invalid operations against the ROBDD manager."""


class ConfigurationError(ReproError):
    """Raised when pipeline or portfolio configuration values are invalid."""


class MissingDependencyError(ReproError):
    """Raised when an optional dependency (numpy) is needed but unavailable.

    The core library is pure stdlib; numerical extras (uncertainty
    propagation, CTMC transient analysis, dynamic fault-tree simulation, the
    vectorised kernel tier) require numpy, installed via the ``numerics``
    extra: ``pip install mpmcs4fta[numerics]``.
    """
