"""Assigning failure models to the basic events of a fault tree.

A :class:`ReliabilityAssignment` binds every basic event of a fault tree to a
:class:`~repro.reliability.models.FailureModel` and can then materialise the
tree "frozen" at any mission time — a plain :class:`~repro.fta.tree.FaultTree`
with numeric probabilities that the MaxSAT pipeline, the BDD engine and every
other analysis of the library accept unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.exceptions import AnalysisError, FaultTreeError
from repro.fta.tree import FaultTree
from repro.reliability.models import FailureModel, FixedProbability

__all__ = ["MIN_PROBABILITY", "ReliabilityAssignment", "clamp_probability"]

#: Basic events require probabilities strictly greater than zero (a zero
#: probability has an infinite ``-log`` weight); time-dependent models that
#: evaluate to exactly zero (e.g. an exponential model at ``t = 0``) are
#: clamped to this floor when a tree is materialised.
MIN_PROBABILITY = 1e-15


def clamp_probability(value: float) -> float:
    """Clamp a model-evaluated probability into the library's ``(0, 1]`` domain.

    The single clamp shared by :meth:`ReliabilityAssignment.probabilities_at`
    and the maintenance patches of :mod:`repro.scenarios.patches`, so a
    maintenance scenario's single-event update is bit-identical to a full
    :meth:`ReliabilityAssignment.tree_at` materialisation.
    """
    if value < MIN_PROBABILITY:
        return MIN_PROBABILITY
    if value > 1.0:
        return 1.0
    return value


class ReliabilityAssignment:
    """Maps each basic event of a fault tree to a failure model.

    Parameters
    ----------
    tree:
        The fault tree whose events are being modelled.  It is validated once
        at construction time.
    models:
        Optional initial mapping of event name to failure model.  Events not
        covered keep their static probability from the tree (wrapped in a
        :class:`FixedProbability` model), so partially time-dependent studies
        are supported out of the box.

    Example
    -------
    .. code-block:: python

        from repro.reliability import ExponentialFailure, ReliabilityAssignment
        from repro.workloads.library import fire_protection_system

        tree = fire_protection_system()
        assignment = ReliabilityAssignment(tree)
        assignment.assign("x1", ExponentialFailure(1e-3))
        frozen = assignment.tree_at(1000.0)   # FaultTree with p(x1) = 1-exp(-1)
    """

    def __init__(
        self,
        tree: FaultTree,
        models: Optional[Mapping[str, FailureModel]] = None,
    ) -> None:
        tree.validate()
        self.tree = tree
        self._models: Dict[str, FailureModel] = {}
        for name, event in tree.events.items():
            self._models[name] = FixedProbability(event.probability)
        if models:
            for name, model in models.items():
                self.assign(name, model)

    # -- construction ----------------------------------------------------------

    def assign(self, event_name: str, model: FailureModel) -> None:
        """Bind ``event_name`` to ``model`` (replacing any previous binding)."""
        if not self.tree.is_event(event_name):
            raise FaultTreeError(
                f"unknown basic event {event_name!r} in fault tree {self.tree.name!r}"
            )
        if not isinstance(model, FailureModel):
            raise AnalysisError(
                f"model for {event_name!r} must be a FailureModel, "
                f"got {type(model).__name__}"
            )
        self._models[event_name] = model

    def assign_all(self, models: Mapping[str, FailureModel]) -> None:
        """Bind several events at once."""
        for name, model in models.items():
            self.assign(name, model)

    def with_models(self, models: Mapping[str, FailureModel]) -> "ReliabilityAssignment":
        """A new assignment over the same tree with some models replaced.

        The non-destructive counterpart of :meth:`assign_all`, used by the
        maintenance patches of :mod:`repro.scenarios.patches`: the receiver is
        left untouched, so a scenario sweep can derive hundreds of perturbed
        maintenance policies from one base assignment.
        """
        clone = ReliabilityAssignment.__new__(ReliabilityAssignment)
        clone.tree = self.tree
        clone._models = dict(self._models)
        for name, model in models.items():
            clone.assign(name, model)
        return clone

    # -- accessors --------------------------------------------------------------

    def model_for(self, event_name: str) -> FailureModel:
        """Return the failure model bound to ``event_name``."""
        try:
            return self._models[event_name]
        except KeyError as exc:
            raise FaultTreeError(f"unknown basic event {event_name!r}") from exc

    def items(self) -> Iterator[Tuple[str, FailureModel]]:
        """Iterate over ``(event name, model)`` pairs."""
        return iter(self._models.items())

    @property
    def event_names(self) -> Tuple[str, ...]:
        return tuple(self._models.keys())

    def time_dependent_events(self) -> Tuple[str, ...]:
        """Names of events whose model is *not* a fixed probability."""
        return tuple(
            name
            for name, model in self._models.items()
            if not isinstance(model, FixedProbability)
        )

    # -- materialisation -----------------------------------------------------------

    def probabilities_at(self, time: float) -> Dict[str, float]:
        """Evaluate every event's model at ``time`` (clamped to ``(0, 1]``)."""
        return {
            name: clamp_probability(model.probability_at(time))
            for name, model in self._models.items()
        }

    def tree_at(self, time: float) -> FaultTree:
        """Return a copy of the tree with probabilities evaluated at ``time``."""
        frozen = self.tree.copy(name=f"{self.tree.name}@t={time:g}")
        for name, probability in self.probabilities_at(time).items():
            frozen.set_probability(name, probability)
        return frozen
