"""Mission-time curves: top-event probability, MPMCS identity, importance.

All functions take a :class:`~repro.reliability.assignment.ReliabilityAssignment`
and a sequence of mission times.  The fault-tree *structure* never changes with
time, so structural work (minimal cut set enumeration) is done once and only
probabilities are re-evaluated per grid point; the MPMCS-over-time analysis, on
the other hand, re-runs the paper's full MaxSAT pipeline at every time because
its optimum may (and does) change identity as probabilities drift.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.cutsets import CutSetCollection
from repro.analysis.importance import importance_measures
from repro.analysis.mocus import mocus_minimal_cut_sets
from repro.analysis.topevent import top_event_probability_from_cut_sets
from repro.bdd.cutsets import bdd_minimal_cut_sets
from repro.core.pipeline import MPMCSSolver
from repro.exceptions import AnalysisError
from repro.reliability.assignment import ReliabilityAssignment

__all__ = [
    "CurvePoint",
    "TopEventCurve",
    "MPMCSAtTime",
    "time_grid",
    "top_event_curve",
    "mpmcs_over_time",
    "mpmcs_crossovers",
    "birnbaum_importance_over_time",
]


def time_grid(
    start: float,
    stop: float,
    points: int,
    *,
    spacing: str = "linear",
) -> Tuple[float, ...]:
    """Build a mission-time grid.

    Parameters
    ----------
    start / stop:
        Grid end points, ``0 <= start < stop``.
    points:
        Number of grid points (at least 2); both end points are included.
    spacing:
        ``"linear"`` (default) or ``"log"``.  Logarithmic spacing requires
        ``start > 0``.
    """
    if points < 2:
        raise AnalysisError(f"a time grid needs at least 2 points, got {points}")
    if not (0.0 <= start < stop) or not math.isfinite(stop):
        raise AnalysisError(f"invalid time grid bounds: start={start}, stop={stop}")
    if spacing == "linear":
        step = (stop - start) / (points - 1)
        return tuple(start + index * step for index in range(points))
    if spacing == "log":
        if start <= 0.0:
            raise AnalysisError("logarithmic time grids require start > 0")
        ratio = (stop / start) ** (1.0 / (points - 1))
        return tuple(start * ratio**index for index in range(points))
    raise AnalysisError(f"unknown spacing {spacing!r}; expected 'linear' or 'log'")


@dataclass(frozen=True)
class CurvePoint:
    """A single ``(mission time, value)`` sample of a curve."""

    time: float
    value: float


@dataclass
class TopEventCurve:
    """Top-event probability as a function of mission time.

    Attributes
    ----------
    tree_name:
        Name of the analysed fault tree.
    method:
        Probability computation method actually used per grid point.
    points:
        The sampled curve, in increasing time order.
    num_cut_sets:
        Number of minimal cut sets the curve was computed from.
    """

    tree_name: str
    method: str
    points: Tuple[CurvePoint, ...]
    num_cut_sets: int

    def times(self) -> Tuple[float, ...]:
        return tuple(point.time for point in self.points)

    def probabilities(self) -> Tuple[float, ...]:
        return tuple(point.value for point in self.points)

    def final_probability(self) -> float:
        """Probability at the last (largest) mission time."""
        if not self.points:
            raise AnalysisError("curve has no points")
        return self.points[-1].value

    def to_rows(self) -> List[Tuple[float, float]]:
        """Plain ``(time, probability)`` rows for tables and reports."""
        return [(point.time, point.value) for point in self.points]


def _structural_cut_sets(
    assignment: ReliabilityAssignment,
    *,
    algorithm: str,
    max_candidates: int,
) -> CutSetCollection:
    """Enumerate the minimal cut sets of the assignment's tree once."""
    if algorithm == "mocus":
        return mocus_minimal_cut_sets(assignment.tree, max_candidates=max_candidates)
    if algorithm == "bdd":
        return bdd_minimal_cut_sets(assignment.tree)
    raise AnalysisError(f"unknown cut-set algorithm {algorithm!r}; expected 'mocus' or 'bdd'")


def top_event_curve(
    assignment: ReliabilityAssignment,
    times: Sequence[float],
    *,
    method: str = "auto",
    cut_set_algorithm: str = "mocus",
    max_candidates: int = 200_000,
) -> TopEventCurve:
    """Top-event probability over mission time.

    The minimal cut sets are enumerated once (the structure is
    time-independent); each grid point then only re-evaluates the cut-set
    probabilities with the assignment's failure models.

    Parameters
    ----------
    assignment:
        Failure-model assignment for the tree.
    times:
        Mission times to sample (not necessarily sorted; they are sorted here).
    method:
        Probability combination method passed to
        :func:`repro.analysis.topevent.top_event_probability_from_cut_sets`
        (``"exact"``, ``"rare-event"``, ``"min-cut-upper-bound"`` or ``"auto"``).
    cut_set_algorithm:
        ``"mocus"`` (default) or ``"bdd"``.
    max_candidates:
        Candidate cap for the MOCUS enumeration.
    """
    if not times:
        raise AnalysisError("at least one mission time is required")
    collection = _structural_cut_sets(
        assignment, algorithm=cut_set_algorithm, max_candidates=max_candidates
    )
    cut_sets = [set(cut_set) for cut_set in collection]
    if not cut_sets:
        raise AnalysisError(
            f"fault tree {assignment.tree.name!r} has no cut set: the top event cannot occur"
        )
    points: List[CurvePoint] = []
    for time in sorted(times):
        probabilities = assignment.probabilities_at(time)
        value = top_event_probability_from_cut_sets(cut_sets, probabilities, method=method)
        points.append(CurvePoint(time=time, value=value))
    return TopEventCurve(
        tree_name=assignment.tree.name,
        method=method,
        points=tuple(points),
        num_cut_sets=len(cut_sets),
    )


@dataclass(frozen=True)
class MPMCSAtTime:
    """The Maximum Probability Minimal Cut Set at one mission time."""

    time: float
    events: Tuple[str, ...]
    probability: float

    @property
    def size(self) -> int:
        return len(self.events)


def mpmcs_over_time(
    assignment: ReliabilityAssignment,
    times: Sequence[float],
    *,
    solver: Optional[MPMCSSolver] = None,
) -> List[MPMCSAtTime]:
    """Run the MaxSAT MPMCS pipeline at every mission time.

    The result tracks how the most probable minimal cut set evolves as the
    component models age: early in the mission the dominant cut set is usually
    driven by demand failures (fixed probabilities), later by the components
    with the highest failure rates.
    """
    if not times:
        raise AnalysisError("at least one mission time is required")
    pipeline = solver if solver is not None else MPMCSSolver()
    results: List[MPMCSAtTime] = []
    for time in sorted(times):
        frozen = assignment.tree_at(time)
        result = pipeline.solve(frozen)
        results.append(
            MPMCSAtTime(time=time, events=result.events, probability=result.probability)
        )
    return results


def mpmcs_crossovers(samples: Sequence[MPMCSAtTime]) -> List[Tuple[MPMCSAtTime, MPMCSAtTime]]:
    """Detect mission times at which the MPMCS *identity* changes.

    Returns the list of consecutive sample pairs ``(before, after)`` whose cut
    sets differ; an empty list means a single cut set dominates over the whole
    mission.
    """
    crossovers: List[Tuple[MPMCSAtTime, MPMCSAtTime]] = []
    for before, after in zip(samples, samples[1:]):
        if before.events != after.events:
            crossovers.append((before, after))
    return crossovers


def birnbaum_importance_over_time(
    assignment: ReliabilityAssignment,
    times: Sequence[float],
    *,
    events: Optional[Sequence[str]] = None,
    cut_set_algorithm: str = "mocus",
    max_candidates: int = 200_000,
) -> Dict[str, Tuple[CurvePoint, ...]]:
    """Birnbaum importance of each selected event as a function of mission time.

    Importance rankings are time-dependent: a component that is unimportant at
    the start of a mission can dominate the risk near the end of it.  The cut
    sets are enumerated once; the importance measures are re-evaluated at every
    grid point from the frozen tree.
    """
    if not times:
        raise AnalysisError("at least one mission time is required")
    collection = _structural_cut_sets(
        assignment, algorithm=cut_set_algorithm, max_candidates=max_candidates
    )
    selected = list(events) if events is not None else sorted(assignment.tree.events)
    curves: Dict[str, List[CurvePoint]] = {name: [] for name in selected}
    for time in sorted(times):
        frozen = assignment.tree_at(time)
        measures = importance_measures(frozen, collection, events=selected)
        for name in selected:
            curves[name].append(CurvePoint(time=time, value=measures[name].birnbaum))
    return {name: tuple(points) for name, points in curves.items()}
