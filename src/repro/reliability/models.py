"""Component-level failure and repair models.

Each model maps a mission time ``t`` (in consistent units, typically hours) to
the probability that the component is in its failed state at ``t``:

* for non-repairable components this is the *unreliability*
  ``F(t) = P(T_fail <= t)``;
* for repairable components it is the *unavailability* ``q(t)``, the
  probability of being down at ``t``.

The models implemented here are the standard ones found in the Fault Tree
Handbook and in PRA practice.  They deliberately share a minimal interface —
:meth:`FailureModel.probability_at` — so that the rest of the package can use
them interchangeably.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ProbabilityError

__all__ = [
    "FailureModel",
    "FixedProbability",
    "ExponentialFailure",
    "WeibullFailure",
    "RepairableComponent",
    "PeriodicallyTestedComponent",
]


def _check_positive(value: float, what: str) -> float:
    """Validate a strictly positive, finite numeric parameter."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ProbabilityError(f"{what} must be a number, got {type(value).__name__}")
    if not math.isfinite(value) or value <= 0.0:
        raise ProbabilityError(f"{what} must be positive and finite, got {value}")
    return float(value)


def _check_time(time: float) -> float:
    """Validate a non-negative, finite mission time."""
    if not isinstance(time, (int, float)) or isinstance(time, bool):
        raise ProbabilityError(f"mission time must be a number, got {type(time).__name__}")
    if not math.isfinite(time) or time < 0.0:
        raise ProbabilityError(f"mission time must be non-negative and finite, got {time}")
    return float(time)


class FailureModel:
    """Interface shared by every component failure/repair model."""

    def probability_at(self, time: float) -> float:
        """Probability of the failed state at mission time ``time`` (in [0, 1])."""
        raise NotImplementedError

    def describe(self) -> str:
        """Short human-readable description used in reports."""
        raise NotImplementedError

    def mean_time_to_failure(self) -> Optional[float]:
        """Mean time to (first) failure, or ``None`` when it is not defined."""
        return None


@dataclass(frozen=True)
class FixedProbability(FailureModel):
    """A time-independent probability — the paper's own setting (Table I)."""

    probability: float

    def __post_init__(self) -> None:
        p = self.probability
        if not isinstance(p, (int, float)) or isinstance(p, bool):
            raise ProbabilityError(f"probability must be a number, got {type(p).__name__}")
        if not math.isfinite(p) or not 0.0 <= p <= 1.0:
            raise ProbabilityError(f"probability must lie in [0, 1], got {p}")

    def probability_at(self, time: float) -> float:
        _check_time(time)
        return self.probability

    def describe(self) -> str:
        return f"fixed probability {self.probability:g}"


@dataclass(frozen=True)
class ExponentialFailure(FailureModel):
    """Non-repairable component with a constant failure rate ``lambda``.

    Unreliability: ``F(t) = 1 - exp(-lambda * t)``.
    """

    failure_rate: float

    def __post_init__(self) -> None:
        _check_positive(self.failure_rate, "failure rate")

    def probability_at(self, time: float) -> float:
        t = _check_time(time)
        return 1.0 - math.exp(-self.failure_rate * t)

    def mean_time_to_failure(self) -> float:
        return 1.0 / self.failure_rate

    def describe(self) -> str:
        return f"exponential failure, rate {self.failure_rate:g}/h"


@dataclass(frozen=True)
class WeibullFailure(FailureModel):
    """Non-repairable Weibull failure model.

    Unreliability: ``F(t) = 1 - exp(-(t / scale)^shape)``.  ``shape < 1``
    models infant mortality, ``shape = 1`` reduces to the exponential model,
    ``shape > 1`` models wear-out.
    """

    shape: float
    scale: float

    def __post_init__(self) -> None:
        _check_positive(self.shape, "Weibull shape")
        _check_positive(self.scale, "Weibull scale")

    def probability_at(self, time: float) -> float:
        t = _check_time(time)
        if t == 0.0:
            return 0.0
        return 1.0 - math.exp(-((t / self.scale) ** self.shape))

    def mean_time_to_failure(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    def describe(self) -> str:
        return f"Weibull failure, shape {self.shape:g}, scale {self.scale:g} h"


@dataclass(frozen=True)
class RepairableComponent(FailureModel):
    """Repairable component with constant failure and repair rates.

    Transient unavailability of the two-state Markov model:

    ``q(t) = lambda / (lambda + mu) * (1 - exp(-(lambda + mu) * t))``

    which converges to the steady-state unavailability
    ``lambda / (lambda + mu)`` as ``t`` grows.
    """

    failure_rate: float
    repair_rate: float

    def __post_init__(self) -> None:
        _check_positive(self.failure_rate, "failure rate")
        _check_positive(self.repair_rate, "repair rate")

    @property
    def steady_state_unavailability(self) -> float:
        """Long-run unavailability ``lambda / (lambda + mu)``."""
        return self.failure_rate / (self.failure_rate + self.repair_rate)

    def probability_at(self, time: float) -> float:
        t = _check_time(time)
        total = self.failure_rate + self.repair_rate
        return self.steady_state_unavailability * (1.0 - math.exp(-total * t))

    def mean_time_to_failure(self) -> float:
        return 1.0 / self.failure_rate

    def describe(self) -> str:
        return (
            f"repairable, failure rate {self.failure_rate:g}/h, "
            f"repair rate {self.repair_rate:g}/h"
        )


@dataclass(frozen=True)
class PeriodicallyTestedComponent(FailureModel):
    """Standby component revealed by periodic tests every ``test_interval`` hours.

    Between tests, an undetected failure accumulates as ``1 - exp(-lambda *
    tau)`` where ``tau`` is the time elapsed since the last test; the test
    itself restores the component (perfect test assumed).  The commonly used
    *average* unavailability ``lambda * T / 2`` is exposed separately.
    """

    failure_rate: float
    test_interval: float

    def __post_init__(self) -> None:
        _check_positive(self.failure_rate, "failure rate")
        _check_positive(self.test_interval, "test interval")

    def probability_at(self, time: float) -> float:
        t = _check_time(time)
        since_test = math.fmod(t, self.test_interval)
        return 1.0 - math.exp(-self.failure_rate * since_test)

    def average_unavailability(self) -> float:
        """Time-averaged unavailability over one test interval (exact form)."""
        lam, tau = self.failure_rate, self.test_interval
        return 1.0 - (1.0 - math.exp(-lam * tau)) / (lam * tau)

    def mean_time_to_failure(self) -> float:
        return 1.0 / self.failure_rate

    def describe(self) -> str:
        return (
            f"periodically tested, failure rate {self.failure_rate:g}/h, "
            f"test interval {self.test_interval:g} h"
        )
