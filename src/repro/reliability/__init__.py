"""Time-dependent (mission-time) reliability analysis on top of the MPMCS engine.

The paper treats basic-event probabilities as fixed numbers (Table I).  In
practice those probabilities come from component reliability models evaluated
at a *mission time*: an unreliability ``1 - exp(-lambda * t)`` for a
non-repairable component, a steady-state unavailability for a repairable one,
and so on.  This package provides those models and the analyses that become
possible once probabilities are functions of time:

* :mod:`repro.reliability.models`     — component failure/repair models
  (fixed, exponential, Weibull, repairable, periodically tested).
* :mod:`repro.reliability.assignment` — assigning a model to every basic event
  of a fault tree and materialising the tree at a given mission time.
* :mod:`repro.reliability.curves`     — top-event probability curves, the
  MPMCS as a function of mission time (including crossover detection, i.e.
  the times at which the *identity* of the most probable cut set changes),
  and Birnbaum importance over time.

Everything composes with the MaxSAT pipeline of :mod:`repro.core`: the curves
re-run the paper's six-step method at every grid point, so the MPMCS-over-time
analysis is a direct, practically motivated extension of the paper.
"""

from repro.reliability.assignment import (
    MIN_PROBABILITY,
    ReliabilityAssignment,
    clamp_probability,
)
from repro.reliability.curves import (
    CurvePoint,
    MPMCSAtTime,
    TopEventCurve,
    birnbaum_importance_over_time,
    mpmcs_crossovers,
    mpmcs_over_time,
    time_grid,
    top_event_curve,
)
from repro.reliability.models import (
    ExponentialFailure,
    FailureModel,
    FixedProbability,
    PeriodicallyTestedComponent,
    RepairableComponent,
    WeibullFailure,
)

__all__ = [
    "CurvePoint",
    "ExponentialFailure",
    "FailureModel",
    "FixedProbability",
    "MIN_PROBABILITY",
    "MPMCSAtTime",
    "PeriodicallyTestedComponent",
    "ReliabilityAssignment",
    "RepairableComponent",
    "TopEventCurve",
    "WeibullFailure",
    "birnbaum_importance_over_time",
    "clamp_probability",
    "mpmcs_crossovers",
    "mpmcs_over_time",
    "time_grid",
    "top_event_curve",
]
