"""``repro.api`` — the unified analysis facade.

One front door for every fault-tree analysis the library implements:

* a **backend registry** (:mod:`repro.api.registry`) where each resolution
  strategy — the paper's MaxSAT pipeline and the classical MOCUS / BDD /
  brute-force / Monte-Carlo baselines — plugs in behind a common
  :class:`AnalysisBackend` protocol;
* an **:class:`AnalysisSession`** (:mod:`repro.api.session`) that routes
  requests to backends and memoises expensive intermediates (Tseitin CNF
  encoding, minimal cut sets, compiled BDDs) in a shared
  :class:`ArtifactCache`;
* a **batch layer** (:mod:`repro.api.batch`) fanning many trees out over a
  process pool;
* one **:class:`AnalysisReport`** result type consumed uniformly by the
  :mod:`repro.reporting` renderers.

Quickstart:

.. code-block:: python

    from repro.api import AnalysisSession, analyze_many
    from repro.workloads.library import fire_protection_system

    session = AnalysisSession()
    report = session.analyze(
        fire_protection_system(), analyses=["mpmcs", "top_event", "importance"]
    )
    assert report.mpmcs.events == ("x1", "x2")

    # same answer through any registered backend
    for name in ("maxsat", "mocus", "bdd", "brute-force"):
        assert session.analyze(
            fire_protection_system(), ["mpmcs"], backend=name
        ).mpmcs.events == ("x1", "x2")
"""

from repro.api.batch import BatchItem, BatchResult, analyze_many
from repro.api.cache import (
    ARTIFACT_BDD,
    ARTIFACT_CUT_SETS,
    ARTIFACT_ENCODING,
    ARTIFACT_SUBTREE_CUT_SETS,
    ArtifactCache,
    structural_hash,
    subtree_structure_hashes,
)
from repro.api.registry import (
    AnalysisBackend,
    BackendContext,
    available_backends,
    backend_capabilities,
    backend_class,
    backends_supporting,
    canonical_backend_name,
    create_backend,
    register_backend,
)
from repro.api.report import (
    ANALYSES,
    AnalysisReport,
    AnalysisRequest,
    MPMCSSummary,
    TopEventSummary,
)
from repro.api.session import DEFAULT_ROUTES, AnalysisSession

# Importing the backends module registers the built-in strategies.
from repro.api import backends as _backends  # noqa: F401

__all__ = [
    "ANALYSES",
    "ARTIFACT_BDD",
    "ARTIFACT_CUT_SETS",
    "ARTIFACT_ENCODING",
    "ARTIFACT_SUBTREE_CUT_SETS",
    "AnalysisBackend",
    "AnalysisReport",
    "AnalysisRequest",
    "AnalysisSession",
    "ArtifactCache",
    "BackendContext",
    "BatchItem",
    "BatchResult",
    "DEFAULT_ROUTES",
    "MPMCSSummary",
    "TopEventSummary",
    "analyze_many",
    "available_backends",
    "backend_capabilities",
    "backend_class",
    "backends_supporting",
    "canonical_backend_name",
    "create_backend",
    "register_backend",
    "structural_hash",
    "subtree_structure_hashes",
]
