"""Built-in analysis backends: adapters over the library's strategies.

Each backend wraps one resolution strategy behind the common
:class:`~repro.api.registry.AnalysisBackend` protocol:

===============  =======================================================
``maxsat``       The paper's six-step Weighted Partial MaxSAT pipeline
                 (MPMCS and blocking-clause top-k ranking).
``mocus``        Classical top-down MOCUS enumeration plus the analyses
                 derived from a full cut-set collection (importance,
                 probability bounds, SPOF, modules, truncation).
``bdd``          The ROBDD engine (exact probability, Rauzy-style cut
                 sets, dynamic-programming MPMCS).
``brute-force``  Exhaustive ground-truth enumeration for small trees.
``monte-carlo``  Sampling estimator of the top-event probability.
===============  =======================================================

All backends share the session's :class:`~repro.api.cache.ArtifactCache`:
the Tseitin CNF encoding, the minimal cut sets (a canonical object — every
enumeration strategy produces the same collection) and the compiled BDD are
each computed once per structurally identical tree and reused across
analyses and backends.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.bruteforce import brute_force_minimal_cut_sets
from repro.analysis.cutsets import CutSetCollection
from repro.analysis.importance import importance_measures
from repro.analysis.mocus import mocus_minimal_cut_sets
from repro.analysis.modules import modularisation_report
from repro.analysis.montecarlo import estimate_top_event_probability
from repro.analysis.spof import single_points_of_failure
from repro.analysis.topevent import (
    birnbaum_bound,
    exact_top_event_probability,
    rare_event_approximation,
)
from repro.analysis.truncation import truncated_cut_sets
from repro.api.cache import ARTIFACT_BDD, ARTIFACT_CUT_SETS, ARTIFACT_ENCODING
from repro.api.registry import AnalysisBackend, register_backend
from repro.api.report import AnalysisReport, AnalysisRequest, MPMCSSummary, TopEventSummary
from repro.bdd.cutsets import cut_sets_of_bdd
from repro.bdd.manager import BDD, BDDManager
from repro.bdd.ordering import variable_order
from repro.bdd.probability import mpmcs_of_bdd, probability_of_bdd
from repro.core.encoder import MPMCSEncoding, encode_mpmcs
from repro.core.pipeline import MPMCSResult, MPMCSSolver
from repro.core.topk import RankedCutSet
from repro.core.weights import log_weight, probability_of_cut_set, weight_of_cut_set
from repro.exceptions import AnalysisError, BudgetExceededError
from repro.fta.tree import FaultTree
from repro.maxsat.incremental import IncrementalMaxSATSession, IncrementalSolveResult
from repro.observability.metrics import get_metrics

__all__ = [
    "BDDBackend",
    "BruteForceBackend",
    "MaxSATBackend",
    "MocusBackend",
    "MonteCarloBackend",
]

#: Maximum number of cut sets for which the exact inclusion-exclusion
#: top-event probability is attempted by the cut-set based backends.
_MAX_EXACT_CUT_SETS = 20


def _clone_encoding(encoding: MPMCSEncoding) -> MPMCSEncoding:
    """A copy of ``encoding`` whose instance can be extended with blocking clauses."""
    return MPMCSEncoding(
        instance=encoding.instance.copy(),
        event_vars=encoding.event_vars,
        var_events=encoding.var_events,
        weights=encoding.weights,
        structure=encoding.structure,
        success=encoding.success,
        num_aux_vars=encoding.num_aux_vars,
    )


def _ranking_from_collection(
    collection: CutSetCollection, tree: FaultTree, top_k: int
) -> List[RankedCutSet]:
    """Top-k ranking read directly off an already-enumerated MCS collection."""
    probabilities = tree.probabilities()
    return [
        RankedCutSet(
            rank=index + 1,
            events=tuple(sorted(cut_set)),
            probability=probability,
            cost=weight_of_cut_set(cut_set, probabilities),
        )
        for index, (cut_set, probability) in enumerate(collection.ranked()[:top_k])
    ]


def _summary_from_collection(
    collection: CutSetCollection, tree: FaultTree, backend: str, elapsed: float
) -> MPMCSSummary:
    """Build an :class:`MPMCSSummary` from a ranked cut-set collection."""
    if not len(collection):
        raise AnalysisError(f"fault tree {tree.name!r} has no cut set")
    cut_set, probability = collection.most_probable()
    events = tuple(sorted(cut_set))
    cost = weight_of_cut_set(events, tree.probabilities())
    return MPMCSSummary(
        events=events,
        probability=probability,
        cost=cost,
        backend=backend,
        solve_time=elapsed,
        total_time=elapsed,
    )


class _CutSetBackend(AnalysisBackend):
    """Shared implementation for backends that analyse a full MCS collection."""

    def _cut_sets(self, tree: FaultTree) -> CutSetCollection:
        raise NotImplementedError

    def _top_event_summary(self, tree: FaultTree, collection: CutSetCollection) -> TopEventSummary:
        probabilities = tree.probabilities()
        cut_sets = list(collection)
        exact: Optional[float] = None
        if len(cut_sets) <= _MAX_EXACT_CUT_SETS:
            exact = exact_top_event_probability(
                cut_sets, probabilities, max_cut_sets=_MAX_EXACT_CUT_SETS
            )
        return TopEventSummary(
            exact=exact,
            rare_event_bound=rare_event_approximation(cut_sets, probabilities),
            min_cut_upper_bound=birnbaum_bound(cut_sets, probabilities),
            backend=self.name,
        )

    def run(self, tree: FaultTree, request: AnalysisRequest) -> AnalysisReport:
        report = AnalysisReport(tree=tree, request=request)
        needs_collection = {"mcs", "mpmcs", "ranking", "top_event", "importance"}
        collection: Optional[CutSetCollection] = None
        if needs_collection & set(request.analyses):
            start = time.perf_counter()
            collection = self._cut_sets(tree)
            elapsed = time.perf_counter() - start
            report.profile["solve_seconds"] = elapsed
        for analysis in request.analyses:
            if analysis == "mcs":
                report.cut_sets = collection
            elif analysis == "mpmcs":
                assert collection is not None
                report.mpmcs = _summary_from_collection(collection, tree, self.name, elapsed)
            elif analysis == "ranking":
                assert collection is not None
                report.ranking = _ranking_from_collection(collection, tree, request.top_k)
            elif analysis == "top_event":
                assert collection is not None
                report.top_event = self._top_event_summary(tree, collection)
            elif analysis == "importance":
                assert collection is not None
                report.importance = importance_measures(tree, collection)
            elif analysis == "spof":
                report.spof = single_points_of_failure(tree)
            elif analysis == "modules":
                report.modules = modularisation_report(tree)
            elif analysis == "truncation":
                report.truncation = truncated_cut_sets(tree, request.cutoff)
        return report


@register_backend
class MaxSATBackend(AnalysisBackend):
    """The paper's Weighted Partial MaxSAT pipeline behind the facade.

    Reuses the session's cached Tseitin CNF encoding: composite requests and
    repeated :meth:`~repro.api.session.AnalysisSession.analyze` calls on the
    same tree encode the structure function exactly once, and the top-k
    ranking extends *copies* of that cached instance with blocking clauses
    instead of re-encoding for every rank.
    """

    name = "maxsat"
    CAPABILITIES = frozenset({"mpmcs", "ranking"})

    #: Engine label reported by warm incremental solves.
    WARM_ENGINE = "incremental-hitting-set"
    #: Default bound on live warm sessions (each owns a persistent solver).
    WARM_SESSION_LIMIT = 4

    def __init__(self, context=None) -> None:
        super().__init__(context)
        #: Warm incremental sessions keyed by the structure-only hash of the
        #: tree's top subtree.  Populated only when a sweep opts in through
        #: :meth:`enable_warm_sessions` — one-off analyses keep the portfolio.
        self._warm_sessions: "OrderedDict[str, IncrementalMaxSATSession]" = OrderedDict()
        self.warm_enabled = False
        self.warm_session_limit = self.WARM_SESSION_LIMIT
        #: Batch-precomputed first solves, keyed by ``id(tree)`` and holding
        #: a strong reference to the tree so ids cannot be recycled while an
        #: entry is pending.  Filled by :meth:`precompute_rerank`, consumed
        #: (identity-checked) by :meth:`_enumerate_warm`.
        self._pending_rerank: Dict[
            int, Tuple[FaultTree, Optional[IncrementalSolveResult], str]
        ] = {}

    def _solver(self) -> MPMCSSolver:
        if self.context.solver is None:
            self.context.solver = MPMCSSolver(precision=self.context.precision)
        return self.context.solver

    def _encoding(self, tree: FaultTree) -> MPMCSEncoding:
        return self.context.artifacts.get_or_compute(
            tree,
            ARTIFACT_ENCODING,
            lambda: encode_mpmcs(
                tree, precision=self.context.precision, cache=self.context.artifacts
            ),
        )

    # -- warm incremental sessions ---------------------------------------------

    def enable_warm_sessions(self, limit: Optional[int] = None) -> None:
        """Route repeated same-structure solves through persistent sessions.

        Called by the scenario sweep executor: probability/maintenance
        scenarios share one structure hash, so after the first scenario every
        later one becomes a *weight-only re-solve* on a warm solver — no
        Tseitin encoding, no portfolio fan-out, no solver restart.  Solves
        that blow the session's core budget fall back to the cold portfolio
        transparently.
        """
        self.warm_enabled = True
        if limit is not None:
            if limit < 1:
                raise AnalysisError(f"warm session limit must be at least 1, got {limit}")
            self.warm_session_limit = limit

    def _warm_session_for(self, tree: FaultTree) -> IncrementalMaxSATSession:
        """The (LRU-bounded) warm session for ``tree``'s structure."""
        key = self.context.artifacts.structure_keys_for(tree)[tree.top_event]
        session = self._warm_sessions.get(key)
        if session is None:
            session = IncrementalMaxSATSession(
                tree,
                self.context.artifacts,
                precision=self.context.precision,
                kernels=self.context.kernels,
            )
            self._warm_sessions[key] = session
            while len(self._warm_sessions) > self.warm_session_limit:
                self._warm_sessions.popitem(last=False)
        else:
            self._warm_sessions.move_to_end(key)
        return session

    def precompute_rerank(self, trees: Sequence[FaultTree]) -> int:
        """Batch the first (unblocked) solve of every tree through the kernel seam.

        Trees are grouped by structure and each group's weight grid is pushed
        through :meth:`IncrementalMaxSATSession.solve_batch` — the pooled /
        certified / B&B / fallback re-rank ladder, whose per-scenario results
        are byte-identical to the sequential warm loop.  Results are staged
        for :meth:`_enumerate_warm`, which consumes each tree's entry for its
        first enumeration step (later blocked steps, reached only for head
        ties or top-k requests, stay per-tree).

        Groups whose batch blows a search budget are simply not staged — the
        per-tree warm path then re-raises and falls back to the cold
        portfolio, preserving the unbatched error handling.  Returns the
        number of staged solves.
        """
        registry = get_metrics()
        groups: Dict[str, List[FaultTree]] = {}
        for tree in trees:
            key = self.context.artifacts.structure_keys_for(tree)[tree.top_event]
            groups.setdefault(key, []).append(tree)
        staged = 0
        for group in groups.values():
            session = self._warm_session_for(group[0])
            weights_seq = [
                {
                    name: log_weight(probabilities[name])
                    for name in session.event_vars
                }
                for probabilities in (tree.probabilities() for tree in group)
            ]
            stats_before = dict(session.rerank_stats)
            try:
                outcomes = session.solve_batch(weights_seq)
            except BudgetExceededError:
                continue
            finally:
                for tier, count in session.rerank_stats.items():
                    delta = count - stats_before[tier]
                    if delta:
                        registry.inc(f"repro_maxsat_rerank_{tier}_total", amount=delta)
            for tree, outcome in zip(group, outcomes):
                tier = outcome.rerank if outcome is not None else "pooled"
                self._pending_rerank[id(tree)] = (tree, outcome, tier)
                staged += 1
        return staged

    def clear_staged_rerank(self) -> None:
        """Drop staged batch solves (sweep teardown; frees the tree refs)."""
        self._pending_rerank.clear()

    def _enumerate_warm(
        self, tree: FaultTree, request: AnalysisRequest, count: int
    ) -> Tuple[List[Tuple[MPMCSResult, int]], float, Optional[str]]:
        """Blocked enumeration through the warm session (same contract as
        :meth:`_enumerate`); returns the results, the session encode time
        attributable to this call (non-zero only when the session was built)
        and the re-rank tier that served the first solve (``None`` when it
        ran through the plain sequential path).

        Raises :class:`BudgetExceededError` when the session blows its core
        budget — the caller then falls back to the cold portfolio path.
        """
        known = self.context.artifacts.structure_keys_for(tree)[tree.top_event] in self._warm_sessions
        session = self._warm_session_for(tree)
        encode_seconds = 0.0 if known else session.encode_time
        probabilities = tree.probabilities()
        verify = self._solver().verify
        pending = self._pending_rerank.pop(id(tree), None)
        rerank_tier: Optional[str] = None

        results: List[Tuple[MPMCSResult, int]] = []
        blocked: List[Tuple[str, ...]] = []
        head_cost: Optional[int] = None
        while True:
            if not blocked and pending is not None and pending[0] is tree:
                _, outcome, rerank_tier = pending
                pending = None
            else:
                outcome = session.solve_tree(tree, blocked)
            if outcome is None:
                break
            if verify and not tree.is_minimal_cut_set(outcome.events):
                raise AnalysisError(
                    f"internal error: extracted set {outcome.events} is not a minimal "
                    f"cut set of {tree.name!r}; please report this as a bug"
                )
            result = MPMCSResult(
                tree_name=tree.name,
                events=outcome.events,
                probability=probability_of_cut_set(outcome.events, probabilities),
                cost=outcome.cost,
                weights=dict(outcome.probability_weights),
                engine=self.WARM_ENGINE,
                solve_time=outcome.solve_time,
                total_time=outcome.solve_time,
                num_vars=session.num_vars,
                num_hard=session.num_hard,
                num_soft=len(session.event_vars),
                num_aux_vars=session.num_aux_vars,
            )
            cost = outcome.scaled_cost
            if head_cost is None:
                head_cost = cost
            results.append((result, cost))
            blocked.append(outcome.events)
            if len(results) >= count and not (request.deterministic and cost == head_cost):
                break
        return results, encode_seconds, rerank_tier

    def _solve_blocked(
        self, tree: FaultTree, encoding: MPMCSEncoding, blocked: List[Tuple[str, ...]]
    ) -> Optional[MPMCSResult]:
        """Solve the cached encoding with ``blocked`` cut sets forbidden."""
        working = _clone_encoding(encoding) if blocked else encoding
        for cut_set in blocked:
            working.instance.add_hard([-working.event_vars[name] for name in cut_set])
        try:
            return self._solver().solve_encoding(tree, working)
        except AnalysisError as exc:
            if "no cut set" in str(exc):
                return None
            raise

    def _scaled_cost(self, encoding: MPMCSEncoding, events: Tuple[str, ...]) -> int:
        """The solver-level (integer) objective value of a cut set.

        Tie detection must happen at the granularity the solver actually
        optimises over — the weights scaled by ``instance.precision`` — not
        at float precision: two cut sets whose float costs differ by less
        than the quantisation step are indistinguishable to every engine.
        """
        instance = encoding.instance
        return sum(instance.scale_weight(encoding.weights[name]) for name in events)

    def _enumerate(
        self, tree: FaultTree, encoding: MPMCSEncoding, request: AnalysisRequest, count: int
    ) -> List[Tuple[MPMCSResult, int]]:
        """Blocked enumeration of at least ``count`` cut sets by rising cost.

        With ``request.deterministic`` the enumeration keeps going while the
        head tie persists, so the canonical optimum is guaranteed to be among
        the returned results.  One shared enumeration serves both the
        ``mpmcs`` and ``ranking`` analyses — a composite request does not
        solve twice.
        """
        results: List[Tuple[MPMCSResult, int]] = []
        blocked: List[Tuple[str, ...]] = []
        head_cost: Optional[int] = None
        while True:
            result = self._solve_blocked(tree, encoding, blocked)
            if result is None:
                break
            cost = self._scaled_cost(encoding, result.events)
            if head_cost is None:
                head_cost = cost
            results.append((result, cost))
            blocked.append(result.events)
            if len(results) >= count and not (request.deterministic and cost == head_cost):
                break
        return results

    def run(self, tree: FaultTree, request: AnalysisRequest) -> AnalysisReport:
        report = AnalysisReport(tree=tree, request=request)
        wants_mpmcs = "mpmcs" in request.analyses
        wants_ranking = "ranking" in request.analyses
        if not (wants_mpmcs or wants_ranking):
            return report
        count = request.top_k if wants_ranking else 1
        enumerated: Optional[List[Tuple[MPMCSResult, int]]] = None
        registry = get_metrics()
        if self.warm_enabled:
            solve_start = time.perf_counter()
            try:
                enumerated, encode_seconds, rerank_tier = self._enumerate_warm(
                    tree, request, count
                )
            except BudgetExceededError:
                # Pathological structure for the hitting-set loop: fall back
                # to the cold portfolio for this tree.
                enumerated = None
                registry.inc("repro_solver_warm_fallbacks_total")
            else:
                report.profile["encode_seconds"] = encode_seconds
                report.profile["solve_seconds"] = (
                    time.perf_counter() - solve_start - encode_seconds
                )
                report.profile["warm_solves"] = 1
                if rerank_tier is not None:
                    report.profile[f"rerank_{rerank_tier}"] = 1
                registry.inc("repro_solver_warm_solves_total")
        if enumerated is None:
            registry.inc("repro_solver_cold_solves_total")
            encode_start = time.perf_counter()
            encoding = self._encoding(tree)
            solve_start = time.perf_counter()
            enumerated = self._enumerate(tree, encoding, request, count)
            report.profile["encode_seconds"] = (
                report.profile.get("encode_seconds", 0.0) + solve_start - encode_start
            )
            report.profile["solve_seconds"] = (
                report.profile.get("solve_seconds", 0.0)
                + time.perf_counter()
                - solve_start
            )
        if not enumerated:
            raise AnalysisError(f"fault tree {tree.name!r} has no cut set")
        # Canonical order: rising solver cost, then smaller set, then
        # lexicographic — matching CutSetCollection.ranked() on ties.
        enumerated.sort(key=lambda item: (item[1], len(item[0].events), item[0].events))
        if wants_mpmcs:
            result = enumerated[0][0]
            report.mpmcs = MPMCSSummary(
                events=result.events,
                probability=result.probability,
                cost=result.cost,
                backend=self.name,
                engine=result.engine,
                solve_time=result.solve_time,
                total_time=result.total_time,
                detail=result,
            )
        if wants_ranking:
            report.ranking = [
                RankedCutSet(
                    rank=index + 1,
                    events=result.events,
                    probability=result.probability,
                    cost=result.cost,
                )
                for index, (result, _) in enumerate(enumerated[:count])
            ]
        return report


@register_backend
class MocusBackend(_CutSetBackend):
    """Classical MOCUS enumeration and the analyses derived from it."""

    name = "mocus"
    CAPABILITIES = frozenset(
        {"mcs", "mpmcs", "ranking", "top_event", "importance", "spof", "modules", "truncation"}
    )

    def _cut_sets(self, tree: FaultTree) -> CutSetCollection:
        return self.context.artifacts.get_or_compute(
            tree, ARTIFACT_CUT_SETS, lambda: mocus_minimal_cut_sets(tree)
        )


@register_backend(aliases=("bruteforce", "bf"))
class BruteForceBackend(_CutSetBackend):
    """Exhaustive ground-truth enumeration (small trees only)."""

    name = "brute-force"
    CAPABILITIES = frozenset({"mcs", "mpmcs", "ranking", "top_event", "importance"})

    def _cut_sets(self, tree: FaultTree) -> CutSetCollection:
        return self.context.artifacts.get_or_compute(
            tree, ARTIFACT_CUT_SETS, lambda: brute_force_minimal_cut_sets(tree)
        )


@register_backend
class BDDBackend(AnalysisBackend):
    """The ROBDD engine: exact probability, cut sets and DP-based MPMCS.

    The compiled BDD is a session artifact, so a composite request such as
    ``["mpmcs", "top_event"]`` builds it once and runs both linear-time
    queries on the same diagram.
    """

    name = "bdd"
    CAPABILITIES = frozenset({"mcs", "mpmcs", "ranking", "top_event"})

    def _function(self, tree: FaultTree) -> BDD:
        def build() -> BDD:
            manager = BDDManager(variable_order(tree, heuristic="dfs"))
            return manager.from_fault_tree(tree)

        return self.context.artifacts.get_or_compute(tree, ARTIFACT_BDD, build)

    def _collection(self, tree: FaultTree, function: BDD) -> CutSetCollection:
        return self.context.artifacts.get_or_compute(
            tree,
            ARTIFACT_CUT_SETS,
            lambda: CutSetCollection(
                cut_sets=cut_sets_of_bdd(function), probabilities=tree.probabilities()
            ),
        )

    def run(self, tree: FaultTree, request: AnalysisRequest) -> AnalysisReport:
        report = AnalysisReport(tree=tree, request=request)
        build_start = time.perf_counter()
        function = self._function(tree)
        report.profile["encode_seconds"] = time.perf_counter() - build_start
        query_start = time.perf_counter()
        probabilities = tree.probabilities()
        if "mpmcs" in request.analyses:
            start = time.perf_counter()
            if function.is_false:
                raise AnalysisError(
                    f"fault tree {tree.name!r} has no cut set: the top event cannot occur"
                )
            events, probability = mpmcs_of_bdd(function, probabilities)
            elapsed = time.perf_counter() - start
            report.mpmcs = MPMCSSummary(
                events=events,
                probability=probability,
                cost=weight_of_cut_set(events, probabilities),
                backend=self.name,
                solve_time=elapsed,
                total_time=elapsed,
            )
        if "mcs" in request.analyses:
            report.cut_sets = self._collection(tree, function)
        if "ranking" in request.analyses:
            report.ranking = _ranking_from_collection(
                self._collection(tree, function), tree, request.top_k
            )
        if "top_event" in request.analyses:
            report.top_event = TopEventSummary(
                exact=probability_of_bdd(function, probabilities), backend=self.name
            )
        report.profile["solve_seconds"] = time.perf_counter() - query_start
        return report


@register_backend(aliases=("montecarlo", "mc"))
class MonteCarloBackend(AnalysisBackend):
    """Sampling estimator of the top-event probability."""

    name = "monte-carlo"
    CAPABILITIES = frozenset({"top_event"})

    #: Sample count used when the request does not specify one.
    DEFAULT_SAMPLES = 10_000

    def run(self, tree: FaultTree, request: AnalysisRequest) -> AnalysisReport:
        report = AnalysisReport(tree=tree, request=request)
        if "top_event" in request.analyses:
            samples = request.samples if request.samples > 0 else self.DEFAULT_SAMPLES
            start = time.perf_counter()
            estimate = estimate_top_event_probability(
                tree, samples=samples, seed=request.seed
            )
            report.profile["solve_seconds"] = time.perf_counter() - start
            report.top_event = TopEventSummary(monte_carlo=estimate, backend=self.name)
        return report
