"""Unified analysis request/report types for the :mod:`repro.api` facade.

The paper treats MPMCS resolution as one of several interchangeable
strategies (MaxSAT pipeline vs. classical MOCUS/BDD/brute-force baselines).
The facade therefore speaks a single vocabulary:

* :class:`AnalysisRequest` — *what* to compute (``analyses``), *how* to
  compute it (``backend``), and the knobs shared by every backend
  (``top_k``, ``samples``, ``seed``, ``cutoff``).
* :class:`AnalysisReport` — the one result object every backend returns and
  every :mod:`repro.reporting` renderer consumes.  Sections a backend did not
  compute stay ``None``; :meth:`AnalysisReport.merge_from` combines partial
  reports produced by different backends.

The report deliberately reuses the library's existing result dataclasses
(:class:`~repro.core.pipeline.MPMCSResult`,
:class:`~repro.analysis.cutsets.CutSetCollection`, …) so no information is
lost going through the facade, and :attr:`AnalysisReport.mpmcs_result`
bridges back to the legacy single-result renderers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.analysis.cutsets import CutSetCollection
from repro.analysis.importance import ImportanceMeasures
from repro.analysis.montecarlo import MonteCarloEstimate
from repro.analysis.truncation import TruncationResult
from repro.core.pipeline import MPMCSResult
from repro.core.topk import RankedCutSet
from repro.core.weights import log_weight
from repro.exceptions import AnalysisError
from repro.fta.tree import FaultTree

__all__ = [
    "ANALYSES",
    "AnalysisReport",
    "AnalysisRequest",
    "MPMCSSummary",
    "TopEventSummary",
]

#: Canonical analysis names accepted by the facade.
ANALYSES: Tuple[str, ...] = (
    "mpmcs",
    "ranking",
    "mcs",
    "top_event",
    "importance",
    "spof",
    "modules",
    "truncation",
)

#: Accepted spellings for each canonical analysis name.
_ANALYSIS_ALIASES: Dict[str, str] = {
    "topevent": "top_event",
    "top-event": "top_event",
    "cut_sets": "mcs",
    "cutsets": "mcs",
    "cut-sets": "mcs",
    "minimal_cut_sets": "mcs",
    "topk": "ranking",
    "top_k": "ranking",
    "top-k": "ranking",
    "truncate": "truncation",
    "single_points_of_failure": "spof",
}


def canonical_analysis(name: str) -> str:
    """Map an analysis name (or alias) to its canonical form.

    Raises :class:`AnalysisError` for unknown names.
    """
    key = name.strip().lower().replace("-", "_")
    key = _ANALYSIS_ALIASES.get(key, key)
    if key not in ANALYSES:
        raise AnalysisError(
            f"unknown analysis {name!r}; available: {', '.join(ANALYSES)}"
        )
    return key


@dataclass(frozen=True)
class AnalysisRequest:
    """A validated, immutable description of one analysis run.

    Attributes
    ----------
    analyses:
        Canonical analysis names, deduplicated, in request order.
    backend:
        Registry name of the backend to use, or ``"auto"`` to route each
        analysis to its default backend.
    top_k:
        Number of cut sets for the ``"ranking"`` analysis.
    samples / seed:
        Monte Carlo sample count and PRNG seed for the ``"top_event"``
        analysis.  ``samples == 0`` (the default) disables the Monte Carlo
        estimate under automatic routing.
    cutoff:
        Probability cutoff for the ``"truncation"`` analysis.
    deterministic:
        When true (default), backends canonicalise tied optima so that every
        backend returns the identical MPMCS even when several cut sets share
        the maximum probability.
    """

    analyses: Tuple[str, ...] = ("mpmcs",)
    backend: str = "auto"
    top_k: int = 5
    samples: int = 0
    seed: int = 0
    cutoff: float = 1e-9
    deterministic: bool = True

    @staticmethod
    def create(
        analyses: Iterable[str] = ("mpmcs",),
        *,
        backend: str = "auto",
        top_k: int = 5,
        samples: int = 0,
        seed: int = 0,
        cutoff: float = 1e-9,
        deterministic: bool = True,
    ) -> "AnalysisRequest":
        """Normalise and validate the arguments into an :class:`AnalysisRequest`."""
        if isinstance(analyses, str):
            analyses = (analyses,)
        canonical = list(dict.fromkeys(canonical_analysis(name) for name in analyses))
        if not canonical:
            raise AnalysisError("at least one analysis must be requested")
        if top_k <= 0:
            raise AnalysisError(f"top_k must be a positive integer, got {top_k}")
        if samples < 0:
            raise AnalysisError(f"samples must be non-negative, got {samples}")
        if not 0.0 < cutoff <= 1.0:
            raise AnalysisError(f"cutoff must lie in (0, 1], got {cutoff}")
        return AnalysisRequest(
            analyses=tuple(canonical),
            backend=backend,
            top_k=top_k,
            samples=samples,
            seed=seed,
            cutoff=cutoff,
            deterministic=deterministic,
        )

    def restricted_to(self, analyses: Iterable[str], backend: str) -> "AnalysisRequest":
        """A copy of this request scoped to one backend and a subset of analyses."""
        return replace(self, analyses=tuple(analyses), backend=backend)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "analyses": list(self.analyses),
            "backend": self.backend,
            "top_k": self.top_k,
            "samples": self.samples,
            "seed": self.seed,
            "cutoff": self.cutoff,
            "deterministic": self.deterministic,
        }

    @staticmethod
    def from_dict(document: Dict[str, Any]) -> "AnalysisRequest":
        """Inverse of :meth:`to_dict` (revalidates through :meth:`create`)."""
        return AnalysisRequest.create(
            document.get("analyses", ("mpmcs",)),
            backend=document.get("backend", "auto"),
            top_k=int(document.get("top_k", 5)),
            samples=int(document.get("samples", 0)),
            seed=int(document.get("seed", 0)),
            cutoff=float(document.get("cutoff", 1e-9)),
            deterministic=bool(document.get("deterministic", True)),
        )


@dataclass(frozen=True)
class MPMCSSummary:
    """Backend-independent description of a Maximum Probability Minimal Cut Set.

    ``detail`` carries the full :class:`MPMCSResult` when the MaxSAT pipeline
    produced the answer; classical backends leave it ``None``.
    """

    events: Tuple[str, ...]
    probability: float
    cost: float
    backend: str
    engine: str = ""
    solve_time: float = 0.0
    total_time: float = 0.0
    detail: Optional[MPMCSResult] = None

    @property
    def size(self) -> int:
        return len(self.events)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "events": list(self.events),
            "probability": self.probability,
            "cost": self.cost,
            "size": self.size,
            "backend": self.backend,
            "engine": self.engine,
            "solve_time_s": self.solve_time,
            "total_time_s": self.total_time,
        }

    @staticmethod
    def from_dict(document: Dict[str, Any]) -> "MPMCSSummary":
        """Inverse of :meth:`to_dict`.

        The full :class:`MPMCSResult` ``detail`` does not survive the JSON
        form — only the backend-independent summary does — so a round-tripped
        summary compares equal on every serialised field.
        """
        return MPMCSSummary(
            events=tuple(document["events"]),
            probability=float(document["probability"]),
            cost=float(document["cost"]),
            backend=document.get("backend", ""),
            engine=document.get("engine", ""),
            solve_time=float(document.get("solve_time_s", 0.0)),
            total_time=float(document.get("total_time_s", 0.0)),
        )


@dataclass(frozen=True)
class TopEventSummary:
    """Top-event probability estimates, possibly merged from several backends."""

    exact: Optional[float] = None
    rare_event_bound: Optional[float] = None
    min_cut_upper_bound: Optional[float] = None
    monte_carlo: Optional[MonteCarloEstimate] = None
    backend: str = ""

    def merged_with(self, other: "TopEventSummary") -> "TopEventSummary":
        """Field-wise merge; ``self`` wins where both summaries carry a value."""
        backends = [b for b in (self.backend, other.backend) if b]
        return TopEventSummary(
            exact=self.exact if self.exact is not None else other.exact,
            rare_event_bound=(
                self.rare_event_bound
                if self.rare_event_bound is not None
                else other.rare_event_bound
            ),
            min_cut_upper_bound=(
                self.min_cut_upper_bound
                if self.min_cut_upper_bound is not None
                else other.min_cut_upper_bound
            ),
            monte_carlo=self.monte_carlo if self.monte_carlo is not None else other.monte_carlo,
            backend="+".join(dict.fromkeys(backends)),
        )

    @property
    def best_estimate(self) -> Optional[float]:
        """The most trustworthy available estimate (exact > Monte Carlo > bounds)."""
        if self.exact is not None:
            return self.exact
        if self.monte_carlo is not None:
            return self.monte_carlo.probability
        if self.min_cut_upper_bound is not None:
            return self.min_cut_upper_bound
        return self.rare_event_bound

    def to_dict(self) -> Dict[str, Any]:
        monte_carlo = None
        if self.monte_carlo is not None:
            monte_carlo = {
                "probability": self.monte_carlo.probability,
                "standard_error": self.monte_carlo.standard_error,
                "confidence_low": self.monte_carlo.confidence_low,
                "confidence_high": self.monte_carlo.confidence_high,
                "samples": self.monte_carlo.samples,
                "seed": self.monte_carlo.seed,
            }
        return {
            "exact": self.exact,
            "rare_event_bound": self.rare_event_bound,
            "min_cut_upper_bound": self.min_cut_upper_bound,
            "monte_carlo": monte_carlo,
            "backend": self.backend,
        }

    @staticmethod
    def from_dict(document: Dict[str, Any]) -> "TopEventSummary":
        """Inverse of :meth:`to_dict`.

        The Monte Carlo hit *count* is not serialised (it is derivable as
        ``probability * samples``); the reconstructed estimate carries that
        derived value, which every serialised field is independent of.
        """
        monte_carlo = None
        raw = document.get("monte_carlo")
        if raw is not None:
            monte_carlo = MonteCarloEstimate(
                probability=float(raw["probability"]),
                standard_error=float(raw["standard_error"]),
                confidence_low=float(raw["confidence_low"]),
                confidence_high=float(raw["confidence_high"]),
                samples=int(raw["samples"]),
                hits=float(raw["probability"]) * int(raw["samples"]),
                seed=int(raw["seed"]),
            )
        return TopEventSummary(
            exact=document.get("exact"),
            rare_event_bound=document.get("rare_event_bound"),
            min_cut_upper_bound=document.get("min_cut_upper_bound"),
            monte_carlo=monte_carlo,
            backend=document.get("backend", ""),
        )


@dataclass
class AnalysisReport:
    """The unified result of an :class:`~repro.api.session.AnalysisSession` run.

    Only the sections corresponding to the requested analyses are populated;
    everything else stays ``None``.  ``backends`` records which backend
    produced each section (``"bdd+mocus"`` style values appear when automatic
    routing combined several backends for one analysis).
    """

    #: The analysed tree.  ``None`` only for reports reconstructed from JSON
    #: without a model at hand (:meth:`from_dict`); such reports serialise
    #: and render tables but cannot bridge to tree-consuming renderers.
    tree: Optional[FaultTree]
    request: AnalysisRequest
    #: Fallback display name used when ``tree`` is ``None``.
    name: str = ""
    backends: Dict[str, str] = field(default_factory=dict)
    mpmcs: Optional[MPMCSSummary] = None
    ranking: Optional[List[RankedCutSet]] = None
    cut_sets: Optional[CutSetCollection] = None
    top_event: Optional[TopEventSummary] = None
    importance: Optional[Dict[str, ImportanceMeasures]] = None
    spof: Optional[List[Tuple[str, float]]] = None
    modules: Optional[Dict[str, Any]] = None
    truncation: Optional[TruncationResult] = None
    timings: Dict[str, float] = field(default_factory=dict)
    cache_stats: Dict[str, Any] = field(default_factory=dict)
    #: Per-stage performance breakdown: ``encode_seconds`` (CNF/BDD/cut-set
    #: structure preparation), ``solve_seconds`` (search/enumeration),
    #: ``cache_hits`` / ``cache_misses`` (artifact-cache probes during this
    #: run) and, for store-backed sessions, ``store_hits`` / ``store_misses``.
    #: Backends contribute their stage timings; the session adds the cache
    #: deltas.  Purely observational — stripped by :meth:`to_canonical_dict`.
    profile: Dict[str, Any] = field(default_factory=dict)
    #: Non-fatal degradations, e.g. an auxiliary backend that failed while
    #: another provider still satisfied the analysis.
    warnings: List[str] = field(default_factory=list)
    #: Serialized span tree (:meth:`repro.observability.Span.to_dict`) of the
    #: run, populated only when an ambient tracer was recording.  Telemetry
    #: like ``profile`` — stripped by :meth:`to_canonical_dict` — and the
    #: profile is recoverable from it via
    #: :func:`repro.observability.profile_view`.
    trace: Optional[Dict[str, Any]] = None

    @property
    def tree_name(self) -> str:
        return self.tree.name if self.tree is not None else self.name

    @property
    def analyses(self) -> Tuple[str, ...]:
        return self.request.analyses

    @property
    def mpmcs_result(self) -> Optional[MPMCSResult]:
        """Bridge to the legacy :class:`MPMCSResult`-consuming renderers.

        Returns the full pipeline result when available, otherwise synthesises
        an equivalent one from the backend-independent summary.
        """
        if self.mpmcs is None:
            return None
        if self.mpmcs.detail is not None:
            return self.mpmcs.detail
        if self.tree is None:
            return None  # synthesising weights needs the event probabilities
        weights = {name: log_weight(self.tree.probability(name)) for name in self.mpmcs.events}
        return MPMCSResult(
            tree_name=self.tree.name,
            events=self.mpmcs.events,
            probability=self.mpmcs.probability,
            cost=self.mpmcs.cost,
            weights=weights,
            engine=self.mpmcs.engine or self.mpmcs.backend,
            solve_time=self.mpmcs.solve_time,
            total_time=self.mpmcs.total_time,
        )

    def merge_from(self, other: "AnalysisReport", analyses: Iterable[str], label: str) -> None:
        """Adopt the sections listed in ``analyses`` from a partial report."""
        for analysis in analyses:
            if analysis == "mpmcs" and other.mpmcs is not None:
                self.mpmcs = other.mpmcs
            elif analysis == "ranking" and other.ranking is not None:
                self.ranking = other.ranking
            elif analysis == "mcs" and other.cut_sets is not None:
                self.cut_sets = other.cut_sets
            elif analysis == "top_event" and other.top_event is not None:
                self.top_event = (
                    self.top_event.merged_with(other.top_event)
                    if self.top_event is not None
                    else other.top_event
                )
            elif analysis == "importance" and other.importance is not None:
                self.importance = other.importance
            elif analysis == "spof" and other.spof is not None:
                self.spof = other.spof
            elif analysis == "modules" and other.modules is not None:
                self.modules = other.modules
            elif analysis == "truncation" and other.truncation is not None:
                self.truncation = other.truncation
            else:
                continue
            previous = self.backends.get(analysis)
            self.backends[analysis] = f"{previous}+{label}" if previous else label

    #: :meth:`to_dict` keys that vary between otherwise identical runs —
    #: wall-clock timings, cache telemetry, the profiling breakdown and the
    #: span trace (span ids and durations are run telemetry).
    VOLATILE_KEYS = ("timings_s", "cache", "profile", "trace")
    #: Volatile keys inside the ``mpmcs`` section: which engine won (a race
    #: in thread mode, or the warm incremental path vs the cold portfolio)
    #: and how long it took are run telemetry, not analysis results.
    VOLATILE_MPMCS_KEYS = ("engine", "solve_time_s", "total_time_s")

    @staticmethod
    def canonicalize(document: Dict[str, Any]) -> Dict[str, Any]:
        """Strip run telemetry from a :meth:`to_dict` document (non-mutating).

        The single definition of "volatile" shared by
        :meth:`to_canonical_dict` and consumers holding only the JSON form.
        """
        document = {
            key: value
            for key, value in document.items()
            if key not in AnalysisReport.VOLATILE_KEYS
        }
        if document.get("mpmcs") is not None:
            document["mpmcs"] = {
                key: value
                for key, value in document["mpmcs"].items()
                if key not in AnalysisReport.VOLATILE_MPMCS_KEYS
            }
        return document

    def to_canonical_dict(self) -> Dict[str, Any]:
        """:meth:`to_dict` minus run telemetry (timings, cache, profile, engine).

        Two analyses of the same tree with the same request — cold portfolio
        or warm incremental, fresh session or fully cached — produce
        byte-identical canonical dicts (``json.dumps(..., sort_keys=True)``);
        only wall-clock and reuse telemetry may differ between runs.  The
        incremental-sweep benchmark asserts its speedup against exactly this
        equality.
        """
        return self.canonicalize(self.to_dict())

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-serialisable form of every populated section."""
        document: Dict[str, Any] = {
            "tree": self.tree_name,
            "analyses": list(self.analyses),
            "request": self.request.to_dict(),
            "backends": dict(self.backends),
            "timings_s": dict(self.timings),
            "cache": dict(self.cache_stats),
            "profile": dict(self.profile),
            "warnings": list(self.warnings),
        }
        # Key present only when a trace was recorded, so untraced documents
        # (the overwhelmingly common case) keep their historical shape.
        if self.trace is not None:
            document["trace"] = self.trace
        document["mpmcs"] = self.mpmcs.to_dict() if self.mpmcs is not None else None
        document["ranking"] = (
            [
                {
                    "rank": entry.rank,
                    "events": list(entry.events),
                    "probability": entry.probability,
                    "cost": entry.cost,
                }
                for entry in self.ranking
            ]
            if self.ranking is not None
            else None
        )
        document["cut_sets"] = (
            [
                {"events": sorted(cut_set), "probability": probability}
                for cut_set, probability in self.cut_sets.ranked()
            ]
            if self.cut_sets is not None and self.cut_sets.probabilities is not None
            else (
                [{"events": list(events)} for events in self.cut_sets.to_sorted_tuples()]
                if self.cut_sets is not None
                else None
            )
        )
        document["top_event"] = self.top_event.to_dict() if self.top_event is not None else None
        document["importance"] = (
            {
                name: {
                    "probability": measure.probability,
                    "birnbaum": measure.birnbaum,
                    "criticality": measure.criticality,
                    "fussell_vesely": measure.fussell_vesely,
                    "risk_achievement_worth": measure.risk_achievement_worth,
                    "risk_reduction_worth": measure.risk_reduction_worth,
                }
                for name, measure in sorted(self.importance.items())
            }
            if self.importance is not None
            else None
        )
        document["spof"] = (
            [[name, probability] for name, probability in self.spof]
            if self.spof is not None
            else None
        )
        document["modules"] = dict(self.modules) if self.modules is not None else None
        document["truncation"] = (
            {
                "cutoff": self.truncation.cutoff,
                "num_retained": self.truncation.num_retained,
                "num_pruned": self.truncation.num_pruned,
                "cut_sets": [
                    list(events) for events in self.truncation.collection.to_sorted_tuples()
                ],
            }
            if self.truncation is not None
            else None
        )
        return document

    @classmethod
    def from_dict(
        cls, document: Dict[str, Any], *, tree: Optional[FaultTree] = None
    ) -> "AnalysisReport":
        """Reconstruct a report from its :meth:`to_dict` JSON form.

        This is the service's transport inverse: the server ships
        ``report.to_dict()`` over HTTP and the client rebuilds a live
        :class:`AnalysisReport` here.  Pass the analysed ``tree`` (the client
        submitted it, so it has it) to restore the probability-bearing
        sections bit-identically — ``from_dict(r.to_dict(), tree=t).to_dict()
        == r.to_dict()``.  Without a tree the report still reconstructs, but
        cut-set collections lose their per-event probabilities (the JSON form
        only carries per-*set* products) and :attr:`mpmcs_result` is
        unavailable.
        """
        request = (
            AnalysisRequest.from_dict(document["request"])
            if document.get("request") is not None
            else AnalysisRequest.create(document.get("analyses", ("mpmcs",)))
        )
        report = cls(tree=tree, request=request, name=document.get("tree", ""))
        report.backends = dict(document.get("backends", {}))
        report.timings = dict(document.get("timings_s", {}))
        report.cache_stats = dict(document.get("cache", {}))
        report.profile = dict(document.get("profile", {}))
        report.warnings = list(document.get("warnings", []))
        report.trace = document.get("trace")
        probabilities = tree.probabilities() if tree is not None else None

        if document.get("mpmcs") is not None:
            report.mpmcs = MPMCSSummary.from_dict(document["mpmcs"])
        if document.get("ranking") is not None:
            report.ranking = [
                RankedCutSet(
                    rank=int(entry["rank"]),
                    events=tuple(entry["events"]),
                    probability=float(entry["probability"]),
                    cost=float(entry["cost"]),
                )
                for entry in document["ranking"]
            ]
        if document.get("cut_sets") is not None:
            report.cut_sets = CutSetCollection.from_minimal(
                [frozenset(entry["events"]) for entry in document["cut_sets"]],
                probabilities=probabilities,
            )
        if document.get("top_event") is not None:
            report.top_event = TopEventSummary.from_dict(document["top_event"])
        if document.get("importance") is not None:
            report.importance = {
                name: ImportanceMeasures(
                    event=name,
                    probability=float(measure["probability"]),
                    birnbaum=float(measure["birnbaum"]),
                    criticality=float(measure["criticality"]),
                    fussell_vesely=float(measure["fussell_vesely"]),
                    risk_achievement_worth=float(measure["risk_achievement_worth"]),
                    risk_reduction_worth=float(measure["risk_reduction_worth"]),
                )
                for name, measure in document["importance"].items()
            }
        if document.get("spof") is not None:
            report.spof = [(name, probability) for name, probability in document["spof"]]
        if document.get("modules") is not None:
            report.modules = dict(document["modules"])
        if document.get("truncation") is not None:
            raw = document["truncation"]
            report.truncation = TruncationResult(
                collection=CutSetCollection.from_minimal(
                    [frozenset(events) for events in raw["cut_sets"]],
                    probabilities=probabilities,
                ),
                cutoff=float(raw["cutoff"]),
                num_retained=int(raw["num_retained"]),
                num_pruned=int(raw["num_pruned"]),
            )
        return report
