"""The :class:`AnalysisSession` — the facade's stateful front door.

A session owns three pieces of shared state:

* an :class:`~repro.api.cache.ArtifactCache` memoising expensive per-tree
  intermediates (CNF encoding, minimal cut sets, compiled BDD);
* one :class:`~repro.core.pipeline.MPMCSSolver` (the MaxSAT portfolio),
  constructed once instead of per call;
* one instance of each backend, created lazily from the registry.

``analyze`` routes every requested analysis to a backend — an explicit one,
or per-analysis defaults under ``backend="auto"`` — and merges the partial
results into a single :class:`~repro.api.report.AnalysisReport`:

.. code-block:: python

    from repro.api import AnalysisSession
    from repro.workloads.library import fire_protection_system

    session = AnalysisSession()
    report = session.analyze(
        fire_protection_system(), analyses=["mpmcs", "top_event", "importance"]
    )
    report.mpmcs.events        # ('x1', 'x2')
    report.top_event.exact     # 0.030021740…
    session.cache_info()       # hit/miss counters proving artifact reuse
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Tuple

from repro.api.cache import ArtifactCache
from repro.api.registry import (
    AnalysisBackend,
    BackendContext,
    backend_class,
    backends_supporting,
    canonical_backend_name,
    create_backend,
)
from repro.api.report import AnalysisReport, AnalysisRequest
from repro.core.pipeline import MPMCSSolver
from repro.exceptions import AnalysisError
from repro.fta.tree import FaultTree
from repro import kernels
from repro.maxsat.instance import DEFAULT_PRECISION
from repro.observability import metrics as _metrics
from repro.observability import trace as _trace

# The built-in backends register themselves on import.
import repro.api.backends  # noqa: F401  (registration side effect)

__all__ = ["AnalysisSession", "DEFAULT_ROUTES"]

#: Preferred backend order per analysis under automatic routing.  The first
#: registered backend in each tuple wins; analyses missing from this table
#: fall back to any registered backend that supports them (sorted by name).
DEFAULT_ROUTES: Dict[str, Tuple[str, ...]] = {
    "mpmcs": ("maxsat", "bdd", "mocus", "brute-force"),
    "ranking": ("maxsat",),
    "mcs": ("mocus", "bdd", "brute-force"),
    "top_event": ("bdd", "mocus", "brute-force", "monte-carlo"),
    "importance": ("mocus", "brute-force"),
    "spof": ("mocus",),
    "modules": ("mocus",),
    "truncation": ("mocus",),
}

#: Under automatic routing, ``top_event`` is a composite: the BDD backend
#: contributes the exact probability, the MOCUS backend the classical bounds,
#: and (when ``samples > 0``) the Monte Carlo backend a sampling estimate.
_TOP_EVENT_AUTO_PROVIDERS: Tuple[str, ...] = ("bdd", "mocus")


class AnalysisSession:
    """Front door for every analysis, with routing, caching and batching.

    **Cache staleness and in-place tree mutation.**  Artifacts are keyed by a
    content hash of the tree, so mutating a tree in place (e.g.
    :meth:`FaultTree.set_probability`, :meth:`FaultTree.add_gate`) is *safe*
    with respect to correctness: the next :meth:`analyze` sees a new hash and
    recomputes.  Two hazards remain, however.  First, results already handed
    out — an :class:`AnalysisReport`, a cached ``CutSetCollection`` — are
    snapshots and are **not** updated when the tree changes; re-run the
    analysis after mutating.  Second, entries stored under the pre-mutation
    hash become unreachable garbage that :meth:`invalidate` cannot find any
    more (it can only compute the *current* hash); call :meth:`invalidate`
    *before* mutating a tree you will not analyse again, or use
    :meth:`clear_cache` to reclaim everything.  Non-destructive perturbation
    via :mod:`repro.scenarios` patches sidesteps both hazards.

    Parameters
    ----------
    mode:
        Execution mode of the MaxSAT portfolio (``"thread"``, ``"process"``
        or ``"sequential"``).  Ignored when ``solver`` is given.
    precision:
        Integer scaling applied to the ``-log`` probability weights.
    solver:
        Optional pre-configured :class:`MPMCSSolver` shared by the session.
    cache:
        Optional pre-existing :class:`ArtifactCache` (e.g. to share artifacts
        across sessions); a fresh one is created otherwise.
    kernel_tier:
        Compute-kernel tier for batch evaluation hot paths (``"numpy"``,
        ``"array"``, ``"python"`` or ``"auto"``); resolved once here via
        :func:`repro.kernels.select` and surfaced in
        ``AnalysisReport.profile["kernel"]``.  All tiers produce bit-identical
        results — this only trades speed.
    """

    def __init__(
        self,
        *,
        mode: str = "thread",
        precision: int = DEFAULT_PRECISION,
        solver: Optional[MPMCSSolver] = None,
        cache: Optional[ArtifactCache] = None,
        kernel_tier: Optional[str] = None,
    ) -> None:
        self.artifacts = cache if cache is not None else ArtifactCache()
        self.solver = solver if solver is not None else MPMCSSolver(mode=mode, precision=precision)
        self.kernels = kernels.select(kernel_tier)
        self.context = BackendContext(
            artifacts=self.artifacts,
            solver=self.solver,
            precision=precision,
            kernels=self.kernels,
        )
        self._backends: Dict[str, AnalysisBackend] = {}

    # -- backend access ---------------------------------------------------------------

    def backend(self, name: str) -> AnalysisBackend:
        """The session's instance of the backend registered under ``name``."""
        canonical = canonical_backend_name(name)
        instance = self._backends.get(canonical)
        if instance is None:
            instance = create_backend(canonical, self.context)
            self._backends[canonical] = instance
        return instance

    def cache_info(self) -> Dict[str, object]:
        """Hit/miss statistics of the session's artifact cache."""
        return self.artifacts.stats()

    def invalidate(self, tree: FaultTree) -> int:
        """Drop every cached artifact of ``tree``; returns the number removed.

        Call this *before* mutating a tree in place if you will not analyse
        the pre-mutation structure again — afterwards the old entries are
        keyed under a hash that can no longer be derived from the tree (see
        the class docstring on staleness).
        """
        return self.artifacts.invalidate(tree)

    def clear_cache(self) -> None:
        """Drop all cached artifacts and reset the hit/miss counters."""
        self.artifacts.clear()

    # -- analysis ----------------------------------------------------------------------

    def analyze(
        self,
        tree: FaultTree,
        analyses: Iterable[str] = ("mpmcs",),
        *,
        backend: str = "auto",
        top_k: int = 5,
        samples: int = 0,
        seed: int = 0,
        cutoff: float = 1e-9,
        deterministic: bool = True,
    ) -> AnalysisReport:
        """Run the requested analyses on ``tree`` and return one merged report.

        ``analyses`` accepts the canonical names (and common aliases) of
        :data:`repro.api.report.ANALYSES`.  ``backend`` forces every analysis
        through one registered backend; the default ``"auto"`` routes each
        analysis to its preferred backend (:data:`DEFAULT_ROUTES`).
        """
        request = AnalysisRequest.create(
            analyses,
            backend=backend,
            top_k=top_k,
            samples=samples,
            seed=seed,
            cutoff=cutoff,
            deterministic=deterministic,
        )
        return self.run(tree, request)

    def run(self, tree: FaultTree, request: AnalysisRequest) -> AnalysisReport:
        """Execute a pre-built :class:`AnalysisRequest` against ``tree``.

        When an ambient tracer is recording (:func:`repro.observability.use_tracer`)
        the run is wrapped in an ``analyze`` span — with per-backend child
        spans — and the serialized tree is attached as ``report.trace``.  The
        span's counters mirror ``report.profile``, so the profile is a pure
        projection of the trace (:func:`repro.observability.profile_view`).
        """
        tree.validate()
        with _trace.span("analyze", tree=tree.name, backend=request.backend) as analyze_span:
            report = self._run_traced(tree, request, analyze_span)
        if analyze_span.is_recording:
            report.trace = analyze_span.to_dict()
        return report

    def _run_traced(
        self, tree: FaultTree, request: AnalysisRequest, analyze_span
    ) -> AnalysisReport:
        report = AnalysisReport(tree=tree, request=request)
        plan = self._plan(request)
        provider_counts: Dict[str, int] = {}
        for _, assigned in plan:
            for analysis in assigned:
                provider_counts[analysis] = provider_counts.get(analysis, 0) + 1
        cache_before = (
            self.artifacts.hits,
            self.artifacts.misses,
            self.artifacts.store_hits,
            self.artifacts.store_misses,
        )
        registry = _metrics.get_metrics()
        for backend_name, assigned in plan:
            scoped = request.restricted_to(assigned, backend_name)
            start = time.perf_counter()
            try:
                with _trace.span(
                    f"backend:{backend_name}", analyses=",".join(assigned)
                ) as backend_span:
                    partial = self.backend(backend_name).run(tree, scoped)
                    backend_span.merge_counters(partial.profile)
                registry.inc("repro_analyses_total", backend=backend_name)
            except AnalysisError as exc:
                # An auxiliary provider (e.g. MOCUS contributing optional
                # top-event bounds next to the BDD's exact value) may fail on
                # trees another provider handles fine — degrade instead of
                # sinking the whole request.  A backend that is the *only*
                # provider of any assigned analysis must still raise.
                if all(provider_counts[analysis] > 1 for analysis in assigned):
                    report.warnings.append(
                        f"backend {backend_name!r} failed for "
                        f"{', '.join(assigned)}: {exc}"
                    )
                    continue
                raise
            elapsed = time.perf_counter() - start
            report.merge_from(partial, assigned, backend_name)
            report.timings[backend_name] = report.timings.get(backend_name, 0.0) + elapsed
            # Per-stage profile: backends contribute encode/solve stage
            # timings; numeric entries sum when several backends serve one
            # composite request.
            for key, value in partial.profile.items():
                report.profile[key] = report.profile.get(key, 0) + value
        report.profile["kernel"] = self.kernels.name
        report.profile["cache_hits"] = self.artifacts.hits - cache_before[0]
        report.profile["cache_misses"] = self.artifacts.misses - cache_before[1]
        if self.artifacts.backend is not None:
            report.profile["store_hits"] = self.artifacts.store_hits - cache_before[2]
            report.profile["store_misses"] = self.artifacts.store_misses - cache_before[3]
        missing = [name for name in request.analyses if name not in report.backends]
        if missing:
            detail = f"; degraded providers: {'; '.join(report.warnings)}" if report.warnings else ""
            raise AnalysisError(
                f"no backend produced the requested analyses {missing!r} "
                f"(backend={request.backend!r}){detail}"
            )
        report.cache_stats = self.artifacts.stats()
        # The profile doubles as the analyze span's counter set, making the
        # profile a pure projection of the trace (observability.profile_view).
        analyze_span.merge_counters(report.profile)
        return report

    # -- routing ----------------------------------------------------------------------

    def _plan(self, request: AnalysisRequest) -> List[Tuple[str, Tuple[str, ...]]]:
        """Group the requested analyses by the backend that will run them.

        Returns ``[(backend_name, analyses), ...]`` preserving request order.
        """
        if request.backend != "auto":
            name = canonical_backend_name(request.backend)
            capabilities = backend_class(name).capabilities()
            unsupported = [a for a in request.analyses if a not in capabilities]
            if unsupported:
                raise AnalysisError(
                    f"backend {name!r} does not support {', '.join(unsupported)}; "
                    f"its capabilities are {', '.join(sorted(capabilities))}"
                )
            return [(name, request.analyses)]

        assignments: Dict[str, List[str]] = {}
        for analysis in request.analyses:
            for backend_name in self._providers_for(analysis, request):
                assignments.setdefault(backend_name, []).append(analysis)
        return [(name, tuple(assigned)) for name, assigned in assignments.items()]

    def _providers_for(self, analysis: str, request: AnalysisRequest) -> List[str]:
        """Backends that should contribute to ``analysis`` under auto routing."""
        if analysis == "top_event":
            providers = [
                name for name in _TOP_EVENT_AUTO_PROVIDERS if self._is_registered(name)
            ]
            if request.samples > 0 and self._is_registered("monte-carlo"):
                providers.append("monte-carlo")
            if providers:
                return providers
        for candidate in DEFAULT_ROUTES.get(analysis, ()):
            if self._is_registered(candidate):
                return [candidate]
        fallback = backends_supporting(analysis)
        if not fallback:
            raise AnalysisError(f"no registered backend supports the analysis {analysis!r}")
        return [fallback[0]]

    @staticmethod
    def _is_registered(name: str) -> bool:
        try:
            canonical_backend_name(name)
        except AnalysisError:
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AnalysisSession(backends={sorted(self._backends)}, "
            f"cache={self.artifacts!r})"
        )
