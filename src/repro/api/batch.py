"""Batch execution: run one analysis request over many fault trees.

``analyze_many`` is the throughput layer of the facade.  Sequentially it
shares a single :class:`~repro.api.session.AnalysisSession` across all trees
— structurally identical trees therefore share cached artifacts — and with
``workers > 1`` it fans the trees out over a :class:`ProcessPoolExecutor`,
which is what the portfolio ablation and scalability studies need to saturate
a multi-core host.

Failures are captured per tree (one malformed model must not sink a
thousand-tree sweep): each :class:`BatchItem` carries either a report or the
error message, and :attr:`BatchResult.reports` lists the successful reports
in input order.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.api.report import AnalysisReport, AnalysisRequest
from repro.api.session import AnalysisSession
from repro.fta.tree import FaultTree

__all__ = ["BatchItem", "BatchResult", "analyze_many"]


@dataclass(frozen=True)
class BatchItem:
    """Outcome for one tree of a batch: a report, or the error that stopped it."""

    index: int
    tree_name: str
    report: Optional[AnalysisReport] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.report is not None


@dataclass
class BatchResult:
    """Outcomes of :func:`analyze_many`, in input order."""

    items: List[BatchItem]

    @property
    def reports(self) -> List[AnalysisReport]:
        """The successful reports, in input order."""
        return [item.report for item in self.items if item.report is not None]

    @property
    def failures(self) -> List[BatchItem]:
        """The failed items, in input order."""
        return [item for item in self.items if not item.ok]

    @property
    def num_ok(self) -> int:
        return sum(1 for item in self.items if item.ok)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[BatchItem]:
        return iter(self.items)

    def raise_on_failure(self) -> "BatchResult":
        """Raise the first captured error (if any); returns ``self`` otherwise."""
        for item in self.items:
            if not item.ok:
                raise RuntimeError(
                    f"analysis of tree #{item.index} ({item.tree_name!r}) failed: {item.error}"
                )
        return self


def _analyze_one(payload: Tuple[int, FaultTree, AnalysisRequest, str]) -> BatchItem:
    """Worker: analyse one tree in its own session (runs in a subprocess)."""
    index, tree, request, mode = payload
    try:
        session = AnalysisSession(mode=mode)
        report = session.run(tree, request)
        return BatchItem(index=index, tree_name=tree.name, report=report)
    except Exception as exc:  # noqa: BLE001 - failures are data in a batch
        return BatchItem(index=index, tree_name=tree.name, error=str(exc))


def analyze_many(
    trees: Iterable[FaultTree],
    analyses: Iterable[str] = ("mpmcs",),
    *,
    backend: str = "auto",
    workers: Optional[int] = None,
    session: Optional[AnalysisSession] = None,
    request: Optional[AnalysisRequest] = None,
    mode: str = "thread",
    top_k: int = 5,
    samples: int = 0,
    seed: int = 0,
    cutoff: float = 1e-9,
    deterministic: bool = True,
) -> BatchResult:
    """Analyse every tree in ``trees`` and return a :class:`BatchResult`.

    Parameters
    ----------
    trees:
        The fault trees to analyse (materialised up front to fix the order).
    analyses / backend / top_k / samples / seed / cutoff / deterministic:
        Forwarded to :meth:`AnalysisSession.analyze` for every tree; ignored
        when an explicit ``request`` is given.
    workers:
        ``None``, ``0`` or ``1`` runs sequentially in-process, sharing one
        session (and hence one artifact cache) across all trees.  Larger
        values fan out over a process pool with one fresh session per task;
        if the platform cannot spawn subprocesses the batch silently degrades
        to sequential execution.
    session:
        Optional pre-built session for the sequential path (its artifact
        cache then persists across batches).
    mode:
        MaxSAT portfolio mode used by worker sessions.
    """
    tree_list: Sequence[FaultTree] = list(trees)
    if request is None:
        request = AnalysisRequest.create(
            analyses,
            backend=backend,
            top_k=top_k,
            samples=samples,
            seed=seed,
            cutoff=cutoff,
            deterministic=deterministic,
        )

    payloads = [(index, tree, request, mode) for index, tree in enumerate(tree_list)]

    if workers is not None and workers > 1 and len(tree_list) > 1:
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                chunksize = max(1, len(payloads) // (workers * 4))
                items = list(pool.map(_analyze_one, payloads, chunksize=chunksize))
            return BatchResult(items=sorted(items, key=lambda item: item.index))
        except (OSError, PermissionError):  # pragma: no cover - platform dependent
            pass  # sandboxed platforms without fork/spawn: degrade gracefully

    shared = session if session is not None else AnalysisSession(mode=mode)
    items = []
    for index, tree, scoped_request, _ in payloads:
        try:
            report = shared.run(tree, scoped_request)
            items.append(BatchItem(index=index, tree_name=tree.name, report=report))
        except Exception as exc:  # noqa: BLE001 - failures are data in a batch
            items.append(BatchItem(index=index, tree_name=tree.name, error=str(exc)))
    return BatchResult(items=items)
