"""Pluggable backend registry for the :mod:`repro.api` facade.

Every resolution strategy the library implements — the paper's MaxSAT
pipeline as well as the classical MOCUS/BDD/brute-force/Monte-Carlo baselines
— is exposed as an :class:`AnalysisBackend` registered here under a stable
name.  New strategies plug in with the :func:`register_backend` decorator:

.. code-block:: python

    from repro.api import AnalysisBackend, AnalysisReport, register_backend

    @register_backend(aliases=("my-alias",))
    class MyBackend(AnalysisBackend):
        name = "my-backend"
        CAPABILITIES = frozenset({"mpmcs"})

        def run(self, tree, request):
            report = AnalysisReport(tree=tree, request=request)
            ...  # fill the sections named in request.analyses
            return report

Backends are *classes*; the session instantiates one object per backend per
session, handing it a :class:`BackendContext` with the session's shared
:class:`~repro.api.cache.ArtifactCache` and MaxSAT solver so that expensive
intermediates are computed once regardless of which backend needs them.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar, Dict, FrozenSet, List, Optional, Tuple, Type, Union, overload

from repro.api.cache import ArtifactCache
from repro.api.report import AnalysisReport, AnalysisRequest
from repro.core.pipeline import MPMCSSolver
from repro.exceptions import AnalysisError
from repro.fta.tree import FaultTree
from repro.maxsat.instance import DEFAULT_PRECISION

__all__ = [
    "AnalysisBackend",
    "BackendContext",
    "available_backends",
    "backend_capabilities",
    "backend_class",
    "backends_supporting",
    "canonical_backend_name",
    "create_backend",
    "register_backend",
]


@dataclass
class BackendContext:
    """Shared per-session state handed to every backend instance."""

    artifacts: ArtifactCache = field(default_factory=ArtifactCache)
    solver: Optional[MPMCSSolver] = None
    precision: int = DEFAULT_PRECISION
    #: The session's resolved kernel suite (:func:`repro.kernels.select`);
    #: ``None`` means each consumer auto-selects.  Typed loosely to keep the
    #: registry import-light.
    kernels: Optional[Any] = None


class AnalysisBackend(abc.ABC):
    """Common protocol implemented by every analysis backend.

    Subclasses set :attr:`name` (the registry key), :attr:`CAPABILITIES`
    (the analysis names they can produce) and implement :meth:`run`, which
    fills the sections of an :class:`AnalysisReport` corresponding to
    ``request.analyses`` — sections outside their capabilities are left
    ``None`` and ignored by the session.
    """

    #: Registry name; must be set by subclasses.
    name: ClassVar[str] = ""
    #: Canonical analysis names this backend can compute.
    CAPABILITIES: ClassVar[FrozenSet[str]] = frozenset()

    def __init__(self, context: Optional[BackendContext] = None) -> None:
        self.context = context if context is not None else BackendContext()

    @classmethod
    def capabilities(cls) -> FrozenSet[str]:
        """The analysis names this backend supports."""
        return cls.CAPABILITIES

    @abc.abstractmethod
    def run(self, tree: FaultTree, request: AnalysisRequest) -> AnalysisReport:
        """Compute the requested analyses and return a (partial) report."""


#: Canonical name -> backend class.
_REGISTRY: Dict[str, Type[AnalysisBackend]] = {}
#: Alias -> canonical name (canonical names map to themselves).
_ALIASES: Dict[str, str] = {}


@overload
def register_backend(cls: Type[AnalysisBackend]) -> Type[AnalysisBackend]: ...


@overload
def register_backend(
    *, name: Optional[str] = None, aliases: Tuple[str, ...] = ()
) -> Callable[[Type[AnalysisBackend]], Type[AnalysisBackend]]: ...


def register_backend(
    cls: Optional[Type[AnalysisBackend]] = None,
    *,
    name: Optional[str] = None,
    aliases: Tuple[str, ...] = (),
) -> Union[Type[AnalysisBackend], Callable[[Type[AnalysisBackend]], Type[AnalysisBackend]]]:
    """Class decorator registering an :class:`AnalysisBackend` implementation.

    Usable bare (``@register_backend``) or with arguments
    (``@register_backend(aliases=("bf",))``).  The registry key is ``name``
    when given, otherwise the class's :attr:`~AnalysisBackend.name` attribute.
    Re-registering a name replaces the previous backend (latest wins), which
    lets applications override a built-in strategy.
    """

    def decorate(backend_cls: Type[AnalysisBackend]) -> Type[AnalysisBackend]:
        key = (name or backend_cls.name or "").strip().lower()
        if not key:
            raise AnalysisError(
                f"backend class {backend_cls.__name__} has no registry name; "
                "set a `name` class attribute or pass name= to register_backend"
            )
        if not backend_cls.CAPABILITIES:
            raise AnalysisError(f"backend {key!r} declares no capabilities")
        backend_cls.name = key
        _REGISTRY[key] = backend_cls
        _ALIASES[key] = key
        for alias in aliases:
            _ALIASES[alias.strip().lower()] = key
        return backend_cls

    if cls is not None:
        return decorate(cls)
    return decorate


def canonical_backend_name(name: str) -> str:
    """Resolve a backend name or alias; raise :class:`AnalysisError` if unknown."""
    key = name.strip().lower()
    try:
        return _ALIASES[key]
    except KeyError as exc:
        raise AnalysisError(
            f"unknown backend {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from exc


def backend_class(name: str) -> Type[AnalysisBackend]:
    """The backend class registered under ``name`` (aliases accepted)."""
    return _REGISTRY[canonical_backend_name(name)]


def create_backend(name: str, context: Optional[BackendContext] = None) -> AnalysisBackend:
    """Instantiate the backend registered under ``name`` with ``context``."""
    return backend_class(name)(context)


def available_backends() -> Dict[str, Type[AnalysisBackend]]:
    """Mapping of canonical backend name to backend class (sorted by name)."""
    return {name: _REGISTRY[name] for name in sorted(_REGISTRY)}


def backend_capabilities() -> Dict[str, FrozenSet[str]]:
    """Mapping of canonical backend name to its supported analyses."""
    return {name: cls.capabilities() for name, cls in available_backends().items()}


def backends_supporting(analysis: str) -> List[str]:
    """Canonical names of every registered backend supporting ``analysis``."""
    return [
        name for name, cls in available_backends().items() if analysis in cls.capabilities()
    ]
