"""Per-session artifact cache keyed on a structural fault-tree hash.

Composite requests such as ``["mpmcs", "top_event", "importance"]`` need the
same expensive intermediates several times: the Tseitin CNF encoding (MaxSAT
pipeline and top-k enumeration), the minimal cut sets (importance measures,
probability bounds, MPMCS baselines) and the compiled BDD (exact probability,
BDD cut sets).  :class:`ArtifactCache` memoises them once per structurally
identical tree so each is computed exactly once per
:class:`~repro.api.session.AnalysisSession`.

The cache key is a content hash over everything that influences analysis
results — top event, gate structure and basic-event probabilities — and
explicitly *not* the tree's display name, so re-parsing or renaming a model
still hits.  Mutating a tree (e.g. :meth:`FaultTree.set_probability`) changes
the hash, which invalidates stale artifacts automatically.

Beyond whole-tree artifacts the cache also keys artifacts by *subtree*: the
:mod:`repro.scenarios` sweep engine stores the minimal cut sets of every gate
under a structure-only hash of the subtree rooted there
(:func:`subtree_structure_hashes`).  Probabilities are deliberately excluded
from that hash because the qualitative cut-set structure does not depend on
them — a probability-only what-if scenario therefore reuses the cut sets of
*every* gate, and a structural patch (added redundancy, a removed event)
invalidates only the gates on the path from the edit to the top event.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Tuple, TypeVar
from weakref import WeakKeyDictionary

from repro.fta.tree import FaultTree
from repro.observability.metrics import get_metrics

__all__ = [
    "ARTIFACT_BDD",
    "ARTIFACT_CAMPAIGN_LEDGER",
    "ARTIFACT_CUT_SETS",
    "ARTIFACT_ENCODING",
    "ARTIFACT_SUBTREE_BDD",
    "ARTIFACT_SUBTREE_CNF",
    "ARTIFACT_SUBTREE_CUT_SETS",
    "ArtifactCache",
    "ArtifactStoreBackend",
    "structural_hash",
    "subtree_structure_hashes",
]

#: Well-known artifact kinds shared by the built-in backends.
ARTIFACT_ENCODING = "cnf-encoding"
ARTIFACT_CUT_SETS = "minimal-cut-sets"
ARTIFACT_BDD = "bdd"
#: Per-gate minimal cut sets keyed by structure-only subtree hash (used by the
#: incremental scenario-sweep path in :mod:`repro.scenarios`).
ARTIFACT_SUBTREE_CUT_SETS = "subtree-cut-sets"
#: Compiled BDD keyed by the *structure-only* hash of the top event's subtree.
#: The diagram encodes the monotone structure function alone — probabilities
#: only enter at evaluation time — so one compilation serves every
#: probability-perturbed scenario of a sweep (see
#: :class:`repro.scenarios.sweep.SweepExecutor`).
ARTIFACT_SUBTREE_BDD = "subtree-bdd"
#: Relocatable Tseitin CNF fragment of one gate, keyed by the structure-only
#: hash of the gate's subtree (see :class:`repro.logic.tseitin.CNFFragment`).
#: Fragments are purely qualitative — clauses over local variables plus an
#: interface literal — so, like the subtree cut sets, one cached fragment
#: serves every probability-perturbed scenario of a sweep, and a structural
#: patch re-encodes only the gates on the path from the edit to the top event.
ARTIFACT_SUBTREE_CNF = "subtree-cnf"
#: Campaign completion-ledger entries (see :mod:`repro.campaigns.ledger`):
#: per-chunk results keyed by a hash of campaign id + chunk content, plus one
#: state record per campaign keyed by the campaign id alone.  Written through
#: :class:`repro.service.store.DiskArtifactStore` with the same atomic,
#: versioned, checksummed entry format as every other artifact kind, which is
#: what makes a killed campaign resumable: the ledger either contains a whole
#: verified chunk result or nothing.
ARTIFACT_CAMPAIGN_LEDGER = "campaign-ledger"


class ArtifactStoreBackend:
    """Second-tier storage behind an :class:`ArtifactCache`.

    The in-memory cache probes its backend on a miss and writes every freshly
    computed artifact through to it, which is how artifacts outlive a process:
    :class:`repro.service.store.DiskArtifactStore` implements this protocol
    over a content-addressed on-disk layout shared between processes.  The
    keys handed to a backend are the same ``(content_hash, kind)`` pairs the
    memory tier uses, so any two caches pointed at one backend exchange
    artifacts for structurally identical (sub)trees automatically.
    """

    def load(self, key_hash: str, kind: str) -> Tuple[bool, Any]:
        """Return ``(found, value)`` for the artifact stored under the key."""
        raise NotImplementedError

    def store(self, key_hash: str, kind: str, value: Any) -> None:
        """Persist ``value`` under the key (best effort; may silently skip)."""
        raise NotImplementedError

    def discard(self, key_hash: str) -> int:
        """Drop every kind stored under ``key_hash``; returns the count removed.

        Called by :meth:`ArtifactCache.invalidate` so that explicit
        invalidation reaches the persistent tier too — otherwise the next
        miss would re-fetch the stale entry from disk.  The default is a
        no-op for backends without deletion support.
        """
        return 0

T = TypeVar("T")


def structural_hash(tree: FaultTree) -> str:
    """Content hash of a fault tree's analysis-relevant structure.

    Two trees receive the same hash exactly when they have the same top
    event, the same gates (type, ``k``, child order) and the same basic
    events with bit-identical probabilities.  Names of trees and descriptions
    of nodes are ignored — they do not influence any analysis result.
    """
    events = sorted(
        (name, event.probability.hex()) for name, event in tree.events.items()
    )
    gates = sorted(
        (gate.name, gate.gate_type.value, gate.k if gate.k is not None else -1, list(gate.children))
        for gate in tree.gates.values()
    )
    payload = json.dumps(
        {"top": tree.top_event, "events": events, "gates": gates},
        separators=(",", ":"),
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def subtree_structure_hashes(tree: FaultTree) -> Dict[str, str]:
    """Structure-only content hash of the subtree rooted at every node.

    The hash of a basic event is derived from its *name* only, and the hash
    of a gate from its type, its voting threshold and the (sorted) hashes of
    its children — probabilities never enter.  Two nodes receive the same
    hash exactly when the monotone structure functions of their subtrees are
    syntactically identical up to child order, which is the invariant the
    subtree-level cut-set cache relies on: minimal cut sets are a purely
    qualitative artifact, so they can be reused across any two trees (or
    scenarios) whose subtrees share a structure hash regardless of how the
    event probabilities differ.

    Only nodes reachable from the top event are hashed.
    """
    gates = tree.gates
    hashes: Dict[str, str] = {}
    for name in tree.topological_order():
        gate = gates.get(name)
        if gate is None:
            payload = f"event:{name}"
        else:
            children = ",".join(sorted(hashes[child] for child in gate.children))
            payload = f"gate:{gate.gate_type.value}:{gate.k if gate.k is not None else ''}:{children}"
        hashes[name] = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    return hashes


class ArtifactCache:
    """Memoisation table for expensive per-tree analysis intermediates.

    Entries are keyed by ``(structural_hash(tree), kind)``.  The cache keeps
    hit/miss counters per kind so tests (and curious users) can verify that a
    composite request computed each artifact exactly once.

    Parameters
    ----------
    max_entries:
        Optional bound on the number of in-memory entries.  When set, the
        cache evicts least-recently-used entries once the bound is exceeded
        (per-kind eviction counters appear in :meth:`stats`), so a
        long-running service or an unbounded sweep cannot grow the memory
        tier without limit.  ``None`` (the default) keeps the historical
        unbounded behaviour.
    backend:
        Optional :class:`ArtifactStoreBackend` probed on every memory miss
        and written through on every computation, e.g. the persistent
        :class:`repro.service.store.DiskArtifactStore`.  Backend hits and
        misses are counted separately from memory hits (``store_hits`` /
        ``store_misses`` in :meth:`stats`).
    """

    def __init__(
        self,
        *,
        max_entries: Optional[int] = None,
        backend: Optional[ArtifactStoreBackend] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be at least 1, got {max_entries}")
        self._store: "OrderedDict[Tuple[str, str], Any]" = OrderedDict()
        self.max_entries = max_entries
        self.backend = backend
        self._hits: Dict[str, int] = {}
        self._misses: Dict[str, int] = {}
        self._evictions: Dict[str, int] = {}
        self._store_hits: Dict[str, int] = {}
        self._store_misses: Dict[str, int] = {}
        # Per-object memo of (tree.version, hash): a composite request probes
        # the cache several times per tree, and re-serialising the whole tree
        # for every probe is O(tree) redundant work.  FaultTree.version is
        # bumped on every mutation, which keeps the memo safe.
        self._hash_memo: "WeakKeyDictionary[FaultTree, Tuple[int, str]]" = WeakKeyDictionary()
        # Same idea for the per-node structure hashes used by subtree artifacts.
        self._structure_memo: "WeakKeyDictionary[FaultTree, Tuple[int, Dict[str, str]]]" = (
            WeakKeyDictionary()
        )

    def key_for(self, tree: FaultTree) -> str:
        """The structural cache key of ``tree`` (memoised per tree object)."""
        memo = self._hash_memo.get(tree)
        if memo is not None and memo[0] == tree.version:
            return memo[1]
        digest = structural_hash(tree)
        self._hash_memo[tree] = (tree.version, digest)
        return digest

    def _lookup(self, key: Tuple[str, str], kind: str) -> Tuple[bool, Any]:
        """Probe the memory tier, then the backend; count at the tier that answered."""
        registry = get_metrics()
        if key in self._store:
            self._hits[kind] = self._hits.get(kind, 0) + 1
            registry.inc("repro_cache_hits_total", kind=kind)
            self._store.move_to_end(key)
            return True, self._store[key]
        self._misses[kind] = self._misses.get(kind, 0) + 1
        registry.inc("repro_cache_misses_total", kind=kind)
        if self.backend is not None:
            found, value = self.backend.load(key[0], kind)
            if found:
                self._store_hits[kind] = self._store_hits.get(kind, 0) + 1
                registry.inc("repro_store_hits_total", kind=kind)
                self._insert(key, value)
                return True, value
            self._store_misses[kind] = self._store_misses.get(kind, 0) + 1
            registry.inc("repro_store_misses_total", kind=kind)
        return False, None

    def _insert(self, key: Tuple[str, str], value: Any) -> None:
        """Insert into the memory tier, evicting LRU entries past the bound."""
        self._store[key] = value
        self._store.move_to_end(key)
        if self.max_entries is not None:
            while len(self._store) > self.max_entries:
                evicted_key, _ = self._store.popitem(last=False)
                evicted_kind = evicted_key[1]
                self._evictions[evicted_kind] = self._evictions.get(evicted_kind, 0) + 1

    def get_or_compute(self, tree: FaultTree, kind: str, compute: Callable[[], T]) -> T:
        """Return the cached artifact of ``kind`` for ``tree``, computing it once."""
        key = (self.key_for(tree), kind)
        found, value = self._lookup(key, kind)
        if found:
            return value
        value = compute()
        self._insert(key, value)
        if self.backend is not None:
            self.backend.store(key[0], kind, value)
        return value

    def put(self, tree: FaultTree, kind: str, value: Any) -> None:
        """Seed the cache entry of ``kind`` for ``tree`` without counting a miss.

        Used by producers that obtained the artifact through a cheaper route
        (e.g. the incremental sweep assembling cut sets from cached subtrees)
        so later :meth:`get_or_compute` probes hit instead of recomputing.
        Seeded entries are *not* written through to the backend: they are
        per-scenario assemblies whose building blocks (the subtree artifacts)
        are already persisted.
        """
        self._insert((self.key_for(tree), kind), value)

    def structure_keys_for(self, tree: FaultTree) -> Dict[str, str]:
        """Per-node structure-only hashes of ``tree`` (memoised per tree object)."""
        memo = self._structure_memo.get(tree)
        if memo is not None and memo[0] == tree.version:
            return memo[1]
        hashes = subtree_structure_hashes(tree)
        self._structure_memo[tree] = (tree.version, hashes)
        return hashes

    def get_or_compute_subtree(
        self, tree: FaultTree, node: str, kind: str, compute: Callable[[], T]
    ) -> T:
        """Return the artifact of ``kind`` for the subtree of ``tree`` at ``node``.

        Keyed by the node's structure-only hash, so the entry is shared by
        every tree (base model or perturbed scenario) containing a
        structurally identical subtree — probabilities do not participate in
        the key and the stored value must therefore be purely qualitative.
        """
        key = (self.structure_keys_for(tree)[node], kind)
        found, value = self._lookup(key, kind)
        if found:
            return value
        value = compute()
        self._insert(key, value)
        if self.backend is not None:
            self.backend.store(key[0], kind, value)
        return value

    def invalidate(
        self,
        tree: FaultTree,
        *,
        include_subtrees: bool = True,
        include_backend: bool = True,
    ) -> int:
        """Drop every artifact cached for ``tree``; returns the number removed.

        Removes whole-tree artifacts keyed by the tree's *current* structural
        hash and, unless ``include_subtrees=False``, the subtree artifacts of
        every node currently in the tree (``include_subtrees=False`` is the
        sweep executor's per-scenario eviction: the scenario's whole-tree
        entries are dead after its analysis, but the subtree entries are the
        shared incremental state every later scenario reuses).  With a
        persistent backend, invalidation reaches the disk tier too unless
        ``include_backend=False`` — a memory-only drop would otherwise be
        undone by the next probe re-fetching the stale entry from disk.
        Entries stored under a hash the tree had *before* an in-place
        mutation are unreachable from here (the key changed with the tree);
        they are never served stale, but reclaiming their memory requires
        :meth:`clear`.
        """
        keys = {self.key_for(tree)}
        if include_subtrees:
            keys.update(self.structure_keys_for(tree).values())
        stale = [key for key in self._store if key[0] in keys]
        for key in stale:
            del self._store[key]
        if include_backend and self.backend is not None:
            # Duck-typed: backends without deletion support may omit discard.
            discard = getattr(self.backend, "discard", None)
            if discard is not None:
                for key_hash in keys:
                    discard(key_hash)
        return len(stale)

    def clear(self) -> None:
        """Drop all in-memory artifacts and reset the counters.

        The persistent backend (if any) is left untouched — clearing the
        memory tier of one process must not destroy artifacts other
        processes share.
        """
        self._store.clear()
        self._hits.clear()
        self._misses.clear()
        self._evictions.clear()
        self._store_hits.clear()
        self._store_misses.clear()

    # -- statistics -----------------------------------------------------------------

    @property
    def hits(self) -> int:
        return sum(self._hits.values())

    @property
    def misses(self) -> int:
        return sum(self._misses.values())

    @property
    def evictions(self) -> int:
        return sum(self._evictions.values())

    @property
    def store_hits(self) -> int:
        """Artifacts served by the persistent backend instead of recomputed."""
        return sum(self._store_hits.values())

    @property
    def store_misses(self) -> int:
        return sum(self._store_misses.values())

    def hits_for(self, kind: str) -> int:
        return self._hits.get(kind, 0)

    def misses_for(self, kind: str) -> int:
        return self._misses.get(kind, 0)

    def store_hits_for(self, kind: str) -> int:
        """Backend (second-tier) hits of one artifact kind."""
        return self._store_hits.get(kind, 0)

    def store_misses_for(self, kind: str) -> int:
        """Backend (second-tier) misses of one artifact kind."""
        return self._store_misses.get(kind, 0)

    def __len__(self) -> int:
        return len(self._store)

    def stats(self) -> Dict[str, Any]:
        """Snapshot of the counters, suitable for reports and logging."""
        kinds = sorted(
            set(self._hits)
            | set(self._misses)
            | set(self._evictions)
            | set(self._store_hits)
            | set(self._store_misses)
        )
        stats: Dict[str, Any] = {
            "entries": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "by_kind": {
                kind: {
                    "hits": self._hits.get(kind, 0),
                    "misses": self._misses.get(kind, 0),
                    "evictions": self._evictions.get(kind, 0),
                }
                for kind in kinds
            },
        }
        if self.backend is not None:
            stats["store_hits"] = self.store_hits
            stats["store_misses"] = self.store_misses
            # Per-kind backend counters appear only for store-backed caches so
            # the memory-only stats shape stays unchanged.  They let sweep
            # logs attribute cross-process reuse to cut sets vs BDDs vs CNF
            # fragments instead of one aggregate number.
            for kind, counters in stats["by_kind"].items():
                counters["store_hits"] = self._store_hits.get(kind, 0)
                counters["store_misses"] = self._store_misses.get(kind, 0)
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactCache(entries={len(self._store)}, hits={self.hits}, misses={self.misses})"
