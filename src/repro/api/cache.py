"""Per-session artifact cache keyed on a structural fault-tree hash.

Composite requests such as ``["mpmcs", "top_event", "importance"]`` need the
same expensive intermediates several times: the Tseitin CNF encoding (MaxSAT
pipeline and top-k enumeration), the minimal cut sets (importance measures,
probability bounds, MPMCS baselines) and the compiled BDD (exact probability,
BDD cut sets).  :class:`ArtifactCache` memoises them once per structurally
identical tree so each is computed exactly once per
:class:`~repro.api.session.AnalysisSession`.

The cache key is a content hash over everything that influences analysis
results — top event, gate structure and basic-event probabilities — and
explicitly *not* the tree's display name, so re-parsing or renaming a model
still hits.  Mutating a tree (e.g. :meth:`FaultTree.set_probability`) changes
the hash, which invalidates stale artifacts automatically.

Beyond whole-tree artifacts the cache also keys artifacts by *subtree*: the
:mod:`repro.scenarios` sweep engine stores the minimal cut sets of every gate
under a structure-only hash of the subtree rooted there
(:func:`subtree_structure_hashes`).  Probabilities are deliberately excluded
from that hash because the qualitative cut-set structure does not depend on
them — a probability-only what-if scenario therefore reuses the cut sets of
*every* gate, and a structural patch (added redundancy, a removed event)
invalidates only the gates on the path from the edit to the top event.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable, Dict, Tuple, TypeVar
from weakref import WeakKeyDictionary

from repro.fta.tree import FaultTree

__all__ = [
    "ARTIFACT_BDD",
    "ARTIFACT_CUT_SETS",
    "ARTIFACT_ENCODING",
    "ARTIFACT_SUBTREE_CUT_SETS",
    "ArtifactCache",
    "structural_hash",
    "subtree_structure_hashes",
]

#: Well-known artifact kinds shared by the built-in backends.
ARTIFACT_ENCODING = "cnf-encoding"
ARTIFACT_CUT_SETS = "minimal-cut-sets"
ARTIFACT_BDD = "bdd"
#: Per-gate minimal cut sets keyed by structure-only subtree hash (used by the
#: incremental scenario-sweep path in :mod:`repro.scenarios`).
ARTIFACT_SUBTREE_CUT_SETS = "subtree-cut-sets"

T = TypeVar("T")


def structural_hash(tree: FaultTree) -> str:
    """Content hash of a fault tree's analysis-relevant structure.

    Two trees receive the same hash exactly when they have the same top
    event, the same gates (type, ``k``, child order) and the same basic
    events with bit-identical probabilities.  Names of trees and descriptions
    of nodes are ignored — they do not influence any analysis result.
    """
    events = sorted(
        (name, event.probability.hex()) for name, event in tree.events.items()
    )
    gates = sorted(
        (gate.name, gate.gate_type.value, gate.k if gate.k is not None else -1, list(gate.children))
        for gate in tree.gates.values()
    )
    payload = json.dumps(
        {"top": tree.top_event, "events": events, "gates": gates},
        separators=(",", ":"),
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def subtree_structure_hashes(tree: FaultTree) -> Dict[str, str]:
    """Structure-only content hash of the subtree rooted at every node.

    The hash of a basic event is derived from its *name* only, and the hash
    of a gate from its type, its voting threshold and the (sorted) hashes of
    its children — probabilities never enter.  Two nodes receive the same
    hash exactly when the monotone structure functions of their subtrees are
    syntactically identical up to child order, which is the invariant the
    subtree-level cut-set cache relies on: minimal cut sets are a purely
    qualitative artifact, so they can be reused across any two trees (or
    scenarios) whose subtrees share a structure hash regardless of how the
    event probabilities differ.

    Only nodes reachable from the top event are hashed.
    """
    gates = tree.gates
    hashes: Dict[str, str] = {}
    for name in tree.topological_order():
        gate = gates.get(name)
        if gate is None:
            payload = f"event:{name}"
        else:
            children = ",".join(sorted(hashes[child] for child in gate.children))
            payload = f"gate:{gate.gate_type.value}:{gate.k if gate.k is not None else ''}:{children}"
        hashes[name] = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    return hashes


class ArtifactCache:
    """Memoisation table for expensive per-tree analysis intermediates.

    Entries are keyed by ``(structural_hash(tree), kind)``.  The cache keeps
    hit/miss counters per kind so tests (and curious users) can verify that a
    composite request computed each artifact exactly once.
    """

    def __init__(self) -> None:
        self._store: Dict[Tuple[str, str], Any] = {}
        self._hits: Dict[str, int] = {}
        self._misses: Dict[str, int] = {}
        # Per-object memo of (tree.version, hash): a composite request probes
        # the cache several times per tree, and re-serialising the whole tree
        # for every probe is O(tree) redundant work.  FaultTree.version is
        # bumped on every mutation, which keeps the memo safe.
        self._hash_memo: "WeakKeyDictionary[FaultTree, Tuple[int, str]]" = WeakKeyDictionary()
        # Same idea for the per-node structure hashes used by subtree artifacts.
        self._structure_memo: "WeakKeyDictionary[FaultTree, Tuple[int, Dict[str, str]]]" = (
            WeakKeyDictionary()
        )

    def key_for(self, tree: FaultTree) -> str:
        """The structural cache key of ``tree`` (memoised per tree object)."""
        memo = self._hash_memo.get(tree)
        if memo is not None and memo[0] == tree.version:
            return memo[1]
        digest = structural_hash(tree)
        self._hash_memo[tree] = (tree.version, digest)
        return digest

    def get_or_compute(self, tree: FaultTree, kind: str, compute: Callable[[], T]) -> T:
        """Return the cached artifact of ``kind`` for ``tree``, computing it once."""
        key = (self.key_for(tree), kind)
        if key in self._store:
            self._hits[kind] = self._hits.get(kind, 0) + 1
            return self._store[key]
        self._misses[kind] = self._misses.get(kind, 0) + 1
        value = compute()
        self._store[key] = value
        return value

    def put(self, tree: FaultTree, kind: str, value: Any) -> None:
        """Seed the cache entry of ``kind`` for ``tree`` without counting a miss.

        Used by producers that obtained the artifact through a cheaper route
        (e.g. the incremental sweep assembling cut sets from cached subtrees)
        so later :meth:`get_or_compute` probes hit instead of recomputing.
        """
        self._store[(self.key_for(tree), kind)] = value

    def structure_keys_for(self, tree: FaultTree) -> Dict[str, str]:
        """Per-node structure-only hashes of ``tree`` (memoised per tree object)."""
        memo = self._structure_memo.get(tree)
        if memo is not None and memo[0] == tree.version:
            return memo[1]
        hashes = subtree_structure_hashes(tree)
        self._structure_memo[tree] = (tree.version, hashes)
        return hashes

    def get_or_compute_subtree(
        self, tree: FaultTree, node: str, kind: str, compute: Callable[[], T]
    ) -> T:
        """Return the artifact of ``kind`` for the subtree of ``tree`` at ``node``.

        Keyed by the node's structure-only hash, so the entry is shared by
        every tree (base model or perturbed scenario) containing a
        structurally identical subtree — probabilities do not participate in
        the key and the stored value must therefore be purely qualitative.
        """
        key = (self.structure_keys_for(tree)[node], kind)
        if key in self._store:
            self._hits[kind] = self._hits.get(kind, 0) + 1
            return self._store[key]
        self._misses[kind] = self._misses.get(kind, 0) + 1
        value = compute()
        self._store[key] = value
        return value

    def invalidate(self, tree: FaultTree, *, include_subtrees: bool = True) -> int:
        """Drop every artifact cached for ``tree``; returns the number removed.

        Removes whole-tree artifacts keyed by the tree's *current* structural
        hash and, unless ``include_subtrees=False``, the subtree artifacts of
        every node currently in the tree (``include_subtrees=False`` is the
        sweep executor's per-scenario eviction: the scenario's whole-tree
        entries are dead after its analysis, but the subtree entries are the
        shared incremental state every later scenario reuses).  Entries
        stored under a hash the tree had *before* an in-place mutation are
        unreachable from here (the key changed with the tree); they are never
        served stale, but reclaiming their memory requires :meth:`clear`.
        """
        keys = {self.key_for(tree)}
        if include_subtrees:
            keys.update(self.structure_keys_for(tree).values())
        stale = [key for key in self._store if key[0] in keys]
        for key in stale:
            del self._store[key]
        return len(stale)

    def clear(self) -> None:
        """Drop all artifacts and reset the counters."""
        self._store.clear()
        self._hits.clear()
        self._misses.clear()

    # -- statistics -----------------------------------------------------------------

    @property
    def hits(self) -> int:
        return sum(self._hits.values())

    @property
    def misses(self) -> int:
        return sum(self._misses.values())

    def hits_for(self, kind: str) -> int:
        return self._hits.get(kind, 0)

    def misses_for(self, kind: str) -> int:
        return self._misses.get(kind, 0)

    def __len__(self) -> int:
        return len(self._store)

    def stats(self) -> Dict[str, Any]:
        """Snapshot of the counters, suitable for reports and logging."""
        kinds = sorted(set(self._hits) | set(self._misses))
        return {
            "entries": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
            "by_kind": {
                kind: {"hits": self._hits.get(kind, 0), "misses": self._misses.get(kind, 0)}
                for kind in kinds
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactCache(entries={len(self._store)}, hits={self.hits}, misses={self.misses})"
