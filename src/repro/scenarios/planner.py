"""Budgeted mitigation planning: which components to harden first.

The MPMCS names the weakest link; this module turns that insight into a
*plan*.  Given a set of candidate :class:`HardeningAction`\\ s (per-event cost
and effect) and a budget, the planner selects the action subset that pushes
the Maximum Probability Minimal Cut Set down the most:

* :func:`greedy_plan` — the classical cost-effectiveness baseline: repeatedly
  buy the affordable action with the best objective reduction per unit cost.
  Fast, and optimal surprisingly often, but it can be trapped (hardening the
  current MPMCS may just promote the runner-up cut set).
* :func:`exact_plan` — an exact re-encoding into Weighted Partial MaxSAT,
  reusing the library's solver portfolio.  The objective ``min_H max_C
  P'(C)`` becomes, in the paper's ``-log`` weight space, ``max_H min_C
  w'(C)`` — a bottleneck problem solved by binary search over the finite set
  of achievable cut-set weights.  Each feasibility probe asks: *is there a
  selection of actions, of minimal total cost, under which every minimal cut
  set weighs at least θ?*  Per-cut-set weight constraints are pseudo-Boolean
  and compile through the generalized totalizer
  (:func:`repro.maxsat.pb.encode_weighted_at_most`); action costs become soft
  clauses, so the MaxSAT optimum is the cheapest plan reaching θ.

:func:`rank_actions` provides the tornado-style sensitivity ranking: the
one-at-a-time impact of every candidate action on the top-event probability
and the MPMCS, sorted by risk reduction.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.cutsets import CutSet, CutSetCollection
from repro.analysis.topevent import top_event_probability_from_cut_sets
from repro.api.cache import ArtifactCache
from repro.core.weights import log_weight
from repro.exceptions import AnalysisError
from repro.fta.tree import FaultTree
from repro.maxsat.instance import WPMaxSATInstance
from repro.maxsat.pb import encode_weighted_at_most
from repro.maxsat.portfolio import PortfolioSolver
from repro.scenarios.incremental import incremental_cut_sets
from repro.scenarios.patches import DEFAULT_HARDENING_FACTOR, Harden

__all__ = [
    "ActionImpact",
    "HardeningAction",
    "MitigationPlan",
    "exact_plan",
    "greedy_plan",
    "plan_mitigation",
    "rank_actions",
]

#: Guard on the exact planner's threshold enumeration: every cut set
#: contributes ``2**|C ∩ actions|`` candidate weights.
_MAX_THRESHOLD_CANDIDATES = 200_000


@dataclass(frozen=True)
class HardeningAction:
    """One purchasable mitigation: harden ``event`` at ``cost``.

    The effect is either an explicit target ``probability`` or a
    multiplicative ``factor`` (default
    :data:`~repro.scenarios.patches.DEFAULT_HARDENING_FACTOR`); hardening may
    only lower the probability.
    """

    event: str
    cost: float
    factor: Optional[float] = None
    probability: Optional[float] = None

    def __post_init__(self) -> None:
        if self.cost <= 0:
            raise AnalysisError(f"action cost for {self.event!r} must be positive")

    def as_patch(self) -> Harden:
        return Harden(self.event, factor=self.factor, probability=self.probability)

    def hardened_probability(self, base: float) -> float:
        return self.as_patch().hardened_probability(base)

    @property
    def label(self) -> str:
        return self.as_patch().label


@dataclass(frozen=True)
class ActionImpact:
    """Tornado-style one-at-a-time impact of a single hardening action."""

    action: HardeningAction
    top_event_before: float
    top_event_after: float
    mpmcs_probability_before: float
    mpmcs_probability_after: float

    @property
    def top_event_reduction(self) -> float:
        return self.top_event_before - self.top_event_after

    @property
    def reduction_per_cost(self) -> float:
        return self.top_event_reduction / self.action.cost


@dataclass(frozen=True)
class MitigationPlan:
    """The selected hardening set and its projected effect."""

    method: str
    budget: float
    selected: Tuple[HardeningAction, ...]
    total_cost: float
    base_mpmcs: Tuple[str, ...]
    base_mpmcs_probability: float
    new_mpmcs: Tuple[str, ...]
    new_mpmcs_probability: float
    base_top_event: float
    new_top_event: float

    @property
    def events(self) -> Tuple[str, ...]:
        """Names of the hardened events, sorted."""
        return tuple(sorted(action.event for action in self.selected))

    @property
    def mpmcs_reduction(self) -> float:
        return self.base_mpmcs_probability - self.new_mpmcs_probability

    @property
    def top_event_reduction(self) -> float:
        return self.base_top_event - self.new_top_event

    def to_dict(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "budget": self.budget,
            "selected": [
                {"event": action.event, "cost": action.cost, "effect": action.label}
                for action in self.selected
            ],
            "total_cost": self.total_cost,
            "base_mpmcs": list(self.base_mpmcs),
            "base_mpmcs_probability": self.base_mpmcs_probability,
            "new_mpmcs": list(self.new_mpmcs),
            "new_mpmcs_probability": self.new_mpmcs_probability,
            "base_top_event": self.base_top_event,
            "new_top_event": self.new_top_event,
        }


# -- shared evaluation helpers -----------------------------------------------------------


def _cut_set_structure(
    tree: FaultTree, cache: Optional[ArtifactCache]
) -> List[CutSet]:
    collection = incremental_cut_sets(tree, cache if cache is not None else ArtifactCache())
    if not len(collection):
        raise AnalysisError(f"fault tree {tree.name!r} has no cut set to mitigate")
    return list(collection)


def _probabilities_under(
    tree: FaultTree, selection: Iterable[HardeningAction]
) -> Dict[str, float]:
    probabilities = tree.probabilities()
    for action in selection:
        probabilities[action.event] = action.hardened_probability(
            tree.probability(action.event)
        )
    return probabilities


def _mpmcs_under(
    structure: Sequence[CutSet], probabilities: Mapping[str, float]
) -> Tuple[Tuple[str, ...], float]:
    collection = CutSetCollection(cut_sets=list(structure), probabilities=probabilities)
    events, probability = collection.most_probable()
    return tuple(sorted(events)), probability


def _top_event_under(
    structure: Sequence[CutSet], probabilities: Mapping[str, float]
) -> float:
    return top_event_probability_from_cut_sets(structure, probabilities, method="auto")


def _validate_actions(tree: FaultTree, actions: Sequence[HardeningAction]) -> None:
    seen: Set[str] = set()
    for action in actions:
        if not tree.is_event(action.event):
            raise AnalysisError(f"action references unknown basic event {action.event!r}")
        if action.event in seen:
            raise AnalysisError(f"multiple actions target event {action.event!r}")
        seen.add(action.event)
        base = tree.probability(action.event)
        if action.hardened_probability(base) > base:
            raise AnalysisError(
                f"action on {action.event!r} would raise its probability; "
                "hardening must not make things worse"
            )


# -- tornado-style sensitivity ranking ---------------------------------------------------


def rank_actions(
    tree: FaultTree,
    actions: Sequence[HardeningAction],
    *,
    cache: Optional[ArtifactCache] = None,
) -> List[ActionImpact]:
    """One-at-a-time impact of each action, sorted by top-event reduction.

    The classical tornado diagram restricted to the downside every action can
    actually buy; ties break on cost (cheaper first) then event name.
    """
    _validate_actions(tree, actions)
    structure = _cut_set_structure(tree, cache)
    base_probabilities = tree.probabilities()
    base_top = _top_event_under(structure, base_probabilities)
    _, base_mpmcs_probability = _mpmcs_under(structure, base_probabilities)
    impacts = []
    for action in actions:
        probabilities = _probabilities_under(tree, [action])
        _, mpmcs_probability = _mpmcs_under(structure, probabilities)
        impacts.append(
            ActionImpact(
                action=action,
                top_event_before=base_top,
                top_event_after=_top_event_under(structure, probabilities),
                mpmcs_probability_before=base_mpmcs_probability,
                mpmcs_probability_after=mpmcs_probability,
            )
        )
    return sorted(
        impacts,
        key=lambda impact: (
            -impact.top_event_reduction,
            impact.action.cost,
            impact.action.event,
        ),
    )


# -- greedy baseline ---------------------------------------------------------------------


def greedy_plan(
    tree: FaultTree,
    actions: Sequence[HardeningAction],
    budget: float,
    *,
    objective: str = "mpmcs",
    cache: Optional[ArtifactCache] = None,
) -> MitigationPlan:
    """Cost-effectiveness greedy baseline.

    Repeatedly buys the affordable action with the largest objective
    reduction per unit cost (``objective`` is ``"mpmcs"`` — the MPMCS
    probability, the paper's quantity — or ``"top_event"``), stopping when
    the budget is exhausted or no affordable action still reduces the
    objective.
    """
    if objective not in ("mpmcs", "top_event"):
        raise AnalysisError(f"unknown objective {objective!r}; use 'mpmcs' or 'top_event'")
    _validate_actions(tree, actions)
    structure = _cut_set_structure(tree, cache)

    def objective_value(selection: List[HardeningAction]) -> float:
        probabilities = _probabilities_under(tree, selection)
        if objective == "mpmcs":
            return _mpmcs_under(structure, probabilities)[1]
        return _top_event_under(structure, probabilities)

    selected: List[HardeningAction] = []
    remaining = list(actions)
    spent = 0.0
    current = objective_value(selected)
    while True:
        best: Optional[Tuple[float, float, str, HardeningAction]] = None
        for action in remaining:
            if spent + action.cost > budget + 1e-12:
                continue
            value = objective_value(selected + [action])
            reduction = current - value
            if reduction <= 0:
                continue
            key = (-(reduction / action.cost), action.cost, action.event)
            if best is None or key < best[:3]:
                best = (*key, action)
        if best is None:
            break
        action = best[3]
        selected.append(action)
        remaining.remove(action)
        spent += action.cost
        current = objective_value(selected)

    return _assemble_plan(tree, structure, selected, budget, method="greedy")


# -- exact MaxSAT planner ----------------------------------------------------------------


def exact_plan(
    tree: FaultTree,
    actions: Sequence[HardeningAction],
    budget: float,
    *,
    cache: Optional[ArtifactCache] = None,
    solver: Optional[PortfolioSolver] = None,
    precision: int = 10**6,
) -> MitigationPlan:
    """Exact budgeted MPMCS minimisation via Weighted Partial MaxSAT.

    Maximises ``min_C w'(C)`` (equivalently minimises the post-hardening
    MPMCS probability) over all action subsets within budget, by binary
    search over the finite candidate thresholds; each feasibility probe is a
    WPMaxSAT instance solved with the library's engine portfolio.  Among all
    subsets reaching the optimal threshold the *cheapest* one is returned.
    """
    _validate_actions(tree, actions)
    structure = _cut_set_structure(tree, cache)
    portfolio = solver if solver is not None else PortfolioSolver(mode="sequential")

    base_weights = {name: log_weight(p) for name, p in tree.probabilities().items()}
    deltas: Dict[str, int] = {}
    costs: Dict[str, float] = {}
    for action in actions:
        base = tree.probability(action.event)
        hardened = action.hardened_probability(base)
        delta = log_weight(hardened) - base_weights[action.event]
        deltas[action.event] = max(0, int(round(delta * precision)))
        costs[action.event] = action.cost
    action_by_event = {action.event: action for action in actions}

    cut_weights = [
        int(round(sum(base_weights[name] for name in cut_set) * precision))
        for cut_set in structure
    ]

    # Finite candidate set for the bottleneck value min_C w'(C): every cut
    # set's weight under every subset of its actionable members.
    candidates: Set[int] = set()
    total_subsets = sum(
        2 ** len([e for e in cut_set if e in deltas]) for cut_set in structure
    )
    if total_subsets > _MAX_THRESHOLD_CANDIDATES:
        raise AnalysisError(
            f"exact planner would enumerate {total_subsets} candidate thresholds "
            f"(limit {_MAX_THRESHOLD_CANDIDATES}); use greedy_plan for this model"
        )
    for cut_set, base_weight in zip(structure, cut_weights):
        actionable = [event for event in cut_set if event in deltas]
        for size in range(len(actionable) + 1):
            for combo in itertools.combinations(actionable, size):
                candidates.add(base_weight + sum(deltas[event] for event in combo))
    thresholds = sorted(candidates)

    def feasible(theta: int) -> Optional[List[HardeningAction]]:
        """Cheapest action set making every cut set weigh >= theta, or None."""
        instance = WPMaxSATInstance(precision=precision)
        harden_vars = {event: instance.new_var() for event in sorted(deltas)}
        for cut_set, base_weight in zip(structure, cut_weights):
            need = theta - base_weight
            if need <= 0:
                continue
            terms = [
                (deltas[event], harden_vars[event])
                for event in sorted(cut_set)
                if event in deltas and deltas[event] > 0
            ]
            available = sum(weight for weight, _ in terms)
            if available < need:
                return None  # no selection can lift this cut set to theta
            # sum(delta_e * h_e) >= need  <=>  sum(delta_e * (1 - h_e)) <= available - need
            encode_weighted_at_most(
                [(weight, -var) for weight, var in terms],
                available - need,
                instance.new_var,
                instance.add_hard,
            )
        for event, var in harden_vars.items():
            instance.add_soft([-var], costs[event])
        if instance.num_soft == 0:
            return []  # theta is free: no constraint requires any action
        result = portfolio.solve(instance)
        if not result.is_optimum:
            return None
        if result.float_cost > budget + 1e-9:
            return None
        return [
            action_by_event[event]
            for event, var in sorted(harden_vars.items())
            if result.value(var)
        ]

    best_selection: List[HardeningAction] = []
    low, high = 0, len(thresholds) - 1
    while low <= high:
        mid = (low + high) // 2
        selection = feasible(thresholds[mid])
        if selection is not None:
            best_selection = selection
            low = mid + 1
        else:
            high = mid - 1

    return _assemble_plan(tree, structure, best_selection, budget, method="maxsat")


def _assemble_plan(
    tree: FaultTree,
    structure: Sequence[CutSet],
    selected: Sequence[HardeningAction],
    budget: float,
    *,
    method: str,
) -> MitigationPlan:
    base_probabilities = tree.probabilities()
    base_mpmcs, base_mpmcs_probability = _mpmcs_under(structure, base_probabilities)
    new_probabilities = _probabilities_under(tree, selected)
    new_mpmcs, new_mpmcs_probability = _mpmcs_under(structure, new_probabilities)
    ordered = tuple(sorted(selected, key=lambda action: action.event))
    return MitigationPlan(
        method=method,
        budget=budget,
        selected=ordered,
        total_cost=sum(action.cost for action in ordered),
        base_mpmcs=base_mpmcs,
        base_mpmcs_probability=base_mpmcs_probability,
        new_mpmcs=new_mpmcs,
        new_mpmcs_probability=new_mpmcs_probability,
        base_top_event=_top_event_under(structure, base_probabilities),
        new_top_event=_top_event_under(structure, new_probabilities),
    )


def plan_mitigation(
    tree: FaultTree,
    actions: Sequence[HardeningAction],
    budget: float,
    *,
    method: str = "greedy",
    objective: str = "mpmcs",
    cache: Optional[ArtifactCache] = None,
) -> MitigationPlan:
    """Front door: dispatch to :func:`greedy_plan` or :func:`exact_plan`."""
    if method == "greedy":
        return greedy_plan(tree, actions, budget, objective=objective, cache=cache)
    if method in ("exact", "maxsat"):
        if objective != "mpmcs":
            raise AnalysisError("the exact planner optimises the 'mpmcs' objective only")
        return exact_plan(tree, actions, budget, cache=cache)
    raise AnalysisError(f"unknown planning method {method!r}; use 'greedy' or 'exact'")
